// Package proximity is the public API of the Proximity reproduction: an
// approximate key-value cache that accelerates retrieval-augmented
// generation (RAG) by reusing the documents retrieved for similar past
// queries ("Leveraging Approximate Caching for Faster Retrieval-Augmented
// Generation", MIDDLEWARE '25).
//
// The cache sits between the RAG retriever and the vector database. Keys
// are query embeddings; values are retrieved document indices. A lookup
// hits when a cached key lies within a similarity tolerance τ of the
// incoming query, skipping the expensive nearest-neighbor search:
//
//	db, _ := proximity.NewFlatIndex(768, proximity.L2Distance)
//	db.Add(passageEmbeddings...)
//
//	cache, _ := proximity.NewLSHCache(768, proximity.LSHOptions{
//		Bits: 8, Tolerance: 5, Policy: proximity.LRU,
//	})
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 4})
//
//	result, _ := retriever.Retrieve(queryEmbedding)
//	// result.Docs feed the LLM prompt; result.Hit tells whether the
//	// database was bypassed.
//
// Two cache variants are provided: the FLAT cache scans all entries
// (exact, O(c·d) per lookup) and the LSH cache scans one random-
// hyperplane bucket (O((L+b)·d), independent of capacity). See the
// examples directory for complete programs and DESIGN.md for the paper
// mapping.
package proximity

import (
	"io"

	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Vector is a dense embedding vector.
	Vector = vec.Vector
	// Scored pairs a document ID with its distance to a query.
	Scored = vec.Scored
	// Metric identifies a distance function.
	Metric = vec.Metric

	// Cache is the approximate key-value cache interface.
	Cache = core.Cache
	// Options configures a FLAT cache.
	Options = core.Options
	// LSHOptions configures an LSH cache.
	LSHOptions = core.LSHOptions
	// Policy selects the eviction strategy.
	Policy = core.Policy
	// Stats are cumulative cache counters.
	Stats = core.Stats
	// Retriever is the cache-in-front-of-database retrieval path.
	Retriever = core.CachedRetriever
	// RetrieverOptions configures a Retriever.
	RetrieverOptions = core.RetrieverOptions
	// Result reports one retrieval.
	Result = core.Result

	// DB is the vector-database search interface the cache fronts.
	DB = vectordb.DB
	// VectorSource resolves document IDs to stored vectors (needed
	// for re-ranking).
	VectorSource = vectordb.VectorSource
	// FlatIndex is an exact in-memory nearest-neighbor index.
	FlatIndex = vectordb.FlatIndex
	// LatencyModel simulates production-scale database service times.
	LatencyModel = vectordb.LatencyModel

	// Embedder converts text into vectors.
	Embedder = embed.Embedder
	// TokenHashEmbedder is the deterministic offline encoder.
	TokenHashEmbedder = embed.TokenHash
	// Thesaurus supplies synonym knowledge to the encoder.
	Thesaurus = embed.Thesaurus
)

// Eviction policies.
const (
	// FIFO evicts the oldest inserted entry.
	FIFO = core.FIFO
	// LRU evicts the least recently used entry.
	LRU = core.LRU
)

// Distance metrics.
const (
	// L2Distance is the Euclidean distance (the paper's metric).
	L2Distance = vec.L2Distance
	// CosineDistance is 1 - cosine similarity.
	CosineDistance = vec.CosineDistance
	// InnerProduct is the negated dot product.
	InnerProduct = vec.InnerProduct
)

// NewFlatCache creates a Proximity-FLAT cache for dim-dimensional query
// embeddings (linear scan, exact within the cached set).
func NewFlatCache(dim int, opts Options) (*core.FlatCache, error) {
	return core.NewFlat(dim, opts)
}

// NewLSHCache creates a Proximity-LSH cache (random-hyperplane bucketed,
// constant-time lookups).
func NewLSHCache(dim int, opts LSHOptions) (*core.LSHCache, error) {
	return core.NewLSH(dim, opts)
}

// NewRetriever wires a cache in front of a vector database. cache may be
// nil for a no-cache baseline.
func NewRetriever(cache Cache, db DB, opts RetrieverOptions) (*Retriever, error) {
	return core.NewCachedRetriever(cache, db, opts)
}

// LoadFlatCache restores a FLAT cache from a snapshot previously written
// with its WriteSnapshot method (warm-restart support).
func LoadFlatCache(r io.Reader) (*core.FlatCache, error) {
	return core.ReadFlatSnapshot(r)
}

// LoadLSHCache restores an LSH cache from a snapshot previously written
// with its WriteSnapshot method.
func LoadLSHCache(r io.Reader) (*core.LSHCache, error) {
	return core.ReadLSHSnapshot(r)
}

// NewFlatIndex creates an exact in-memory vector index.
func NewFlatIndex(dim int, metric Metric) (*FlatIndex, error) {
	return vectordb.NewFlatIndex(dim, metric)
}

// NewEmbedder creates the deterministic token-hash encoder. thesaurus may
// be nil. Production deployments replace this with a neural encoder; any
// Embedder implementation works.
func NewEmbedder(dim int, seed uint64, thesaurus *Thesaurus) *TokenHashEmbedder {
	if thesaurus == nil {
		return embed.NewTokenHash(dim, seed)
	}
	return embed.NewTokenHash(dim, seed, embed.WithThesaurus(thesaurus))
}

// NewThesaurus creates an empty synonym table.
func NewThesaurus() *Thesaurus { return embed.NewThesaurus() }

// MedicalThesaurus returns a small built-in biomedical synonym table used
// by the examples.
func MedicalThesaurus() *Thesaurus { return embed.EnglishMedical() }
