// Package proximity is the public API of the Proximity reproduction: an
// approximate key-value cache that accelerates retrieval-augmented
// generation (RAG) by reusing the documents retrieved for similar past
// queries ("Leveraging Approximate Caching for Faster Retrieval-Augmented
// Generation", MIDDLEWARE '25).
//
// The cache sits between the RAG retriever and the vector database. Keys
// are query embeddings; values are retrieved document indices. A lookup
// hits when a cached key lies within a similarity tolerance τ of the
// incoming query, skipping the expensive nearest-neighbor search:
//
//	db, _ := proximity.NewFlatIndex(768, proximity.L2Distance)
//	db.Add(passageEmbeddings...)
//
//	cache, _ := proximity.NewLSHCache(768, proximity.LSHOptions{
//		Bits: 8, Tolerance: 5, Policy: proximity.LRU,
//	})
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 4})
//
//	result, _ := retriever.Retrieve(queryEmbedding)
//	// result.Docs feed the LLM prompt; result.Hit tells whether the
//	// database was bypassed.
//
// Two cache variants are provided: the FLAT cache scans all entries
// (exact, O(c·d) per lookup) and the LSH cache scans one random-
// hyperplane bucket (O((L+b)·d), independent of capacity). See the
// examples directory for complete programs and DESIGN.md for the paper
// mapping.
//
// # Serving at scale: sharding and load generation
//
// Both cache variants serialize every operation behind one mutex, which
// is fine for single-stream experiments but becomes the bottleneck when
// the middleware serves many clients at once. NewShardedFlatCache and
// NewShardedLSHCache hash-partition keys across N independently-locked
// sub-caches (LSH-signature routing by default, so approximately-equal
// queries still collide on the same shard and hit); the result satisfies
// the same Cache interface and drops into NewRetriever unchanged:
//
//	cache, _ := proximity.NewShardedFlatCache(768, 0, proximity.Options{
//		Capacity: 4096, Tolerance: 5, Policy: proximity.LRU,
//	}, 1) // 0 shards = one per CPU
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 4})
//
// The companion load generator replays any workload against a retriever
// (or the HTTP middleware) in closed loop (K workers back-to-back, a
// throughput probe) or open loop (Poisson arrivals at a target QPS, a
// latency-under-load probe), reporting achieved QPS and the p50/p95/p99
// latency distribution:
//
//	target, _ := proximity.NewRetrieverTarget(retriever)
//	rep, _ := proximity.RunLoad(target, wl, proximity.LoadOptions{
//		Mode: proximity.OpenLoop, QPS: 5000,
//	})
//	fmt.Print(rep.Render())
//
// See examples/loadtest for a complete program and `proximity-bench
// -experiment loadtest -shards N -concurrency K -qps Q` for the CLI
// harness.
//
// # Miss coalescing and batched database search
//
// Under concurrent traffic every cache miss still pays a full database
// search, and overlapping misses for the same (or a near-identical) query
// race duplicate searches. NewBatchPipeline wires the two-layer remedy:
// per-fingerprint singleflight (duplicate in-flight misses share one
// search) over per-shard batch queues (concurrent unique misses gather
// for up to a microsecond-scale deadline and flush as one SearchBatch
// pass, amortizing index traversal). Plug it into a retriever through the
// Searcher option:
//
//	pipe, _ := proximity.NewBatchPipeline(db, proximity.BatchOptions{})
//	defer pipe.Close()
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{
//		K: 4, Searcher: pipe,
//	})
//
// See examples/batched for the measured comparison and `proximity-bench
// -experiment loadtest -batch` for the harness.
//
// # Distributed shard routing
//
// Sharding within one process caps the cache tier at one machine's
// cores. NewClusterCache routes queries across shard NODES — instances
// of the HTTP middleware, each owning a slice of the keyspace — by
// consistent hashing over the same fingerprints the in-process
// partitioner uses. The client satisfies Cache (and Searcher), so it
// drops into NewRetriever unchanged; queries bound for the same node
// coalesce into batched HTTP calls, a failing node is retried on the
// next ring replica, and when every replica is down the wrapping
// retriever falls back to its local database:
//
//	cc, _ := proximity.NewClusterCache(768, []string{
//		"http://10.0.0.1:8081", "http://10.0.0.2:8081",
//	}, proximity.ClusterOptions{})
//	defer cc.Close()
//	retriever, _ := proximity.NewRetriever(cc, db, proximity.RetrieverOptions{K: 4})
//
// See internal/cluster for the design note, examples/cluster for a
// complete program (including a node kill absorbed by replica retry),
// `proximity-server -node` / `-peers` for the deployment shape, and
// `proximity-bench -experiment loadtest -cluster N` for the loopback
// A/B against single-process sharding.
//
// # Adaptive shard rebalancing
//
// A skewed (Zipf-like) query stream can concentrate LSH signatures on a
// few shards, so one hot shard's lock and scan length dominate tail
// latency while cold shards idle — visible as PressureReport.Imbalance.
// NewAdaptiveShardedCache closes the loop: a controller watches the
// report and, when the imbalance stays above a threshold for a sustained
// window, re-draws the partitioner to the best of several auditioned
// candidate seeds and migrates entries shard-by-shard with no
// stop-the-world lock (transient misses are the only cost — never a
// failed or wrong answer):
//
//	base, _ := proximity.NewShardedFlatCache(768, 8, proximity.Options{
//		Capacity: 8192, Tolerance: 5, Policy: proximity.LRU,
//	}, 1)
//	cache, _ := proximity.NewAdaptiveShardedCache(base,
//		proximity.RebalanceOptions{}, proximity.ShardRebalanceOptions{})
//	defer cache.Close()
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 4})
//
// The distributed tier gets the same policy at the network level:
// ClusterOptions.Rebalance re-weights ring virtual nodes to shift hash
// arcs off overloaded nodes. See internal/rebalance for the design note,
// examples/rebalance for a complete program, `proximity-server
// -rebalance-threshold` (plus the /v1/rebalance admin endpoint) for the
// deployment shape, and `proximity-bench -experiment rebalance` for the
// static-vs-adaptive A/B on a skewed workload.
//
// # Graph-indexed cache lookup
//
// The cache's own similarity search is itself a nearest-neighbor
// problem, and at large capacities the flat scan becomes the hot path's
// hot path. NewIndexedCache routes lookups through an HNSW graph over
// the cached keys — int8 scalar-quantized traversal to rank candidates,
// exact float32 re-ranking to decide τ admission, so hits and misses
// match the flat scan's semantics while lookup cost grows ~log(c)
// instead of linearly:
//
//	cache, _ := proximity.NewIndexedCache(768, proximity.IndexedOptions{
//		Capacity: 1_000_000, Tolerance: 5, Policy: proximity.LRU,
//	})
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 4})
//
// Choosing a cache variant:
//
//   - FLAT: exact and allocation-light; the right default below a few
//     thousand entries, where a scan beats every index's fixed
//     overhead (the indexed cache itself falls back to a scan below
//     IndexedOptions.Crossover, default 128).
//   - LSH: constant-time lookups at any capacity, but hit quality
//     depends on bucket geometry — near-τ pairs can land in different
//     buckets, and fixed-capacity buckets evict under skew.
//   - INDEXED: sublinear lookups with near-flat hit quality (recall is
//     tunable via IndexedOptions.EfSearch); graph upkeep makes Puts
//     ~10-50x costlier than FLAT's, so it fits read-heavy caches of
//     10k+ entries — the regime the paper's middleware serves.
//     NewShardedIndexedCache composes it with sharding for concurrency.
//   - TIERED: a small hot tier at in-memory speed over a much larger
//     memory-mapped warm tier — total admission semantics bit-identical
//     to one FLAT cache of the combined capacity, at a fraction of the
//     heap. The right choice when the working set is far larger than
//     the memory budget, or when warm restart matters (the cold-tier
//     snapshot survives process death). Hot-path cost stays within
//     ~10% of a FLAT cache the hot tier's size (BENCH_tiered.json);
//     deep hits pay the warm scan, so size the hot tier to the
//     traffic's head.
//
// Under sustained churn (evictions recycling graph slots), the indexed
// cache repairs stale incoming edges at reuse time automatically, and
// IndexedOptions.Maintenance opts into an incremental background repair
// pass that re-links degraded neighborhoods as churn pressure builds:
//
//	cache, _ := proximity.NewIndexedCache(768, proximity.IndexedOptions{
//		Capacity: 1_000_000, Tolerance: 5,
//		Maintenance: &proximity.MaintenanceOptions{},
//	})
//
// The zero value schedules a repair pass every Every=64 reused slots,
// re-linking up to Budget=16 queued nodes per pass (each pass runs
// inline under the cache lock, so Budget bounds the pause an unlucky
// Put absorbs); TombstoneRatio (default off) additionally triggers when
// deleted-but-unlinked slots exceed that fraction of the graph. With
// maintenance on, post-churn self-recall stays within 2% of a freshly
// rebuilt graph even after churning 5x the capacity (see the committed
// BENCH_churn.json), at a few percent of Put throughput. Workloads that
// churn the whole cache many times over between lookups amortize the
// graph poorly regardless — prefer FLAT (or LSH at scale) when writes
// dominate reads.
//
// `proximity-bench -experiment annindex` measures the three variants
// head-to-head, `-experiment churn` measures recall decay and repair
// under eviction churn, and both write BENCH_*.json files.
//
// # Tiered cache hierarchy
//
// At production scale the working set outgrows any single memory
// budget, and a restart (deploy, crash, autoscale) throws the whole
// cache away and stampedes the vector database. NewTieredCache layers
// three tiers so neither has to happen:
//
//   - HOT: a full in-memory cache (FLAT by default, LSH via
//     TieredOptions.NewHot) sized to the traffic's head.
//   - WARM: a memory-mapped fixed-record vector file with an in-memory
//     directory — entries the hot tier would have evicted are demoted
//     here instead, searchable via norm-windowed, pivot-pruned scans,
//     at file-cache cost rather than heap cost.
//   - COLD: a versioned on-disk snapshot (WriteSnapshot/SaveSnapshotFile)
//     that brings both tiers back after a restart, so a redeployed or
//     newly joined node starts warm instead of hammering the database.
//
// Eviction demotes instead of discarding; a warm hit under the LRU
// policy promotes the entry back into the hot tier. The combined
// hierarchy admits and evicts bit-identically to a single FLAT cache of
// the summed capacity (property-tested), so τ semantics are unchanged —
// only the cost model moves:
//
//	cache, _ := proximity.NewTieredCache(768, proximity.TieredOptions{
//		HotCapacity: 100_000, WarmCapacity: 1_600_000,
//		Tolerance: 5, Policy: proximity.LRU, Dir: "/var/cache/proximity",
//	})
//	defer cache.Close()
//
// NewShardedTieredCache partitions the hierarchy across
// independently-locked shards (per-shard warm files and snapshots,
// Reseed-safe). TierStats (via the TierStatser interface, the server's
// /v1/stats tiers block, and the proximity_tier_* Prometheus series)
// reports per-tier occupancy and the demotion/promotion/discard flows.
// `proximity-server -tier-warm N -tier-dir PATH -snapshot PATH` deploys
// it with snapshot-on-shutdown and load-on-start, and `proximity-bench
// -experiment tiered` measures the hierarchy against a hot-sized FLAT
// cache — the committed BENCH_tiered.json shows the hot path within
// ~9% at 1:4 and 1:16 warm ratios, +0.50 hit-rate uplift from the warm
// tier, and full hit-rate recovery across a snapshot restart.
//
// # Observability
//
// NewTelemetry creates the zero-dependency observability hub the whole
// stack shares: lock-free per-stage latency histograms (cache lookup,
// cache fill, coalesce wait, batch queue dwell, database search, node
// RPC), a pooled 1-in-N request tracer, and a metrics registry. Wire one
// hub through RetrieverOptions.Telemetry, BatchOptions.Telemetry,
// ClusterOptions.Telemetry, and the server's Config.Telemetry and every
// layer reports into the same place:
//
//	tel := proximity.NewTelemetry(proximity.TelemetryOptions{SampleEvery: 100})
//	retriever, _ := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{
//		K: 4, Telemetry: tel,
//	})
//
// The HTTP middleware then serves:
//
//   - GET /metrics — Prometheus text exposition (0.0.4): cache
//     hit/miss/eviction counters, graph-index and batch-pipeline
//     counters, queue-depth and occupancy gauges, runtime gauges, and
//     one proximity_stage_latency_seconds histogram per stage.
//   - GET /v1/traces — the most recent sampled traces as JSON, each a
//     span timeline attributing one request's latency to stages.
//   - GET /v1/healthz — build info (module version, Go version).
//   - /debug/pprof/ — net/http/pprof, opt-in via the server's
//     Config.EnablePprof (`proximity-server -pprof`).
//
// Traces cross cluster hops: the router sends the trace ID in the
// X-Proximity-Trace request header (16 hex digits), the owning node
// records its stages under that ID, and the node's spans come back in
// the X-Proximity-Trace-Spans response header (a JSON span array) to be
// grafted into the parent trace, labeled with the node's address — one
// trace ID spans the client's node_rpc attempts and every node-side
// stage, surviving replica retries.
//
// Passing the hub to RunLoad via LoadOptions.Telemetry adds a per-stage
// latency breakdown (LoadReport.Stages) to the report, and
// `proximity-bench -experiment overhead` measures the layer's cost on
// the cached-hit path (committed in BENCH_telemetry.json: indistinguish-
// able from zero with sampling off). Sampling is off by default
// (TelemetryOptions.SampleEvery 0); an unsampled request pays only nil
// checks and histogram observations.
//
// # Static analysis
//
// The invariants the benchmarks and crash-safety guarantees rest on are
// machine-checked by cmd/proximity-vet, a zero-dependency analysis
// suite (internal/lint) that CI runs next to go vet:
//
//	go run ./cmd/proximity-vet ./...
//
// Six analyzers cover the repo's standing rules: hotpathalloc (no
// allocations in //proximity:hotpath functions beyond their documented
// budget), lockdiscipline (no file I/O, network, fmt, or blocking
// telemetry work while a cache or shard mutex is held, and every Lock
// has an Unlock), stagenames (Prometheus series names come from the
// telemetry.Metric* registry, so a typo cannot fork a series),
// atomicwrite (artifacts are written via the atomic temp+rename helper,
// never raw os.WriteFile/os.Create), ctxflow (functions receiving a
// context.Context thread it into context-aware callees), and bodydrain
// (HTTP response bodies are drained before Close so keep-alive
// connections are reused).
//
// Two comment directives steer the suite: //proximity:hotpath in a
// function's doc comment opts it into the allocation check, and
// //proximity:allow <analyzer> <reason> on (or directly above) a
// flagged line suppresses one finding — by convention always with the
// reason. The dynamic halves of the hot-path budgets live in
// internal/perfguard as testing.AllocsPerRun regressions.
package proximity

import (
	"io"

	"proximity/internal/batch"
	"proximity/internal/cluster"
	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/loadgen"
	"proximity/internal/rebalance"
	"proximity/internal/shard"
	"proximity/internal/telemetry"
	"proximity/internal/tier"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Vector is a dense embedding vector.
	Vector = vec.Vector
	// Scored pairs a document ID with its distance to a query.
	Scored = vec.Scored
	// Metric identifies a distance function.
	Metric = vec.Metric

	// Cache is the approximate key-value cache interface.
	Cache = core.Cache
	// Options configures a FLAT cache.
	Options = core.Options
	// LSHOptions configures an LSH cache.
	LSHOptions = core.LSHOptions
	// Policy selects the eviction strategy.
	Policy = core.Policy
	// Stats are cumulative cache counters.
	Stats = core.Stats
	// IndexedCache is the graph-indexed cache variant (HNSW lookup,
	// quantized traversal, exact re-rank).
	IndexedCache = core.IndexedCache
	// IndexedOptions configures an IndexedCache.
	IndexedOptions = core.IndexedOptions
	// MaintenanceOptions tunes the indexed cache's background graph
	// repair (IndexedOptions.Maintenance).
	MaintenanceOptions = core.MaintenanceOptions
	// IndexStats describe the graph behind an indexed cache.
	IndexStats = core.IndexStats
	// TieredCache is the hot/warm/cold cache hierarchy (in-memory hot
	// tier, memory-mapped warm tier, snapshot cold tier).
	TieredCache = tier.TieredCache
	// TieredOptions configures a TieredCache.
	TieredOptions = tier.Options
	// TierStats are cumulative per-tier counters and gauges.
	TierStats = core.TierStats
	// Retriever is the cache-in-front-of-database retrieval path.
	Retriever = core.CachedRetriever
	// RetrieverOptions configures a Retriever.
	RetrieverOptions = core.RetrieverOptions
	// Result reports one retrieval.
	Result = core.Result

	// DB is the vector-database search interface the cache fronts.
	DB = vectordb.DB
	// VectorSource resolves document IDs to stored vectors (needed
	// for re-ranking).
	VectorSource = vectordb.VectorSource
	// FlatIndex is an exact in-memory nearest-neighbor index.
	FlatIndex = vectordb.FlatIndex
	// LatencyModel simulates production-scale database service times.
	LatencyModel = vectordb.LatencyModel

	// Embedder converts text into vectors.
	Embedder = embed.Embedder
	// TokenHashEmbedder is the deterministic offline encoder.
	TokenHashEmbedder = embed.TokenHash
	// Thesaurus supplies synonym knowledge to the encoder.
	Thesaurus = embed.Thesaurus

	// ShardedCache hash-partitions keys across independently-locked
	// sub-caches for concurrent serving.
	ShardedCache = shard.ShardedCache
	// ShardOptions configures a generic ShardedCache.
	ShardOptions = shard.Options
	// ShardPartition selects the key-to-shard routing strategy.
	ShardPartition = shard.Partition
	// PressureReport is the per-shard occupancy/eviction summary.
	PressureReport = shard.PressureReport

	// Workload is an ordered query stream (see internal/workload for
	// the paper's uniform, Zipf, and TripClick builders).
	Workload = workload.Workload
	// WorkloadQuery is one workload element.
	WorkloadQuery = workload.Query

	// LoadTarget is anything the load generator can drive.
	LoadTarget = loadgen.Target
	// LoadOptions configures a load-generation run.
	LoadOptions = loadgen.Options
	// LoadMode selects open- vs closed-loop traffic.
	LoadMode = loadgen.Mode
	// LoadReport summarizes a run: throughput, hit rate, and the
	// latency distribution.
	LoadReport = loadgen.Report

	// Searcher is the miss-path search hook of RetrieverOptions.
	Searcher = core.Searcher
	// BatchPipeline is the miss-coalescing batched retrieval path.
	BatchPipeline = batch.Pipeline
	// BatchOptions configures a BatchPipeline.
	BatchOptions = batch.Options
	// BatchStats are cumulative pipeline counters.
	BatchStats = batch.Stats
	// CoalesceMode selects duplicate-miss detection.
	CoalesceMode = batch.CoalesceMode
	// BatchDB is a vector database with a native batched search.
	BatchDB = vectordb.BatchDB
	// IVFIndex is the inverted-file ANN index (batch-aware).
	IVFIndex = vectordb.IVFIndex
	// IVFConfig parameterizes IVF construction.
	IVFConfig = vectordb.IVFConfig

	// ClusterCache routes queries across HTTP shard nodes by consistent
	// hashing (drop-in Cache/Searcher; see internal/cluster).
	ClusterCache = cluster.Client
	// ClusterOptions configures a ClusterCache.
	ClusterOptions = cluster.Options
	// ClusterRing is the consistent-hash ring over shard nodes.
	ClusterRing = cluster.Ring
	// ClusterNodeStatus is one node's slice of a cluster Status snapshot.
	ClusterNodeStatus = cluster.NodeStatus
	// ClusterRouterStats are the cluster client's routing counters.
	ClusterRouterStats = cluster.RouterStats

	// RebalanceOptions is the adaptive rebalance controller policy:
	// threshold, sustained window, cooldown, sampling interval.
	RebalanceOptions = rebalance.Options
	// RebalanceController is the watch-and-act loop behind adaptive
	// rebalancing (shared by the shard and cluster tiers).
	RebalanceController = rebalance.Controller
	// RebalanceStats are the controller's cumulative counters.
	RebalanceStats = rebalance.Stats
	// RebalanceOutcome reports one rebalance action.
	RebalanceOutcome = rebalance.Outcome
	// ShardRebalanceOptions tunes the in-process re-draw actuator
	// (candidate seed count, minimum predicted gain).
	ShardRebalanceOptions = rebalance.ShardTargetOptions
	// ShardMigration summarizes one partitioner re-draw migration.
	ShardMigration = shard.Migration

	// Telemetry is the shared observability hub: per-stage latency
	// histograms, the request tracer, and the metrics registry.
	Telemetry = telemetry.Telemetry
	// TelemetryOptions configures a Telemetry hub (sampling rate, trace
	// ring size).
	TelemetryOptions = telemetry.Options
	// TraceStage identifies one pipeline stage within a trace or
	// histogram (cache lookup, batch queue, database search, ...).
	TraceStage = telemetry.Stage
	// TraceSpan is one timed stage within a trace.
	TraceSpan = telemetry.Span
	// TraceRecord is a completed sampled trace as served at /v1/traces.
	TraceRecord = telemetry.TraceRecord
	// StageLatency is one stage's latency summary in LoadReport.Stages.
	StageLatency = loadgen.StageLatency
)

// Eviction policies.
const (
	// FIFO evicts the oldest inserted entry.
	FIFO = core.FIFO
	// LRU evicts the least recently used entry.
	LRU = core.LRU
)

// Shard partition strategies.
const (
	// LSHShards routes by LSH signature: similar queries land on the
	// same shard, preserving approximate hits (the default).
	LSHShards = shard.LSHSignature
	// FingerprintShards routes by a byte hash: perfectly uniform
	// spread, but only exact repeats collide.
	FingerprintShards = shard.Fingerprint
)

// Duplicate-miss coalescing modes.
const (
	// CoalesceExact deduplicates byte-identical in-flight misses (the
	// default).
	CoalesceExact = batch.CoalesceExact
	// CoalesceLSH deduplicates misses with equal LSH signatures, so
	// near-identical rephrasings share one search.
	CoalesceLSH = batch.CoalesceLSH
	// CoalesceOff disables singleflight; only batching applies.
	CoalesceOff = batch.CoalesceOff
)

// Load-generation traffic modes.
const (
	// ClosedLoop runs K workers back-to-back (throughput probe).
	ClosedLoop = loadgen.ClosedLoop
	// OpenLoop paces Poisson arrivals at a target QPS (latency probe).
	OpenLoop = loadgen.OpenLoop
)

// Distance metrics.
const (
	// L2Distance is the Euclidean distance (the paper's metric).
	L2Distance = vec.L2Distance
	// CosineDistance is 1 - cosine similarity.
	CosineDistance = vec.CosineDistance
	// InnerProduct is the negated dot product.
	InnerProduct = vec.InnerProduct
)

// NewTelemetry creates an observability hub (see the package doc's
// Observability section). A nil hub is valid everywhere one is accepted
// and disables all instrumentation.
func NewTelemetry(opts TelemetryOptions) *Telemetry {
	return telemetry.New(opts)
}

// NewFlatCache creates a Proximity-FLAT cache for dim-dimensional query
// embeddings (linear scan, exact within the cached set).
func NewFlatCache(dim int, opts Options) (*core.FlatCache, error) {
	return core.NewFlat(dim, opts)
}

// NewLSHCache creates a Proximity-LSH cache (random-hyperplane bucketed,
// constant-time lookups).
func NewLSHCache(dim int, opts LSHOptions) (*core.LSHCache, error) {
	return core.NewLSH(dim, opts)
}

// NewIndexedCache creates a Proximity-INDEXED cache: lookups served by
// an HNSW graph over the cached keys with int8-quantized traversal and
// exact re-ranking, falling back to a linear scan below the crossover
// size. Admission semantics match the FLAT cache; see the package doc
// for variant guidance.
func NewIndexedCache(dim int, opts IndexedOptions) (*IndexedCache, error) {
	return core.NewIndexed(dim, opts)
}

// NewShardedIndexedCache partitions an INDEXED cache across `shards`
// independently-locked sub-caches (0 = one per CPU). The configured
// capacity is the total across shards; seed fixes the shard routing and
// derives each shard's graph seed.
func NewShardedIndexedCache(dim, shards int, opts IndexedOptions, seed uint64) (*ShardedCache, error) {
	return shard.NewIndexed(dim, shards, opts, seed)
}

// NewTieredCache creates a hot/warm/cold cache hierarchy: an in-memory
// hot tier of HotCapacity entries over a memory-mapped warm tier of
// WarmCapacity entries (backed by a vector file under Dir), with
// eviction demoting to warm instead of discarding and — under the LRU
// policy — warm hits promoting back to hot. Admission and eviction are
// bit-identical to a single FLAT cache of the combined capacity. Close
// releases the warm mapping; SaveSnapshotFile/LoadSnapshotFile persist
// and restore both tiers for warm restart. See the package doc's tiered
// section for sizing guidance.
func NewTieredCache(dim int, opts TieredOptions) (*TieredCache, error) {
	return tier.New(dim, opts)
}

// NewShardedTieredCache partitions a tiered hierarchy across `shards`
// independently-locked sub-caches (0 = one per CPU). Hot and warm
// capacities are totals across shards; each shard keeps its own warm
// file under TieredOptions.Dir, and WriteSnapshots/LoadSnapshots on the
// result persist per-shard cold snapshots. seed fixes the shard
// routing.
func NewShardedTieredCache(dim, shards int, opts TieredOptions, seed uint64) (*ShardedCache, error) {
	return shard.NewTiered(dim, shards, opts, seed)
}

// NewRetriever wires a cache in front of a vector database. cache may be
// nil for a no-cache baseline.
func NewRetriever(cache Cache, db DB, opts RetrieverOptions) (*Retriever, error) {
	return core.NewCachedRetriever(cache, db, opts)
}

// LoadFlatCache restores a FLAT cache from a snapshot previously written
// with its WriteSnapshot method (warm-restart support).
func LoadFlatCache(r io.Reader) (*core.FlatCache, error) {
	return core.ReadFlatSnapshot(r)
}

// LoadLSHCache restores an LSH cache from a snapshot previously written
// with its WriteSnapshot method.
func LoadLSHCache(r io.Reader) (*core.LSHCache, error) {
	return core.ReadLSHSnapshot(r)
}

// NewShardedCache creates a hash-partitioned cache from an explicit
// per-shard factory (any Cache variant may back a shard).
func NewShardedCache(dim int, opts ShardOptions) (*ShardedCache, error) {
	return shard.New(dim, opts)
}

// NewShardedFlatCache partitions a FLAT cache across `shards`
// independently-locked sub-caches (0 = one per CPU). The configured
// capacity is the total across shards, so the result is a drop-in for a
// single FLAT cache of the same size; seed fixes the shard routing.
func NewShardedFlatCache(dim, shards int, opts Options, seed uint64) (*ShardedCache, error) {
	return shard.NewFlat(dim, shards, opts, seed)
}

// NewShardedLSHCache partitions an LSH cache across `shards`
// independently-locked sub-caches (0 = one per CPU), each keeping the
// full bucket geometry.
func NewShardedLSHCache(dim, shards int, opts LSHOptions) (*ShardedCache, error) {
	return shard.NewLSH(dim, shards, opts)
}

// AdaptiveShardedCache is a ShardedCache coupled to a running rebalance
// controller: sustained shard imbalance triggers a partitioner re-draw
// that migrates entries shard-by-shard. It exposes the full ShardedCache
// surface (and therefore Cache); Close stops the controller (the cache
// itself remains usable).
type AdaptiveShardedCache struct {
	*ShardedCache
	ctrl *rebalance.Controller
}

// NewAdaptiveShardedCache attaches an adaptive rebalancing loop to a
// sharded cache (built with NewShardedFlatCache, NewShardedLSHCache, or
// NewShardedCache; LSH-signature routing required — fingerprint routing
// has no signature to re-draw). When the cache's miss path runs through
// a BatchPipeline in CoalesceLSH mode, pass it via
// ShardRebalanceOptions.OnReseed (wired to its Reseed method) so
// duplicate detection follows the re-drawn signature. The controller is
// already started; call Close to stop it.
func NewAdaptiveShardedCache(cache *ShardedCache, policy RebalanceOptions, target ShardRebalanceOptions) (*AdaptiveShardedCache, error) {
	t, err := rebalance.NewShardTarget(cache, target)
	if err != nil {
		return nil, err
	}
	ctrl, err := rebalance.New(t, t, policy)
	if err != nil {
		return nil, err
	}
	if err := ctrl.Start(); err != nil {
		return nil, err
	}
	return &AdaptiveShardedCache{ShardedCache: cache, ctrl: ctrl}, nil
}

// Controller returns the running rebalance controller (stats, manual
// triggers).
func (a *AdaptiveShardedCache) Controller() *RebalanceController { return a.ctrl }

// Close stops the rebalance controller. The underlying cache stays
// usable; only the adaptive loop ends.
func (a *AdaptiveShardedCache) Close() error { return a.ctrl.Close() }

// NewBatchPipeline creates the miss-coalescing batched search path over a
// database. Wire it into NewRetriever through RetrieverOptions.Searcher
// (it also satisfies DB directly). Call Close when done to drain the
// queues.
func NewBatchPipeline(db DB, opts BatchOptions) (*BatchPipeline, error) {
	return batch.New(db, opts)
}

// NewClusterCache routes queries across shard nodes — instances of the
// HTTP middleware at the given base URLs — by consistent hashing over
// the same routing fingerprints the in-process partitioner uses. The
// result satisfies Cache and Searcher, so it drops into NewRetriever
// unchanged; call Close when done to drain the per-node batch
// submitters.
func NewClusterCache(dim int, nodes []string, opts ClusterOptions) (*ClusterCache, error) {
	return cluster.New(dim, nodes, opts)
}

// NewIVFIndex clusters a vector corpus into an inverted-file index — the
// batch-aware substrate whose SearchBatch probes each coarse cell once
// per batch.
func NewIVFIndex(vectors []Vector, metric Metric, cfg IVFConfig) (*IVFIndex, error) {
	return vectordb.BuildIVF(vectors, metric, cfg)
}

// BatchedDB adapts any DB to BatchDB, using the native batched path when
// present and a per-query loop otherwise.
func BatchedDB(db DB) BatchDB {
	return vectordb.Batched(db)
}

// NewRetrieverTarget adapts a Retriever for the load generator.
func NewRetrieverTarget(r *Retriever) (LoadTarget, error) {
	return loadgen.NewRetrieverTarget(r)
}

// NewHTTPTarget adapts a running middleware (see internal/server) at
// base, e.g. "http://127.0.0.1:8080", for the load generator.
func NewHTTPTarget(base string) LoadTarget {
	return loadgen.NewHTTPTarget(base)
}

// RunLoad replays a workload against a target under concurrent load,
// reporting throughput, hit rate, and latency quantiles.
func RunLoad(target LoadTarget, w Workload, opts LoadOptions) (*LoadReport, error) {
	return loadgen.Run(target, w, opts)
}

// NewFlatIndex creates an exact in-memory vector index.
func NewFlatIndex(dim int, metric Metric) (*FlatIndex, error) {
	return vectordb.NewFlatIndex(dim, metric)
}

// NewEmbedder creates the deterministic token-hash encoder. thesaurus may
// be nil. Production deployments replace this with a neural encoder; any
// Embedder implementation works.
func NewEmbedder(dim int, seed uint64, thesaurus *Thesaurus) *TokenHashEmbedder {
	if thesaurus == nil {
		return embed.NewTokenHash(dim, seed)
	}
	return embed.NewTokenHash(dim, seed, embed.WithThesaurus(thesaurus))
}

// NewThesaurus creates an empty synonym table.
func NewThesaurus() *Thesaurus { return embed.NewThesaurus() }

// MedicalThesaurus returns a small built-in biomedical synonym table used
// by the examples.
func MedicalThesaurus() *Thesaurus { return embed.EnglishMedical() }
