module proximity

go 1.24
