package rag

import (
	"testing"
	"time"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/llm"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

// testSetup builds a small MedRAG benchmark with a flat DB.
func testSetup(t *testing.T) (*dataset.Benchmark, *vectordb.FlatIndex) {
	t.Helper()
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions: 25, Topics: 5, DocsPerTopic: 6, Dim: 128, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := vectordb.NewFlatFromVectors(bench.Corpus.Embeddings, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	return bench, db
}

func buildPipeline(t *testing.T, bench *dataset.Benchmark, db *vectordb.FlatIndex, cache core.Cache, measureRecall bool) *Pipeline {
	t.Helper()
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{
		K:       bench.DefaultK,
		Latency: vectordb.FixedLatency(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := llm.NewAnswerer(bench.Profile, 42)
	if err != nil {
		t.Fatal(err)
	}
	return &Pipeline{Bench: bench, Retriever: retr, Answerer: ans, MeasureRecall: measureRecall}
}

func TestPipelineValidate(t *testing.T) {
	var p Pipeline
	if err := p.Validate(); err == nil {
		t.Error("empty pipeline should fail validation")
	}
	if _, err := p.Run(workload.Workload{}); err == nil {
		t.Error("Run must propagate validation error")
	}
}

func TestPipelineNoCacheBaseline(t *testing.T) {
	bench, db := testSetup(t)
	p := buildPipeline(t, bench, db, nil, true)
	w, err := workload.UniformVariants(bench, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if run.Queries() != w.Len() {
		t.Errorf("queries = %d, want %d", run.Queries(), w.Len())
	}
	if run.HitRate() != 0 {
		t.Error("baseline hit rate must be 0")
	}
	if run.DBCalls() != w.Len() {
		t.Error("every query must reach the database")
	}
	if run.MeanRecall() != 1 {
		t.Errorf("baseline recall = %v, want 1 (all misses are exact)", run.MeanRecall())
	}
	// With gold passages retrieved, accuracy should approach PGold.
	if acc := run.Accuracy(); acc < bench.Profile.PGold-0.2 {
		t.Errorf("baseline accuracy = %v, suspiciously below PGold %v", acc, bench.Profile.PGold)
	}
	if run.MeanRetrieval() < 900*time.Microsecond {
		t.Errorf("retrieval latency should include the simulated DB time, got %v", run.MeanRetrieval())
	}
}

func TestPipelineCacheImprovesLatencyKeepsAccuracy(t *testing.T) {
	bench, db := testSetup(t)
	w, err := workload.UniformVariants(bench, 4, 5)
	if err != nil {
		t.Fatal(err)
	}

	baseline := buildPipeline(t, bench, db, nil, false)
	baseRun, err := baseline.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := core.NewFlat(bench.Dim(), core.Options{Capacity: 100, Tolerance: 5})
	if err != nil {
		t.Fatal(err)
	}
	cached := buildPipeline(t, bench, db, cache, true)
	cachedRun, err := cached.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	if cachedRun.HitRate() < 0.4 {
		t.Errorf("hit rate = %v, expected substantial reuse at τ=5", cachedRun.HitRate())
	}
	if cachedRun.MeanRetrieval() >= baseRun.MeanRetrieval() {
		t.Errorf("caching should cut retrieval latency: %v vs %v",
			cachedRun.MeanRetrieval(), baseRun.MeanRetrieval())
	}
	if cachedRun.MeanRecall() < 0.9 {
		t.Errorf("recall = %v, variants should return near-identical documents", cachedRun.MeanRecall())
	}
	if diff := baseRun.Accuracy() - cachedRun.Accuracy(); diff > 0.1 {
		t.Errorf("caching at τ=5 should not cost accuracy: baseline %v cached %v",
			baseRun.Accuracy(), cachedRun.Accuracy())
	}
	if cachedRun.DBCalls() >= baseRun.DBCalls() {
		t.Error("caching should reduce database calls")
	}
}

func TestPipelineHighToleranceDegradesRecall(t *testing.T) {
	bench, db := testSetup(t)
	w, err := workload.UniformVariants(bench, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// τ=10 admits cross-question matches (inter-question distance ≈6.3).
	cache, err := core.NewFlat(bench.Dim(), core.Options{Capacity: 100, Tolerance: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := buildPipeline(t, bench, db, cache, true)
	run, err := p.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if run.HitRate() < 0.9 {
		t.Errorf("τ=10 should hit almost always, got %v", run.HitRate())
	}
	if run.MeanRecall() > 0.8 {
		t.Errorf("τ=10 recall = %v, should degrade (wrong questions' documents served)", run.MeanRecall())
	}
	// Accuracy should fall toward/below the no-RAG floor.
	if run.Accuracy() > bench.Profile.PGold-0.1 {
		t.Errorf("τ=10 accuracy = %v, expected a collapse below PGold", run.Accuracy())
	}
}

func TestPipelineRejectsForeignWorkload(t *testing.T) {
	bench, db := testSetup(t)
	p := buildPipeline(t, bench, db, nil, false)
	w := workload.Workload{
		Name: "bad",
		Queries: []workload.Query{
			{Question: 999, Embedding: make(vec.Vector, bench.Dim())},
		},
	}
	if _, err := p.Run(w); err == nil {
		t.Error("workload referencing unknown questions should error")
	}
}

func TestPipelineErrorPropagation(t *testing.T) {
	bench, db := testSetup(t)
	p := buildPipeline(t, bench, db, nil, false)
	w := workload.Workload{
		Name: "dim-mismatch",
		Queries: []workload.Query{
			{Question: 0, Embedding: vec.Vector{1, 2}},
		},
	}
	if _, err := p.Run(w); err == nil {
		t.Error("retriever errors must propagate")
	}
}

func TestPipelineWithoutAnswerer(t *testing.T) {
	bench, db := testSetup(t)
	retr, err := core.NewCachedRetriever(nil, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Bench: bench, Retriever: retr}
	w, err := workload.UniformVariants(bench, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if run.Accuracy() != 0 {
		t.Error("no answerer: accuracy should stay 0")
	}
	if run.Queries() != w.Len() {
		t.Error("retrievals must still be recorded")
	}
}
