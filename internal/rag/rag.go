// Package rag wires the full retrieval-augmented generation pipeline of
// Fig. 1: pre-embedded queries flow through the Proximity cache and
// vector database (via core.CachedRetriever), retrieved passages feed the
// simulated LLM, and every step is measured with the paper's metrics.
package rag

import (
	"errors"
	"fmt"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/llm"
	"proximity/internal/metrics"
	"proximity/internal/workload"
)

// Pipeline executes workloads against one retrieval configuration.
type Pipeline struct {
	// Bench supplies questions, corpus topology, and gold labels.
	Bench *dataset.Benchmark
	// Retriever is the cache+database retrieval path.
	Retriever *core.CachedRetriever
	// Answerer simulates the generator; nil skips answer accounting
	// (used by latency-only experiments).
	Answerer *llm.Answerer
	// MeasureRecall enables database k-recall measurement: on every
	// cache hit the database is also consulted for the ground truth.
	// This doubles database work, so the paper-style latency numbers
	// should be read from runs with it disabled.
	MeasureRecall bool
}

// Validate checks the pipeline wiring.
func (p *Pipeline) Validate() error {
	if p.Bench == nil {
		return errors.New("rag: pipeline needs a benchmark")
	}
	if p.Retriever == nil {
		return errors.New("rag: pipeline needs a retriever")
	}
	return nil
}

// Run executes the workload and returns the accumulated metrics.
func (p *Pipeline) Run(w workload.Workload) (*metrics.Run, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	run := &metrics.Run{Name: w.Name}
	for i, q := range w.Queries {
		if q.Question < 0 || q.Question >= len(p.Bench.Questions) {
			return nil, fmt.Errorf("rag: query %d references unknown question %d", i, q.Question)
		}
		res, err := p.Retriever.Retrieve(q.Embedding)
		if err != nil {
			return nil, fmt.Errorf("rag: query %d: %w", i, err)
		}
		run.RecordRetrieval(res.Hit, res.CacheLookup, res.Total())

		if p.MeasureRecall {
			recall, err := p.groundTruthRecall(q, res)
			if err != nil {
				return nil, fmt.Errorf("rag: query %d recall: %w", i, err)
			}
			run.RecordRecall(recall)
		}

		if p.Answerer != nil {
			question := p.Bench.Questions[q.Question]
			correct := p.Answerer.Correct(p.Bench.LLMQuestion(question), res.Docs, p.Bench.DocTopic)
			run.RecordAnswer(correct)
		}
	}
	return run, nil
}

// groundTruthRecall compares the documents served (from cache or
// database) with what the database would return for this exact query.
// Misses are exact by construction (recall 1) — no extra lookup needed.
func (p *Pipeline) groundTruthRecall(q workload.Query, res core.Result) (float64, error) {
	if !res.Hit {
		return 1, nil
	}
	truth, err := p.Retriever.DB().Search(q.Embedding, p.Retriever.K())
	if err != nil {
		return 0, err
	}
	ids := make([]int, len(truth))
	for i, s := range truth {
		ids[i] = s.ID
	}
	return metrics.Recall(res.Docs, ids), nil
}
