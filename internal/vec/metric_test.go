package vec

import "testing"

func TestParseMetric(t *testing.T) {
	tests := []struct {
		give    string
		want    Metric
		wantErr bool
	}{
		{give: "l2", want: L2Distance},
		{give: "euclidean", want: L2Distance},
		{give: "cosine", want: CosineDistance},
		{give: "ip", want: InnerProduct},
		{give: "dot", want: InnerProduct},
		{give: "inner", want: InnerProduct},
		{give: "manhattan", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseMetric(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseMetric(%q) expected error", tt.give)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseMetric(%q): %v", tt.give, err)
			}
			if got != tt.want {
				t.Errorf("ParseMetric(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMetricString(t *testing.T) {
	tests := []struct {
		give Metric
		want string
	}{
		{L2Distance, "l2"},
		{CosineDistance, "cosine"},
		{InnerProduct, "ip"},
		{Metric(42), "metric(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestMetricFunc(t *testing.T) {
	a, b := Vector{0, 0}, Vector{3, 4}
	if got := L2Distance.Func()(a, b); got != 5 {
		t.Errorf("L2Distance kernel = %v, want 5", got)
	}
	if got := InnerProduct.Func()(Vector{1, 2}, Vector{3, 4}); got != -11 {
		t.Errorf("InnerProduct kernel = %v, want -11", got)
	}
	if got := CosineDistance.Func()(Vector{1, 0}, Vector{1, 0}); got != 0 {
		t.Errorf("CosineDistance kernel identical = %v, want 0", got)
	}
}

func TestMetricFuncPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown metric")
		}
	}()
	Metric(99).Func()
}

func TestRandomUnitHasUnitNorm(t *testing.T) {
	rng := NewRand(3)
	for i := 0; i < 10; i++ {
		v := RandomUnit(rng, 32)
		if n := float64(Norm(v)); !almostEqual(n, 1, 1e-4) {
			t.Errorf("RandomUnit norm = %v, want 1", n)
		}
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a := RandomGaussian(NewRand(42), 16)
	b := RandomGaussian(NewRand(42), 16)
	if !Equal(a, b) {
		t.Error("same seed must generate identical vectors")
	}
	c := RandomGaussian(NewRand(43), 16)
	if Equal(a, c) {
		t.Error("different seeds should generate different vectors")
	}
}

func TestGaussianAround(t *testing.T) {
	rng := NewRand(5)
	center := RandomUnit(rng, 64)
	Scale(center, 10)
	pt := GaussianAround(rng, center, 0.01)
	if d := float64(L2(center, pt)); d > 1 {
		t.Errorf("point with tiny sigma should be near the center, dist=%v", d)
	}
	far := GaussianAround(rng, center, 5)
	if d := float64(L2(center, far)); d < 1 {
		t.Errorf("point with big sigma should be far from the center, dist=%v", d)
	}
}
