package vec

import "math"

// Quantized is the int8 scalar-quantized representation of a stored
// vector: v[i] ≈ Scale·Codes[i]. One byte per dimension instead of four
// cuts the memory traffic of a cache lookup's candidate generation by 4x,
// which is what bounds scan and graph-traversal speed at production entry
// counts — the same asymmetric scalar-quantization scheme FAISS calls
// SQ8. Quantization is per-vector (each vector gets its own scale), so
// outliers in one entry never degrade another's resolution.
//
// Quantized distances are approximations and are used only to RANK
// candidates; tolerance τ admission must re-rank the survivors with the
// exact float32 kernel (see core.IndexedCache), keeping cache semantics
// bit-identical to the flat scan.
type Quantized struct {
	// Codes are the per-dimension int8 codes, in [-127, 127].
	Codes []int8
	// Scale is the dequantization factor: v[i] ≈ Scale·Codes[i].
	Scale float32
	// Norm is the Euclidean norm of the dequantized vector,
	// precomputed so the asymmetric L2 and cosine kernels need only a
	// dot product at query time.
	Norm float32
}

// Quantize encodes v with symmetric max-abs scaling: scale = max|v_i|/127.
// The zero vector quantizes to all-zero codes with Scale 0.
func Quantize(v Vector) Quantized {
	var maxAbs float32
	for _, x := range v {
		if a := float32(math.Abs(float64(x))); a > maxAbs {
			maxAbs = a
		}
	}
	q := Quantized{Codes: make([]int8, len(v))}
	if maxAbs == 0 {
		return q
	}
	q.Scale = maxAbs / 127
	inv := 1 / q.Scale
	var sumSq int64
	for i, x := range v {
		c := int32(math.RoundToEven(float64(x * inv)))
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		q.Codes[i] = int8(c)
		sumSq += int64(c) * int64(c)
	}
	q.Norm = q.Scale * float32(math.Sqrt(float64(sumSq)))
	return q
}

// Dequantize reconstructs the approximate float32 vector (tests and
// diagnostics; the hot kernels never materialize it).
func (s *Quantized) Dequantize() Vector {
	out := make(Vector, len(s.Codes))
	for i, c := range s.Codes {
		out[i] = s.Scale * float32(c)
	}
	return out
}

// MaxL2Error bounds the Euclidean distance between the original vector
// and its dequantized reconstruction: each component errs by at most
// Scale/2 (round-to-nearest), so ‖v − v̂‖₂ ≤ (Scale/2)·√d. Asymmetric
// kernels perturb distances by at most this much on the stored side,
// which is the candidate-retention margin exact re-ranking relies on.
func (s *Quantized) MaxL2Error() float32 {
	return s.Scale / 2 * float32(math.Sqrt(float64(len(s.Codes))))
}

// DotF32I8 is the asymmetric inner-product kernel: a float32 query
// against int8 codes, without dequantizing. The 4-way unrolled loop
// mirrors Dot; the stored side streams one byte per dimension, so the
// kernel is memory-bound at a quarter of the float32 bandwidth.
func DotF32I8(a Vector, codes []int8) float32 {
	if len(a) != len(codes) {
		panic("vec: DotF32I8 dimension mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	cc := codes[:len(a)]
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * float32(cc[i])
		s1 += a[i+1] * float32(cc[i+1])
		s2 += a[i+2] * float32(cc[i+2])
		s3 += a[i+3] * float32(cc[i+3])
	}
	for ; i < len(a); i++ {
		s0 += a[i] * float32(cc[i])
	}
	return s0 + s1 + s2 + s3
}

// PreparedQuery is a query readied for asymmetric quantized distance
// evaluation: the metric kernel is resolved once and the query's norms
// are precomputed once, instead of per candidate. One PreparedQuery
// serves every candidate of a lookup, so preparation cost (O(d))
// amortizes across the whole scan or graph traversal.
type PreparedQuery struct {
	metric Metric
	q      Vector
	norm   float32
	sq     float32 // squared norm
}

// Prepare readies q for repeated Dist calls under the metric.
func (m Metric) Prepare(q Vector) PreparedQuery {
	sq := Dot(q, q)
	return PreparedQuery{
		metric: m,
		q:      q,
		norm:   float32(math.Sqrt(float64(sq))),
		sq:     sq,
	}
}

// Query returns the wrapped query vector.
func (p *PreparedQuery) Query() Vector { return p.q }

// Dist returns the approximate distance between the prepared query and a
// quantized stored vector, under the same smaller-is-closer convention as
// the exact kernels. Only the stored side is quantized (asymmetric): the
// query keeps full precision, so the error is bounded by the stored
// vector's reconstruction error alone.
func (p *PreparedQuery) Dist(s *Quantized) float32 {
	dot := s.Scale * DotF32I8(p.q, s.Codes)
	switch p.metric {
	case L2Distance:
		// ‖q−v̂‖² = ‖q‖² − 2⟨q,v̂⟩ + ‖v̂‖², clamped against float
		// cancellation for near-identical vectors.
		d := p.sq - 2*dot + s.Norm*s.Norm
		if d < 0 {
			d = 0
		}
		return float32(math.Sqrt(float64(d)))
	case CosineDistance:
		if p.norm == 0 || s.Norm == 0 {
			return 1
		}
		sim := dot / (p.norm * s.Norm)
		if sim > 1 {
			sim = 1
		} else if sim < -1 {
			sim = -1
		}
		return 1 - sim
	case InnerProduct:
		return -dot
	default:
		// Metric validity is established at cache/index construction.
		panic("vec: PreparedQuery with unknown metric")
	}
}
