package vec

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTopK(t *testing.T) {
	items := []Scored{
		{ID: 0, Dist: 5},
		{ID: 1, Dist: 1},
		{ID: 2, Dist: 3},
		{ID: 3, Dist: 2},
		{ID: 4, Dist: 4},
	}
	tests := []struct {
		name string
		k    int
		want []int
	}{
		{name: "k=0", k: 0, want: nil},
		{name: "k=1", k: 1, want: []int{1}},
		{name: "k=3", k: 3, want: []int{1, 3, 2}},
		{name: "k=len", k: 5, want: []int{1, 3, 2, 4, 0}},
		{name: "k beyond len", k: 10, want: []int{1, 3, 2, 4, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := IDs(TopK(items, tt.k))
			if len(got) != len(tt.want) {
				t.Fatalf("TopK(k=%d) ids = %v, want %v", tt.k, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("TopK(k=%d) ids = %v, want %v", tt.k, got, tt.want)
				}
			}
		})
	}
}

func TestTopKTieBreaksByID(t *testing.T) {
	items := []Scored{{ID: 9, Dist: 1}, {ID: 2, Dist: 1}, {ID: 5, Dist: 1}}
	got := IDs(TopK(items, 2))
	if got[0] != 2 || got[1] != 5 {
		t.Errorf("tie-break order = %v, want [2 5]", got)
	}
}

func TestTopKDoesNotMutateInput(t *testing.T) {
	items := []Scored{{ID: 0, Dist: 2}, {ID: 1, Dist: 1}}
	TopK(items, 1)
	if items[0].ID != 0 || items[1].ID != 1 {
		t.Errorf("input mutated: %v", items)
	}
}

// Property: TopK matches a full sort-based reference selection.
func TestTopKMatchesSortReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := int(r.Uint64()%200) + 1
		k := int(r.Uint64()%uint64(n+5)) + 1
		items := make([]Scored, n)
		for i := range items {
			// Coarse distances force ties to exercise the ID tie-break.
			items[i] = Scored{ID: i, Dist: float32(r.Uint64() % 16)}
		}
		ref := make([]Scored, n)
		copy(ref, items)
		sort.Slice(ref, func(i, j int) bool { return less(ref[i], ref[j]) })
		if k < n {
			ref = ref[:k]
		}
		got := TopK(items, k)
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKByDistance(t *testing.T) {
	query := Vector{0, 0}
	candidates := []Vector{
		{3, 4},  // dist 5
		{1, 0},  // dist 1
		{0, 2},  // dist 2
		{10, 0}, // dist 10
	}
	got := TopKByDistance(query, candidates, 2, L2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("TopKByDistance = %+v, want ids [1 2]", got)
	}
	if got[0].Dist != 1 || got[1].Dist != 2 {
		t.Errorf("distances = %v,%v want 1,2", got[0].Dist, got[1].Dist)
	}
}

func TestTopKByDistanceEdgeCases(t *testing.T) {
	if got := TopKByDistance(Vector{0}, nil, 3, L2); got != nil {
		t.Errorf("empty candidates should yield nil, got %v", got)
	}
	if got := TopKByDistance(Vector{0}, []Vector{{1}}, 0, L2); got != nil {
		t.Errorf("k=0 should yield nil, got %v", got)
	}
	got := TopKByDistance(Vector{0}, []Vector{{1}, {2}}, 5, L2)
	if len(got) != 2 {
		t.Errorf("k clamped to len(candidates): got %d results", len(got))
	}
}

// Property: brute-force selection returns candidates in non-decreasing
// distance order and never returns a candidate farther than an excluded one.
func TestTopKByDistanceIsOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		d := 2 + int(r.Uint64()%8)
		n := 5 + int(r.Uint64()%60)
		k := 1 + int(r.Uint64()%10)
		q := RandomGaussian(r, d)
		cands := make([]Vector, n)
		for i := range cands {
			cands[i] = RandomGaussian(r, d)
		}
		got := TopKByDistance(q, cands, k, L2)
		for i := 1; i < len(got); i++ {
			if got[i-1].Dist > got[i].Dist {
				return false
			}
		}
		if len(got) == 0 {
			return false
		}
		worst := got[len(got)-1].Dist
		selected := make(map[int]bool, len(got))
		for _, s := range got {
			selected[s.ID] = true
		}
		for i, c := range cands {
			if !selected[i] && L2(q, c) < worst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
