// Package vec provides the dense-vector primitives used throughout the
// Proximity reproduction: distance kernels, norms, top-k selection, and
// deterministic random vector generation.
//
// The paper's Rust implementation uses portable-simd for the Euclidean
// distance computation on the cache's hot path (Algorithm 1, line 2). The
// idiomatic Go equivalent is a 4-way unrolled scalar loop with
// bounds-check elimination, which the compiler auto-vectorizes on amd64;
// see BenchmarkVecKernels in the repository root for the measured gap
// against the naive loop.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense embedding vector. All kernels in this package treat
// vectors as immutable unless the doc comment says otherwise.
type Vector = []float32

// ErrDimensionMismatch is returned by checked kernel wrappers when the two
// operands have different lengths.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// L2Squared returns the squared Euclidean distance between a and b.
// It panics if the lengths differ; use CheckedL2Squared at trust
// boundaries. This is the hot kernel of the Proximity cache: a FLAT cache
// lookup calls it once per cached entry.
func L2Squared(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: L2Squared dimension mismatch: %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	// 4-way unrolled main loop. The b[:len(a)] re-slice lets the compiler
	// drop bounds checks inside the loop body.
	bb := b[:len(a)]
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - bb[i]
		d1 := a[i+1] - bb[i+1]
		d2 := a[i+2] - bb[i+2]
		d3 := a[i+3] - bb[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - bb[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b Vector) float32 {
	return float32(math.Sqrt(float64(L2Squared(a, b))))
}

// CheckedL2 is the error-returning variant of L2 for inputs that cross a
// trust boundary (e.g. the HTTP middleware).
func CheckedL2(a, b Vector) (float32, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return L2(a, b), nil
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot dimension mismatch: %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	bb := b[:len(a)]
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * bb[i]
		s1 += a[i+1] * bb[i+1]
		s2 += a[i+2] * bb[i+2]
		s3 += a[i+3] * bb[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * bb[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a.
func Norm(a Vector) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Cosine returns the cosine distance (1 - cosine similarity) between a and
// b. Zero vectors are treated as maximally distant (distance 1) rather
// than producing NaN, so the cache never caches-hit on garbage input.
func Cosine(a, b Vector) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	sim := Dot(a, b) / (na * nb)
	// Clamp for float error so downstream τ comparisons are well behaved.
	if sim > 1 {
		sim = 1
	} else if sim < -1 {
		sim = -1
	}
	return 1 - sim
}

// NegDot returns the negated inner product, so that all three supported
// metrics are "smaller is closer".
func NegDot(a, b Vector) float32 { return -Dot(a, b) }

// Add returns a new vector a+b.
func Add(a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add dimension mismatch: %d vs %d", len(a), len(b)))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AXPY computes dst += alpha*x in place.
func AXPY(dst Vector, alpha float32, x Vector) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("vec: AXPY dimension mismatch: %d vs %d", len(dst), len(x)))
	}
	xx := x[:len(dst)]
	for i := range dst {
		dst[i] += alpha * xx[i]
	}
}

// Scale multiplies v by alpha in place and returns v for chaining.
func Scale(v Vector, alpha float32) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Normalize scales v in place to unit norm and returns v. A zero vector is
// returned unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n == 0 {
		return v
	}
	return Scale(v, 1/n)
}

// Clone returns a copy of v. Cache and index code clones at ownership
// boundaries so callers may reuse their buffers.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether a and b are identical element-wise.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
