package vec

import "testing"

// The unchecked kernels fail loudly on dimension mismatches, which always
// indicate a programming error (mixing embedders or corpora). This file
// pins that contract.

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic on dimension mismatch", name)
		}
	}()
	fn()
}

func TestKernelPanics(t *testing.T) {
	a, b := Vector{1, 2}, Vector{1}
	expectPanic(t, "Dot", func() { Dot(a, b) })
	expectPanic(t, "Add", func() { Add(a, b) })
	expectPanic(t, "AXPY", func() { AXPY(a, 1, b) })
}

func TestZeroLengthVectorsAreFine(t *testing.T) {
	// Degenerate but legal: empty vectors agree on dimension 0.
	if L2Squared(Vector{}, Vector{}) != 0 {
		t.Error("empty L2Squared should be 0")
	}
	if Dot(Vector{}, Vector{}) != 0 {
		t.Error("empty Dot should be 0")
	}
	if len(Add(Vector{}, Vector{})) != 0 {
		t.Error("empty Add should yield empty")
	}
}

func TestScaleNil(t *testing.T) {
	if out := Scale(nil, 2); out != nil {
		t.Error("Scale(nil) should return nil")
	}
	if out := Clone(nil); len(out) != 0 {
		t.Error("Clone(nil) should be empty")
	}
}
