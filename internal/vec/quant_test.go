package vec

import (
	"math"
	"testing"
)

// TestQuantizeRoundTrip bounds the per-component and Euclidean
// reconstruction error of the int8 encoding.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := NewRand(1)
	for trial := 0; trial < 50; trial++ {
		v := Scale(RandomGaussian(rng, 96), 3)
		q := Quantize(v)
		back := q.Dequantize()
		for i := range v {
			if diff := math.Abs(float64(v[i] - back[i])); diff > float64(q.Scale)/2+1e-6 {
				t.Fatalf("trial %d: component %d error %v exceeds scale/2=%v", trial, i, diff, q.Scale/2)
			}
		}
		if d := L2(v, back); d > q.MaxL2Error()+1e-5 {
			t.Fatalf("trial %d: reconstruction L2 error %v exceeds bound %v", trial, d, q.MaxL2Error())
		}
		wantNorm := Norm(back)
		if diff := math.Abs(float64(q.Norm - wantNorm)); diff > 1e-3*float64(wantNorm)+1e-5 {
			t.Fatalf("trial %d: precomputed norm %v, dequantized norm %v", trial, q.Norm, wantNorm)
		}
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	q := Quantize(make(Vector, 8))
	if q.Scale != 0 || q.Norm != 0 {
		t.Fatalf("zero vector: scale=%v norm=%v, want 0/0", q.Scale, q.Norm)
	}
	for _, c := range q.Codes {
		if c != 0 {
			t.Fatalf("zero vector produced nonzero code %d", c)
		}
	}
}

// TestPreparedQueryMatchesExactOnDequantized verifies the asymmetric
// kernels compute exactly the float32 metric against the DEQUANTIZED
// stored vector (up to float error): the quantized distance is the true
// distance to v̂, so all approximation error comes from quantization, not
// the kernel.
func TestPreparedQueryMatchesExactOnDequantized(t *testing.T) {
	rng := NewRand(2)
	for _, m := range []Metric{L2Distance, CosineDistance, InnerProduct} {
		exact := m.Func()
		for trial := 0; trial < 50; trial++ {
			q := Scale(RandomGaussian(rng, 64), 2)
			v := Scale(RandomGaussian(rng, 64), 2)
			s := Quantize(v)
			p := m.Prepare(q)
			got := p.Dist(&s)
			want := exact(q, s.Dequantize())
			tol := 1e-3 * (1 + math.Abs(float64(want)))
			if math.Abs(float64(got-want)) > tol {
				t.Fatalf("%v trial %d: quantized dist %v, exact-on-dequantized %v", m, trial, got, want)
			}
		}
	}
}

// TestPreparedQueryErrorBound checks the asymmetric L2 distance never
// strays from the exact distance by more than the stored vector's
// reconstruction bound — the margin the exact re-rank relies on.
func TestPreparedQueryErrorBound(t *testing.T) {
	rng := NewRand(3)
	for trial := 0; trial < 200; trial++ {
		q := Scale(RandomGaussian(rng, 48), 5)
		v := Scale(RandomGaussian(rng, 48), 5)
		s := Quantize(v)
		p := L2Distance.Prepare(q)
		got := p.Dist(&s)
		want := L2(q, v)
		if diff := math.Abs(float64(got - want)); diff > float64(s.MaxL2Error())+1e-4 {
			t.Fatalf("trial %d: |%v - %v| = %v exceeds bound %v", trial, got, want, diff, s.MaxL2Error())
		}
	}
}

func TestPreparedQueryCosineZeroGuard(t *testing.T) {
	s := Quantize(make(Vector, 4))
	p := CosineDistance.Prepare(Vector{1, 0, 0, 0})
	if d := p.Dist(&s); d != 1 {
		t.Fatalf("cosine vs zero vector = %v, want 1", d)
	}
	pz := CosineDistance.Prepare(make(Vector, 4))
	nz := Quantize(Vector{1, 2, 3, 4})
	if d := pz.Dist(&nz); d != 1 {
		t.Fatalf("cosine zero query = %v, want 1", d)
	}
}

func TestDotF32I8PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	DotF32I8(Vector{1, 2}, []int8{1})
}

// TestTopKBufferReuseMatchesTopK drives one buffer through many queries
// of varying k and checks each result matches the one-shot selection.
func TestTopKBufferReuseMatchesTopK(t *testing.T) {
	rng := NewRand(4)
	var buf TopKBuffer
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(40)
		k := 1 + rng.IntN(12)
		items := make([]Scored, n)
		for i := range items {
			items[i] = Scored{ID: i, Dist: float32(rng.IntN(10))} // duplicates force tie-breaks
		}
		buf.Reset(k)
		for _, it := range items {
			buf.Push(it.ID, it.Dist)
		}
		got := buf.Result()
		want := TopK(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: item %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopKBufferAppendResult(t *testing.T) {
	var buf TopKBuffer
	buf.Reset(2)
	buf.Push(0, 3)
	buf.Push(1, 1)
	buf.Push(2, 2)
	scratch := make([]Scored, 0, 4)
	out := buf.AppendResult(scratch)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 2 {
		t.Fatalf("AppendResult = %+v, want ids [1 2]", out)
	}
	if &out[0] != &scratch[:1][0] {
		t.Fatal("AppendResult did not reuse the provided backing array")
	}
}
