package vec

import (
	"math"
	"math/rand/v2"
)

// NewRand returns a deterministic PRNG for the given seed. All randomness
// in the reproduction flows through explicitly seeded generators so every
// experiment is replayable; the paper averages five seeded runs (§4.2.4)
// and the harness does the same.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// RandomGaussian returns a d-dimensional vector with i.i.d. N(0,1) entries.
func RandomGaussian(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// RandomUnit returns a uniformly distributed d-dimensional unit vector.
// Used for LSH hyperplane normals and synthetic topic centroids.
func RandomUnit(rng *rand.Rand, d int) Vector {
	for {
		v := RandomGaussian(rng, d)
		if n := Norm(v); n > 1e-6 {
			return Scale(v, 1/n)
		}
	}
}

// GaussianAround returns center + sigma*N(0,I), a point in the cluster
// around the given centroid. The caller retains ownership of center.
func GaussianAround(rng *rand.Rand, center Vector, sigma float32) Vector {
	v := make(Vector, len(center))
	for i := range v {
		v[i] = center[i] + sigma*float32(rng.NormFloat64())
	}
	return v
}

// ExpectedPairwiseL2 returns the expected Euclidean distance between two
// independent N(0, sigma^2 I_d) perturbations, i.e. sigma*sqrt(2d) to first
// order. Tests use it to sanity-check the synthetic embedding geometry.
func ExpectedPairwiseL2(sigma float64, d int) float64 {
	return sigma * math.Sqrt(2*float64(d))
}
