package vec

import (
	"container/heap"
	"sort"
)

// Scored pairs an item identifier with its distance to some query.
type Scored struct {
	ID   int
	Dist float32
}

// TopK selects the k closest items from the given scored slice, returned
// sorted ascending by distance (ties broken by ascending ID so results are
// deterministic across runs). The input slice is not modified. If k exceeds
// len(items), all items are returned.
//
// The selection uses a bounded max-heap: O(n log k), which matters for the
// over-fetching path where the vector database retrieves ρ·k neighbors
// (§3.3.4) and the cache re-ranks them per hit.
func TopK(items []Scored, k int) []Scored {
	if k <= 0 {
		return nil
	}
	if k >= len(items) {
		out := make([]Scored, len(items))
		copy(out, items)
		sortScored(out)
		return out
	}
	h := make(maxHeap, 0, k)
	for _, it := range items {
		if len(h) < k {
			heap.Push(&h, it)
			continue
		}
		if less(it, h[0]) {
			h[0] = it
			heap.Fix(&h, 0)
		}
	}
	out := []Scored(h)
	sortScored(out)
	return out
}

// TopKByDistance scores every candidate vector against the query with the
// given distance function and returns the k closest. IDs are the candidate
// indices. This is the brute-force NNS kernel used by the flat index.
func TopKByDistance(query Vector, candidates []Vector, k int, dist DistanceFunc) []Scored {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	h := make(maxHeap, 0, k)
	for i, c := range candidates {
		d := dist(query, c)
		if len(h) < k {
			heap.Push(&h, Scored{ID: i, Dist: d})
			continue
		}
		if d < h[0].Dist || (d == h[0].Dist && i < h[0].ID) {
			h[0] = Scored{ID: i, Dist: d}
			heap.Fix(&h, 0)
		}
	}
	out := []Scored(h)
	sortScored(out)
	return out
}

// less orders scored items ascending by distance then ID.
func less(a, b Scored) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// maxHeap is a max-heap by (distance, ID) so the root is the worst
// retained candidate.
type maxHeap []Scored

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopKAcc incrementally selects the k closest items from a stream of
// (id, dist) pairs, with the same (distance, ID) tie-breaking as TopK.
// Batched index scans use one accumulator per query so a single pass over
// the stored vectors can feed every query in the batch; because the
// ordering is a total order, the result is independent of push order and
// therefore exactly matches the per-query TopK selection.
type TopKAcc struct {
	h maxHeap
	k int
}

// NewTopKAcc creates an accumulator retaining the k closest pushes.
func NewTopKAcc(k int) *TopKAcc {
	if k < 0 {
		k = 0
	}
	return &TopKAcc{h: make(maxHeap, 0, k), k: k}
}

// Push offers one scored item to the accumulator.
func (a *TopKAcc) Push(id int, dist float32) {
	if a.k == 0 {
		return
	}
	it := Scored{ID: id, Dist: dist}
	if len(a.h) < a.k {
		heap.Push(&a.h, it)
		return
	}
	if less(it, a.h[0]) {
		a.h[0] = it
		heap.Fix(&a.h, 0)
	}
}

// Result returns the retained items sorted ascending by (distance, ID).
// The accumulator may be reused afterwards; the returned slice is fresh.
func (a *TopKAcc) Result() []Scored {
	out := make([]Scored, len(a.h))
	copy(out, a.h)
	sortScored(out)
	return out
}

// IDs projects the ID column of a scored slice.
func IDs(s []Scored) []int {
	out := make([]int, len(s))
	for i, it := range s {
		out[i] = it.ID
	}
	return out
}
