package vec

import (
	"container/heap"
	"sort"
)

// Scored pairs an item identifier with its distance to some query.
type Scored struct {
	ID   int
	Dist float32
}

// TopK selects the k closest items from the given scored slice, returned
// sorted ascending by distance (ties broken by ascending ID so results are
// deterministic across runs). The input slice is not modified. If k exceeds
// len(items), all items are returned.
//
// The selection uses a bounded max-heap: O(n log k), which matters for the
// over-fetching path where the vector database retrieves ρ·k neighbors
// (§3.3.4) and the cache re-ranks them per hit.
func TopK(items []Scored, k int) []Scored {
	if k <= 0 {
		return nil
	}
	if k >= len(items) {
		out := make([]Scored, len(items))
		copy(out, items)
		sortScored(out)
		return out
	}
	h := make(maxHeap, 0, k)
	for _, it := range items {
		if len(h) < k {
			heap.Push(&h, it)
			continue
		}
		if less(it, h[0]) {
			h[0] = it
			heap.Fix(&h, 0)
		}
	}
	out := []Scored(h)
	sortScored(out)
	return out
}

// TopKByDistance scores every candidate vector against the query with the
// given distance function and returns the k closest. IDs are the candidate
// indices. This is the brute-force NNS kernel used by the flat index;
// hot-path callers that issue many queries should reuse a TopKBuffer
// instead (see FlatIndex.Search), which this function wraps.
func TopKByDistance(query Vector, candidates []Vector, k int, dist DistanceFunc) []Scored {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	var b TopKBuffer
	b.Reset(k)
	b.PushDistances(query, candidates, dist)
	return b.Result()
}

// less orders scored items ascending by distance then ID.
func less(a, b Scored) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// maxHeap is a max-heap by (distance, ID) so the root is the worst
// retained candidate.
type maxHeap []Scored

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return less(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopKBuffer incrementally selects the k closest items from a stream of
// (id, dist) pairs, with the same (distance, ID) tie-breaking as TopK.
// Because the ordering is a total order, the result is independent of
// push order and therefore exactly matches the one-shot TopK selection.
//
// Unlike TopK/TopKByDistance, which build a fresh heap per call, a
// TopKBuffer is reusable scratch: Reset rewinds it for the next query
// while keeping the backing array, so a pooled buffer makes repeated
// top-k selection allocation-free except for the returned result slice
// (and even that is avoidable via AppendResult). The flat index, the IVF
// batched scan, and the indexed cache's re-rank all select through this
// type.
type TopKBuffer struct {
	h maxHeap
	k int
}

// TopKAcc is the streaming accumulator the batched scans were built on;
// it is the same type as TopKBuffer and remains as the per-batch
// (non-reused) spelling.
type TopKAcc = TopKBuffer

// NewTopKAcc creates an accumulator retaining the k closest pushes.
func NewTopKAcc(k int) *TopKAcc {
	b := &TopKBuffer{}
	b.Reset(k)
	return b
}

// Reset discards any retained items and re-arms the buffer to keep the k
// closest subsequent pushes. The backing array is kept, so steady-state
// reuse allocates nothing once the buffer has grown to its working size.
func (b *TopKBuffer) Reset(k int) {
	if k < 0 {
		k = 0
	}
	if cap(b.h) < k {
		b.h = make(maxHeap, 0, k)
	} else {
		b.h = b.h[:0]
	}
	b.k = k
}

// Push offers one scored item to the buffer.
func (b *TopKBuffer) Push(id int, dist float32) {
	if b.k == 0 {
		return
	}
	it := Scored{ID: id, Dist: dist}
	if len(b.h) < b.k {
		heap.Push(&b.h, it)
		return
	}
	if less(it, b.h[0]) {
		b.h[0] = it
		heap.Fix(&b.h, 0)
	}
}

// PushDistances scores every candidate against the query and pushes it
// under its index as ID — the flat-scan inner loop.
func (b *TopKBuffer) PushDistances(query Vector, candidates []Vector, dist DistanceFunc) {
	for i, c := range candidates {
		b.Push(i, dist(query, c))
	}
}

// Len returns the number of retained items (≤ k).
func (b *TopKBuffer) Len() int { return len(b.h) }

// Result returns the retained items sorted ascending by (distance, ID).
// The buffer may be reused afterwards; the returned slice is fresh.
func (b *TopKBuffer) Result() []Scored {
	return b.AppendResult(nil)
}

// AppendResult appends the retained items, sorted ascending by
// (distance, ID), to dst and returns the extended slice — the
// allocation-free variant of Result for callers that own a scratch slice.
func (b *TopKBuffer) AppendResult(dst []Scored) []Scored {
	start := len(dst)
	dst = append(dst, b.h...)
	sortScored(dst[start:])
	return dst
}

// IDs projects the ID column of a scored slice.
func IDs(s []Scored) []int {
	out := make([]int, len(s))
	for i, it := range s {
		out[i] = it.ID
	}
	return out
}
