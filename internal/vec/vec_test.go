package vec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestL2Squared(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float32
	}{
		{name: "zero", a: Vector{0, 0, 0}, b: Vector{0, 0, 0}, want: 0},
		{name: "identical", a: Vector{1, 2, 3}, b: Vector{1, 2, 3}, want: 0},
		{name: "unit apart", a: Vector{0}, b: Vector{1}, want: 1},
		{name: "pythagorean", a: Vector{0, 0}, b: Vector{3, 4}, want: 25},
		{name: "negative coords", a: Vector{-1, -2}, b: Vector{1, 2}, want: 20},
		{name: "len 5 exercises tail loop", a: Vector{1, 1, 1, 1, 1}, b: Vector{0, 0, 0, 0, 0}, want: 5},
		{name: "len 7 exercises tail loop", a: Vector{2, 2, 2, 2, 2, 2, 2}, b: Vector{1, 1, 1, 1, 1, 1, 1}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := L2Squared(tt.a, tt.b); got != tt.want {
				t.Errorf("L2Squared(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestL2SquaredMatchesNaive(t *testing.T) {
	rng := NewRand(7)
	for _, d := range []int{1, 2, 3, 4, 5, 8, 15, 16, 17, 64, 768} {
		a := RandomGaussian(rng, d)
		b := RandomGaussian(rng, d)
		var naive float64
		for i := range a {
			diff := float64(a[i]) - float64(b[i])
			naive += diff * diff
		}
		got := float64(L2Squared(a, b))
		if !almostEqual(got, naive, 1e-3*(1+naive)) {
			t.Errorf("d=%d: unrolled %v vs naive %v", d, got, naive)
		}
	}
}

func TestL2SquaredPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2Squared(Vector{1, 2}, Vector{1})
}

func TestCheckedL2(t *testing.T) {
	if _, err := CheckedL2(Vector{1}, Vector{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("CheckedL2 mismatch error = %v, want ErrDimensionMismatch", err)
	}
	got, err := CheckedL2(Vector{0, 0}, Vector{3, 4})
	if err != nil {
		t.Fatalf("CheckedL2: %v", err)
	}
	if got != 5 {
		t.Errorf("CheckedL2 = %v, want 5", got)
	}
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float32
	}{
		{name: "orthogonal", a: Vector{1, 0}, b: Vector{0, 1}, want: 0},
		{name: "parallel", a: Vector{1, 2, 3}, b: Vector{2, 4, 6}, want: 28},
		{name: "antiparallel", a: Vector{1, 1}, b: Vector{-1, -1}, want: -2},
		{name: "tail loop", a: Vector{1, 1, 1, 1, 1, 1}, b: Vector{1, 1, 1, 1, 1, 1}, want: 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); got != tt.want {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNorm(t *testing.T) {
	if got := Norm(Vector{3, 4}); got != 5 {
		t.Errorf("Norm{3,4} = %v, want 5", got)
	}
	if got := Norm(Vector{0, 0, 0}); got != 0 {
		t.Errorf("Norm zero = %v, want 0", got)
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
		eps  float64
	}{
		{name: "identical direction", a: Vector{1, 2}, b: Vector{2, 4}, want: 0, eps: 1e-6},
		{name: "orthogonal", a: Vector{1, 0}, b: Vector{0, 5}, want: 1, eps: 1e-6},
		{name: "opposite", a: Vector{1, 0}, b: Vector{-3, 0}, want: 2, eps: 1e-6},
		{name: "zero vector treated far", a: Vector{0, 0}, b: Vector{1, 1}, want: 1, eps: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := float64(Cosine(tt.a, tt.b)); !almostEqual(got, tt.want, tt.eps) {
				t.Errorf("Cosine = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAddScaleNormalizeClone(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{3, 4}
	if got := Add(a, b); !Equal(got, Vector{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	v := Vector{2, 0}
	if got := Scale(v, 2); !Equal(got, Vector{4, 0}) {
		t.Errorf("Scale = %v", got)
	}
	n := Normalize(Vector{0, 3})
	if !Equal(n, Vector{0, 1}) {
		t.Errorf("Normalize = %v", n)
	}
	z := Normalize(Vector{0, 0})
	if !Equal(z, Vector{0, 0}) {
		t.Errorf("Normalize zero = %v, want unchanged", z)
	}
	orig := Vector{1, 2, 3}
	cl := Clone(orig)
	cl[0] = 9
	if orig[0] != 1 {
		t.Error("Clone aliases its input")
	}
}

func TestAXPY(t *testing.T) {
	dst := Vector{1, 1, 1}
	AXPY(dst, 2, Vector{1, 2, 3})
	if !Equal(dst, Vector{3, 5, 7}) {
		t.Errorf("AXPY = %v", dst)
	}
}

func TestEqual(t *testing.T) {
	if Equal(Vector{1}, Vector{1, 2}) {
		t.Error("Equal on different lengths should be false")
	}
	if !Equal(nil, nil) {
		t.Error("Equal(nil, nil) should be true")
	}
	if Equal(Vector{1, 2}, Vector{1, 3}) {
		t.Error("Equal on different values should be false")
	}
}

// Property: L2 satisfies the triangle inequality and symmetry on random
// vectors. This underpins the cache's claim that a hit at tolerance τ
// returns documents retrieved for a query at most τ away.
func TestL2MetricProperties(t *testing.T) {
	rng := NewRand(11)
	f := func(seed uint64) bool {
		r := NewRand(seed)
		d := 1 + int(r.Uint64()%64)
		a := RandomGaussian(rng, d)
		b := RandomGaussian(rng, d)
		c := RandomGaussian(rng, d)
		ab, ba := float64(L2(a, b)), float64(L2(b, a))
		ac, cb := float64(L2(a, c)), float64(L2(c, b))
		if !almostEqual(ab, ba, 1e-4*(1+ab)) {
			return false
		}
		// Triangle inequality with a float tolerance.
		return ab <= ac+cb+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: distance to self is 0 and scaling both operands scales L2
// linearly.
func TestL2ScaleInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		d := 2 + int(r.Uint64()%32)
		a := RandomGaussian(r, d)
		b := RandomGaussian(r, d)
		if L2(a, a) != 0 {
			return false
		}
		a2, b2 := Clone(a), Clone(b)
		Scale(a2, 3)
		Scale(b2, 3)
		return almostEqual(float64(L2(a2, b2)), 3*float64(L2(a, b)), 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
