package vec

import "fmt"

// Metric identifies a distance function. All metrics are normalized to the
// "smaller is closer" convention so that cache tolerance comparisons and
// top-k selection are metric-agnostic, mirroring the paper's requirement
// that the cache adopt the same distance function as the underlying vector
// database (§3.1).
type Metric int

const (
	// L2Distance is the Euclidean distance, the metric used in the
	// paper's evaluation (MedCPT and DPR embeddings are compared with
	// L2 in FAISS).
	L2Distance Metric = iota + 1
	// CosineDistance is 1 - cosine similarity.
	CosineDistance
	// InnerProduct is the negated dot product.
	InnerProduct
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case L2Distance:
		return "l2"
	case CosineDistance:
		return "cosine"
	case InnerProduct:
		return "ip"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric converts a CLI/string representation into a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "l2", "euclidean":
		return L2Distance, nil
	case "cosine":
		return CosineDistance, nil
	case "ip", "dot", "inner":
		return InnerProduct, nil
	default:
		return 0, fmt.Errorf("vec: unknown metric %q", s)
	}
}

// DistanceFunc is a distance kernel under the smaller-is-closer convention.
type DistanceFunc func(a, b Vector) float32

// Func returns the kernel implementing the metric.
func (m Metric) Func() DistanceFunc {
	switch m {
	case L2Distance:
		return L2
	case CosineDistance:
		return Cosine
	case InnerProduct:
		return NegDot
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(m)))
	}
}
