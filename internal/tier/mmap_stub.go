//go:build !unix

package tier

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(b []byte) error { return nil }

// unlinkOpenFile is a no-op where open files cannot be unlinked; the
// store removes the file on Close instead.
func unlinkOpenFile(f *os.File) {}
