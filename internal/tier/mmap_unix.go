//go:build unix

package tier

import (
	"os"
	"syscall"
)

// mmapSupported reports whether the warm record file can be mapped into
// memory on this platform; when false the store falls back to
// ReadAt/WriteAt with a reusable scratch buffer.
const mmapSupported = true

// mmapFile maps size bytes of f read-write and shared, so warm vector
// reads are plain memory loads with the page cache as the only copy.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// unlinkOpenFile removes the warm file's directory entry while keeping
// the descriptor open: the kernel reclaims the space when the process
// exits, so a crash can never leak warm scratch files.
func unlinkOpenFile(f *os.File) {
	os.Remove(f.Name())
}
