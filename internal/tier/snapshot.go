package tier

import (
	"fmt"
	"io"
	"os"

	"proximity/internal/core"
)

// Cold tier: the tiered cache persists through the variant-agnostic
// entry snapshot of internal/core. Writing serializes the combined
// contents in eviction order (warm then hot); loading replays them
// through PutWithTolerance, which re-layers the hierarchy exactly — the
// oldest entries fill the hot tier first and cascade into the warm tier
// as younger ones displace them, ending with the youngest H entries hot
// and the rest warm, the same layering the original process had.

// WriteSnapshot serializes the combined contents to w.
func (t *TieredCache) WriteSnapshot(w io.Writer) error {
	return core.WriteEntrySnapshot(w, t.dim, t)
}

// LoadSnapshot refills the cache from a snapshot written by any
// core.EntrySource (a previous tiered cache, or a single-tier cache
// being upgraded to tiered). Existing entries are kept; counters are
// reset afterwards so the new process observes a clean lifetime.
// Snapshots from a newer format return an error wrapping
// core.ErrSnapshotVersion.
func (t *TieredCache) LoadSnapshot(r io.Reader) error {
	dim, entries, err := core.ReadEntrySnapshot(r)
	if err != nil {
		return err
	}
	if dim != t.dim {
		return fmt.Errorf("tier: snapshot dimension %d does not match cache dimension %d", dim, t.dim)
	}
	for _, e := range entries {
		t.PutWithTolerance(e.Key, e.Docs, e.Tol)
	}
	t.resetStats()
	return nil
}

// resetStats zeroes the lifetime counters, folding the hot tier's
// current counters into the subtracted baseline (core caches have no
// external reset).
func (t *TieredCache) resetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hotBase = t.hot.Stats()
	t.misses = 0
	t.warmHits = 0
	t.promotions = 0
	t.demotions = 0
	t.discards = 0
	t.warm.lookups = 0
	t.warm.scanned = 0
	t.warm.pruned = 0
	t.warm.comps = 0
}

// SaveSnapshotFile writes the snapshot to path crash-safely (temp file
// and rename): a crash mid-write leaves the previous snapshot intact.
func (t *TieredCache) SaveSnapshotFile(path string) error {
	return core.WriteFileAtomic(path, t.WriteSnapshot)
}

// LoadSnapshotFile refills the cache from a snapshot file.
func (t *TieredCache) LoadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.LoadSnapshot(f)
}
