// Package tier implements a hot/warm/cold cache hierarchy over the
// Proximity variants in internal/core.
//
// The hot tier is a small in-memory cache (flat, LSH, or graph-indexed —
// anything satisfying core.TierCache). The warm tier is a larger
// file-backed store that absorbs hot-tier evictions instead of letting
// them be discarded (demotion), and hands entries back on a warm hit
// (promotion, LRU only). The cold tier is the on-disk snapshot format of
// internal/core: a tiered cache serializes its combined contents in
// eviction order and refills by replay, so a restart resumes with the
// whole hierarchy warm.
//
// The composition is semantically conservative: a TieredCache with hot
// capacity H and warm capacity W admits, hits, and evicts exactly like a
// single flat cache of capacity H+W (whenever the closest admissible
// distance is unique — float ties between distinct keys break toward the
// hot tier where a flat scan's break is scan-order-dependent). The
// invariant maintained throughout is that the combined eviction order is
// the warm tier's order followed by the hot tier's: every warm entry is
// older than every hot entry, demotion moves the hot front onto the warm
// back, and a full warm tier discards its front — the globally oldest
// entry, exactly the one the equivalent flat cache would evict.
package tier

import (
	"fmt"
	"math"
	"sync"
	"time"

	"proximity/internal/core"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

// Options configures a TieredCache.
type Options struct {
	// HotCapacity is the in-memory hot tier's entry limit. Must be
	// positive.
	HotCapacity int
	// WarmCapacity is the file-backed warm tier's entry limit. Must be
	// positive; typical deployments size it 4–16× the hot tier.
	WarmCapacity int
	// Tolerance is the cache-wide similarity threshold τ (per-entry
	// tolerances from PutWithTolerance override it per line).
	Tolerance float32
	// Metric is the distance function. The warm tier's pivot pruning
	// needs the triangle inequality, so only L2 gets sub-linear warm
	// lookups; cosine and inner-product fall back to an exact warm scan.
	Metric vec.Metric
	// Policy is the eviction strategy. Under LRU a warm hit promotes the
	// entry back into the hot tier; under FIFO warm hits are served in
	// place (promotion would reorder the combined eviction sequence).
	Policy core.Policy
	// NewHot builds the hot tier. base carries the capacity, tolerance,
	// metric, policy, and the demotion hook the tiered cache needs wired
	// in; implementations must honor all of them (passing base through to
	// core.NewFlat, or copying its fields into a variant's options — see
	// IndexedHot and LSHHot). Nil means a flat hot tier, the only variant
	// for which the flat-equivalence property holds exactly.
	NewHot func(dim int, base core.Options) (core.TierCache, error)
	// Dir is where the warm tier's record file is created (os.TempDir()
	// when empty). The file is scratch, not persistence — cold restarts
	// go through snapshots.
	Dir string
	// Seed drives the warm tier's pivot draw.
	Seed uint64
	// Telemetry, when set, records tier_warm_lookup / tier_promote /
	// tier_demote stage latencies.
	Telemetry *telemetry.StageSet
}

// TieredCache composes a hot core cache over a warm file-backed store.
// It implements core.Cache, core.EntrySource, core.TierStatser, and
// io.Closer. All operations serialize on one mutex: the hot tier's own
// locks are uncontended below it, and the demotion hook (which fires
// under the hot tier's lock) only ever appends to a buffer owned by the
// same mutex.
type TieredCache struct {
	dim  int
	opts Options

	mu      sync.Mutex
	hot     core.TierCache
	warm    *warmStore
	pending []core.Entry // demotions handed over by the hot tier's OnEvict
	hotBase core.Stats   // hot counters at the last reset (snapshot load)

	misses     int64
	warmHits   int64
	promotions int64
	demotions  int64
	discards   int64

	telem *telemetry.StageSet
}

var (
	_ core.Cache       = (*TieredCache)(nil)
	_ core.EntrySource = (*TieredCache)(nil)
	_ core.TierStatser = (*TieredCache)(nil)
)

// New creates a tiered cache for dim-dimensional embeddings.
func New(dim int, opts Options) (*TieredCache, error) {
	if opts.HotCapacity <= 0 {
		return nil, fmt.Errorf("tier: hot capacity must be positive, got %d", opts.HotCapacity)
	}
	if opts.WarmCapacity <= 0 {
		return nil, fmt.Errorf("tier: warm capacity must be positive, got %d", opts.WarmCapacity)
	}
	if opts.Metric == 0 {
		opts.Metric = vec.L2Distance
	}
	if opts.Policy == 0 {
		opts.Policy = core.FIFO
	}
	t := &TieredCache{dim: dim, opts: opts, telem: opts.Telemetry}
	base := core.Options{
		Capacity:  opts.HotCapacity,
		Tolerance: opts.Tolerance,
		Metric:    opts.Metric,
		Policy:    opts.Policy,
		OnEvict: func(e core.Entry) {
			// Runs under the hot tier's lock, which is only ever taken
			// while t.mu is held, so the buffer needs no extra locking.
			// The warm insert happens after the hot operation returns:
			// the hook must not re-enter the hot tier, and the warm
			// store may reuse record slots only once the hot tier has
			// finished cloning its own inputs.
			t.pending = append(t.pending, e)
		},
	}
	newHot := opts.NewHot
	if newHot == nil {
		newHot = func(dim int, base core.Options) (core.TierCache, error) {
			return core.NewFlat(dim, base)
		}
	}
	hot, err := newHot(dim, base)
	if err != nil {
		return nil, fmt.Errorf("tier: build hot tier: %w", err)
	}
	warm, err := newWarmStore(dim, opts.WarmCapacity, opts.Metric, opts.Dir, opts.Seed)
	if err != nil {
		if closer, ok := hot.(interface{ Close() error }); ok {
			closer.Close()
		}
		return nil, err
	}
	t.hot = hot
	t.warm = warm
	return t, nil
}

// IndexedHot returns a NewHot factory building a graph-indexed hot tier.
// The capacity, tolerance, metric, policy, and demotion hook come from
// the tiered cache; the remaining IndexedOptions fields (graph degree,
// efSearch, crossover, maintenance cadence, seed) come from opts.
func IndexedHot(opts core.IndexedOptions) func(dim int, base core.Options) (core.TierCache, error) {
	return func(dim int, base core.Options) (core.TierCache, error) {
		opts.Capacity = base.Capacity
		opts.Tolerance = base.Tolerance
		opts.Metric = base.Metric
		opts.Policy = base.Policy
		opts.OnEvict = base.OnEvict
		return core.NewIndexed(dim, opts)
	}
}

// LSHHot returns a NewHot factory building an LSH hot tier. LSH capacity
// is per-bucket (total 2^L·b), so opts.BucketCapacity is kept as given
// rather than overwritten with the tiered hot capacity; the
// flat-equivalence property does not hold for an LSH hot tier, which
// misses entries its probes don't reach.
func LSHHot(opts core.LSHOptions) func(dim int, base core.Options) (core.TierCache, error) {
	return func(dim int, base core.Options) (core.TierCache, error) {
		opts.Tolerance = base.Tolerance
		opts.Metric = base.Metric
		opts.Policy = base.Policy
		opts.OnEvict = base.OnEvict
		return core.NewLSH(dim, opts)
	}
}

// Get consults both tiers and serves the globally closest admissible
// entry: the hot candidate is fetched without side effects (TierGet),
// the warm tier is probed with the hot distance as the beat-this bound,
// and only the winner's bookkeeping runs. A warm win under LRU promotes
// the entry back into the hot tier, demoting the hot front if full.
//
//proximity:hotpath
func (t *TieredCache) Get(q vec.Vector) ([]int, bool) {
	if q == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	hit, hotOK := t.hot.TierGet(q)
	bound := float32(math.Inf(1))
	if hotOK {
		bound = hit.Dist
	}
	start := time.Now()
	we, _, warmOK := t.warm.lookup(q, bound)
	t.telem.Observe(telemetry.StageTierWarmLookup, time.Since(start))
	if warmOK {
		t.warmHits++
		//proximity:allow hotpathalloc warm-hit docs copy; the warm path already paid a file read
		docs := append([]int(nil), we.docs...)
		if t.opts.Policy == core.LRU {
			t.promoteLocked(we)
		}
		return docs, true
	}
	if hotOK {
		hit.Commit()
		return hit.Docs, true
	}
	t.misses++
	return nil, false
}

// promoteLocked moves a warm entry into the hot tier: clone the key out
// of the record file, detach the warm entry, insert hot. If the hot tier
// is full its front demotes onto the warm back — the last-of-warm and
// first-of-hot positions are adjacent in the combined order, so the swap
// preserves it exactly as a flat LRU's MoveToBack would.
func (t *TieredCache) promoteLocked(we *warmEntry) {
	start := time.Now()
	key := t.warm.readKey(we)
	t.warm.remove(we)
	t.hot.PutWithTolerance(key, we.docs, we.tol)
	t.drainPendingLocked()
	t.promotions++
	t.telem.Observe(telemetry.StageTierPromote, time.Since(start))
}

// drainPendingLocked absorbs buffered hot-tier evictions into the warm
// tier. A full warm tier discards its oldest entry — the tiered cache's
// true eviction.
func (t *TieredCache) drainPendingLocked() {
	for i, e := range t.pending {
		start := time.Now()
		if t.warm.insert(e) {
			t.discards++
		}
		t.demotions++
		t.pending[i] = core.Entry{}
		t.telem.Observe(telemetry.StageTierDemote, time.Since(start))
	}
	t.pending = t.pending[:0]
}

// Put caches the pair under the cache-wide tolerance.
func (t *TieredCache) Put(q vec.Vector, docs []int) {
	t.PutWithTolerance(q, docs, t.opts.Tolerance)
}

// PutWithTolerance inserts into the hot tier; a displaced hot entry
// demotes to the warm tier rather than being discarded.
func (t *TieredCache) PutWithTolerance(q vec.Vector, docs []int, tol float32) {
	if q == nil || tol < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hot.PutWithTolerance(q, docs, tol)
	t.drainPendingLocked()
}

// Len returns the total entries across both tiers.
func (t *TieredCache) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hot.Len() + t.warm.len()
}

// Capacity returns the combined capacity H+W.
func (t *TieredCache) Capacity() int {
	return t.opts.HotCapacity + t.opts.WarmCapacity
}

// Tolerance returns the cache-wide similarity threshold τ.
func (t *TieredCache) Tolerance() float32 { return t.opts.Tolerance }

// Policy returns the eviction policy.
func (t *TieredCache) Policy() core.Policy { return t.opts.Policy }

// Stats assembles combined counters so the tiered cache reads like the
// single cache it emulates: hits from either tier count as hits, only
// warm discards count as evictions (demotions are internal movement),
// and promotion re-inserts are subtracted from Puts.
func (t *TieredCache) Stats() core.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	hs := subStats(t.hot.Stats(), t.hotBase)
	return core.Stats{
		Hits:      hs.Hits + t.warmHits,
		Misses:    t.misses,
		Puts:      hs.Puts - t.promotions,
		Evictions: t.discards,
		DistComps: hs.DistComps + t.warm.comps,
		HashOps:   hs.HashOps,
	}
}

// TierStats reports the per-tier breakdown.
func (t *TieredCache) TierStats() core.TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	hs := subStats(t.hot.Stats(), t.hotBase)
	return core.TierStats{
		HotEntries:   t.hot.Len(),
		HotCapacity:  t.hot.Capacity(),
		WarmEntries:  t.warm.len(),
		WarmCapacity: t.opts.WarmCapacity,
		WarmBytes:    t.warm.bytes(),
		HotHits:      hs.Hits,
		WarmHits:     t.warmHits,
		Promotions:   t.promotions,
		Demotions:    t.demotions,
		WarmDiscards: t.discards,
		WarmLookups:  t.warm.lookups,
		WarmScanned:  t.warm.scanned,
		WarmPruned:   t.warm.pruned,
	}
}

func subStats(a, b core.Stats) core.Stats {
	return core.Stats{
		Hits:      a.Hits - b.Hits,
		Misses:    a.Misses - b.Misses,
		Puts:      a.Puts - b.Puts,
		Evictions: a.Evictions - b.Evictions,
		DistComps: a.DistComps - b.DistComps,
		HashOps:   a.HashOps - b.HashOps,
	}
}

// Entries returns the combined contents in eviction order: warm (oldest)
// first, then hot — re-inserting them in order through an empty cache of
// capacity ≥ H+W reproduces contents and eviction sequence. Implements
// core.EntrySource.
func (t *TieredCache) Entries() []core.Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append(t.warm.entries(), t.hot.Entries()...)
}

// Clear drops all entries in both tiers (counters preserved).
func (t *TieredCache) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hot.Clear()
	t.pending = t.pending[:0]
	t.warm.clear()
}

// Close releases the warm tier's record file and mapping. The cache must
// not be used afterwards.
func (t *TieredCache) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.warm.close()
}
