package tier

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proximity/internal/core"
	"proximity/internal/vec"
)

func mustTiered(t *testing.T, dim int, opts Options) *TieredCache {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	tc, err := New(dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tc.Close() })
	return tc
}

func mustFlat(t *testing.T, dim int, opts core.Options) *core.FlatCache {
	t.Helper()
	c, err := core.NewFlat(dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func checkGet(t *testing.T, tc *TieredCache, ref *core.FlatCache, q vec.Vector, op int) {
	t.Helper()
	gotDocs, gotOK := tc.Get(q)
	wantDocs, wantOK := ref.Get(q)
	if gotOK != wantOK {
		t.Fatalf("op %d: tiered Get ok = %v, flat reference = %v", op, gotOK, wantOK)
	}
	if len(gotDocs) != len(wantDocs) {
		t.Fatalf("op %d: tiered docs = %v, flat reference = %v", op, gotDocs, wantDocs)
	}
	for i := range gotDocs {
		if gotDocs[i] != wantDocs[i] {
			t.Fatalf("op %d: tiered docs = %v, flat reference = %v", op, gotDocs, wantDocs)
		}
	}
}

// compareState asserts the tiered cache and the flat reference hold the
// same entries in the same eviction order and agree on the externally
// visible counters.
func compareState(t *testing.T, tc *TieredCache, ref *core.FlatCache) {
	t.Helper()
	if tc.Len() != ref.Len() {
		t.Fatalf("Len: tiered %d, flat %d", tc.Len(), ref.Len())
	}
	got, want := tc.Entries(), ref.Entries()
	if len(got) != len(want) {
		t.Fatalf("Entries: tiered %d, flat %d", len(got), len(want))
	}
	for i := range got {
		if !vec.Equal(got[i].Key, want[i].Key) || got[i].Tol != want[i].Tol {
			t.Fatalf("entry %d diverged: tiered tol %v, flat tol %v", i, got[i].Tol, want[i].Tol)
		}
		if len(got[i].Docs) != len(want[i].Docs) {
			t.Fatalf("entry %d docs diverged", i)
		}
		for j := range got[i].Docs {
			if got[i].Docs[j] != want[i].Docs[j] {
				t.Fatalf("entry %d docs diverged", i)
			}
		}
	}
	gs, ws := tc.Stats(), ref.Stats()
	if gs.Hits != ws.Hits || gs.Misses != ws.Misses || gs.Puts != ws.Puts || gs.Evictions != ws.Evictions {
		t.Fatalf("stats diverged: tiered %+v, flat %+v", gs, ws)
	}
}

// runEquivalence drives an identical random workload through a tiered
// cache and a flat cache of the combined capacity, checking every lookup
// and the final state. The workload mixes inserts with near-duplicate
// queries (radius 0.5–1.5× the entry tolerance, so admission decisions
// sit on both sides of τ) and cold random queries.
func runEquivalence(t *testing.T, tc *TieredCache, ref *core.FlatCache, dim, ops int, tol float32, seed uint64) {
	t.Helper()
	rng := vec.NewRand(seed)
	var keys []vec.Vector
	for i := 0; i < ops; i++ {
		r := rng.Float64()
		switch {
		case r < 0.45 && len(keys) > 0:
			base := keys[rng.IntN(len(keys))]
			d := vec.RandomGaussian(rng, dim)
			radius := tol * float32(0.5+rng.Float64())
			q := vec.Add(base, vec.Scale(d, radius/vec.Norm(d)))
			checkGet(t, tc, ref, q, i)
		case r < 0.6:
			q := vec.Scale(vec.RandomGaussian(rng, dim), 2)
			checkGet(t, tc, ref, q, i)
		default:
			k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
			docs := []int{i, int(rng.IntN(1000))}
			etol := tol * float32(0.5+rng.Float64())
			tc.PutWithTolerance(k, docs, etol)
			ref.PutWithTolerance(k, docs, etol)
			keys = append(keys, k)
		}
	}
	compareState(t, tc, ref)
}

func testEquivalence(t *testing.T, policy core.Policy, metric vec.Metric, seed uint64) {
	t.Helper()
	const (
		dim = 16
		H   = 32
		W   = 128
		tol = 1.5
		ops = 4000
	)
	tc := mustTiered(t, dim, Options{
		HotCapacity: H, WarmCapacity: W,
		Tolerance: tol, Metric: metric, Policy: policy, Seed: seed,
	})
	ref := mustFlat(t, dim, core.Options{
		Capacity: H + W, Tolerance: tol, Metric: metric, Policy: policy,
	})
	runEquivalence(t, tc, ref, dim, ops, tol, seed)
}

func TestTieredEquivalenceFIFO(t *testing.T) { testEquivalence(t, core.FIFO, vec.L2Distance, 1) }
func TestTieredEquivalenceLRU(t *testing.T)  { testEquivalence(t, core.LRU, vec.L2Distance, 2) }

// Cosine has no triangle inequality, so the warm tier falls back to an
// exact scan — the equivalence property must still hold.
func TestTieredEquivalenceCosine(t *testing.T) { testEquivalence(t, core.LRU, vec.CosineDistance, 3) }

// The fallback IO path (ReadAt/WriteAt instead of mmap) must behave
// identically.
func TestTieredEquivalenceNoMmap(t *testing.T) {
	forceNoMmap = true
	defer func() { forceNoMmap = false }()
	testEquivalence(t, core.LRU, vec.L2Distance, 4)
}

// Adversarial near-τ placement: every query sits at a controlled radius
// straddling the entry's exact tolerance, so any drift between the
// tiered admission decision and the flat one surfaces immediately.
func TestTieredEquivalenceAdversarialNearTau(t *testing.T) {
	for _, policy := range []core.Policy{core.FIFO, core.LRU} {
		t.Run(policy.String(), func(t *testing.T) {
			const (
				dim = 8
				H   = 8
				W   = 32
				tol = 1.0
				ops = 3000
			)
			tc := mustTiered(t, dim, Options{
				HotCapacity: H, WarmCapacity: W,
				Tolerance: tol, Policy: policy, Seed: 7,
			})
			ref := mustFlat(t, dim, core.Options{
				Capacity: H + W, Tolerance: tol, Policy: policy,
			})
			rng := vec.NewRand(11)
			factors := []float32{0.9, 0.99, 0.999, 1.0, 1.001, 1.01, 1.1}
			type line struct {
				key vec.Vector
				tol float32
			}
			var lines []line
			for i := 0; i < ops; i++ {
				if rng.Float64() < 0.4 || len(lines) == 0 {
					k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
					etol := tol * float32(0.5+rng.Float64())
					docs := []int{i}
					tc.PutWithTolerance(k, docs, etol)
					ref.PutWithTolerance(k, docs, etol)
					lines = append(lines, line{k, etol})
					continue
				}
				ln := lines[rng.IntN(len(lines))]
				f := factors[rng.IntN(len(factors))]
				d := vec.RandomGaussian(rng, dim)
				q := vec.Add(ln.key, vec.Scale(d, ln.tol*f/vec.Norm(d)))
				checkGet(t, tc, ref, q, i)
			}
			compareState(t, tc, ref)
		})
	}
}

// Directed promotion check: a warm hit under LRU moves the entry back
// into the hot tier, demoting the hot front to keep the combined order.
func TestTieredPromotionLRU(t *testing.T) {
	tc := mustTiered(t, 2, Options{HotCapacity: 1, WarmCapacity: 2, Tolerance: 1, Policy: core.LRU})
	a, b := vec.Vector{0, 0}, vec.Vector{10, 0}
	tc.Put(a, []int{1})
	tc.Put(b, []int{2}) // a demotes to warm
	st := tc.TierStats()
	if st.Demotions != 1 || st.WarmEntries != 1 || st.HotEntries != 1 {
		t.Fatalf("after fill: %+v", st)
	}
	if docs, ok := tc.Get(vec.Vector{0.5, 0}); !ok || docs[0] != 1 {
		t.Fatalf("warm hit = %v %v", docs, ok)
	}
	st = tc.TierStats()
	if st.WarmHits != 1 || st.Promotions != 1 || st.Demotions != 2 {
		t.Fatalf("after warm hit: %+v", st)
	}
	// a is hot again; b demoted.
	entries := tc.Entries()
	if len(entries) != 2 || !vec.Equal(entries[1].Key, a) || !vec.Equal(entries[0].Key, b) {
		t.Fatalf("order after promotion: %+v", entries)
	}
	// Combined counters read like a single cache: 1 hit, 2 puts, 0 evictions.
	if s := tc.Stats(); s.Hits != 1 || s.Puts != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// Under FIFO a warm hit is served in place: promotion would reorder the
// combined eviction sequence.
func TestTieredFIFONoPromotion(t *testing.T) {
	tc := mustTiered(t, 2, Options{HotCapacity: 1, WarmCapacity: 2, Tolerance: 1, Policy: core.FIFO})
	a, b := vec.Vector{0, 0}, vec.Vector{10, 0}
	tc.Put(a, []int{1})
	tc.Put(b, []int{2})
	before := tc.Entries()
	if docs, ok := tc.Get(vec.Vector{0.5, 0}); !ok || docs[0] != 1 {
		t.Fatalf("warm hit = %v %v", docs, ok)
	}
	st := tc.TierStats()
	if st.WarmHits != 1 || st.Promotions != 0 {
		t.Fatalf("FIFO warm hit should not promote: %+v", st)
	}
	after := tc.Entries()
	for i := range before {
		if !vec.Equal(before[i].Key, after[i].Key) {
			t.Fatal("FIFO warm hit reordered entries")
		}
	}
}

// The warm discard is the tiered cache's true eviction: filling past
// H+W drops the globally oldest entry.
func TestTieredWarmDiscard(t *testing.T) {
	tc := mustTiered(t, 1, Options{HotCapacity: 2, WarmCapacity: 2, Tolerance: 0.1, Policy: core.FIFO})
	for i := 0; i < 5; i++ {
		tc.Put(vec.Vector{float32(10 * i)}, []int{i})
	}
	if tc.Len() != 4 {
		t.Fatalf("Len = %d", tc.Len())
	}
	if _, ok := tc.Get(vec.Vector{0}); ok {
		t.Fatal("oldest entry should have been discarded")
	}
	s := tc.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	st := tc.TierStats()
	if st.WarmDiscards != 1 || st.Demotions != 3 {
		t.Fatalf("tier stats = %+v", st)
	}
}

func TestTieredSnapshotRoundTrip(t *testing.T) {
	const (
		dim = 12
		H   = 16
		W   = 64
		tol = 1.2
	)
	dir := t.TempDir()
	opts := Options{HotCapacity: H, WarmCapacity: W, Tolerance: tol, Policy: core.LRU, Seed: 5, Dir: dir}
	tc := mustTiered(t, dim, opts)
	rng := vec.NewRand(9)
	var keys []vec.Vector
	for i := 0; i < 200; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
		tc.PutWithTolerance(k, []int{i}, tol*float32(0.5+rng.Float64()))
		keys = append(keys, k)
	}
	before := tc.Entries()

	path := filepath.Join(dir, "tiered.snap")
	if err := tc.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	restored := mustTiered(t, dim, opts)
	if err := restored.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	after := restored.Entries()
	if len(after) != len(before) {
		t.Fatalf("restored %d entries, want %d", len(after), len(before))
	}
	for i := range before {
		if !vec.Equal(before[i].Key, after[i].Key) || before[i].Tol != after[i].Tol {
			t.Fatalf("entry %d diverged after restart", i)
		}
	}
	// Counters restart clean (the replay's puts and demotions are not a
	// process lifetime).
	if s := restored.Stats(); s.Puts != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("restored stats = %+v, want clean", s)
	}
	if st := restored.TierStats(); st.Demotions != 0 || st.HotHits != 0 {
		t.Fatalf("restored tier stats = %+v, want clean", st)
	}
	// Both caches answer identically post-restart.
	for i := 0; i < 100; i++ {
		base := keys[rng.IntN(len(keys))]
		d := vec.RandomGaussian(rng, dim)
		q := vec.Add(base, vec.Scale(d, tol*float32(0.3+rng.Float64())/vec.Norm(d)))
		d1, ok1 := tc.Get(q)
		d2, ok2 := restored.Get(q)
		if ok1 != ok2 || (ok1 && d1[0] != d2[0]) {
			t.Fatalf("query %d: original %v %v, restored %v %v", i, d1, ok1, d2, ok2)
		}
	}
}

// Saving over an existing snapshot is atomic: the temp file is renamed
// into place and never left behind.
func TestTieredSnapshotAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	tc := mustTiered(t, 4, Options{HotCapacity: 4, WarmCapacity: 4, Tolerance: 1})
	tc.Put(vec.Vector{1, 2, 3, 4}, []int{1})
	if err := tc.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	tc.Put(vec.Vector{5, 6, 7, 8}, []int{2})
	if err := tc.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.Contains(f.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", f.Name())
		}
	}
	restored := mustTiered(t, 4, Options{HotCapacity: 4, WarmCapacity: 4, Tolerance: 1})
	if err := restored.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored Len = %d, want 2", restored.Len())
	}
}

func TestTieredLoadSnapshotVersionError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.snap")
	if err := os.WriteFile(path, append([]byte("PXSNAP"), 0xFF, 0, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	tc := mustTiered(t, 4, Options{HotCapacity: 2, WarmCapacity: 2, Tolerance: 1})
	if err := tc.LoadSnapshotFile(path); !errors.Is(err, core.ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
}

// An indexed hot tier composes: demotions flow from the graph-indexed
// cache's evictions into the warm tier and near-duplicate lookups hit.
func TestIndexedHotSmoke(t *testing.T) {
	const dim = 8
	tc := mustTiered(t, dim, Options{
		HotCapacity: 16, WarmCapacity: 64, Tolerance: 1.5, Policy: core.LRU,
		NewHot: IndexedHot(core.IndexedOptions{Seed: 3}),
	})
	rng := vec.NewRand(13)
	var keys []vec.Vector
	for i := 0; i < 120; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
		tc.Put(k, []int{i})
		keys = append(keys, k)
	}
	st := tc.TierStats()
	if st.Demotions == 0 || st.WarmEntries == 0 {
		t.Fatalf("indexed hot tier did not demote: %+v", st)
	}
	hits := 0
	for i := 0; i < 60; i++ {
		base := keys[len(keys)-1-i]
		d := vec.RandomGaussian(rng, dim)
		q := vec.Add(base, vec.Scale(d, 0.5/vec.Norm(d)))
		if _, ok := tc.Get(q); ok {
			hits++
		}
	}
	if hits < 50 {
		t.Fatalf("near-duplicate hits = %d/60", hits)
	}
}

// An LSH hot tier composes the same way.
func TestLSHHotSmoke(t *testing.T) {
	const dim = 8
	tc := mustTiered(t, dim, Options{
		HotCapacity: 16, WarmCapacity: 64, Tolerance: 1.5, Policy: core.FIFO,
		NewHot: LSHHot(core.LSHOptions{Bits: 4, BucketCapacity: 4, Probes: 3, Seed: 3}),
	})
	rng := vec.NewRand(17)
	for i := 0; i < 120; i++ {
		tc.Put(vec.Scale(vec.RandomGaussian(rng, dim), 2), []int{i})
	}
	st := tc.TierStats()
	if st.Demotions == 0 {
		t.Fatalf("LSH hot tier did not demote: %+v", st)
	}
	if tc.Len() != st.HotEntries+st.WarmEntries {
		t.Fatalf("Len %d != hot %d + warm %d", tc.Len(), st.HotEntries, st.WarmEntries)
	}
}

func TestWarmSlotReuse(t *testing.T) {
	w, err := newWarmStore(4, 4, vec.L2Distance, t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	rng := vec.NewRand(21)
	discards := 0
	for i := 0; i < 10; i++ {
		if w.insert(core.Entry{Key: vec.RandomGaussian(rng, 4), Docs: []int{i}, Tol: 1}) {
			discards++
		}
	}
	if w.len() != 4 {
		t.Fatalf("len = %d, want 4", w.len())
	}
	if discards != 6 {
		t.Fatalf("discards = %d, want 6", discards)
	}
	// Record slots are recycled, never grown past capacity.
	if w.next > 4 {
		t.Fatalf("slots grew to %d despite capacity 4", w.next)
	}
	if got := w.bytes(); got != 4*4*4 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestTieredClear(t *testing.T) {
	tc := mustTiered(t, 2, Options{HotCapacity: 2, WarmCapacity: 2, Tolerance: 1})
	for i := 0; i < 4; i++ {
		tc.Put(vec.Vector{float32(10 * i), 0}, []int{i})
	}
	tc.Clear()
	if tc.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tc.Len())
	}
	if _, ok := tc.Get(vec.Vector{0, 0}); ok {
		t.Fatal("Get hit after Clear")
	}
	tc.Put(vec.Vector{1, 1}, []int{9})
	if docs, ok := tc.Get(vec.Vector{1, 1}); !ok || docs[0] != 9 {
		t.Fatalf("reuse after Clear = %v %v", docs, ok)
	}
}

// The warm tier's pivot pruning must actually engage on near-duplicate
// traffic: a hot-path lookup should not read every warm vector.
func TestWarmPruningEngages(t *testing.T) {
	const (
		dim = 32
		H   = 50
		W   = 400
		tol = 0.8
	)
	tc := mustTiered(t, dim, Options{HotCapacity: H, WarmCapacity: W, Tolerance: tol, Policy: core.LRU, Seed: 2})
	rng := vec.NewRand(31)
	var keys []vec.Vector
	for i := 0; i < H+W; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
		tc.Put(k, []int{i})
		keys = append(keys, k)
	}
	// Hot-resident near-duplicates: the hot tier answers, and its small
	// distance shrinks the warm window to near nothing.
	for i := 0; i < 200; i++ {
		base := keys[len(keys)-1-rng.IntN(H/2)]
		d := vec.RandomGaussian(rng, dim)
		q := vec.Add(base, vec.Scale(d, tol*0.2/vec.Norm(d)))
		if _, ok := tc.Get(q); !ok {
			t.Fatalf("hot near-duplicate %d missed", i)
		}
	}
	st := tc.TierStats()
	if st.WarmLookups == 0 {
		t.Fatal("warm tier never consulted")
	}
	scannedPerLookup := float64(st.WarmScanned) / float64(st.WarmLookups)
	if scannedPerLookup > float64(W)/4 {
		t.Fatalf("pruning ineffective: %.1f of %d warm vectors read per lookup (pruned %d)",
			scannedPerLookup, W, st.WarmPruned)
	}
}
