package tier

import (
	"container/list"
	"fmt"
	"os"
	"sort"
	"unsafe"

	"proximity/internal/core"
	"proximity/internal/vec"
)

// The warm tier holds demoted entries without keeping their vectors on
// the heap: keys live in a fixed-record scratch file (one dim·4-byte
// record per entry) that is memory-mapped where the platform allows it,
// while only the small per-entry directory — documents, tolerance, slot
// number, and a handful of pivot distances — stays in memory. At dim 768
// that is ~3 KB of vector per entry moved out of the Go heap, which is
// what lets the warm tier be 16× the hot tier without 16× the memory.
//
// Lookups must stay cheap even though the vectors are out of reach: the
// directory is kept sorted by each key's distance to the origin (its
// norm, pivot 0), so a query with admissibility threshold t only needs
// the window of entries whose norm lies within t of the query's norm —
// everything outside the window is skipped by binary search without
// touching the record file. Entries inside the window are then tested
// against three more fixed random pivots: by the triangle inequality
// |d(q,p) − d(key,p)| lower-bounds d(q,key), so a window survivor whose
// bound already exceeds its tolerance (or the best distance so far) is
// pruned before its vector is read. Only the handful of survivors cost a
// record read and an exact distance. This pruning is valid for L2 only;
// other metrics fall back to an exact scan of the warm set.

// numPivots is the number of reference points per entry: the origin
// (whose distance doubles as the sort key) plus three seeded Gaussian
// pivots.
const numPivots = 4

// forceNoMmap routes vector IO through ReadAt/WriteAt even where mmap is
// available; tests use it to cover the fallback path on unix.
var forceNoMmap = false

// warmEntry is one directory record. The key vector itself lives in the
// record file at slot; pd caches its distance to each pivot.
type warmEntry struct {
	docs []int
	tol  float32
	slot int
	pd   [numPivots]float32
	elem *list.Element // position in age order; Value is *warmEntry
}

type warmStore struct {
	dim      int
	capacity int
	metric   vec.Metric
	dist     vec.DistanceFunc

	origin vec.Vector                // all-zero reference for pd[0]
	pivots [numPivots - 1]vec.Vector // seeded Gaussian references

	f        *os.File
	data     []byte // mmap view of the record file; nil under fallback IO
	scratchB []byte // fallback byte buffer, one record
	scratchF []float32

	dir []*warmEntry // sorted ascending by pd[0]
	// pds mirrors dir's pivot distances in one contiguous block: the
	// lookup window walks pds and only dereferences a dir entry once a
	// candidate survives the cheap bounds, so a pruned candidate costs a
	// few sequential float reads instead of a pointer chase per entry.
	pds    [][numPivots]float32
	age    *list.List // front = oldest = next to discard
	free   []int      // recycled record slots
	next   int        // next never-used slot
	maxTol float32    // monotone upper bound over inserted tolerances

	// Counters (reported through TierStats).
	lookups int64 // lookups that consulted a non-empty warm tier
	scanned int64 // vectors read and exactly compared
	pruned  int64 // entries skipped by the norm window or pivot bounds
	comps   int64 // distance computations (pivot projections + exact reads)
}

// newWarmStore creates the record file (capacity·dim·4 bytes, sparse
// until written) in dir, or os.TempDir() when dir is empty. On unix the
// file is unlinked immediately so a crash cannot leak it.
func newWarmStore(dim, capacity int, metric vec.Metric, dir string, seed uint64) (*warmStore, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("tier: dimension must be positive, got %d", dim)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("tier: warm capacity must be positive, got %d", capacity)
	}
	if dir == "" {
		dir = os.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tier: create warm dir: %w", err)
	}
	f, err := os.CreateTemp(dir, "proximity-warm-*.dat")
	if err != nil {
		return nil, fmt.Errorf("tier: create warm record file: %w", err)
	}
	unlinkOpenFile(f)
	size := capacity * dim * 4
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: size warm record file: %w", err)
	}
	w := &warmStore{
		dim:      dim,
		capacity: capacity,
		metric:   metric,
		dist:     metric.Func(),
		origin:   make(vec.Vector, dim),
		f:        f,
		age:      list.New(),
	}
	if mmapSupported && !forceNoMmap {
		data, err := mmapFile(f, size)
		if err == nil {
			w.data = data
		}
		// On mmap failure fall through to file IO rather than erroring:
		// the store works either way, just slower.
	}
	if w.data == nil {
		w.scratchB = make([]byte, dim*4)
		w.scratchF = floatView(w.scratchB, dim)
	}
	if metric == vec.L2Distance {
		rng := vec.NewRand(seed)
		for i := range w.pivots {
			w.pivots[i] = vec.RandomGaussian(rng, dim)
		}
	}
	return w, nil
}

// floatView reinterprets b as float32s without copying. The bytes come
// from either an mmap (page-aligned) or a heap make (8-byte aligned), so
// the 4-byte alignment float32 needs always holds. The view is native-
// endian scratch, never an interchange format.
func floatView(b []byte, n int) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}

func (w *warmStore) len() int { return len(w.dir) }

// bytes reports the vector bytes resident in the record file.
func (w *warmStore) bytes() int64 { return int64(len(w.dir)) * int64(w.dim) * 4 }

// writeSlot stores key into the record file at slot.
func (w *warmStore) writeSlot(slot int, key vec.Vector) {
	if w.data != nil {
		copy(floatView(w.data[slot*w.dim*4:], w.dim), key)
		return
	}
	copy(w.scratchF, key)
	if _, err := w.f.WriteAt(w.scratchB, int64(slot)*int64(w.dim)*4); err != nil {
		// The file was pre-sized at construction; a write failure here
		// means the scratch volume died under us.
		panic(fmt.Sprintf("tier: warm record write: %v", err))
	}
}

// slotView returns the vector stored at slot. Under mmap it aliases the
// mapping (valid until the slot is rewritten); under fallback IO it
// aliases the shared scratch buffer (valid until the next read/write).
// Callers that retain the vector must clone it.
func (w *warmStore) slotView(slot int) vec.Vector {
	if w.data != nil {
		return floatView(w.data[slot*w.dim*4:], w.dim)
	}
	if _, err := w.f.ReadAt(w.scratchB, int64(slot)*int64(w.dim)*4); err != nil {
		panic(fmt.Sprintf("tier: warm record read: %v", err))
	}
	return w.scratchF
}

// readKey returns a caller-owned copy of e's vector.
func (w *warmStore) readKey(e *warmEntry) vec.Vector {
	return vec.Clone(w.slotView(e.slot))
}

// pdOf computes v's distance to each pivot (L2 only).
func (w *warmStore) pdOf(v vec.Vector) [numPivots]float32 {
	var pd [numPivots]float32
	pd[0] = w.dist(v, w.origin)
	for i, p := range w.pivots {
		pd[i+1] = w.dist(v, p)
	}
	return pd
}

// insert appends e as the youngest warm entry, discarding the oldest
// first when full (reported via the return so the caller can count it as
// the tiered cache's true eviction). The entry's slices are retained
// without copying — insert is the receiving end of the demotion hook's
// ownership transfer.
func (w *warmStore) insert(e core.Entry) (discarded bool) {
	if len(w.dir) >= w.capacity {
		oldest, ok := w.age.Front().Value.(*warmEntry)
		if !ok {
			panic(fmt.Sprintf("tier: unexpected age list element %T", w.age.Front().Value))
		}
		w.remove(oldest)
		discarded = true
	}
	var slot int
	if n := len(w.free); n > 0 {
		slot = w.free[n-1]
		w.free = w.free[:n-1]
	} else {
		slot = w.next
		w.next++
	}
	w.writeSlot(slot, e.Key)
	we := &warmEntry{docs: e.Docs, tol: e.Tol, slot: slot}
	if w.metric == vec.L2Distance {
		we.pd = w.pdOf(e.Key)
	}
	i := sort.Search(len(w.dir), func(i int) bool { return w.pds[i][0] > we.pd[0] })
	w.dir = append(w.dir, nil)
	copy(w.dir[i+1:], w.dir[i:])
	w.dir[i] = we
	w.pds = append(w.pds, [numPivots]float32{})
	copy(w.pds[i+1:], w.pds[i:])
	w.pds[i] = we.pd
	we.elem = w.age.PushBack(we)
	if e.Tol > w.maxTol {
		// Monotone: removals never lower it. Only ever too wide, which
		// keeps the lookup window conservative but always correct.
		w.maxTol = e.Tol
	}
	return discarded
}

// remove detaches e from the directory, the age order, and recycles its
// record slot. The slot's bytes stay until reused, which is fine: only
// directory entries are ever read.
func (w *warmStore) remove(e *warmEntry) {
	w.age.Remove(e.elem)
	i := sort.Search(len(w.dir), func(i int) bool { return w.pds[i][0] >= e.pd[0] })
	for ; i < len(w.dir) && w.dir[i] != e; i++ {
	}
	if i == len(w.dir) {
		panic("tier: warm entry missing from directory")
	}
	w.dir = append(w.dir[:i], w.dir[i+1:]...)
	w.pds = append(w.pds[:i], w.pds[i+1:]...)
	w.free = append(w.free, e.slot)
}

// lookup returns the warm entry closest to q among those admissible
// (d ≤ entry tolerance) and strictly better than bound — the hot tier's
// best distance, or +Inf when the hot tier missed. Equal distances lose
// to the hot tier, mirroring a flat scan's first-seen tie-break.
func (w *warmStore) lookup(q vec.Vector, bound float32) (best *warmEntry, bestD float32, ok bool) {
	if len(w.dir) == 0 {
		return nil, 0, false
	}
	w.lookups++
	if w.metric != vec.L2Distance {
		// No triangle inequality to prune with: exact scan.
		for _, e := range w.dir {
			d := w.dist(q, w.slotView(e.slot))
			w.scanned++
			w.comps++
			if d <= e.tol && d < bound && (best == nil || d < bestD) {
				best, bestD = e, d
			}
		}
		return best, bestD, best != nil
	}
	qpd := w.pdOf(q)
	w.comps += numPivots
	// A winning entry must satisfy d ≤ min(maxTol, bound), and d is at
	// least the norm gap |qpd[0] − pd[0]|, so only the sorted window
	// within thr of the query's norm can contain one.
	thr := w.maxTol
	if bound < thr {
		thr = bound
	}
	lo := sort.Search(len(w.dir), func(i int) bool { return w.pds[i][0] >= qpd[0]-thr })
	hi := sort.Search(len(w.dir), func(i int) bool { return w.pds[i][0] > qpd[0]+thr })
	w.pruned += int64(len(w.dir) - (hi - lo))
	for i := lo; i < hi; i++ {
		pd := &w.pds[i]
		lb := qpd[0] - pd[0]
		if lb < 0 {
			lb = -lb
		}
		for p := 1; p < numPivots && lb < thr; p++ {
			g := qpd[p] - pd[p]
			if g < 0 {
				g = -g
			}
			if g > lb {
				lb = g
			}
		}
		// d ≥ lb, so the entry cannot win if the bound already rules out
		// beating the hot tier (lb ≥ bound), the best warm candidate so
		// far (lb ≥ bestD), or admissibility (lb > tol; lb ≥ thr ≥ maxTol
		// covers it when the pivot loop exited early).
		if lb >= bound || (best != nil && lb >= bestD) {
			w.pruned++
			continue
		}
		e := w.dir[i]
		if lb > e.tol {
			w.pruned++
			continue
		}
		d := w.dist(q, w.slotView(e.slot))
		w.scanned++
		w.comps++
		if d <= e.tol && d < bound && (best == nil || d < bestD) {
			best, bestD = e, d
		}
	}
	return best, bestD, best != nil
}

// entries returns caller-owned copies of the warm contents in eviction
// order (oldest first). O(W·d).
func (w *warmStore) entries() []core.Entry {
	out := make([]core.Entry, 0, len(w.dir))
	for el := w.age.Front(); el != nil; el = el.Next() {
		e, ok := el.Value.(*warmEntry)
		if !ok {
			panic(fmt.Sprintf("tier: unexpected age list element %T", el.Value))
		}
		out = append(out, core.Entry{
			Key:  w.readKey(e),
			Docs: append([]int(nil), e.docs...),
			Tol:  e.tol,
		})
	}
	return out
}

// clear drops all entries. Counters and the record file are preserved;
// slots restart from zero.
func (w *warmStore) clear() {
	w.dir = nil
	w.pds = nil
	w.age.Init()
	w.free = nil
	w.next = 0
	w.maxTol = 0
}

// close releases the mapping and the record file. On platforms where the
// file could not be unlinked at open it is removed here.
func (w *warmStore) close() error {
	var err error
	if w.data != nil {
		err = munmapFile(w.data)
		w.data = nil
	}
	name := w.f.Name()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	os.Remove(name) // already unlinked on unix; ENOENT is fine
	return err
}
