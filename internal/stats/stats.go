// Package stats provides the small statistical toolkit behind the
// evaluation harness: streaming mean/variance (Welford), percentiles,
// histograms, and least-squares fits. The paper reports averages over five
// seeded runs (§4.2.4) and fits a Zipf exponent by regression on the
// log-log rank-frequency curve (Fig. 2); both are built on this package.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation needs at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Welford accumulates a running mean and variance in one pass. The zero
// value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with <2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks — the "C = 1" variant (R-7, the
// numpy/Excel default): the target rank is p/100*(n-1) on the sorted
// samples, and fractional ranks blend the two neighbors. This differs
// from the nearest-rank method (R-1), which always returns an observed
// sample: for xs = [10, 20, 30, 40], P(50) here is 25 (midpoint), where
// nearest-rank would give 20. Interpolation is smoother for the small n
// of per-run summaries; for n >= ~1000 the two agree to well under the
// noise floor. P(0) and P(100) are the min and max exactly.
// xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 100 {
		return sorted[len(sorted)-1], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// LinearFit fits y = intercept + slope*x by ordinary least squares.
// It requires at least two points with non-zero x variance.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: x/y length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, ErrEmpty
	}
	var sx, sy Welford
	for i := range xs {
		sx.Add(xs[i])
		sy.Add(ys[i])
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - sx.Mean()) * (ys[i] - sy.Mean())
	}
	varx := sx.Variance() * float64(len(xs)-1)
	if varx == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	slope = cov / varx
	intercept = sy.Mean() - slope*sx.Mean()
	return slope, intercept, nil
}

// RSquared returns the coefficient of determination of the linear model
// (slope, intercept) on (xs, ys).
func RSquared(xs, ys []float64, slope, intercept float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var my Welford
	for _, y := range ys {
		my.Add(y)
	}
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my.Mean()) * (ys[i] - my.Mean())
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
