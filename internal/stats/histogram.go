package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a fixed-bucket linear histogram over [lo, hi). Samples
// outside the range are clamped into the edge buckets so counts are never
// silently dropped.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	count   int64
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >0 buckets, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v, %v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// LatencyRecorder accumulates durations and reports summary statistics.
// The evaluation reports retrieval latency means (Fig. 6c, 7d) and the
// cache-lookup distributions (Fig. 10, 11) through this type.
type LatencyRecorder struct {
	samples []time.Duration
}

// Record appends one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
}

// N returns the number of recorded samples.
func (r *LatencyRecorder) N() int { return len(r.samples) }

// Mean returns the mean latency, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile latency, or 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	xs := make([]float64, len(r.samples))
	for i, s := range r.samples {
		xs[i] = float64(s)
	}
	v, err := Percentile(xs, p)
	if err != nil {
		return 0
	}
	return time.Duration(v)
}

// Max returns the largest recorded latency.
func (r *LatencyRecorder) Max() time.Duration {
	var m time.Duration
	for _, s := range r.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Total returns the sum of all recorded latencies.
func (r *LatencyRecorder) Total() time.Duration {
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum
}

// GeometricMean returns exp(mean(log x)) of positive samples; used for
// summarizing multiplicative speedups across experiments.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean needs positive samples, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Median is a convenience wrapper for the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
