package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a fixed-bucket linear histogram over [lo, hi). Samples
// outside the range are clamped into the edge buckets so counts are never
// silently dropped.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	count   int64
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >0 buckets, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v, %v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Merge folds other's counts into h. The two histograms must share the
// same range and bucket count (the per-shard/per-worker aggregation
// contract); mismatched layouts return an error and leave h unchanged.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.lo != h.lo || other.hi != h.hi || len(other.buckets) != len(h.buckets) {
		return fmt.Errorf("stats: merge layout mismatch: [%v,%v)x%d vs [%v,%v)x%d",
			h.lo, h.hi, len(h.buckets), other.lo, other.hi, len(other.buckets))
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	return nil
}

// Quantile estimates the q-th quantile (0..1) from the bucket counts:
// it walks the cumulative counts to the bucket holding the target rank
// (rank = ceil(q*count), 1-based) and interpolates linearly within that
// bucket's bounds. The error is bounded by one bucket width; edge
// buckets also absorb clamped out-of-range samples, so quantiles landing
// there are saturated rather than extrapolated. Returns 0 with no
// samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	var cum int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := h.lo + float64(i)*width
			frac := float64(rank-cum) / float64(c)
			return lo + frac*width
		}
		cum += c
	}
	return h.hi
}

// LatencyRecorder accumulates durations and reports summary statistics.
// The evaluation reports retrieval latency means (Fig. 6c, 7d) and the
// cache-lookup distributions (Fig. 10, 11) through this type.
type LatencyRecorder struct {
	samples []time.Duration
}

// Record appends one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
}

// N returns the number of recorded samples.
func (r *LatencyRecorder) N() int { return len(r.samples) }

// Mean returns the mean latency, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Merge appends other's samples into r — combining per-worker recorders
// into one distribution after a run. Exact (no binning): percentiles of
// the merged recorder equal percentiles over the concatenated samples.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other == nil {
		return
	}
	r.samples = append(r.samples, other.samples...)
}

// Percentile returns the p-th percentile latency, or 0 with no samples.
// The estimator is Percentile's linear interpolation between closest
// ranks (R-7), NOT nearest-rank: with few samples the result may fall
// between two observed latencies. See Percentile for the exact contract.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	xs := make([]float64, len(r.samples))
	for i, s := range r.samples {
		xs[i] = float64(s)
	}
	v, err := Percentile(xs, p)
	if err != nil {
		return 0
	}
	return time.Duration(v)
}

// Max returns the largest recorded latency.
func (r *LatencyRecorder) Max() time.Duration {
	var m time.Duration
	for _, s := range r.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Total returns the sum of all recorded latencies.
func (r *LatencyRecorder) Total() time.Duration {
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum
}

// GeometricMean returns exp(mean(log x)) of positive samples; used for
// summarizing multiplicative speedups across experiments.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean needs positive samples, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Median is a convenience wrapper for the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
