package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if got := w.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := w.Stddev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestMean(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil) should return ErrEmpty")
	}
	got, err := Mean([]float64{1, 2, 3})
	if err != nil || got != 2 {
		t.Errorf("Mean = %v, %v", got, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 10},
		{p: 100, want: 50},
		{p: 50, want: 30},
		{p: 25, want: 20},
		{p: 90, want: 46},
		{p: -5, want: 10},
		{p: 150, want: 50},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestLinearFit(t *testing.T) {
	// Exact line y = 3 + 2x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-3) > 1e-9 {
		t.Errorf("fit = %v, %v; want 2, 3", slope, intercept)
	}
	if r2 := RSquared(xs, ys, slope, intercept); math.Abs(r2-1) > 1e-12 {
		t.Errorf("R² = %v, want 1", r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("single point should return ErrEmpty")
	}
	if _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

// Property: Welford matches the two-pass mean/variance on random data.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		scale := 1 + math.Abs(mean) + variance
		return math.Abs(w.Mean()-mean) < 1e-6*scale && math.Abs(w.Variance()-variance) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	want := []int64{3, 1, 1, 0, 2} // -3 clamps into bucket 0, 42 into bucket 4
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Bucket(0) != 3 {
		t.Errorf("Bucket(0) = %d", h.Bucket(0))
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 buckets should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi should error")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Error("lo > hi should error")
	}
}

func TestLatencyRecorder(t *testing.T) {
	var r LatencyRecorder
	if r.Mean() != 0 || r.Percentile(99) != 0 || r.Max() != 0 || r.N() != 0 {
		t.Error("empty recorder should report zeros")
	}
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		r.Record(d)
	}
	if r.N() != 3 {
		t.Errorf("N = %d", r.N())
	}
	if got := r.Mean(); got != 2*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := r.Max(); got != 3*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := r.Total(); got != 6*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
	if got := r.Percentile(50); got != 2*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	got, err := GeometricMean([]float64{1, 100})
	if err != nil || math.Abs(got-10) > 1e-9 {
		t.Errorf("GeometricMean = %v, %v", got, err)
	}
	if _, err := GeometricMean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty should return ErrEmpty")
	}
	if _, err := GeometricMean([]float64{1, -1}); err == nil {
		t.Error("negative sample should error")
	}
}

func TestMedianAndSorted(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Errorf("Median = %v, %v", m, err)
	}
	in := []float64{3, 1, 2}
	out := Sorted(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Errorf("Sorted mutated input or wrong order: in=%v out=%v", in, out)
	}
}
