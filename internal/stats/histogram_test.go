package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestPercentileEstimatorTable pins the interpolating estimator (R-7)
// against hand-computed values, including the cases where it diverges
// from nearest-rank.
func TestPercentileEstimatorTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"single", []float64{7}, 50, 7},
		{"min", []float64{1, 2, 3, 4}, 0, 1},
		{"max", []float64{1, 2, 3, 4}, 100, 4},
		// R-7 median of an even count is the midpoint; nearest-rank
		// would return 20.
		{"median-even", []float64{10, 20, 30, 40}, 50, 25},
		{"median-odd", []float64{10, 20, 30}, 50, 20},
		// rank = 0.75*(5-1) = 3.0 exactly -> sorted[3].
		{"exact-rank", []float64{1, 2, 3, 4, 5}, 75, 4},
		// rank = 0.9*(5-1) = 3.6 -> 4*(0.4) + 5*(0.6) = 4.6.
		{"interpolated", []float64{1, 2, 3, 4, 5}, 90, 4.6},
		{"unsorted-input", []float64{40, 10, 30, 20}, 50, 25},
		{"clamp-low", []float64{5, 6}, -10, 5},
		{"clamp-high", []float64{5, 6}, 200, 6},
	}
	for _, tc := range cases {
		got, err := Percentile(tc.xs, tc.p)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", tc.name, tc.xs, tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty input should error")
	}
}

// TestPercentileKnownDistributions checks quantile estimates against the
// analytic quantiles of sampled distributions.
func TestPercentileKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 50000

	// Uniform [0, 1): quantile q is q.
	uni := make([]float64, n)
	for i := range uni {
		uni[i] = rng.Float64()
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got, err := Percentile(uni, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p/100) > 0.01 {
			t.Errorf("uniform P(%v) = %v, want %v", p, got, p/100)
		}
	}

	// Exponential(λ=1): quantile q is -ln(1-q).
	exp := make([]float64, n)
	for i := range exp {
		exp[i] = rng.ExpFloat64()
	}
	for _, p := range []float64{50, 90, 99} {
		got, err := Percentile(exp, p)
		if err != nil {
			t.Fatal(err)
		}
		want := -math.Log(1 - p/100)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("exponential P(%v) = %v, want %v", p, got, want)
		}
	}
}

// TestLatencyRecorderMerge verifies the merged recorder matches a
// recorder fed the concatenated stream exactly.
func TestLatencyRecorderMerge(t *testing.T) {
	var a, b, all LatencyRecorder
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Int63n(1_000_000))
		a.Record(d)
		all.Record(d)
	}
	for i := 0; i < 700; i++ {
		d := time.Duration(rng.Int63n(10_000_000))
		b.Record(d)
		all.Record(d)
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	for _, p := range []float64{50, 95, 99} {
		if got, want := a.Percentile(p), all.Percentile(p); got != want {
			t.Errorf("P(%v): merged %v != concatenated %v", p, got, want)
		}
	}
	if a.Mean() != all.Mean() || a.Max() != all.Max() || a.Total() != all.Total() {
		t.Error("merged summary stats diverge from concatenated")
	}
}

// TestHistogramMergeAndQuantile covers the fixed-bucket histogram's new
// aggregation path.
func TestHistogramMergeAndQuantile(t *testing.T) {
	mk := func() *Histogram {
		h, err := NewHistogram(0, 100, 50)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		a.Add(rng.Float64() * 100)
		b.Add(rng.Float64() * 100)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 40000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	// Uniform over [0,100): quantile q ≈ 100q, tolerance one bucket (2).
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := a.Quantile(q)
		if math.Abs(got-q*100) > 2.5 {
			t.Errorf("Quantile(%v) = %v, want ~%v", q, got, q*100)
		}
	}
	// Layout mismatch is rejected without mutating.
	other, err := NewHistogram(0, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Count()
	if err := a.Merge(other); err == nil {
		t.Error("mismatched layout should error")
	}
	if a.Count() != before {
		t.Error("failed merge mutated the histogram")
	}
	// Empty histogram quantile and clamping.
	if mk().Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	e := mk()
	e.Add(50)
	if lo, hi := e.Quantile(-1), e.Quantile(2); lo > hi || hi > 100 {
		t.Errorf("clamped quantiles = %v, %v", lo, hi)
	}
}
