// Package vamana implements the Vamana proximity graph of DiskANN
// (Jayaram Subramanya et al., NeurIPS 2019) — the reproduction's stand-in
// for the DiskANN deployment the paper uses for the large-scale TripClick
// experiment (§4.5.3). DiskANN stores the graph on SSD and pays one disk
// read per expanded node during beam search; the paper points out (§4.3.4)
// that such disk-resident indexes make retrieval slower and caching
// proportionally more valuable. This implementation builds the Vamana
// graph in memory and *simulates* the SSD: every node expansion counts as
// one disk read, and SearchWithStats reports the I/O count so a latency
// model can convert hops into service time.
package vamana

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// Config parameterizes graph construction and search.
type Config struct {
	// R is the maximum graph out-degree. Default 32.
	R int
	// L is the beam width used for construction and default search.
	// Default 64.
	L int
	// Alpha is the RobustPrune distance-slack factor (≥ 1). Default 1.2.
	Alpha float32
	// Seed drives the random initial graph.
	Seed uint64
	// ReadLatency is the simulated SSD latency charged per expanded
	// node by SimulatedLatency. Default 100µs (one 4K read on NVMe).
	ReadLatency time.Duration
}

func (c *Config) fillDefaults() {
	if c.R == 0 {
		c.R = 32
	}
	if c.L == 0 {
		c.L = 64
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 100 * time.Microsecond
	}
}

func (c Config) validate() error {
	if c.R < 2 {
		return fmt.Errorf("vamana: R must be ≥ 2, got %d", c.R)
	}
	if c.L < 1 {
		return fmt.Errorf("vamana: L must be positive, got %d", c.L)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("vamana: alpha must be ≥ 1, got %v", c.Alpha)
	}
	return nil
}

// SearchStats reports the simulated I/O cost of one beam search.
type SearchStats struct {
	// NodesExpanded is the number of graph nodes whose adjacency lists
	// were fetched — one simulated SSD read each.
	NodesExpanded int
	// DistComps is the number of distance computations performed.
	DistComps int
}

// Index is a built Vamana graph. Build it with Build; Search is safe for
// concurrent use afterwards.
type Index struct {
	cfg     Config
	dim     int
	metric  vec.Metric
	dist    vec.DistanceFunc
	vectors []vec.Vector
	adj     [][]int
	medoid  int
}

var (
	_ vectordb.DB           = (*Index)(nil)
	_ vectordb.VectorSource = (*Index)(nil)
)

// Build constructs a Vamana graph over the given vectors: start from a
// random R-regular graph, then for each point run a beam search from the
// medoid and RobustPrune the visited set into the point's out-edges,
// inserting pruned back-edges as DiskANN does.
func Build(vectors []vec.Vector, metric vec.Metric, cfg Config) (*Index, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(vectors) == 0 {
		return nil, vectordb.ErrEmptyIndex
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("vamana: vector %d has dim %d, expected %d: %w",
				i, len(v), dim, vec.ErrDimensionMismatch)
		}
	}
	ix := &Index{
		cfg:     cfg,
		dim:     dim,
		metric:  metric,
		dist:    metric.Func(),
		vectors: vectors,
		adj:     make([][]int, len(vectors)),
	}
	ix.medoid = ix.findMedoid()

	rng := vec.NewRand(cfg.Seed)
	n := len(vectors)
	for i := range ix.adj {
		// Random initial out-edges (skipping self).
		degree := cfg.R
		if degree > n-1 {
			degree = n - 1
		}
		seen := map[int]struct{}{i: {}}
		for len(ix.adj[i]) < degree {
			j := int(rng.Uint64() % uint64(n))
			if _, dup := seen[j]; dup {
				continue
			}
			seen[j] = struct{}{}
			ix.adj[i] = append(ix.adj[i], j)
		}
	}

	// Two passes as in the DiskANN paper: the second pass with the full
	// alpha slack repairs edges broken by early inserts.
	for pass := 0; pass < 2; pass++ {
		alpha := float32(1)
		if pass == 1 {
			alpha = cfg.Alpha
		}
		for i := 0; i < n; i++ {
			visited, _ := ix.beamSearch(vectors[i], cfg.L, nil)
			ix.adj[i] = ix.robustPrune(i, visited, alpha)
			for _, j := range ix.adj[i] {
				ix.addEdge(j, i, alpha)
			}
		}
	}
	return ix, nil
}

// findMedoid returns the index of the vector closest to the dataset
// centroid; beam searches start here.
func (ix *Index) findMedoid() int {
	centroid := make(vec.Vector, ix.dim)
	for _, v := range ix.vectors {
		vec.AXPY(centroid, 1, v)
	}
	vec.Scale(centroid, 1/float32(len(ix.vectors)))
	best, bestDist := 0, ix.dist(centroid, ix.vectors[0])
	for i := 1; i < len(ix.vectors); i++ {
		if d := ix.dist(centroid, ix.vectors[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// addEdge inserts edge from->to, pruning if the degree bound is exceeded.
func (ix *Index) addEdge(from, to int, alpha float32) {
	for _, e := range ix.adj[from] {
		if e == to {
			return
		}
	}
	ix.adj[from] = append(ix.adj[from], to)
	if len(ix.adj[from]) > ix.cfg.R {
		cands := make([]vec.Scored, len(ix.adj[from]))
		for i, e := range ix.adj[from] {
			cands[i] = vec.Scored{ID: e, Dist: ix.dist(ix.vectors[from], ix.vectors[e])}
		}
		ix.adj[from] = ix.robustPrune(from, cands, alpha)
	}
}

// robustPrune selects up to R out-edges for node p from the candidate set:
// repeatedly take the closest remaining candidate c, then drop every
// candidate c' with alpha·d(c, c') ≤ d(p, c'), which guarantees directional
// diversity of the retained edges.
func (ix *Index) robustPrune(p int, candidates []vec.Scored, alpha float32) []int {
	// Deduplicate and drop self.
	seen := make(map[int]struct{}, len(candidates))
	pool := make([]vec.Scored, 0, len(candidates))
	for _, c := range candidates {
		if c.ID == p {
			continue
		}
		if _, dup := seen[c.ID]; dup {
			continue
		}
		seen[c.ID] = struct{}{}
		pool = append(pool, vec.Scored{ID: c.ID, Dist: ix.dist(ix.vectors[p], ix.vectors[c.ID])})
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Dist != pool[j].Dist {
			return pool[i].Dist < pool[j].Dist
		}
		return pool[i].ID < pool[j].ID
	})

	var out []int
	removed := make([]bool, len(pool))
	for i := 0; i < len(pool) && len(out) < ix.cfg.R; i++ {
		if removed[i] {
			continue
		}
		c := pool[i]
		out = append(out, c.ID)
		for j := i + 1; j < len(pool); j++ {
			if removed[j] {
				continue
			}
			if alpha*ix.dist(ix.vectors[c.ID], ix.vectors[pool[j].ID]) <= pool[j].Dist {
				removed[j] = true
			}
		}
	}
	return out
}

// beamSearch runs the greedy beam search from the medoid, returning all
// visited (expanded) nodes scored by distance, sorted ascending. stats may
// be nil.
func (ix *Index) beamSearch(q vec.Vector, beam int, stats *SearchStats) ([]vec.Scored, []vec.Scored) {
	start := vec.Scored{ID: ix.medoid, Dist: ix.dist(q, ix.vectors[ix.medoid])}
	if stats != nil {
		stats.DistComps++
	}
	frontier := &minHeap{start}
	inFrontier := map[int]struct{}{ix.medoid: {}}
	expanded := map[int]struct{}{}
	var visited []vec.Scored
	best := &boundedMax{cap: beam}
	best.push(start)

	for frontier.Len() > 0 {
		c := heap.Pop(frontier).(vec.Scored)
		if _, done := expanded[c.ID]; done {
			continue
		}
		if best.full() && c.Dist > best.worst() {
			break
		}
		expanded[c.ID] = struct{}{}
		visited = append(visited, c)
		if stats != nil {
			stats.NodesExpanded++ // one simulated SSD read
		}
		for _, n := range ix.adj[c.ID] {
			if _, done := expanded[n]; done {
				continue
			}
			if _, queued := inFrontier[n]; queued {
				continue
			}
			d := ix.dist(q, ix.vectors[n])
			if stats != nil {
				stats.DistComps++
			}
			if best.full() && d > best.worst() {
				continue
			}
			inFrontier[n] = struct{}{}
			heap.Push(frontier, vec.Scored{ID: n, Dist: d})
			best.push(vec.Scored{ID: n, Dist: d})
		}
	}
	sort.Slice(visited, func(i, j int) bool {
		if visited[i].Dist != visited[j].Dist {
			return visited[i].Dist < visited[j].Dist
		}
		return visited[i].ID < visited[j].ID
	})
	return visited, best.items
}

// Search returns the approximate k nearest neighbors.
func (ix *Index) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	res, _, err := ix.SearchWithStats(q, k)
	return res, err
}

// SearchWithStats additionally reports the simulated I/O cost.
func (ix *Index) SearchWithStats(q vec.Vector, k int) ([]vec.Scored, SearchStats, error) {
	var stats SearchStats
	if k <= 0 {
		return nil, stats, vectordb.ErrBadK
	}
	if len(q) != ix.dim {
		return nil, stats, fmt.Errorf("vamana: query dim %d, index dim %d: %w",
			len(q), ix.dim, vec.ErrDimensionMismatch)
	}
	beam := ix.cfg.L
	if beam < k {
		beam = k
	}
	_, pool := ix.beamSearch(q, beam, &stats)
	return vec.TopK(pool, k), stats, nil
}

// SimulatedLatency converts search stats into a modeled SSD service time.
func (ix *Index) SimulatedLatency(stats SearchStats) time.Duration {
	return time.Duration(stats.NodesExpanded) * ix.cfg.ReadLatency
}

// Dim returns the indexed dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.vectors) }

// Metric returns the distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Medoid returns the beam-search entry point.
func (ix *Index) Medoid() int { return ix.medoid }

// Degree returns the out-degree of node id (diagnostics).
func (ix *Index) Degree(id int) int { return len(ix.adj[id]) }

// Vector returns the stored vector for an ID.
func (ix *Index) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= len(ix.vectors) {
		return nil, fmt.Errorf("vamana: id %d out of range (have %d)", id, len(ix.vectors))
	}
	return ix.vectors[id], nil
}

type minHeap []vec.Scored

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Dist < h[j].Dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(vec.Scored)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// boundedMax keeps the `cap` closest items seen.
type boundedMax struct {
	items []vec.Scored
	cap   int
}

func (b *boundedMax) full() bool { return len(b.items) >= b.cap }

func (b *boundedMax) worst() float32 {
	w := float32(0)
	for _, it := range b.items {
		if it.Dist > w {
			w = it.Dist
		}
	}
	return w
}

func (b *boundedMax) push(s vec.Scored) {
	for _, it := range b.items {
		if it.ID == s.ID {
			return
		}
	}
	if !b.full() {
		b.items = append(b.items, s)
		return
	}
	worstIdx, worst := -1, float32(-1)
	for i, it := range b.items {
		if it.Dist > worst {
			worstIdx, worst = i, it.Dist
		}
	}
	if s.Dist < worst {
		b.items[worstIdx] = s
	}
}
