package vamana

import (
	"errors"
	"sync"
	"testing"
	"time"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func randomVectors(n, d int, seed uint64) []vec.Vector {
	rng := vec.NewRand(seed)
	out := make([]vec.Vector, n)
	for i := range out {
		out[i] = vec.RandomGaussian(rng, d)
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	vs := randomVectors(10, 4, 1)
	tests := []struct {
		name string
		vs   []vec.Vector
		cfg  Config
	}{
		{name: "empty", vs: nil, cfg: Config{}},
		{name: "R too small", vs: vs, cfg: Config{R: 1}},
		{name: "L zero", vs: vs, cfg: Config{L: -1}},
		{name: "alpha below 1", vs: vs, cfg: Config{Alpha: 0.5}},
		{name: "ragged dims", vs: []vec.Vector{{1, 2}, {1}}, cfg: Config{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.vs, vec.L2Distance, tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSearchValidation(t *testing.T) {
	ix, err := Build(randomVectors(20, 4, 2), vec.L2Distance, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(vec.Vector{0, 0, 0, 0}, 0); !errors.Is(err, vectordb.ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := ix.Search(vec.Vector{0}, 1); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("dim mismatch error = %v", err)
	}
}

func TestDegreeBounded(t *testing.T) {
	const r = 8
	ix, err := Build(randomVectors(300, 8, 3), vec.L2Distance, Config{R: r, L: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ix.Len(); i++ {
		if d := ix.Degree(i); d > r {
			t.Fatalf("node %d degree %d exceeds R=%d", i, d, r)
		}
	}
}

func TestTinyDataset(t *testing.T) {
	ix, err := Build([]vec.Vector{{0, 0}, {1, 0}, {0, 1}}, vec.L2Distance, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(vec.Vector{0.9, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 1 {
		t.Errorf("Search = %+v, want id 1", res)
	}
	if ix.Dim() != 2 || ix.Len() != 3 || ix.Metric() != vec.L2Distance {
		t.Error("accessors wrong")
	}
}

func TestRecallAgainstExact(t *testing.T) {
	const (
		n       = 1500
		d       = 24
		k       = 10
		queries = 40
	)
	vs := randomVectors(n, d, 5)
	ix, err := Build(vs, vec.L2Distance, Config{R: 24, L: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := vectordb.NewFlatIndex(d, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Add(vs...); err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(6)
	var hits, total int
	for qi := 0; qi < queries; qi++ {
		q := vec.RandomGaussian(rng, d)
		approx, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := flat.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[int]struct{}, k)
		for _, s := range exact {
			truth[s.ID] = struct{}{}
		}
		for _, s := range approx {
			if _, ok := truth[s.ID]; ok {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.85 {
		t.Errorf("recall@%d = %.3f, want ≥ 0.85", k, recall)
	}
}

func TestSearchWithStats(t *testing.T) {
	ix, err := Build(randomVectors(500, 16, 7), vec.L2Distance, Config{R: 16, L: 32, Seed: 7, ReadLatency: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.RandomGaussian(vec.NewRand(8), 16)
	res, stats, err := ix.SearchWithStats(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if stats.NodesExpanded <= 0 {
		t.Error("beam search should expand nodes")
	}
	if stats.NodesExpanded >= ix.Len()/2 {
		t.Errorf("beam search expanded %d of %d nodes; graph search should touch a small fraction",
			stats.NodesExpanded, ix.Len())
	}
	if stats.DistComps < stats.NodesExpanded {
		t.Error("each expansion computes at least one distance")
	}
	if got := ix.SimulatedLatency(stats); got != time.Duration(stats.NodesExpanded)*50*time.Microsecond {
		t.Errorf("SimulatedLatency = %v", got)
	}
}

func TestResultsSortedAndDeduped(t *testing.T) {
	ix, err := Build(randomVectors(400, 8, 9), vec.L2Distance, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(10)
	for qi := 0; qi < 20; qi++ {
		res, err := ix.Search(vec.RandomGaussian(rng, 8), 6)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]struct{}, len(res))
		for i, s := range res {
			if i > 0 && res[i-1].Dist > s.Dist {
				t.Fatalf("unsorted results: %+v", res)
			}
			if _, dup := seen[s.ID]; dup {
				t.Fatalf("duplicate id %d in results", s.ID)
			}
			seen[s.ID] = struct{}{}
		}
	}
}

func TestVectorAccessorAndMedoid(t *testing.T) {
	vs := []vec.Vector{{0, 0}, {10, 10}, {0.1, 0.1}, {5, 5}}
	ix, err := Build(vs, vec.L2Distance, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ix.Vector(1)
	if err != nil || !vec.Equal(v, vec.Vector{10, 10}) {
		t.Errorf("Vector(1) = %v, %v", v, err)
	}
	if _, err := ix.Vector(99); err == nil {
		t.Error("out of range should error")
	}
	// Centroid is (3.775, 3.775); closest point is {5,5}.
	if ix.Medoid() != 3 {
		t.Errorf("Medoid = %d, want 3", ix.Medoid())
	}
}

func TestConcurrentSearch(t *testing.T) {
	ix, err := Build(randomVectors(600, 12, 13), vec.L2Distance, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(14)
	queries := make([]vec.Vector, 10)
	for i := range queries {
		queries[i] = vec.RandomGaussian(rng, 12)
	}
	want := make([][]vec.Scored, len(queries))
	for i, q := range queries {
		res, err := ix.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	fail := make(chan string, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				res, err := ix.Search(q, 3)
				if err != nil {
					fail <- err.Error()
					return
				}
				for j := range res {
					if res[j] != want[i][j] {
						fail <- "result mismatch under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
