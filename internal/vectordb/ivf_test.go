package vectordb

import (
	"errors"
	"testing"

	"proximity/internal/vec"
)

func ivfRandomVectors(n, d int, seed uint64) []vec.Vector {
	rng := vec.NewRand(seed)
	out := make([]vec.Vector, n)
	for i := range out {
		out[i] = vec.RandomGaussian(rng, d)
	}
	return out
}

func TestBuildIVFValidation(t *testing.T) {
	if _, err := BuildIVF(nil, vec.L2Distance, IVFConfig{}); !errors.Is(err, ErrEmptyIndex) {
		t.Errorf("empty input error = %v", err)
	}
	if _, err := BuildIVF([]vec.Vector{{1, 2}, {1}}, vec.L2Distance, IVFConfig{}); err == nil {
		t.Error("ragged input should error")
	}
}

func TestIVFDefaults(t *testing.T) {
	ix, err := BuildIVF(ivfRandomVectors(100, 8, 1), vec.L2Distance, IVFConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NList() != 10 { // √100
		t.Errorf("NList = %d, want 10", ix.NList())
	}
	if ix.NProbe() < 1 {
		t.Errorf("NProbe = %d", ix.NProbe())
	}
	if ix.Dim() != 8 || ix.Len() != 100 || ix.Metric() != vec.L2Distance {
		t.Error("accessors wrong")
	}
}

func TestIVFTinyDataset(t *testing.T) {
	// Fewer vectors than requested centroids must clamp, not crash.
	ix, err := BuildIVF([]vec.Vector{{0, 0}, {5, 5}}, vec.L2Distance, IVFConfig{NList: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(vec.Vector{0.1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 0 {
		t.Errorf("Search = %+v, want id 0", res)
	}
}

func TestIVFSearchValidation(t *testing.T) {
	ix, err := BuildIVF(ivfRandomVectors(50, 4, 3), vec.L2Distance, IVFConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(vec.Vector{0, 0, 0, 0}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := ix.Search(vec.Vector{0}, 1); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("dim mismatch error = %v", err)
	}
}

func TestIVFRecallImprovesWithProbes(t *testing.T) {
	const (
		n, d, k = 2000, 16, 10
		queries = 40
	)
	vectors := ivfRandomVectors(n, d, 4)
	ix, err := BuildIVF(vectors, vec.L2Distance, IVFConfig{NList: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewFlatFromVectors(vectors, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(nprobe int) float64 {
		rng := vec.NewRand(5)
		var hits, total int
		for qi := 0; qi < queries; qi++ {
			q := vec.RandomGaussian(rng, d)
			approx, err := ix.SearchProbe(q, k, nprobe)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := flat.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			truth := make(map[int]struct{}, k)
			for _, s := range exact {
				truth[s.ID] = struct{}{}
			}
			for _, s := range approx {
				if _, ok := truth[s.ID]; ok {
					hits++
				}
			}
			total += k
		}
		return float64(hits) / float64(total)
	}
	low, all := recallAt(2), recallAt(40)
	if all < 0.999 {
		t.Errorf("probing every list must be exact, recall = %.3f", all)
	}
	if low >= all {
		t.Errorf("recall should improve with probes: nprobe=2 %.3f vs full %.3f", low, all)
	}
	if low < 0.2 {
		t.Errorf("nprobe=2 recall = %.3f, implausibly low", low)
	}
}

func TestIVFListsPartitionTheData(t *testing.T) {
	vectors := ivfRandomVectors(300, 8, 6)
	ix, err := BuildIVF(vectors, vec.L2Distance, IVFConfig{NList: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]struct{}, len(vectors))
	for _, list := range ix.lists {
		for _, id := range list {
			if _, dup := seen[id]; dup {
				t.Fatalf("vector %d appears in two lists", id)
			}
			seen[id] = struct{}{}
		}
	}
	if len(seen) != len(vectors) {
		t.Errorf("lists cover %d of %d vectors", len(seen), len(vectors))
	}
}

func TestIVFVectorAccessor(t *testing.T) {
	vectors := ivfRandomVectors(10, 4, 7)
	ix, err := BuildIVF(vectors, vec.L2Distance, IVFConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ix.Vector(3)
	if err != nil || !vec.Equal(v, vectors[3]) {
		t.Errorf("Vector(3) = %v, %v", v, err)
	}
	if _, err := ix.Vector(-1); err == nil {
		t.Error("negative id should error")
	}
	if _, err := ix.Vector(10); err == nil {
		t.Error("out-of-range id should error")
	}
}

func TestIVFClusteredDataGetsCleanLists(t *testing.T) {
	// Points in two tight, distant blobs: with 2 centroids, each list
	// holds exactly one blob, and nprobe=1 finds in-blob neighbors.
	rng := vec.NewRand(8)
	a := vec.Scale(vec.RandomUnit(rng, 8), 20)
	b := vec.Scale(vec.RandomUnit(rng, 8), -20)
	var vectors []vec.Vector
	for i := 0; i < 50; i++ {
		vectors = append(vectors, vec.GaussianAround(rng, a, 0.1))
		vectors = append(vectors, vec.GaussianAround(rng, b, 0.1))
	}
	ix, err := BuildIVF(vectors, vec.L2Distance, IVFConfig{NList: 2, NProbe: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.GaussianAround(rng, a, 0.1)
	res, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res {
		// Blob-a points have even indices by construction.
		if s.ID%2 != 0 {
			t.Errorf("nprobe=1 search near blob A returned blob-B vector %d", s.ID)
		}
	}
}

func TestIntSqrt(t *testing.T) {
	tests := []struct{ give, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 2}, {5, 3}, {100, 10}, {101, 11},
	}
	for _, tt := range tests {
		if got := intSqrt(tt.give); got != tt.want {
			t.Errorf("intSqrt(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}
