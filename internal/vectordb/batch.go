package vectordb

import (
	"fmt"

	"proximity/internal/vec"
)

// BatchDB extends DB with a batched search entry point. Batch-aware
// indexes amortize per-query overheads — the flat index walks the stored
// vectors once per batch, the IVF index probes each coarse cell once per
// batch — which is what makes miss coalescing (internal/batch) pay off
// under concurrent load.
//
// Implementations must return results identical to issuing Search per
// query: same IDs, same distances, same (distance, ID) ordering. The
// miss-coalescing batch queue (internal/batch) relies on this
// equivalence to stay invisible to the retriever.
type BatchDB interface {
	DB
	// SearchBatch returns, for each query, its k nearest documents,
	// closest first. The result slice is parallel to qs.
	SearchBatch(qs []vec.Vector, k int) ([][]vec.Scored, error)
}

// SearchBatch serves a batch of queries through db, using the native
// batched path when the index implements BatchDB and falling back to one
// Search call per query otherwise. A nil or empty batch returns nil.
func SearchBatch(db DB, qs []vec.Vector, k int) ([][]vec.Scored, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if b, ok := db.(BatchDB); ok {
		return b.SearchBatch(qs, k)
	}
	return searchLoop(db, qs, k)
}

// Batched adapts any DB to BatchDB. Indexes that already implement the
// batched path are returned unchanged; everything else gets the generic
// per-query loop, so callers can depend on BatchDB uniformly.
func Batched(db DB) BatchDB {
	if b, ok := db.(BatchDB); ok {
		return b
	}
	return &loopBatch{db}
}

// loopBatch is the generic fallback wrapper for non-batch-aware backends.
type loopBatch struct {
	DB
}

// SearchBatch implements BatchDB by looping Search.
func (l *loopBatch) SearchBatch(qs []vec.Vector, k int) ([][]vec.Scored, error) {
	return searchLoop(l.DB, qs, k)
}

// searchLoop issues one Search per query; the first error aborts the
// whole batch so every waiter observes the same outcome.
func searchLoop(db DB, qs []vec.Vector, k int) ([][]vec.Scored, error) {
	out := make([][]vec.Scored, len(qs))
	for i, q := range qs {
		res, err := db.Search(q, k)
		if err != nil {
			return nil, fmt.Errorf("vectordb: batch query %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

var _ BatchDB = (*FlatIndex)(nil)

// SearchBatch returns the exact k nearest neighbors of every query in one
// pass over the stored vectors. The per-vector memory traversal — the
// dominant cost of a flat scan — is paid once for the whole batch instead
// of once per query; distance arithmetic is unchanged, so results match
// per-query Search exactly.
func (f *FlatIndex) SearchBatch(qs []vec.Vector, k int) ([][]vec.Scored, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(f.vectors) == 0 {
		return nil, ErrEmptyIndex
	}
	for i, q := range qs {
		if len(q) != f.dim {
			return nil, fmt.Errorf("vectordb: batch query %d dim %d, index dim %d: %w",
				i, len(q), f.dim, vec.ErrDimensionMismatch)
		}
	}
	accs := make([]*vec.TopKAcc, len(qs))
	for i := range accs {
		accs[i] = vec.NewTopKAcc(k)
	}
	for id, v := range f.vectors {
		for qi, q := range qs {
			accs[qi].Push(id, f.dist(q, v))
		}
	}
	out := make([][]vec.Scored, len(qs))
	for i, a := range accs {
		out[i] = a.Result()
	}
	return out, nil
}
