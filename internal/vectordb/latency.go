package vectordb

import (
	"fmt"
	"sync"
	"time"

	"proximity/internal/vec"
)

// LatencyModel yields the simulated service time of one database lookup.
//
// The reproduction's corpora are thousands of passages instead of the
// paper's tens of millions, so wall-clock search time here would
// understate the benefit of caching by orders of magnitude. The latency
// model restores the paper's production-scale service times (no-cache
// rows of Fig. 6c: ≈101 ms for FAISS-HNSW over 21M wiki_dpr vectors,
// ≈4.8 s for FAISS-Flat over 23.9M PubMed vectors) while the index code
// still performs real nearest-neighbor work on the scaled corpus.
// Cache-lookup figures (Fig. 10/11) use real measured time and no model.
type LatencyModel interface {
	// Lookup returns the simulated duration of one database search.
	Lookup() time.Duration
}

// FixedLatency returns a constant duration per lookup.
type FixedLatency time.Duration

// Lookup implements LatencyModel.
func (f FixedLatency) Lookup() time.Duration { return time.Duration(f) }

// JitteredLatency draws deterministic, seeded service times in
// [Mean·(1-Spread), Mean·(1+Spread)], reproducing the run-to-run variance
// visible in the paper's latency rows without real nondeterminism.
type JitteredLatency struct {
	mean   time.Duration
	spread float64

	mu  sync.Mutex
	rng interface{ Float64() float64 }
}

// NewJitteredLatency creates a seeded jittered latency model; spread must
// be in [0, 1).
func NewJitteredLatency(mean time.Duration, spread float64, seed uint64) (*JitteredLatency, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("vectordb: latency mean must be positive, got %v", mean)
	}
	if spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("vectordb: spread must be in [0,1), got %v", spread)
	}
	return &JitteredLatency{mean: mean, spread: spread, rng: vec.NewRand(seed)}, nil
}

// Lookup implements LatencyModel.
func (j *JitteredLatency) Lookup() time.Duration {
	j.mu.Lock()
	u := j.rng.Float64()
	j.mu.Unlock()
	factor := 1 + j.spread*(2*u-1)
	return time.Duration(float64(j.mean) * factor)
}

// Paper-calibrated presets. The means come from the no-cache rows of the
// paper's Fig. 6c; spreads approximate the reported across-cell variance.
const (
	// WikiDPRHNSWMean is the paper's MMLU retrieval latency without
	// caching (FAISS-HNSW over 21M wiki_dpr passages).
	WikiDPRHNSWMean = 95 * time.Millisecond
	// PubMedFlatMean is the paper's MedRAG retrieval latency without
	// caching (FAISS-Flat over 23.9M PubMed passages).
	PubMedFlatMean = 4800 * time.Millisecond
	// TripClickDiskANNMean approximates a DiskANN lookup with indices
	// partially on disk (§4.3.4 notes DiskANN increases retrieval
	// latency further; we model a disk-bound graph search).
	TripClickDiskANNMean = 150 * time.Millisecond
)

// WikiDPRHNSWLatency returns the MMLU-calibrated model.
func WikiDPRHNSWLatency(seed uint64) LatencyModel {
	m, err := NewJitteredLatency(WikiDPRHNSWMean, 0.10, seed)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return m
}

// PubMedFlatLatency returns the MedRAG-calibrated model.
func PubMedFlatLatency(seed uint64) LatencyModel {
	m, err := NewJitteredLatency(PubMedFlatMean, 0.10, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// TripClickDiskANNLatency returns the TripClick-calibrated model.
func TripClickDiskANNLatency(seed uint64) LatencyModel {
	m, err := NewJitteredLatency(TripClickDiskANNMean, 0.15, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Instrumented wraps a DB, counting calls and accumulating the simulated
// service time of each lookup on a virtual clock. The RAG pipeline reads
// Calls() for the paper's "database calls" reduction numbers and
// SimulatedTime() for the latency columns.
type Instrumented struct {
	db    DB
	model LatencyModel

	mu       sync.Mutex
	calls    int
	simTotal time.Duration
	lastSim  time.Duration
}

var _ DB = (*Instrumented)(nil)

// NewInstrumented wraps db with call counting; model may be nil, in which
// case lookups contribute zero simulated time.
func NewInstrumented(db DB, model LatencyModel) *Instrumented {
	return &Instrumented{db: db, model: model}
}

// Search delegates to the wrapped index, recording the call.
func (i *Instrumented) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	res, err := i.db.Search(q, k)
	if err != nil {
		return nil, err
	}
	var sim time.Duration
	if i.model != nil {
		sim = i.model.Lookup()
	}
	i.mu.Lock()
	i.calls++
	i.simTotal += sim
	i.lastSim = sim
	i.mu.Unlock()
	return res, err
}

// Dim returns the wrapped index dimensionality.
func (i *Instrumented) Dim() int { return i.db.Dim() }

// Len returns the wrapped index size.
func (i *Instrumented) Len() int { return i.db.Len() }

// Calls returns the number of Search calls that reached the database.
func (i *Instrumented) Calls() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.calls
}

// SimulatedTime returns the accumulated simulated service time.
func (i *Instrumented) SimulatedTime() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.simTotal
}

// LastLookupTime returns the simulated time of the most recent lookup.
func (i *Instrumented) LastLookupTime() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.lastSim
}

// Reset zeroes the counters.
func (i *Instrumented) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.calls = 0
	i.simTotal = 0
	i.lastSim = 0
}

// Unwrap returns the underlying DB (e.g. to reach a VectorSource).
func (i *Instrumented) Unwrap() DB { return i.db }
