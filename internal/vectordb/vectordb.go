// Package vectordb defines the vector-database substrate of the RAG
// pipeline: the search interface the Proximity cache fronts, an exact
// brute-force index (the FAISS-Flat stand-in used for MedRAG), a
// production-scale latency model, and call-counting instrumentation.
// Approximate graph indexes live in the sibling packages hnsw (FAISS-HNSW
// stand-in, MMLU) and vamana (DiskANN stand-in, TripClick).
package vectordb

import (
	"errors"
	"fmt"
	"sync"

	"proximity/internal/vec"
)

// Errors shared across index implementations.
var (
	// ErrEmptyIndex is returned when searching an index with no vectors.
	ErrEmptyIndex = errors.New("vectordb: index is empty")
	// ErrBadK is returned when k is not positive.
	ErrBadK = errors.New("vectordb: k must be positive")
)

// DB is the search interface the paper assumes of the underlying vector
// database: a retrieveDocumentIndices function taking a query embedding
// and returning a sorted list of close document indices (§3). Search
// returns distances along with the indices because the cache re-ranking
// step and the recall metric both need them. Implementations must be safe
// for concurrent Search calls once built.
type DB interface {
	// Search returns the k nearest documents, closest first.
	Search(q vec.Vector, k int) ([]vec.Scored, error)
	// Dim returns the indexed dimensionality.
	Dim() int
	// Len returns the number of indexed vectors.
	Len() int
}

// VectorSource exposes stored vectors by document ID; cache re-ranking
// (§3.3.4) scores cached neighbor indices against the incoming query
// through this interface.
type VectorSource interface {
	Vector(id int) (vec.Vector, error)
}

// RetrieveDocumentIndices adapts any DB to the paper's index-only call
// signature (Algorithm 1, line 6).
func RetrieveDocumentIndices(db DB, q vec.Vector, k int) ([]int, error) {
	res, err := db.Search(q, k)
	if err != nil {
		return nil, err
	}
	return vec.IDs(res), nil
}

// FlatIndex is an exact nearest-neighbor index over an in-memory vector
// set — the stand-in for FAISS-Flat, which the paper uses to serve the
// 23.9M-passage PubMed corpus for MedRAG (§4.2.1). Search cost is
// O(n·d).
type FlatIndex struct {
	vectors []vec.Vector
	dim     int
	metric  vec.Metric
	dist    vec.DistanceFunc
	topk    sync.Pool // *vec.TopKBuffer, reused across Search calls
}

var (
	_ DB           = (*FlatIndex)(nil)
	_ VectorSource = (*FlatIndex)(nil)
)

// NewFlatIndex creates an empty flat index for dim-dimensional vectors
// under the given metric.
func NewFlatIndex(dim int, metric vec.Metric) (*FlatIndex, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vectordb: dimension must be positive, got %d", dim)
	}
	return &FlatIndex{dim: dim, metric: metric, dist: metric.Func()}, nil
}

// NewFlatFromVectors builds a flat index over an existing vector set
// (e.g. a corpus's embeddings). The index references the given slices;
// callers must not mutate them afterwards.
func NewFlatFromVectors(vectors []vec.Vector, metric vec.Metric) (*FlatIndex, error) {
	if len(vectors) == 0 {
		return nil, ErrEmptyIndex
	}
	f, err := NewFlatIndex(len(vectors[0]), metric)
	if err != nil {
		return nil, err
	}
	if err := f.Add(vectors...); err != nil {
		return nil, err
	}
	return f, nil
}

// Add appends vectors to the index; IDs are assigned densely in insertion
// order. The index stores the given slices directly; callers must not
// mutate them afterwards.
func (f *FlatIndex) Add(vectors ...vec.Vector) error {
	for i, v := range vectors {
		if len(v) != f.dim {
			return fmt.Errorf("vectordb: vector %d has dim %d, index dim %d: %w",
				i, len(v), f.dim, vec.ErrDimensionMismatch)
		}
	}
	f.vectors = append(f.vectors, vectors...)
	return nil
}

// Search returns the k exact nearest neighbors, closest first.
func (f *FlatIndex) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(f.vectors) == 0 {
		return nil, ErrEmptyIndex
	}
	if len(q) != f.dim {
		return nil, fmt.Errorf("vectordb: query dim %d, index dim %d: %w",
			len(q), f.dim, vec.ErrDimensionMismatch)
	}
	b, ok := f.topk.Get().(*vec.TopKBuffer)
	if !ok {
		b = &vec.TopKBuffer{}
	}
	b.Reset(k)
	b.PushDistances(q, f.vectors, f.dist)
	out := b.Result()
	f.topk.Put(b)
	return out, nil
}

// Dim returns the indexed dimensionality.
func (f *FlatIndex) Dim() int { return f.dim }

// Len returns the number of indexed vectors.
func (f *FlatIndex) Len() int { return len(f.vectors) }

// Metric returns the index's distance metric.
func (f *FlatIndex) Metric() vec.Metric { return f.metric }

// Vector returns the stored vector for a document ID.
func (f *FlatIndex) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= len(f.vectors) {
		return nil, fmt.Errorf("vectordb: id %d out of range (have %d)", id, len(f.vectors))
	}
	return f.vectors[id], nil
}
