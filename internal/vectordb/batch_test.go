package vectordb

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"proximity/internal/vec"
)

// batchQueries draws a query mix that stresses the batched paths: random
// probes, exact corpus members (distance-zero ties), and duplicates.
func batchQueries(rng *rand.Rand, corpus []vec.Vector, n, dim int) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = vec.RandomGaussian(rng, dim)
		case 1:
			out[i] = corpus[rng.IntN(len(corpus))]
		default: // i%3 == 2 implies i >= 2, so a filled slot exists
			out[i] = out[rng.IntN(i)]
		}
	}
	return out
}

// TestIVFSearchBatchEquivalence is the property test the batch queue
// leans on: across randomized corpora, configurations, and k values,
// IVFIndex.SearchBatch must return exactly what per-query Search returns
// — same IDs, same distances, same order.
func TestIVFSearchBatchEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := vec.NewRand(seed)
			n := 30 + rng.IntN(200)
			dim := []int{4, 8, 16, 32}[rng.IntN(4)]
			corpus := ivfRandomVectors(n, dim, seed+100)
			ix, err := BuildIVF(corpus, vec.L2Distance, IVFConfig{
				NList:  1 + rng.IntN(20),
				NProbe: 1 + rng.IntN(6),
				Seed:   seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			qs := batchQueries(rng, corpus, 25, dim)
			for _, k := range []int{1, 3, 10, n + 5} {
				got, err := ix.SearchBatch(qs, k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if len(got) != len(qs) {
					t.Fatalf("k=%d: %d results for %d queries", k, len(got), len(qs))
				}
				for qi, q := range qs {
					want, err := ix.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got[qi], want) {
						t.Fatalf("k=%d query %d: batch %v, single %v", k, qi, got[qi], want)
					}
				}
			}
		})
	}
}

// TestFlatSearchBatchEquivalence covers the one-pass flat scan the same
// way.
func TestFlatSearchBatchEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rng := vec.NewRand(seed)
		n := 10 + rng.IntN(80)
		const dim = 8
		corpus := ivfRandomVectors(n, dim, seed+200)
		ix, err := NewFlatFromVectors(corpus, vec.L2Distance)
		if err != nil {
			t.Fatal(err)
		}
		qs := batchQueries(rng, corpus, 15, dim)
		for _, k := range []int{1, 4, n + 2} {
			got, err := ix.SearchBatch(qs, k)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range qs {
				want, err := ix.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[qi], want) {
					t.Fatalf("seed %d k=%d query %d: batch %v, single %v", seed, k, qi, got[qi], want)
				}
			}
		}
	}
}

// TestTopKPrefixConsistency pins the truncation contract the batch queue
// relies on when a flush mixes k values: searching with a larger k and
// keeping the first k' results equals searching with k' directly.
func TestTopKPrefixConsistency(t *testing.T) {
	rng := vec.NewRand(9)
	corpus := ivfRandomVectors(150, 8, 42)
	// Probe every list so the candidate pool always exceeds the largest
	// k under test.
	ix, err := BuildIVF(corpus, vec.L2Distance, IVFConfig{NList: 12, NProbe: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := vec.RandomGaussian(rng, 8)
		big, err := ix.Search(q, 12)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5, 12} {
			small, err := ix.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(big[:k], small) {
				t.Fatalf("query %d: Search(12)[:%d] = %v, Search(%d) = %v", i, k, big[:k], k, small)
			}
		}
	}
}

// fallbackOnly hides any native batch support so Batched() must wrap it.
type fallbackOnly struct{ inner DB }

func (f fallbackOnly) Search(q vec.Vector, k int) ([]vec.Scored, error) { return f.inner.Search(q, k) }
func (f fallbackOnly) Dim() int                                         { return f.inner.Dim() }
func (f fallbackOnly) Len() int                                         { return f.inner.Len() }

// TestBatchedFallbackWrapper checks the generic loop wrapper: identical
// results to the native path, via both the Batched adapter and the
// package-level SearchBatch helper.
func TestBatchedFallbackWrapper(t *testing.T) {
	corpus := ivfRandomVectors(60, 8, 77)
	ix, err := BuildIVF(corpus, vec.L2Distance, IVFConfig{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(78)
	qs := batchQueries(rng, corpus, 12, 8)

	native, err := ix.SearchBatch(qs, 7)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Batched(fallbackOnly{ix})
	if _, isNative := interface{}(wrapped).(*IVFIndex); isNative {
		t.Fatal("Batched should have wrapped the non-batch-aware DB")
	}
	loop, err := wrapped.SearchBatch(qs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native, loop) {
		t.Error("fallback wrapper disagrees with native SearchBatch")
	}
	helper, err := SearchBatch(fallbackOnly{ix}, qs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native, helper) {
		t.Error("SearchBatch helper disagrees with native SearchBatch")
	}
	if got := Batched(ix); got != BatchDB(ix) {
		t.Error("Batched should return a batch-aware DB unchanged")
	}
	if res, err := SearchBatch(ix, nil, 5); err != nil || res != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

// TestSearchBatchValidation mirrors the single-query error contract.
func TestSearchBatchValidation(t *testing.T) {
	corpus := ivfRandomVectors(20, 4, 5)
	ix, err := BuildIVF(corpus, vec.L2Distance, IVFConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchBatch([]vec.Vector{corpus[0]}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v, want ErrBadK", err)
	}
	if _, err := ix.SearchBatch([]vec.Vector{{1, 2}}, 3); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("dim mismatch error = %v, want ErrDimensionMismatch", err)
	}
	flat, err := NewFlatFromVectors(corpus, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.SearchBatch([]vec.Vector{{1, 2}}, 3); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("flat dim mismatch error = %v, want ErrDimensionMismatch", err)
	}
}
