package vectordb

import (
	"fmt"
	"sort"
	"sync"

	"proximity/internal/vec"
)

// IVFIndex is an inverted-file index with a k-means coarse quantizer —
// the quantization-based ANN family (IVF/PQ, Jégou et al. 2011) the paper
// lists alongside HNSW as the standard way to serve large vector
// databases (§2.2). Vectors are assigned to their nearest centroid;
// queries scan only the NProbe closest centroid lists, trading recall for
// a fraction of the flat-scan cost.
//
// Build with BuildIVF; Search is safe for concurrent use afterwards.
type IVFIndex struct {
	dim      int
	metric   vec.Metric
	dist     vec.DistanceFunc
	nprobe   int
	centroid []vec.Vector
	lists    [][]int // centroid -> vector IDs
	vectors  []vec.Vector
	topk     sync.Pool // *vec.TopKBuffer, reused across Search calls
}

var (
	_ DB           = (*IVFIndex)(nil)
	_ VectorSource = (*IVFIndex)(nil)
)

// IVFConfig parameterizes index construction.
type IVFConfig struct {
	// NList is the number of coarse centroids (default: √n rounded,
	// at least 1).
	NList int
	// NProbe is the number of centroid lists scanned per query
	// (default: max(1, NList/8)).
	NProbe int
	// KMeansIters bounds the Lloyd iterations (default 15).
	KMeansIters int
	// Seed drives the centroid initialization.
	Seed uint64
}

func (c *IVFConfig) fillDefaults(n int) {
	if c.NList == 0 {
		c.NList = intSqrt(n)
	}
	if c.NList > n {
		c.NList = n
	}
	if c.NProbe == 0 {
		c.NProbe = c.NList / 8
		if c.NProbe < 1 {
			c.NProbe = 1
		}
	}
	if c.NProbe > c.NList {
		c.NProbe = c.NList
	}
	if c.KMeansIters == 0 {
		c.KMeansIters = 15
	}
}

// BuildIVF clusters the vectors and builds the inverted lists.
func BuildIVF(vectors []vec.Vector, metric vec.Metric, cfg IVFConfig) (*IVFIndex, error) {
	if len(vectors) == 0 {
		return nil, ErrEmptyIndex
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("vectordb: ivf vector %d has dim %d, expected %d: %w",
				i, len(v), dim, vec.ErrDimensionMismatch)
		}
	}
	cfg.fillDefaults(len(vectors))
	if cfg.NList < 1 {
		return nil, fmt.Errorf("vectordb: ivf needs ≥1 centroid, got %d", cfg.NList)
	}

	ix := &IVFIndex{
		dim:     dim,
		metric:  metric,
		dist:    metric.Func(),
		nprobe:  cfg.NProbe,
		vectors: vectors,
	}
	ix.centroid = kmeans(vectors, cfg.NList, cfg.KMeansIters, cfg.Seed, ix.dist)
	ix.lists = make([][]int, len(ix.centroid))
	for id, v := range vectors {
		ix.lists[ix.nearestCentroid(v)] = append(ix.lists[ix.nearestCentroid(v)], id)
	}
	return ix, nil
}

// nearestCentroid returns the index of the closest centroid.
func (ix *IVFIndex) nearestCentroid(v vec.Vector) int {
	best, bestDist := 0, ix.dist(v, ix.centroid[0])
	for c := 1; c < len(ix.centroid); c++ {
		if d := ix.dist(v, ix.centroid[c]); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Search scans the NProbe closest inverted lists.
func (ix *IVFIndex) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	return ix.SearchProbe(q, k, ix.nprobe)
}

// SearchProbe searches with an explicit probe count for recall tuning.
func (ix *IVFIndex) SearchProbe(q vec.Vector, k, nprobe int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(q) != ix.dim {
		return nil, fmt.Errorf("vectordb: ivf query dim %d, index dim %d: %w",
			len(q), ix.dim, vec.ErrDimensionMismatch)
	}
	b, ok := ix.topk.Get().(*vec.TopKBuffer)
	if !ok {
		b = &vec.TopKBuffer{}
	}
	b.Reset(k)
	for _, c := range ix.probeSet(q, nprobe) {
		for _, id := range ix.lists[c] {
			b.Push(id, ix.dist(q, ix.vectors[id]))
		}
	}
	out := b.Result()
	ix.topk.Put(b)
	return out, nil
}

// probeSet ranks the coarse centroids by distance to q and returns the
// IDs of the nprobe closest (ties broken by centroid ID), the cells both
// the single-query and the batched search scan.
func (ix *IVFIndex) probeSet(q vec.Vector, nprobe int) []int {
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > len(ix.centroid) {
		nprobe = len(ix.centroid)
	}
	cents := make([]vec.Scored, len(ix.centroid))
	for c := range ix.centroid {
		cents[c] = vec.Scored{ID: c, Dist: ix.dist(q, ix.centroid[c])}
	}
	sort.Slice(cents, func(i, j int) bool {
		if cents[i].Dist != cents[j].Dist {
			return cents[i].Dist < cents[j].Dist
		}
		return cents[i].ID < cents[j].ID
	})
	out := make([]int, nprobe)
	for i := range out {
		out[i] = cents[i].ID
	}
	return out
}

var _ BatchDB = (*IVFIndex)(nil)

// SearchBatch serves every query with the default probe count in one pass
// over the probed inverted lists: each coarse cell that any query in the
// batch probes is visited exactly once, and its vectors are scored
// against all queries probing it while they are hot in cache. Per-query
// probe sets and distances are identical to Search, and the (distance,
// ID) total order makes the top-k selection insertion-order independent,
// so results match per-query Search exactly.
func (ix *IVFIndex) SearchBatch(qs []vec.Vector, k int) ([][]vec.Scored, error) {
	return ix.SearchBatchProbe(qs, k, ix.nprobe)
}

// SearchBatchProbe is SearchBatch with an explicit probe count.
func (ix *IVFIndex) SearchBatchProbe(qs []vec.Vector, k, nprobe int) ([][]vec.Scored, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	for i, q := range qs {
		if len(q) != ix.dim {
			return nil, fmt.Errorf("vectordb: ivf batch query %d dim %d, index dim %d: %w",
				i, len(q), ix.dim, vec.ErrDimensionMismatch)
		}
	}
	// Invert the per-query probe sets into cell -> probing queries.
	cellQueries := make([][]int, len(ix.centroid))
	for qi, q := range qs {
		for _, c := range ix.probeSet(q, nprobe) {
			cellQueries[c] = append(cellQueries[c], qi)
		}
	}
	accs := make([]*vec.TopKAcc, len(qs))
	for i := range accs {
		accs[i] = vec.NewTopKAcc(k)
	}
	for c, qids := range cellQueries {
		if len(qids) == 0 {
			continue
		}
		for _, id := range ix.lists[c] {
			v := ix.vectors[id]
			for _, qi := range qids {
				accs[qi].Push(id, ix.dist(qs[qi], v))
			}
		}
	}
	out := make([][]vec.Scored, len(qs))
	for i, a := range accs {
		out[i] = a.Result()
	}
	return out, nil
}

// Dim returns the indexed dimensionality.
func (ix *IVFIndex) Dim() int { return ix.dim }

// Len returns the number of indexed vectors.
func (ix *IVFIndex) Len() int { return len(ix.vectors) }

// Metric returns the distance metric.
func (ix *IVFIndex) Metric() vec.Metric { return ix.metric }

// NList returns the number of coarse centroids.
func (ix *IVFIndex) NList() int { return len(ix.centroid) }

// NProbe returns the default probe count.
func (ix *IVFIndex) NProbe() int { return ix.nprobe }

// Vector returns the stored vector for an ID.
func (ix *IVFIndex) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= len(ix.vectors) {
		return nil, fmt.Errorf("vectordb: ivf id %d out of range (have %d)", id, len(ix.vectors))
	}
	return ix.vectors[id], nil
}

// kmeans runs Lloyd's algorithm with k-means++-style seeding (greedy
// farthest-point from a seeded start, which is deterministic).
func kmeans(vectors []vec.Vector, k, iters int, seed uint64, dist vec.DistanceFunc) []vec.Vector {
	rng := vec.NewRand(seed)
	centroids := make([]vec.Vector, 0, k)
	centroids = append(centroids, vec.Clone(vectors[rng.IntN(len(vectors))]))
	// Farthest-point initialization.
	minDist := make([]float32, len(vectors))
	for i, v := range vectors {
		minDist[i] = dist(v, centroids[0])
	}
	for len(centroids) < k {
		far, farDist := 0, float32(-1)
		for i, d := range minDist {
			if d > farDist {
				far, farDist = i, d
			}
		}
		c := vec.Clone(vectors[far])
		centroids = append(centroids, c)
		for i, v := range vectors {
			if d := dist(v, c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, len(vectors))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vectors {
			best, bestDist := 0, dist(v, centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := dist(v, centroids[c]); d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute means.
		dim := len(vectors[0])
		sums := make([]vec.Vector, len(centroids))
		counts := make([]int, len(centroids))
		for c := range sums {
			sums[c] = make(vec.Vector, dim)
		}
		for i, v := range vectors {
			vec.AXPY(sums[assign[i]], 1, v)
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = vec.Scale(sums[c], 1/float32(counts[c]))
			}
			// Empty clusters keep their previous centroid.
		}
	}
	return centroids
}

// intSqrt returns round(√n), at least 1.
func intSqrt(n int) int {
	if n <= 1 {
		return 1
	}
	x := 1
	for x*x < n {
		x++
	}
	return x
}
