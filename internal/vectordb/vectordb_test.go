package vectordb

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"proximity/internal/vec"
)

func TestNewFlatIndexValidation(t *testing.T) {
	if _, err := NewFlatIndex(0, vec.L2Distance); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewFlatIndex(-4, vec.L2Distance); err == nil {
		t.Error("negative dim should error")
	}
}

func TestFlatIndexAddValidation(t *testing.T) {
	f, err := NewFlatIndex(3, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(vec.Vector{1, 2}); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("Add wrong dim error = %v", err)
	}
	if f.Len() != 0 {
		t.Error("failed Add must not insert")
	}
	if err := f.Add(vec.Vector{1, 2, 3}, vec.Vector{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d", f.Len())
	}
	if f.Dim() != 3 || f.Metric() != vec.L2Distance {
		t.Error("Dim/Metric accessors wrong")
	}
}

func TestFlatIndexSearch(t *testing.T) {
	f, _ := NewFlatIndex(2, vec.L2Distance)
	if _, err := f.Search(vec.Vector{0, 0}, 1); !errors.Is(err, ErrEmptyIndex) {
		t.Errorf("empty index error = %v", err)
	}
	vectors := []vec.Vector{{0, 0}, {1, 0}, {5, 5}, {0.5, 0}}
	if err := f.Add(vectors...); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Search(vec.Vector{0, 0}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := f.Search(vec.Vector{0}, 1); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("dim mismatch error = %v", err)
	}
	res, err := f.Search(vec.Vector{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 0 || res[1].ID != 3 {
		t.Errorf("Search = %+v, want ids [0 3]", res)
	}
	// k beyond index size clamps.
	res, err = f.Search(vec.Vector{0, 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Errorf("clamped search returned %d results", len(res))
	}
}

func TestFlatIndexVector(t *testing.T) {
	f, _ := NewFlatIndex(2, vec.L2Distance)
	if err := f.Add(vec.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, err := f.Vector(0)
	if err != nil || !vec.Equal(v, vec.Vector{1, 2}) {
		t.Errorf("Vector(0) = %v, %v", v, err)
	}
	if _, err := f.Vector(1); err == nil {
		t.Error("out-of-range Vector should error")
	}
	if _, err := f.Vector(-1); err == nil {
		t.Error("negative Vector should error")
	}
}

func TestRetrieveDocumentIndices(t *testing.T) {
	f, _ := NewFlatIndex(1, vec.L2Distance)
	if err := f.Add(vec.Vector{10}, vec.Vector{1}, vec.Vector{5}); err != nil {
		t.Fatal(err)
	}
	ids, err := RetrieveDocumentIndices(f, vec.Vector{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("ids = %v, want [1 2]", ids)
	}
	if _, err := RetrieveDocumentIndices(f, vec.Vector{0}, 0); err == nil {
		t.Error("bad k should propagate")
	}
}

// Property: flat search results are sorted ascending and exactly match a
// reference scan for random data.
func TestFlatSearchIsExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		dim := 2 + int(r.Uint64()%6)
		n := 3 + int(r.Uint64()%40)
		k := 1 + int(r.Uint64()%8)
		idx, err := NewFlatIndex(dim, vec.L2Distance)
		if err != nil {
			return false
		}
		vecs := make([]vec.Vector, n)
		for i := range vecs {
			vecs[i] = vec.RandomGaussian(r, dim)
		}
		if err := idx.Add(vecs...); err != nil {
			return false
		}
		q := vec.RandomGaussian(r, dim)
		got, err := idx.Search(q, k)
		if err != nil {
			return false
		}
		want := vec.TopKByDistance(q, vecs, k, vec.L2)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFixedLatency(t *testing.T) {
	m := FixedLatency(50 * time.Millisecond)
	if m.Lookup() != 50*time.Millisecond {
		t.Error("FixedLatency should return its value")
	}
}

func TestJitteredLatencyValidation(t *testing.T) {
	if _, err := NewJitteredLatency(0, 0.1, 1); err == nil {
		t.Error("zero mean should error")
	}
	if _, err := NewJitteredLatency(time.Second, -0.1, 1); err == nil {
		t.Error("negative spread should error")
	}
	if _, err := NewJitteredLatency(time.Second, 1, 1); err == nil {
		t.Error("spread = 1 should error")
	}
}

func TestJitteredLatencyBoundsAndDeterminism(t *testing.T) {
	mk := func() LatencyModel {
		m, err := NewJitteredLatency(100*time.Millisecond, 0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		la, lb := a.Lookup(), b.Lookup()
		if la != lb {
			t.Fatal("same seed must produce the same latency sequence")
		}
		if la < 90*time.Millisecond || la > 110*time.Millisecond {
			t.Fatalf("latency %v outside ±10%% of mean", la)
		}
	}
}

func TestPresetLatencies(t *testing.T) {
	if got := WikiDPRHNSWLatency(1).Lookup(); got < 80*time.Millisecond || got > 110*time.Millisecond {
		t.Errorf("wiki_dpr preset = %v", got)
	}
	if got := PubMedFlatLatency(1).Lookup(); got < 4*time.Second || got > 5500*time.Millisecond {
		t.Errorf("pubmed preset = %v", got)
	}
	if got := TripClickDiskANNLatency(1).Lookup(); got < 100*time.Millisecond || got > 200*time.Millisecond {
		t.Errorf("tripclick preset = %v", got)
	}
}

func TestInstrumented(t *testing.T) {
	f, _ := NewFlatIndex(1, vec.L2Distance)
	if err := f.Add(vec.Vector{0}, vec.Vector{1}); err != nil {
		t.Fatal(err)
	}
	ins := NewInstrumented(f, FixedLatency(time.Millisecond))
	if ins.Dim() != 1 || ins.Len() != 2 {
		t.Error("Dim/Len should delegate")
	}
	for i := 0; i < 3; i++ {
		if _, err := ins.Search(vec.Vector{0}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if ins.Calls() != 3 {
		t.Errorf("Calls = %d", ins.Calls())
	}
	if ins.SimulatedTime() != 3*time.Millisecond {
		t.Errorf("SimulatedTime = %v", ins.SimulatedTime())
	}
	if ins.LastLookupTime() != time.Millisecond {
		t.Errorf("LastLookupTime = %v", ins.LastLookupTime())
	}
	ins.Reset()
	if ins.Calls() != 0 || ins.SimulatedTime() != 0 || ins.LastLookupTime() != 0 {
		t.Error("Reset should zero counters")
	}
	if ins.Unwrap() != DB(f) {
		t.Error("Unwrap should return the wrapped DB")
	}
}

func TestInstrumentedErrorsDoNotCount(t *testing.T) {
	f, _ := NewFlatIndex(1, vec.L2Distance)
	ins := NewInstrumented(f, FixedLatency(time.Millisecond))
	if _, err := ins.Search(vec.Vector{0}, 1); err == nil {
		t.Fatal("expected empty-index error")
	}
	if ins.Calls() != 0 || ins.SimulatedTime() != 0 {
		t.Error("failed lookups must not accrue calls or simulated time")
	}
}

func TestInstrumentedNilModel(t *testing.T) {
	f, _ := NewFlatIndex(1, vec.L2Distance)
	if err := f.Add(vec.Vector{0}); err != nil {
		t.Fatal(err)
	}
	ins := NewInstrumented(f, nil)
	if _, err := ins.Search(vec.Vector{0}, 1); err != nil {
		t.Fatal(err)
	}
	if ins.Calls() != 1 || ins.SimulatedTime() != 0 {
		t.Error("nil model should count calls with zero simulated time")
	}
}
