package dataset

import (
	"math"
	"testing"

	"proximity/internal/llm"
	"proximity/internal/vec"
	"proximity/internal/zipf"
)

// smallMMLU/smallMedRAG use reduced dimensions and corpus sizes to keep
// unit tests fast; geometry scales with token counts, not dim, as long as
// dim is large enough for near-orthogonality.
func smallMMLU(t *testing.T) *Benchmark {
	t.Helper()
	b, err := NewMMLU(MMLUConfig{Questions: 40, Topics: 10, DocsPerTopic: 8, Dim: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func smallMedRAG(t *testing.T) *Benchmark {
	t.Helper()
	b, err := NewMedRAG(MedRAGConfig{Questions: 40, Topics: 10, DocsPerTopic: 8, Dim: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMMLUDefaults(t *testing.T) {
	b, err := NewMMLU(MMLUConfig{Questions: 5, Topics: 5, DocsPerTopic: 2, Dim: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "mmlu" || b.DefaultK != 4 {
		t.Error("benchmark identity wrong")
	}
	if len(b.Questions) != 5 {
		t.Errorf("questions = %d", len(b.Questions))
	}
	// Corpus: 5 topics × 2 docs + 5 questions × 3 gold.
	if b.Corpus.Len() != 10+15 {
		t.Errorf("corpus len = %d, want 25", b.Corpus.Len())
	}
}

func TestBenchmarkValidation(t *testing.T) {
	if _, err := NewMMLU(MMLUConfig{Questions: -1, Dim: 16}); err == nil {
		t.Error("negative questions should error")
	}
	if _, err := NewMedRAG(MedRAGConfig{Questions: 2, Topics: -2, Dim: 16}); err == nil {
		t.Error("negative topics should error")
	}
}

func TestQuestionsHaveGoldPassages(t *testing.T) {
	b := smallMMLU(t)
	for _, q := range b.Questions {
		if len(q.Gold) != 3 {
			t.Fatalf("question %d has %d gold passages", q.ID, len(q.Gold))
		}
		for _, g := range q.Gold {
			if b.DocTopic(g) != q.Topic {
				t.Fatalf("gold passage %d topic mismatch for question %d", g, q.ID)
			}
		}
	}
}

func TestDocTopicBounds(t *testing.T) {
	b := smallMMLU(t)
	if b.DocTopic(-1) != -1 || b.DocTopic(b.Corpus.Len()) != -1 {
		t.Error("out-of-range DocTopic should be -1")
	}
	if b.DocTopic(0) < 0 {
		t.Error("valid doc should have a topic")
	}
}

func TestLLMQuestionAdapter(t *testing.T) {
	b := smallMMLU(t)
	q := b.Questions[0]
	lq := b.LLMQuestion(q)
	if lq.ID != q.ID || lq.Topic != q.Topic || len(lq.Gold) != len(q.Gold) {
		t.Error("LLMQuestion adapter lost fields")
	}
}

// Gold passages must be the nearest passages to their question — the
// retrieval-correctness premise of the accuracy simulation.
func TestGoldPassagesAreNearest(t *testing.T) {
	for _, b := range []*Benchmark{smallMMLU(t), smallMedRAG(t)} {
		enc := b.Embedder()
		misranked := 0
		for _, q := range b.Questions {
			qv := enc.Embed(q.Text)
			res := vec.TopKByDistance(qv, b.Corpus.Embeddings, len(q.Gold), vec.L2)
			gold := make(map[int]struct{}, len(q.Gold))
			for _, g := range q.Gold {
				gold[g] = struct{}{}
			}
			for _, r := range res {
				if _, ok := gold[r.ID]; !ok {
					misranked++
					break
				}
			}
		}
		if misranked > len(b.Questions)/10 {
			t.Errorf("%s: %d/%d questions do not retrieve their gold passages first",
				b.Name, misranked, len(b.Questions))
		}
	}
}

// The embedding geometry calibration: variants must sit in the paper's
// matching bands relative to the tolerance grids used in Fig. 6/7.
func TestVariantGeometryMMLU(t *testing.T) {
	b := smallMMLU(t)
	enc := b.Embedder()
	var within1, within2, pairs int
	for _, q := range b.Questions {
		vs := make([]vec.Vector, 4)
		for v := 0; v < 4; v++ {
			vs[v] = enc.Embed(b.VariantText(q, v))
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				d := float64(vec.L2(vs[i], vs[j]))
				pairs++
				if d <= 1 {
					within1++
				}
				if d <= 2 {
					within2++
				}
				if d > 3.5 {
					t.Errorf("mmlu q%d variants %d,%d distance %v too large", q.ID, i, j, d)
				}
			}
		}
	}
	frac1 := float64(within1) / float64(pairs)
	frac2 := float64(within2) / float64(pairs)
	// MMLU variants are mostly prefix chatter: roughly half the pairs
	// within τ=1, most within τ=2 (matches the paper's hit-rate jump
	// from τ=1 to τ=2 in Fig. 6b).
	if frac1 < 0.25 || frac1 > 0.85 {
		t.Errorf("mmlu fraction of variant pairs within τ=1: %.2f, want mid-range", frac1)
	}
	if frac2 < 0.75 {
		t.Errorf("mmlu fraction of variant pairs within τ=2: %.2f, want most", frac2)
	}
}

func TestVariantGeometryMedRAG(t *testing.T) {
	b := smallMedRAG(t)
	enc := b.Embedder()
	var within2, within5, pairs int
	for _, q := range b.Questions {
		vs := make([]vec.Vector, 4)
		for v := 0; v < 4; v++ {
			vs[v] = enc.Embed(b.VariantText(q, v))
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				d := float64(vec.L2(vs[i], vs[j]))
				pairs++
				if d <= 2 {
					within2++
				}
				if d <= 5 {
					within5++
				}
			}
		}
	}
	frac2 := float64(within2) / float64(pairs)
	frac5 := float64(within5) / float64(pairs)
	// MedRAG variants reword content: few pairs within τ=2, nearly all
	// within τ=5 (the paper's hit rate jumps from ~16% to ~73%).
	if frac2 > 0.5 {
		t.Errorf("medrag fraction within τ=2: %.2f, want minority", frac2)
	}
	if frac5 < 0.9 {
		t.Errorf("medrag fraction within τ=5: %.2f, want ≈ all", frac5)
	}
}

// Distinct questions must sit in the false-positive band: inside τ=10
// (where the paper's accuracy collapses) but outside the variant band.
func TestInterQuestionGeometry(t *testing.T) {
	tests := []struct {
		bench    *Benchmark
		minDist  float64 // variants must not be confusable
		maxDist  float64 // must be inside the τ=10 blast radius
		tauSafe  float64 // tolerance that should NOT match distinct questions
		safeFrac float64 // max fraction of cross-question pairs within tauSafe
	}{
		{bench: smallMMLU(t), minDist: 2.0, maxDist: 10, tauSafe: 2, safeFrac: 0.02},
		// MedRAG questions must sit outside τ=7.5 (Fig. 7b's ≈100%
		// recall regime) but inside τ=10 (the collapse regime).
		{bench: smallMedRAG(t), minDist: 6.0, maxDist: 10, tauSafe: 7.5, safeFrac: 0.02},
	}
	for _, tt := range tests {
		enc := tt.bench.Embedder()
		embeds := make([]vec.Vector, len(tt.bench.Questions))
		for i, q := range tt.bench.Questions {
			embeds[i] = enc.Embed(q.Text)
		}
		var withinSafe, pairs int
		var meanDist float64
		for i := range embeds {
			for j := i + 1; j < len(embeds); j++ {
				d := float64(vec.L2(embeds[i], embeds[j]))
				pairs++
				meanDist += d
				if d <= tt.tauSafe {
					withinSafe++
				}
				if d > tt.maxDist {
					t.Errorf("%s: questions %d,%d distance %v beyond τ=10", tt.bench.Name, i, j, d)
				}
				if d < tt.minDist {
					t.Errorf("%s: questions %d,%d distance %v inside the variant band", tt.bench.Name, i, j, d)
				}
			}
		}
		if frac := float64(withinSafe) / float64(pairs); frac > tt.safeFrac {
			t.Errorf("%s: %.3f of cross-question pairs within τ=%v, want ≤ %.2f",
				tt.bench.Name, frac, tt.tauSafe, tt.safeFrac)
		}
		meanDist /= float64(pairs)
		t.Logf("%s mean inter-question distance: %.2f", tt.bench.Name, meanDist)
	}
}

func TestVariantDeterminism(t *testing.T) {
	b := smallMMLU(t)
	q := b.Questions[3]
	for v := 0; v < 4; v++ {
		if b.VariantText(q, v) != b.VariantText(q, v) {
			t.Fatal("variants must be deterministic")
		}
	}
	if b.VariantText(q, 0) != q.Text {
		t.Error("variant 0 must be the canonical text")
	}
	if b.VariantText(q, 1) == b.VariantText(q, 2) {
		t.Error("distinct variants must differ")
	}
}

func TestParaphraseTextUniqueAcrossOccurrences(t *testing.T) {
	b := smallMedRAG(t)
	q := b.Questions[0]
	seen := make(map[string]struct{})
	for occ := 0; occ < 500; occ++ {
		p := b.ParaphraseText(q, occ)
		if _, dup := seen[p]; dup {
			t.Fatalf("duplicate paraphrase at occurrence %d", occ)
		}
		seen[p] = struct{}{}
	}
}

func TestSubset(t *testing.T) {
	b := smallMedRAG(t)
	sub := b.Subset(10, 99)
	if len(sub.Questions) != 10 {
		t.Fatalf("subset size = %d", len(sub.Questions))
	}
	if sub.Corpus != b.Corpus {
		t.Error("subset should share the corpus")
	}
	ids := make(map[int]struct{})
	for _, q := range sub.Questions {
		ids[q.ID] = struct{}{}
	}
	if len(ids) != 10 {
		t.Error("subset questions must be distinct")
	}
	if got := b.Subset(1000, 99); got != b {
		t.Error("oversized subset should return the benchmark itself")
	}
}

func TestProfilesAttached(t *testing.T) {
	if smallMMLU(t).Profile.Name != llm.MMLUProfile().Name {
		t.Error("MMLU profile not attached")
	}
	if smallMedRAG(t).Profile.Name != llm.MedRAGProfile().Name {
		t.Error("MedRAG profile not attached")
	}
}

func TestNewTripClick(t *testing.T) {
	log, err := NewTripClick(TripClickConfig{
		UniqueQueries: 200, TotalQueries: 3000, Topics: 10, DocsPerTopic: 5, Dim: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Stream) != 3000 {
		t.Fatalf("stream len = %d", len(log.Stream))
	}
	if len(log.Bench.Questions) != 200 {
		t.Fatalf("unique queries = %d", len(log.Bench.Questions))
	}
	// Every unique query must appear at least once.
	counts := make([]int, 200)
	for _, q := range log.Stream {
		if q < 0 || q >= 200 {
			t.Fatalf("stream references unknown question %d", q)
		}
		counts[q]++
	}
	for q, c := range counts {
		if c == 0 {
			t.Errorf("question %d never appears", q)
		}
	}
}

func TestTripClickValidation(t *testing.T) {
	if _, err := NewTripClick(TripClickConfig{UniqueQueries: 100, TotalQueries: 50, Dim: 32}); err == nil {
		t.Error("total < unique should error")
	}
}

func TestTripClickZipfShape(t *testing.T) {
	log, err := NewTripClick(TripClickConfig{
		UniqueQueries: 300, TotalQueries: 30000, Topics: 10, DocsPerTopic: 5, Dim: 64, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	freqs := log.Frequencies()
	if freqs[0] < freqs[len(freqs)-1] {
		t.Error("frequencies must be descending")
	}
	fit, err := zipf.Fit(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// Recover a skew in the right regime (Fig. 2's s ≈ 0.627). The
	// estimator on sampled data carries bias, so allow a wide band.
	if fit.Exponent < 0.35 || fit.Exponent > 1.0 {
		t.Errorf("fitted exponent = %.3f, want near 0.627", fit.Exponent)
	}
	// Strong skew: the most popular query should dominate the median.
	if freqs[0] < 10*freqs[len(freqs)/2] {
		t.Errorf("head frequency %d not dominant over median %d", freqs[0], freqs[len(freqs)/2])
	}
}

func TestTripClickShortQueryGeometry(t *testing.T) {
	log, err := NewTripClick(TripClickConfig{
		UniqueQueries: 60, TotalQueries: 600, Topics: 10, DocsPerTopic: 5, Dim: 256, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := log.Bench.Embedder()
	embeds := make([]vec.Vector, len(log.Bench.Questions))
	for i, q := range log.Bench.Questions {
		embeds[i] = enc.Embed(q.Text)
	}
	var within25, pairs int
	minDist := math.Inf(1)
	for i := range embeds {
		for j := i + 1; j < len(embeds); j++ {
			d := float64(vec.L2(embeds[i], embeds[j]))
			pairs++
			if d <= 2.5 {
				within25++
			}
			if d < minDist {
				minDist = d
			}
		}
	}
	// Short queries: some pairs inside τ=2.5 (recall dips in Fig. 12)
	// but none inside τ=1 (recall ≈ 99.4% at τ=1).
	if minDist <= 1 {
		t.Errorf("min inter-query distance %.2f; distinct queries inside τ=1 break Fig. 12's near-perfect recall", minDist)
	}
	if within25 == 0 {
		t.Error("no query pairs within τ=2.5; Fig. 12's recall degradation would not reproduce")
	}
	t.Logf("tripclick: %d/%d pairs within τ=2.5, min distance %.2f", within25, pairs, minDist)
}

func TestTripClickDeterminism(t *testing.T) {
	mk := func() *TripClickLog {
		log, err := NewTripClick(TripClickConfig{
			UniqueQueries: 100, TotalQueries: 1000, Topics: 5, DocsPerTopic: 4, Dim: 32, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := mk(), mk()
	for i := range a.Stream {
		if a.Stream[i] != b.Stream[i] {
			t.Fatal("same seed must produce the same stream")
		}
	}
}
