package dataset

import (
	"fmt"

	"proximity/internal/llm"
	"proximity/internal/zipf"
)

// TripClickConfig parameterizes the synthetic TripClick log. The paper's
// dataset is proprietary (5.2M interactions, ~700k unique free-text
// queries from the Trip medical search engine); the synthetic log keeps
// its measured shape — exact-repeat frequencies following a Zipf law with
// exponent ≈ 0.627 (Fig. 2) over short health queries that cluster by
// topic in embedding space (Fig. 3). Defaults are scaled down ~250×; set
// the fields explicitly for a full-size run.
type TripClickConfig struct {
	// UniqueQueries defaults to 2000 (paper: ~700k).
	UniqueQueries int
	// TotalQueries defaults to 20000 (paper: 5.2M).
	TotalQueries int
	// Exponent is the Zipf skew, default 0.627 as measured in §2.3.
	Exponent float64
	// Topics defaults to 40 health areas.
	Topics int
	// DocsPerTopic scales the PubMed-sim corpus (default 30).
	DocsPerTopic int
	// Dim defaults to 768.
	Dim int
	// Seed drives all generation.
	Seed uint64
}

func (c *TripClickConfig) fillDefaults() {
	if c.UniqueQueries == 0 {
		c.UniqueQueries = 2000
	}
	if c.TotalQueries == 0 {
		c.TotalQueries = 20000
	}
	if c.Exponent == 0 {
		c.Exponent = 0.627
	}
	if c.Topics == 0 {
		c.Topics = 40
	}
	if c.DocsPerTopic == 0 {
		c.DocsPerTopic = 30
	}
	if c.Dim == 0 {
		c.Dim = Dim768
	}
}

// TripClickLog is the synthetic query log: a benchmark holding the unique
// queries (as Questions) plus the interaction stream referencing them.
type TripClickLog struct {
	// Bench holds the unique queries and the PubMed-sim corpus they
	// search.
	Bench *Benchmark
	// Stream is the log order: Stream[i] is the index of the question
	// issued i-th. Repeats are exact (same text), matching the
	// exact-match frequency analysis of Fig. 2.
	Stream []int
}

// NewTripClick generates the synthetic log.
func NewTripClick(cfg TripClickConfig) (*TripClickLog, error) {
	cfg.fillDefaults()
	if cfg.TotalQueries < cfg.UniqueQueries {
		return nil, fmt.Errorf("dataset: tripclick needs total ≥ unique, got %d < %d",
			cfg.TotalQueries, cfg.UniqueQueries)
	}
	// Short search-engine queries: 2 topic keywords + 3 content words,
	// so distinct queries sit ≈2.4-3.2 apart — the regime where the
	// paper's Fig. 12 recall degrades from 99.4% (τ=1) to 92.2% (τ=2.5).
	// No per-query gold passages: the Fig. 12 metrics (hit rate and
	// database recall) do not involve answer accuracy, and skipping
	// them keeps the corpus size independent of the query-log size, as
	// in the paper (PubMed serves whatever TripClick users ask).
	bench, err := build(config{
		name:         "tripclick",
		topics:       cfg.Topics,
		docsPerTopic: cfg.DocsPerTopic,
		kwPerTopic:   6,
		kwPerDoc:     4,
		docSpecific:  8,
		questions:    cfg.UniqueQueries,
		qTopicKw:     2,
		qContent:     3,
		goldPerQ:     0,
		goldShared:   0,
		dim:          cfg.Dim,
		seed:         cfg.Seed,
		style:        VariantStyle{ParaphraseProb: 1, MinSwaps: 1, MaxSwaps: 1},
		profile:      llm.MedRAGProfile(),
		defaultK:     4,
		synonymFrac:  0.3,
	})
	if err != nil {
		return nil, err
	}

	rng := newRand(cfg.Seed + 101)
	sampler, err := zipf.NewSampler(rng, cfg.UniqueQueries, cfg.Exponent)
	if err != nil {
		return nil, fmt.Errorf("dataset: tripclick sampler: %w", err)
	}
	// Decouple popularity rank from generation order.
	rankToQuestion := rng.Perm(cfg.UniqueQueries)

	stream := make([]int, cfg.TotalQueries)
	for i := range stream {
		stream[i] = rankToQuestion[sampler.Next()]
	}
	// Guarantee every unique query appears at least once, as in the
	// paper's log where every recorded query occurred. Missing queries
	// replace tail occurrences of queries that appear more than once,
	// so no other query loses its only occurrence.
	counts := make([]int, cfg.UniqueQueries)
	for _, q := range stream {
		counts[q]++
	}
	var missing []int
	for q := 0; q < cfg.UniqueQueries; q++ {
		if counts[q] == 0 {
			missing = append(missing, q)
		}
	}
	pos := len(stream) - 1
	for _, q := range missing {
		for pos >= 0 && counts[stream[pos]] < 2 {
			pos--
		}
		if pos < 0 {
			return nil, fmt.Errorf("dataset: tripclick cannot place %d missing queries in a stream of %d",
				len(missing), len(stream))
		}
		counts[stream[pos]]--
		stream[pos] = q
		counts[q]++
	}

	return &TripClickLog{Bench: bench, Stream: stream}, nil
}

// Frequencies returns the exact-match rank-frequency curve of the stream
// (descending), the input to the Fig. 2 Zipf fit.
func (l *TripClickLog) Frequencies() []int {
	return zipf.RankFrequency(l.Stream)
}
