// Package dataset builds the three benchmark settings of the paper's
// evaluation (§4.2): MMLU (econometrics questions over a Wikipedia-scale
// corpus), MedRAG (PubMedQA questions over a PubMed-scale corpus), and
// TripClick (a skewed health-search query log). All three are synthetic
// stand-ins generated around topic-clustered corpora; token counts are
// chosen so the embedding geometry reproduces the matching regimes of the
// paper's tolerance grid (see DESIGN.md §3):
//
//   - rephrased variants of one question embed within τ ≈ 1-3 of each
//     other (cache hits at moderate tolerance);
//   - distinct questions embed τ ≈ 4-7 apart (false-positive hits only at
//     high tolerance, where the paper's accuracy degrades);
//   - gold passages embed closer to their question than any other
//     passage (retrieval returns them, so answer accuracy measures
//     retrieval quality).
package dataset

import (
	"fmt"
	"strings"

	"proximity/internal/docstore"
	"proximity/internal/embed"
	"proximity/internal/llm"
)

// Question is one benchmark question.
type Question struct {
	// ID indexes the question within its benchmark.
	ID int
	// Topic is the corpus topic cluster the question belongs to.
	Topic int
	// Text is the canonical phrasing.
	Text string
	// Gold lists the corpus passage IDs that answer the question.
	Gold []int
}

// VariantStyle controls how query variants are produced, capturing the
// difference between the datasets' rephrasing depth: MMLU variants are
// mostly prefix chatter, while MedRAG variants reword content (which is
// why the paper's MedRAG needs a higher tolerance for the same hit rate).
type VariantStyle struct {
	// ParaphraseProb is the probability that a variant rewords content
	// instead of only prepending chatter.
	ParaphraseProb float64
	// MinSwaps/MaxSwaps bound the content-word inflections per
	// paraphrase.
	MinSwaps, MaxSwaps int
}

// Benchmark bundles a corpus, its questions, the shared encoder, the
// rephrasing machinery, and the calibrated LLM profile.
type Benchmark struct {
	// Name identifies the benchmark in reports ("mmlu", "medrag", ...).
	Name string
	// Corpus is the embedded passage collection.
	Corpus *docstore.Corpus
	// Questions are the canonical benchmark questions.
	Questions []Question
	// Thesaurus carries the synonym families registered for this
	// benchmark's vocabulary.
	Thesaurus *embed.Thesaurus
	// Profile is the calibrated answer-probability profile.
	Profile llm.Profile
	// Style controls variant generation.
	Style VariantStyle
	// DefaultK is the retrieval depth used by the paper-shaped
	// experiments.
	DefaultK int

	rephraser *llm.Rephraser
	seed      uint64
}

// Embedder returns the encoder shared by passages and queries.
func (b *Benchmark) Embedder() embed.Embedder { return b.Corpus.Embedder() }

// Dim returns the embedding dimensionality.
func (b *Benchmark) Dim() int { return b.Corpus.Dim() }

// DocTopic resolves a passage ID to its topic (-1 when out of range),
// matching the callback shape llm.Classify expects.
func (b *Benchmark) DocTopic(id int) int {
	if id < 0 || id >= b.Corpus.Len() {
		return -1
	}
	return b.Corpus.Docs[id].Topic
}

// LLMQuestion adapts a benchmark question for the answer simulator.
func (b *Benchmark) LLMQuestion(q Question) llm.Question {
	return llm.Question{ID: q.ID, Topic: q.Topic, Gold: q.Gold}
}

// VariantText returns the idx-th uniform-dataset variant of the question:
// variant 0 is the canonical phrasing; variants ≥ 1 are rephrasings per
// the benchmark's style (§4.2.2's "slight variations").
func (b *Benchmark) VariantText(q Question, idx int) string {
	if idx <= 0 {
		return q.Text
	}
	// Deterministic per (question, variant).
	h := hash3(b.seed, uint64(q.ID), uint64(idx))
	occ := q.ID*31 + idx // distinct chatter per question and variant
	if float64(h%1000)/1000 < b.Style.ParaphraseProb {
		swaps := b.Style.MinSwaps
		if span := b.Style.MaxSwaps - b.Style.MinSwaps; span > 0 {
			swaps += int(h/1000) % (span + 1)
		}
		return b.rephraser.Paraphrase(q.Text, occ, swaps)
	}
	return b.rephraser.PrefixVariant(q.Text, occ)
}

// ParaphraseText returns a globally unique paraphrase of the question for
// its occ-th appearance in a skewed workload (§4.2.2's GPT-4o rewriting;
// the occ counter must be unique across the whole workload).
func (b *Benchmark) ParaphraseText(q Question, occ int) string {
	h := hash3(b.seed, uint64(q.ID), uint64(occ))
	swaps := b.Style.MinSwaps
	if span := b.Style.MaxSwaps - b.Style.MinSwaps; span > 0 {
		swaps += int(h) % (span + 1)
	}
	return b.rephraser.Paraphrase(q.Text, occ, swaps)
}

// config is the shared benchmark-generation parameter set.
type config struct {
	name         string
	topics       int
	docsPerTopic int
	kwPerTopic   int // keywords owned by a topic
	kwPerDoc     int // topic keywords per passage
	docSpecific  int // passage-specific tokens
	questions    int
	qTopicKw     int // topic keywords per question
	qContent     int // question-specific content tokens
	goldPerQ     int // gold passages per question
	goldShared   int // question content tokens repeated in each gold passage
	dim          int
	seed         uint64
	style        VariantStyle
	profile      llm.Profile
	defaultK     int
	synonymFrac  float64 // fraction of question content words given synonym families
}

func (c config) validate() error {
	if c.questions <= 0 {
		return fmt.Errorf("dataset: questions must be positive, got %d", c.questions)
	}
	if c.topics <= 0 {
		return fmt.Errorf("dataset: topics must be positive, got %d", c.topics)
	}
	if c.dim <= 0 {
		return fmt.Errorf("dataset: dim must be positive, got %d", c.dim)
	}
	if c.qTopicKw > c.kwPerTopic {
		return fmt.Errorf("dataset: qTopicKw %d exceeds kwPerTopic %d", c.qTopicKw, c.kwPerTopic)
	}
	if c.goldShared > c.qContent {
		return fmt.Errorf("dataset: goldShared %d exceeds qContent %d", c.goldShared, c.qContent)
	}
	return nil
}

// questionStarters is flavor text drawn from the encoder's stopword list.
var questionStarters = []string{
	"what is", "which of the following is", "how does", "why is",
	"what should", "which is the best",
}

// build generates a benchmark from a config.
func build(c config) (*Benchmark, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	lex := docstore.NewLexicon(c.seed)
	th := embed.NewThesaurus()
	enc := embed.NewTokenHash(c.dim, c.seed, embed.WithThesaurus(th), embed.WithName(c.name+"-encoder"))
	corpus, err := docstore.Generate(docstore.Config{
		NumTopics:        c.topics,
		DocsPerTopic:     c.docsPerTopic,
		KeywordsPerTopic: c.kwPerTopic,
		KeywordsPerDoc:   c.kwPerDoc,
		SpecificPerDoc:   c.docSpecific,
		Seed:             c.seed + 1,
	}, lex, enc)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: corpus: %w", c.name, err)
	}

	b := &Benchmark{
		Name:      c.name,
		Corpus:    corpus,
		Thesaurus: th,
		Profile:   c.profile,
		Style:     c.style,
		DefaultK:  c.defaultK,
		rephraser: llm.NewRephraser(th, c.seed+2),
		seed:      c.seed + 3,
	}

	rng := newRand(c.seed + 4)
	for id := 0; id < c.questions; id++ {
		topic := id % c.topics
		kw := corpus.Topics[topic].Keywords

		// Topic keywords carried by this question.
		qkw := make([]string, c.qTopicKw)
		perm := rng.Perm(len(kw))
		for i := 0; i < c.qTopicKw; i++ {
			qkw[i] = kw[perm[i]]
		}
		// Question-specific content words; some get synonym families
		// so the rephraser can swap surface forms without drift.
		content := make([]string, c.qContent)
		for i := range content {
			if rng.Float64() < c.synonymFrac {
				group := lex.SynonymGroup(3)
				th.Register(group...)
				content[i] = group[0]
			} else {
				content[i] = lex.Word()
			}
		}

		starter := questionStarters[rng.IntN(len(questionStarters))]
		text := starter + " " + strings.Join(qkw, " ") + " " + strings.Join(content, " ")

		// Gold passages: topic keywords + a slice of the question's
		// content words + fresh specifics, appended to the corpus.
		gold := make([]int, 0, c.goldPerQ)
		for g := 0; g < c.goldPerQ; g++ {
			words := make([]string, 0, c.kwPerDoc+c.goldShared+c.docSpecific/2)
			words = append(words, qkw...)
			words = append(words, content[:c.goldShared]...)
			words = append(words, lex.Words(c.docSpecific/2)...)
			docID, err := corpus.Append(docstore.Sentence(words), topic)
			if err != nil {
				return nil, fmt.Errorf("dataset %s: gold passage: %w", c.name, err)
			}
			gold = append(gold, docID)
		}
		b.Questions = append(b.Questions, Question{ID: id, Topic: topic, Text: text, Gold: gold})
	}
	return b, nil
}

// hash3 is a deterministic integer hash used for per-question variant
// decisions.
func hash3(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}
