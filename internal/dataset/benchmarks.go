package dataset

import (
	"math/rand/v2"

	"proximity/internal/llm"
	"proximity/internal/vec"
)

// newRand adapts the repository-wide seeded PRNG constructor.
func newRand(seed uint64) *rand.Rand { return vec.NewRand(seed) }

// Dim768 is the paper's embedding dimensionality (MedCPT and DPR).
const Dim768 = 768

// MMLUConfig parameterizes the MMLU-sim benchmark. Zero values select the
// paper-shaped defaults.
type MMLUConfig struct {
	// Questions defaults to 131, the econometrics subset size (§4.2.2).
	Questions int
	// Topics defaults to 57, MMLU's subject count.
	Topics int
	// DocsPerTopic scales the corpus (default 30; the paper's wiki_dpr
	// has 21M passages — see the LatencyModel substitution).
	DocsPerTopic int
	// Dim defaults to 768.
	Dim int
	// Seed drives all generation.
	Seed uint64
}

// NewMMLU builds the MMLU-sim benchmark: DPR-like geometry where distinct
// questions sit ≈3.5-4.5 apart, so the paper's τ = 5 regime (hit rates
// above the variant-repetition bound, mild accuracy dip) is reachable.
func NewMMLU(cfg MMLUConfig) (*Benchmark, error) {
	if cfg.Questions == 0 {
		cfg.Questions = 131
	}
	if cfg.Topics == 0 {
		cfg.Topics = 57
	}
	if cfg.DocsPerTopic == 0 {
		cfg.DocsPerTopic = 30
	}
	if cfg.Dim == 0 {
		cfg.Dim = Dim768
	}
	return build(config{
		name:         "mmlu",
		topics:       cfg.Topics,
		docsPerTopic: cfg.DocsPerTopic,
		kwPerTopic:   6,
		kwPerDoc:     4,
		docSpecific:  8,
		questions:    cfg.Questions,
		qTopicKw:     4,
		qContent:     6,
		goldPerQ:     3,
		goldShared:   3,
		dim:          cfg.Dim,
		seed:         cfg.Seed,
		style:        VariantStyle{ParaphraseProb: 0.3, MinSwaps: 1, MaxSwaps: 1},
		profile:      llm.MMLUProfile(),
		defaultK:     4,
		synonymFrac:  0.3,
	})
}

// MedRAGConfig parameterizes the MedRAG-sim benchmark.
type MedRAGConfig struct {
	// Questions defaults to 500, the PubMedQA question count; the
	// paper's uniform workload samples 200 of these (§4.2.2).
	Questions int
	// Topics defaults to 50 biomedical topic clusters.
	Topics int
	// DocsPerTopic scales the corpus (default 30).
	DocsPerTopic int
	// Dim defaults to 768.
	Dim int
	// Seed drives all generation.
	Seed uint64
}

// NewMedRAG builds the MedRAG-sim benchmark: MedCPT-like geometry with
// long questions (distinct questions ≈7.7-8.5 apart — outside τ=7.5,
// where the paper's Fig. 7b still shows ≈100%% recall, but inside τ=10,
// where its accuracy collapses) and deeper rephrasing, so τ = 5 catches
// only true variants.
func NewMedRAG(cfg MedRAGConfig) (*Benchmark, error) {
	if cfg.Questions == 0 {
		cfg.Questions = 500
	}
	if cfg.Topics == 0 {
		cfg.Topics = 50
	}
	if cfg.DocsPerTopic == 0 {
		cfg.DocsPerTopic = 30
	}
	if cfg.Dim == 0 {
		cfg.Dim = Dim768
	}
	return build(config{
		name:         "medrag",
		topics:       cfg.Topics,
		docsPerTopic: cfg.DocsPerTopic,
		kwPerTopic:   8,
		kwPerDoc:     5,
		docSpecific:  10,
		questions:    cfg.Questions,
		qTopicKw:     6,
		qContent:     30,
		goldPerQ:     3,
		goldShared:   15,
		dim:          cfg.Dim,
		seed:         cfg.Seed,
		style:        VariantStyle{ParaphraseProb: 1.0, MinSwaps: 1, MaxSwaps: 2},
		profile:      llm.MedRAGProfile(),
		defaultK:     4,
		synonymFrac:  0.4,
	})
}

// Subset returns a copy of the benchmark restricted to n randomly chosen
// questions (the paper samples 200 of the 500 PubMedQA questions). Gold
// passages of unselected questions remain in the corpus, as they would in
// a real deployment.
func (b *Benchmark) Subset(n int, seed uint64) *Benchmark {
	if n >= len(b.Questions) {
		return b
	}
	rng := newRand(seed)
	perm := rng.Perm(len(b.Questions))
	sub := *b
	sub.Questions = make([]Question, n)
	for i := 0; i < n; i++ {
		sub.Questions[i] = b.Questions[perm[i]]
	}
	return &sub
}
