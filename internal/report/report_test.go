package report

import (
	"strings"
	"testing"
	"time"
)

func TestTable(t *testing.T) {
	tbl := NewTable("My results", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-very-long-name", "2")
	tbl.AddRow("short") // padded
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "My results" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	if len(lines) != 6 {
		t.Errorf("line count = %d, want 6", len(lines))
	}
	// Alignment: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") {
		t.Errorf("misaligned value column: %q", lines[3])
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("Hit rate", "c", "tau", []string{"10", "50"}, []string{"0.5", "1"})
	h.SetFloat(0, 0, 0.123, 1)
	h.Set(1, 1, "93.0")
	h.Set(5, 5, "ignored") // out of range: no panic
	s := h.String()
	for _, want := range []string{"Hit rate", "0.1", "93.0", "10", "50"} {
		if !strings.Contains(s, want) {
			t.Errorf("heatmap output missing %q:\n%s", want, s)
		}
	}
	// Unset cells render as "-".
	if !strings.Contains(s, "-") {
		t.Error("unset cells should render as dashes")
	}
}

func TestFormatters(t *testing.T) {
	if got := Percent(0.7725); got != "77.2" {
		t.Errorf("Percent = %q", got)
	}
	if got := Millis(4800 * time.Millisecond); got != "4800.00" {
		t.Errorf("Millis = %q", got)
	}
	if got := Micros(4800 * time.Nanosecond); got != "4.80" {
		t.Errorf("Micros = %q", got)
	}
}

func TestDensityArt(t *testing.T) {
	grid := [][]int{
		{0, 1},
		{10, 100},
	}
	art := DensityArt(grid)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("art shape wrong: %q", art)
	}
	if lines[0][0] != ' ' {
		t.Error("zero cell should render as space")
	}
	if lines[1][1] != '@' {
		t.Errorf("max cell should render with the darkest glyph, got %q", lines[1][1])
	}
	// Monotone shading: cell 10 darker than cell 1.
	ramp := " .:-=+*#%@"
	if strings.IndexByte(ramp, lines[1][0]) <= strings.IndexByte(ramp, lines[0][1]) {
		t.Error("larger counts should render darker")
	}
}

func TestDensityArtUniform(t *testing.T) {
	art := DensityArt([][]int{{1, 1}})
	if art != "@@\n" {
		t.Errorf("uniform single-count grid = %q", art)
	}
}
