// Package report renders experiment results as aligned text tables and
// heatmap grids, the terminal equivalent of the paper's figure panels.
package report

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Table is a simple aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Heatmap renders a labeled numeric grid, the text analogue of the
// paper's parameter-sweep panels (e.g. Fig. 6's c×τ grids).
type Heatmap struct {
	title     string
	colTitle  string
	rowTitle  string
	colLabels []string
	rowLabels []string
	cells     [][]string
}

// NewHeatmap creates a rows×cols heatmap shell; fill it with Set.
func NewHeatmap(title, rowTitle, colTitle string, rowLabels, colLabels []string) *Heatmap {
	cells := make([][]string, len(rowLabels))
	for i := range cells {
		cells[i] = make([]string, len(colLabels))
		for j := range cells[i] {
			cells[i][j] = "-"
		}
	}
	return &Heatmap{
		title:     title,
		rowTitle:  rowTitle,
		colTitle:  colTitle,
		rowLabels: rowLabels,
		colLabels: colLabels,
		cells:     cells,
	}
}

// Set writes a formatted cell value; out-of-range indices are ignored.
func (h *Heatmap) Set(row, col int, value string) {
	if row < 0 || row >= len(h.cells) || col < 0 || col >= len(h.colLabels) {
		return
	}
	h.cells[row][col] = value
}

// SetFloat writes a cell with the given precision.
func (h *Heatmap) SetFloat(row, col int, value float64, decimals int) {
	h.Set(row, col, fmt.Sprintf("%.*f", decimals, value))
}

// String renders the heatmap.
func (h *Heatmap) String() string {
	tbl := NewTable(
		fmt.Sprintf("%s (rows: %s, cols: %s)", h.title, h.rowTitle, h.colTitle),
		append([]string{h.rowTitle + `\` + h.colTitle}, h.colLabels...)...,
	)
	for i, rl := range h.rowLabels {
		tbl.AddRow(append([]string{rl}, h.cells[i]...)...)
	}
	return tbl.String()
}

// Percent formats a fraction as a percentage with one decimal.
func Percent(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// Millis formats a duration in milliseconds with two decimals.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// Micros formats a duration in microseconds with two decimals.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Microsecond))
}

// DensityArt renders a count grid as ASCII art with a logarithmic shade
// ramp — the terminal rendering of Fig. 3.
func DensityArt(grid [][]int) string {
	const ramp = " .:-=+*#%@"
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		for _, c := range row {
			idx := 0
			if c > 0 && maxCount > 1 {
				// log scale so sparse cells stay visible.
				idx = 1 + int(float64(len(ramp)-2)*logRatio(c, maxCount))
			} else if c > 0 {
				idx = len(ramp) - 1
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func logRatio(c, maxCount int) float64 {
	if maxCount <= 1 {
		return 1
	}
	return math.Log2(float64(c)) / math.Log2(float64(maxCount))
}
