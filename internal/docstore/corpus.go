package docstore

import (
	"fmt"

	"proximity/internal/embed"
	"proximity/internal/vec"
)

// Document is one retrievable passage.
type Document struct {
	ID    int
	Text  string
	Topic int // index into Corpus.Topics, -1 for topic-less appends
}

// Topic is a cluster of related passages; its keywords are the shared
// tokens that pull the cluster together in embedding space.
type Topic struct {
	ID       int
	Name     string
	Keywords []string
}

// Config parameterizes corpus generation. The token-count knobs control
// the embedding geometry: passages of the same topic differ in
// SpecificPerDoc tokens, passages of different topics additionally differ
// in their share of topic keywords (see DESIGN.md §3).
type Config struct {
	NumTopics        int    // number of topic clusters
	DocsPerTopic     int    // passages generated per topic
	KeywordsPerTopic int    // keyword tokens owned by each topic (default 6)
	KeywordsPerDoc   int    // topic keywords included in each passage (default 4)
	SpecificPerDoc   int    // passage-specific tokens (default 8)
	Seed             uint64 // generation seed
}

func (c *Config) fillDefaults() {
	if c.KeywordsPerTopic == 0 {
		c.KeywordsPerTopic = 6
	}
	if c.KeywordsPerDoc == 0 {
		c.KeywordsPerDoc = 4
	}
	if c.SpecificPerDoc == 0 {
		c.SpecificPerDoc = 8
	}
}

func (c Config) validate() error {
	if err := validatePositive("NumTopics", c.NumTopics); err != nil {
		return err
	}
	if err := validatePositive("DocsPerTopic", c.DocsPerTopic); err != nil {
		return err
	}
	if c.KeywordsPerDoc > c.KeywordsPerTopic {
		return fmt.Errorf("docstore: KeywordsPerDoc (%d) exceeds KeywordsPerTopic (%d)",
			c.KeywordsPerDoc, c.KeywordsPerTopic)
	}
	return nil
}

// Corpus is an embedded document collection. It is the unit handed to a
// vector index for the indexing phase of the RAG workflow (Fig. 1, steps
// ➊-➋). Not safe for concurrent mutation; build fully, then share.
type Corpus struct {
	Docs       []Document
	Embeddings []vec.Vector // parallel to Docs
	Topics     []Topic

	embedder  embed.Embedder
	topicDocs [][]int // topic ID -> doc IDs
}

// Generate builds a topic-clustered corpus using words from the lexicon
// and embeddings from the embedder.
func Generate(cfg Config, lex *Lexicon, e embed.Embedder) (*Corpus, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := vec.NewRand(cfg.Seed)
	c := &Corpus{
		Docs:       make([]Document, 0, cfg.NumTopics*cfg.DocsPerTopic),
		Embeddings: make([]vec.Vector, 0, cfg.NumTopics*cfg.DocsPerTopic),
		Topics:     make([]Topic, cfg.NumTopics),
		embedder:   e,
		topicDocs:  make([][]int, cfg.NumTopics),
	}
	for t := 0; t < cfg.NumTopics; t++ {
		c.Topics[t] = Topic{
			ID:       t,
			Name:     lex.Word(),
			Keywords: lex.Words(cfg.KeywordsPerTopic),
		}
		for d := 0; d < cfg.DocsPerTopic; d++ {
			words := make([]string, 0, cfg.KeywordsPerDoc+cfg.SpecificPerDoc)
			words = append(words, pickK(rng, c.Topics[t].Keywords, cfg.KeywordsPerDoc)...)
			words = append(words, lex.Words(cfg.SpecificPerDoc)...)
			c.appendDoc(Sentence(words), t)
		}
	}
	return c, nil
}

// NewEmpty creates a corpus with no documents, for callers that build
// content entirely through Append (e.g. the TripClick document side).
func NewEmpty(e embed.Embedder) *Corpus {
	return &Corpus{embedder: e}
}

// Append embeds and adds a passage, returning its document ID. topic may
// be -1 for unclustered content; otherwise it must identify an existing
// topic.
func (c *Corpus) Append(text string, topic int) (int, error) {
	if topic >= len(c.Topics) {
		return 0, fmt.Errorf("docstore: topic %d out of range (have %d)", topic, len(c.Topics))
	}
	if topic < -1 {
		return 0, fmt.Errorf("docstore: invalid topic %d", topic)
	}
	return c.appendDoc(text, topic), nil
}

func (c *Corpus) appendDoc(text string, topic int) int {
	id := len(c.Docs)
	c.Docs = append(c.Docs, Document{ID: id, Text: text, Topic: topic})
	c.Embeddings = append(c.Embeddings, c.embedder.Embed(text))
	if topic >= 0 {
		for len(c.topicDocs) <= topic {
			c.topicDocs = append(c.topicDocs, nil)
		}
		c.topicDocs[topic] = append(c.topicDocs[topic], id)
	}
	return id
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// Dim returns the embedding dimensionality.
func (c *Corpus) Dim() int { return c.embedder.Dim() }

// Embedder returns the encoder shared by documents and queries.
func (c *Corpus) Embedder() embed.Embedder { return c.embedder }

// TopicDocs returns the IDs of all passages belonging to a topic. The
// returned slice is owned by the corpus; callers must not modify it.
func (c *Corpus) TopicDocs(topic int) []int {
	if topic < 0 || topic >= len(c.topicDocs) {
		return nil
	}
	return c.topicDocs[topic]
}

// Vector returns the embedding of document id. It implements the
// vectordb.VectorSource contract used by cache re-ranking.
func (c *Corpus) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= len(c.Embeddings) {
		return nil, fmt.Errorf("docstore: document %d out of range (have %d)", id, len(c.Embeddings))
	}
	return c.Embeddings[id], nil
}

// pickK samples k distinct elements from words in deterministic order
// derived from rng. k must be ≤ len(words) (validated by Config).
func pickK(rng interface{ Uint64() uint64 }, words []string, k int) []string {
	idx := make([]int, len(words))
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: shuffle only the prefix we need.
	for i := 0; i < k; i++ {
		j := i + int(rng.Uint64()%uint64(len(idx)-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = words[idx[i]]
	}
	return out
}
