package docstore

import (
	"strings"
	"testing"

	"proximity/internal/embed"
	"proximity/internal/vec"
)

func TestLexiconUniqueness(t *testing.T) {
	lex := NewLexicon(1)
	seen := make(map[string]struct{})
	for i := 0; i < 5000; i++ {
		w := lex.Word()
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate word %q at iteration %d", w, i)
		}
		seen[w] = struct{}{}
	}
	if lex.Generated() != 5000 {
		t.Errorf("Generated = %d, want 5000", lex.Generated())
	}
}

func TestLexiconDeterminism(t *testing.T) {
	a, b := NewLexicon(7), NewLexicon(7)
	for i := 0; i < 100; i++ {
		if a.Word() != b.Word() {
			t.Fatal("same seed must generate the same word sequence")
		}
	}
	c := NewLexicon(8)
	if a.Word() == c.Word() {
		t.Log("note: different seeds coincidentally agreed once (allowed)")
	}
}

func TestLexiconWordsAndSynonymGroup(t *testing.T) {
	lex := NewLexicon(2)
	ws := lex.Words(5)
	if len(ws) != 5 {
		t.Fatalf("Words(5) returned %d", len(ws))
	}
	g := lex.SynonymGroup(3)
	if len(g) != 3 {
		t.Fatalf("SynonymGroup(3) returned %d", len(g))
	}
	all := append(append([]string{}, ws...), g...)
	seen := make(map[string]struct{})
	for _, w := range all {
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate %q across Words/SynonymGroup", w)
		}
		seen[w] = struct{}{}
	}
}

func TestSentenceAndJoin(t *testing.T) {
	if got := Sentence([]string{"alpha", "beta"}); got != "Alpha beta." {
		t.Errorf("Sentence = %q", got)
	}
	if got := Sentence(nil); got != "" {
		t.Errorf("Sentence(nil) = %q", got)
	}
	if got := JoinWords([]string{"a", "b"}); got != "a b" {
		t.Errorf("JoinWords = %q", got)
	}
}

func testEmbedder() embed.Embedder {
	return embed.NewTokenHash(128, 99, embed.WithName("test"))
}

func TestGenerateValidation(t *testing.T) {
	lex := NewLexicon(3)
	e := testEmbedder()
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "zero topics", cfg: Config{NumTopics: 0, DocsPerTopic: 2}},
		{name: "zero docs", cfg: Config{NumTopics: 2, DocsPerTopic: 0}},
		{name: "keywords per doc too large", cfg: Config{NumTopics: 1, DocsPerTopic: 1, KeywordsPerTopic: 3, KeywordsPerDoc: 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg, lex, e); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	lex := NewLexicon(4)
	c, err := Generate(Config{NumTopics: 5, DocsPerTopic: 10, Seed: 1}, lex, testEmbedder())
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 50 {
		t.Errorf("Len = %d, want 50", c.Len())
	}
	if len(c.Topics) != 5 {
		t.Errorf("topics = %d", len(c.Topics))
	}
	if c.Dim() != 128 {
		t.Errorf("Dim = %d", c.Dim())
	}
	for tid := 0; tid < 5; tid++ {
		docs := c.TopicDocs(tid)
		if len(docs) != 10 {
			t.Errorf("topic %d has %d docs", tid, len(docs))
		}
		for _, id := range docs {
			if c.Docs[id].Topic != tid {
				t.Errorf("doc %d topic mismatch", id)
			}
		}
	}
	if got := c.TopicDocs(-1); got != nil {
		t.Error("TopicDocs(-1) should be nil")
	}
	if got := c.TopicDocs(99); got != nil {
		t.Error("TopicDocs(out of range) should be nil")
	}
}

func TestGenerateDocsContainTopicKeywords(t *testing.T) {
	lex := NewLexicon(5)
	c, err := Generate(Config{NumTopics: 3, DocsPerTopic: 4, KeywordsPerTopic: 6, KeywordsPerDoc: 4, Seed: 2}, lex, testEmbedder())
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range c.Docs {
		kw := c.Topics[doc.Topic].Keywords
		found := 0
		lower := strings.ToLower(doc.Text)
		for _, w := range kw {
			if strings.Contains(lower, w) {
				found++
			}
		}
		if found < 4 {
			t.Errorf("doc %d contains only %d topic keywords: %q", doc.ID, found, doc.Text)
		}
	}
}

func TestTopicClusterGeometry(t *testing.T) {
	// Same-topic passages must embed closer than cross-topic passages on
	// average — the cluster structure of Fig. 3.
	lex := NewLexicon(6)
	c, err := Generate(Config{NumTopics: 4, DocsPerTopic: 8, Seed: 3}, lex, testEmbedder())
	if err != nil {
		t.Fatal(err)
	}
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < c.Len(); i++ {
		for j := i + 1; j < c.Len(); j++ {
			d := float64(vec.L2(c.Embeddings[i], c.Embeddings[j]))
			if c.Docs[i].Topic == c.Docs[j].Topic {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	same /= float64(nSame)
	cross /= float64(nCross)
	if same >= cross {
		t.Errorf("same-topic mean distance %v should be below cross-topic %v", same, cross)
	}
}

func TestAppend(t *testing.T) {
	lex := NewLexicon(7)
	c, err := Generate(Config{NumTopics: 2, DocsPerTopic: 2, Seed: 4}, lex, testEmbedder())
	if err != nil {
		t.Fatal(err)
	}
	n := c.Len()
	id, err := c.Append("custom gold passage", 1)
	if err != nil {
		t.Fatal(err)
	}
	if id != n {
		t.Errorf("Append ID = %d, want %d", id, n)
	}
	if c.Len() != n+1 {
		t.Errorf("Len = %d", c.Len())
	}
	docs := c.TopicDocs(1)
	if docs[len(docs)-1] != id {
		t.Error("appended doc missing from topic listing")
	}

	topicless, err := c.Append("floating passage", -1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Docs[topicless].Topic != -1 {
		t.Error("topic-less append should record topic -1")
	}

	if _, err := c.Append("bad", 99); err == nil {
		t.Error("append to unknown topic should error")
	}
	if _, err := c.Append("bad", -2); err == nil {
		t.Error("append with invalid topic should error")
	}
}

func TestNewEmptyAndVector(t *testing.T) {
	c := NewEmpty(testEmbedder())
	if c.Len() != 0 {
		t.Fatal("empty corpus should have no docs")
	}
	id, err := c.Append("hello world", -1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Vector(id)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(v, c.Embedder().Embed("hello world")) {
		t.Error("stored embedding must match the encoder output")
	}
	if _, err := c.Vector(-1); err == nil {
		t.Error("Vector(-1) should error")
	}
	if _, err := c.Vector(5); err == nil {
		t.Error("Vector(out of range) should error")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	build := func() *Corpus {
		c, err := Generate(Config{NumTopics: 3, DocsPerTopic: 5, Seed: 11}, NewLexicon(11), testEmbedder())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := build(), build()
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text {
			t.Fatalf("doc %d text differs", i)
		}
		if !vec.Equal(a.Embeddings[i], b.Embeddings[i]) {
			t.Fatalf("doc %d embedding differs", i)
		}
	}
}
