// Package docstore generates and holds the synthetic passage corpora that
// stand in for the paper's document sources (wiki_dpr, 21M Wikipedia
// passages for MMLU; PubMed, 23.9M snippets for MedRAG). Documents are
// clustered around topics: each topic owns a set of keyword tokens, and a
// passage mixes topic keywords with passage-specific tokens, so passages
// about one topic embed near each other and far from other topics —
// exactly the cluster structure Fig. 3 of the paper observes in real query
// embeddings. Corpora are scaled down (thousands instead of millions of
// passages); the vectordb.LatencyModel restores production-scale service
// times. See DESIGN.md §3.
package docstore

import (
	"fmt"
	"strings"

	"proximity/internal/vec"
)

// Lexicon deterministically generates unique pronounceable pseudo-words.
// All synthetic text in the reproduction (topics, passages, questions,
// synonym families) draws from one lexicon so token collisions between
// unrelated content are impossible by construction.
type Lexicon struct {
	rng  interface{ Uint64() uint64 }
	used map[string]struct{}
}

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
	"sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
	"va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
}

// NewLexicon creates a lexicon seeded for deterministic word generation.
func NewLexicon(seed uint64) *Lexicon {
	return &Lexicon{
		rng:  vec.NewRand(seed),
		used: make(map[string]struct{}),
	}
}

// Word returns a fresh pseudo-word never returned before by this lexicon.
func (l *Lexicon) Word() string {
	for {
		n := 2 + int(l.rng.Uint64()%3) // 2-4 syllables
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(syllables[l.rng.Uint64()%uint64(len(syllables))])
		}
		w := b.String()
		if _, dup := l.used[w]; dup {
			continue
		}
		l.used[w] = struct{}{}
		return w
	}
}

// Words returns n fresh unique pseudo-words.
func (l *Lexicon) Words(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = l.Word()
	}
	return out
}

// SynonymGroup returns n fresh words intended to be registered as one
// synonym family in an embed.Thesaurus; the first element is the
// canonical form.
func (l *Lexicon) SynonymGroup(n int) []string {
	return l.Words(n)
}

// Generated reports how many unique words have been produced.
func (l *Lexicon) Generated() int { return len(l.used) }

// JoinWords renders tokens as a space-separated phrase.
func JoinWords(words []string) string { return strings.Join(words, " ") }

// Sentence renders tokens as a capitalized, period-terminated sentence for
// more natural-looking passages.
func Sentence(words []string) string {
	if len(words) == 0 {
		return ""
	}
	s := strings.Join(words, " ")
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

// validatePositive is a tiny helper for config checking.
func validatePositive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("docstore: %s must be positive, got %d", name, v)
	}
	return nil
}
