package batch

import "time"

// Clock abstracts the queue's flush timer so tests can drive timeout
// semantics deterministically (see the fake clock in
// internal/experiments/clock.go); production code uses SystemClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one value once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the real time.Now/time.After clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
