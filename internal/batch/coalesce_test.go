package batch_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"proximity/internal/batch"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

// gatedSearcher blocks every Search until release is closed, so the test
// can hold leader flights open while duplicate requests pile up. Calls
// are counted per key (the first embedding element).
type gatedSearcher struct {
	release chan struct{}
	err     error

	mu    sync.Mutex
	calls map[uint32]int
}

func newGatedSearcher() *gatedSearcher {
	return &gatedSearcher{release: make(chan struct{}), calls: make(map[uint32]int)}
}

func (g *gatedSearcher) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	<-g.release
	key := uint32(q[0])
	g.mu.Lock()
	g.calls[key]++
	g.mu.Unlock()
	if g.err != nil {
		return nil, g.err
	}
	out := make([]vec.Scored, k)
	for i := range out {
		out[i] = vec.Scored{ID: int(q[0])*100 + i, Dist: float32(i)}
	}
	return out, nil
}

func (g *gatedSearcher) callsFor(key uint32) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls[key]
}

// keyByFirstElement fingerprints a query by its first element, making the
// test's duplicate structure explicit.
func keyByFirstElement(q vec.Vector) uint32 { return uint32(q[0]) }

// waitForStats polls until the coalescer reaches the wanted counters —
// every increment happens before the corresponding goroutine blocks, so
// reaching them means every duplicate is parked on a leader's flight.
func waitForStats(t *testing.T, c *batch.Coalescer, leads, coalesced int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := c.Stats()
		if st.Leads == leads && st.Coalesced == coalesced {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	st := c.Stats()
	t.Fatalf("coalescer never settled: leads=%d coalesced=%d, want %d/%d",
		st.Leads, st.Coalesced, leads, coalesced)
}

// TestCoalescerStress hammers the coalescer from many goroutines issuing
// duplicate and distinct misses concurrently (run under -race in CI):
// exactly one database search per unique fingerprint must happen while
// flights overlap, and every caller must receive the full, correct result
// set — no lost results, no shared mutable slices.
func TestCoalescerStress(t *testing.T) {
	const (
		unique = 8
		dupes  = 24 // goroutines per unique key
		k      = 5
	)
	searcher := newGatedSearcher()
	co, err := batch.NewCoalescer(searcher, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}

	total := unique * dupes
	results := make([][]vec.Scored, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for g := 0; g < total; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := g % unique
			q := vec.Vector{float32(key), float32(g)}
			res, err := co.Search(q, k)
			results[g], errs[g] = res, err
			if err == nil && len(res) > 0 {
				// Scribble on the returned slice: every caller owns its
				// result, so -race must stay quiet and nobody else's
				// result may change.
				res[0] = vec.Scored{ID: -1, Dist: -1}
			}
		}(g)
	}

	// All flights in-flight: one leader per unique key, everyone else
	// parked on a flight. Only then release the searches.
	waitForStats(t, co, unique, int64(total-unique))
	close(searcher.release)
	wg.Wait()

	for key := uint32(0); key < unique; key++ {
		if got := searcher.callsFor(key); got != 1 {
			t.Errorf("key %d: %d database searches, want exactly 1", key, got)
		}
	}
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: unexpected error %v", g, err)
		}
		res := results[g]
		if len(res) != k {
			t.Fatalf("goroutine %d: got %d results, want %d (lost results)", g, len(res), k)
		}
		key := g % unique
		for i := 1; i < k; i++ { // res[0] was deliberately scribbled
			want := vec.Scored{ID: key*100 + i, Dist: float32(i)}
			if res[i] != want {
				t.Fatalf("goroutine %d result[%d] = %+v, want %+v", g, i, res[i], want)
			}
		}
	}
	if got := co.Inflight(); got != 0 {
		t.Errorf("inflight after drain = %d, want 0", got)
	}
}

// TestCoalescerErrorFanOut verifies a leader's failure reaches every
// coalesced follower.
func TestCoalescerErrorFanOut(t *testing.T) {
	searcher := newGatedSearcher()
	wantErr := errors.New("index unavailable")
	searcher.err = wantErr
	co, err := batch.NewCoalescer(searcher, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}

	const followers = 7
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	for g := 0; g <= followers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = co.Search(vec.Vector{1, float32(g)}, 3)
		}(g)
	}
	waitForStats(t, co, 1, followers)
	close(searcher.release)
	wg.Wait()

	for g, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Errorf("goroutine %d error = %v, want %v", g, err, wantErr)
		}
	}
}

// TestCoalescerSequentialNotDeduplicated pins the contract that only
// overlapping requests coalesce: back-to-back repeats each search the
// database (deduplicating those is the cache's job).
func TestCoalescerSequentialNotDeduplicated(t *testing.T) {
	searcher := newGatedSearcher()
	close(searcher.release) // never block
	co, err := batch.NewCoalescer(searcher, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector{3, 0}
	for i := 0; i < 3; i++ {
		if _, err := co.Search(q, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := searcher.callsFor(3); got != 3 {
		t.Errorf("sequential repeats reached the database %d times, want 3", got)
	}
	st := co.Stats()
	if st.Leads != 3 || st.Coalesced != 0 {
		t.Errorf("stats = %+v, want 3 leads / 0 coalesced", st)
	}
}

// TestCoalescerDistinctK verifies that the same embedding asked with
// different k values does not share a flight (the results differ).
func TestCoalescerDistinctK(t *testing.T) {
	searcher := newGatedSearcher()
	co, err := batch.NewCoalescer(searcher, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	res := make([][]vec.Scored, 2)
	for i, k := range []int{2, 6} {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			r, err := co.Search(vec.Vector{5, 0}, k)
			if err != nil {
				t.Error(err)
			}
			res[i] = r
		}(i, k)
	}
	waitForStats(t, co, 2, 0)
	close(searcher.release)
	wg.Wait()
	if len(res[0]) != 2 || len(res[1]) != 6 {
		t.Errorf("result lengths = %d/%d, want 2/6", len(res[0]), len(res[1]))
	}
	if got := searcher.callsFor(5); got != 2 {
		t.Errorf("distinct-k searches = %d, want 2", got)
	}
}

// TestVerifiedCoalescerCollision pins the exact-mode safety contract: two
// distinct embeddings whose fingerprints collide must NOT share a flight
// — each searches the database itself, so a hash collision can never
// serve (and let the retriever cache) another query's documents.
func TestVerifiedCoalescerCollision(t *testing.T) {
	searcher := newGatedSearcher()
	co, err := batch.NewVerifiedCoalescer(searcher, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}
	// Same first element → same key; different tails → distinct queries.
	q1 := vec.Vector{7, 1}
	q2 := vec.Vector{7, 2}

	var wg sync.WaitGroup
	results := make([][]vec.Scored, 2)
	for i, q := range []vec.Vector{q1, q2} {
		wg.Add(1)
		go func(i int, q vec.Vector) {
			defer wg.Done()
			res, err := co.Search(q, 3)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i, q)
	}
	// Exactly one goroutine leads; the collider bypasses the flight and
	// blocks in its own database search — wait for both, then release.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := co.Stats()
		if st.Leads == 1 && st.Collisions == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(searcher.release)
	wg.Wait()

	if got := searcher.callsFor(7); got != 2 {
		t.Errorf("colliding queries reached the database %d times, want 2 (no sharing)", got)
	}
	st := co.Stats()
	if st.Leads != 1 || st.Collisions != 1 || st.Coalesced != 0 {
		t.Errorf("stats = %+v, want 1 lead, 1 collision, 0 coalesced", st)
	}
	if results[0] == nil || results[1] == nil {
		t.Fatal("a collider lost its results")
	}
}

// Ensure the example fingerprint type assumptions hold.
var _ batch.KeyFunc = keyByFirstElement

func ExampleCoalesceStats_Rate() {
	s := batch.CoalesceStats{Leads: 25, Coalesced: 75}
	fmt.Printf("%.2f\n", s.Rate())
	// Output: 0.75
}

// TestCoalescerFollowerSpanLink pins the trace attribution contract: a
// sampled follower's coalesce_wait span must carry the leader's trace ID
// as its link, so the leader's search stays discoverable from every
// request it served. An unsampled leader yields a zero link.
func TestCoalescerFollowerSpanLink(t *testing.T) {
	g := newGatedSearcher()
	c, err := batch.NewCoalescer(g, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(1, 8) // sample every request
	leaderCtx, leaderTrace := tr.Start(context.Background())
	followerCtx, followerTrace := tr.Start(context.Background())
	if leaderTrace.ID() == 0 || followerTrace.ID() == 0 {
		t.Fatal("sampling off")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := c.SearchContext(leaderCtx, vec.Vector{1, 0}, 2); err != nil {
			t.Error(err)
		}
	}()
	waitForStats(t, c, 1, 0)
	go func() {
		defer wg.Done()
		if _, err := c.SearchContext(followerCtx, vec.Vector{1, 0}, 2); err != nil {
			t.Error(err)
		}
	}()
	waitForStats(t, c, 1, 1)
	close(g.release)
	wg.Wait()
	var waits []telemetry.Span
	for _, s := range followerTrace.Spans() {
		if s.Stage == telemetry.StageCoalesceWait {
			waits = append(waits, s)
		}
	}
	if len(waits) != 1 {
		t.Fatalf("follower coalesce_wait spans = %d, want 1", len(waits))
	}
	if waits[0].Link != leaderTrace.ID() {
		t.Errorf("follower wait link = %d, want leader trace %d", waits[0].Link, leaderTrace.ID())
	}
	followerTrace.Finish()
	leaderTrace.Finish()

	// Unsampled leader (nil trace): followers still coalesce, link is 0.
	g2 := newGatedSearcher()
	c2, err := batch.NewCoalescer(g2, keyByFirstElement)
	if err != nil {
		t.Fatal(err)
	}
	_, f2Trace := tr.Start(context.Background())
	f2Ctx := telemetry.ContextWithTrace(context.Background(), f2Trace)
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := c2.Search(vec.Vector{2, 0}, 2); err != nil { // untraced leader
			t.Error(err)
		}
	}()
	waitForStats(t, c2, 1, 0)
	go func() {
		defer wg.Done()
		if _, err := c2.SearchContext(f2Ctx, vec.Vector{2, 0}, 2); err != nil {
			t.Error(err)
		}
	}()
	waitForStats(t, c2, 1, 1)
	close(g2.release)
	wg.Wait()
	for _, s := range f2Trace.Spans() {
		if s.Stage == telemetry.StageCoalesceWait && s.Link != 0 {
			t.Errorf("unsampled leader produced link %d, want 0", s.Link)
		}
	}
	f2Trace.Finish()
}
