package batch_test

import (
	"strings"
	"testing"
	"time"

	"proximity/internal/batch"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func TestConstructorValidation(t *testing.T) {
	ix := buildIVF(t, 20, 4, 1)
	if _, err := batch.NewQueue(nil, batch.QueueOptions{}); err == nil {
		t.Error("NewQueue(nil) should fail")
	}
	if _, err := batch.NewCoalescer(nil, func(vec.Vector) uint32 { return 0 }); err == nil {
		t.Error("NewCoalescer(nil inner) should fail")
	}
	if _, err := batch.NewCoalescer(ix, nil); err == nil {
		t.Error("NewCoalescer(nil key) should fail")
	}
	if _, err := batch.New(nil, batch.Options{}); err == nil {
		t.Error("New(nil db) should fail")
	}
	if _, err := batch.New(ix, batch.Options{Queues: -1}); err == nil {
		t.Error("negative queue count should fail")
	}
	if _, err := batch.New(ix, batch.Options{Coalesce: batch.CoalesceMode(99)}); err == nil {
		t.Error("unknown coalesce mode should fail")
	}

	q, err := batch.NewQueue(ix, batch.QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Search(vec.Vector{1, 2, 3, 4}, 0); err != vectordb.ErrBadK {
		t.Errorf("k=0 error = %v, want ErrBadK", err)
	}
}

func TestCoalesceModeString(t *testing.T) {
	cases := map[batch.CoalesceMode]string{
		batch.CoalesceExact: "exact",
		batch.CoalesceLSH:   "lsh",
		batch.CoalesceOff:   "off",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(mode), got, want)
		}
	}
	if got := batch.CoalesceMode(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown mode string %q should carry the value", got)
	}
}

func TestCoalesceOffPipeline(t *testing.T) {
	ix := buildIVF(t, 30, 4, 2)
	counting := vectordb.NewInstrumented(ix, nil)
	pipe, err := batch.New(counting, batch.Options{
		Queues:   1,
		Coalesce: batch.CoalesceOff,
		Timeout:  20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.RandomGaussian(vec.NewRand(3), 4)
	for i := 0; i < 3; i++ {
		if _, err := pipe.Search(q, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	st := pipe.Stats()
	if st.Coalesced != 0 || st.Searches != 3 || st.Enqueued != 3 {
		t.Errorf("CoalesceOff stats = %+v, want 3 searches, 0 coalesced", st)
	}
	if st.CoalesceRate() != 0 {
		t.Errorf("CoalesceRate = %v, want 0", st.CoalesceRate())
	}
}

func TestQueueStatsMeanBatch(t *testing.T) {
	var s batch.QueueStats
	if s.MeanBatch() != 0 {
		t.Error("MeanBatch before any flush should be 0")
	}
	s = batch.QueueStats{Enqueued: 12, Flushes: 3}
	if got := s.MeanBatch(); got != 4 {
		t.Errorf("MeanBatch = %v, want 4", got)
	}
	var p batch.Stats
	if p.MeanBatch() != 0 || p.CoalesceRate() != 0 {
		t.Error("empty pipeline stats should report zeros")
	}
}
