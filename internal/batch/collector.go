package batch

import (
	"sync"
	"time"
)

// Outcome is one request's share of a batched flush: its result or its
// error. FlushFuncs return one Outcome per request so a partially-failing
// batch (e.g. one sub-group of a grouped flush erroring) does not force
// every waiter to fail.
type Outcome[Res any] struct {
	Res Res
	Err error
}

// FlushFunc serves one gathered batch, returning outcomes parallel to
// reqs. It is called outside the collector's lock, possibly from several
// goroutines at once (a size-triggered flush can overlap a timer flush of
// the next batch), so it must be safe for concurrent use. If the returned
// slice is shorter than reqs, the missing waiters fail with ErrClosed;
// extra entries are ignored.
type FlushFunc[Req, Res any] func(reqs []Req) []Outcome[Res]

// Collector is the generic gather/flush engine behind the batch queue:
// concurrent Do calls gather until the batch reaches MaxBatch or Timeout
// elapses after its first request, then the whole batch is handed to one
// FlushFunc call. Queue specializes it to vector searches; the cluster
// router (internal/cluster) specializes it to per-node batched HTTP
// retrievals. All methods are safe for concurrent use.
type Collector[Req, Res any] struct {
	flushFn FlushFunc[Req, Res]
	opts    QueueOptions

	mu      sync.Mutex
	pending []collectorWaiter[Req, Res]
	gen     uint64 // bumped on every flush; stale timers check it
	closed  bool
	stats   QueueStats
}

// collectorWaiter is one pending Do call. at is stamped only when the
// collector has an OnDwell observer; otherwise no clocks are read.
type collectorWaiter[Req, Res any] struct {
	req Req
	ch  chan Outcome[Res]
	at  time.Time
}

// NewCollector creates a collector that serves gathered batches through
// flush.
func NewCollector[Req, Res any](flush FlushFunc[Req, Res], opts QueueOptions) (*Collector[Req, Res], error) {
	if flush == nil {
		return nil, errNilFlush
	}
	opts.fillDefaults()
	return &Collector[Req, Res]{flushFn: flush, opts: opts}, nil
}

// Do enqueues the request and blocks until its batch is flushed,
// returning this request's share of the batch outcome.
func (c *Collector[Req, Res]) Do(req Req) (Res, error) {
	ch := make(chan Outcome[Res], 1)
	w := collectorWaiter[Req, Res]{req: req, ch: ch}
	if c.opts.OnDwell != nil {
		w.at = time.Now()
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		var zero Res
		return zero, ErrClosed
	}
	c.pending = append(c.pending, w)
	c.stats.Enqueued++
	switch {
	case len(c.pending) >= c.opts.MaxBatch:
		ws := c.take()
		c.stats.SizeFlushes++
		c.mu.Unlock()
		c.flush(ws)
	case len(c.pending) == 1:
		// First request of a fresh batch: arm its flush timer.
		gen := c.gen
		timer := c.opts.Clock.After(c.opts.Timeout)
		c.mu.Unlock()
		go c.awaitTimer(gen, timer)
	default:
		c.mu.Unlock()
	}

	out := <-ch
	return out.Res, out.Err
}

// Close drains the pending batch and rejects subsequent Do calls with
// ErrClosed. Waiters of the drained batch receive their results.
func (c *Collector[Req, Res]) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ws := c.take()
	if len(ws) > 0 {
		c.stats.DrainFlushes++
	}
	c.mu.Unlock()
	if len(ws) > 0 {
		c.flush(ws)
	}
	return nil
}

// FlushNow flushes whatever has gathered without waiting for the size or
// timeout trigger (counted as a drain flush). The collector stays open.
// Used by Pipeline.Reset so a cache flush leaves no stale batch behind.
func (c *Collector[Req, Res]) FlushNow() {
	c.mu.Lock()
	ws := c.take()
	if len(ws) > 0 {
		c.stats.DrainFlushes++
	}
	c.mu.Unlock()
	if len(ws) > 0 {
		c.flush(ws)
	}
}

// Stats returns a snapshot of the cumulative counters.
func (c *Collector[Req, Res]) Stats() QueueStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the cumulative counters (pending requests are
// unaffected and flush normally).
func (c *Collector[Req, Res]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = QueueStats{}
}

// Pending returns the current batch occupancy, for diagnostics and tests.
func (c *Collector[Req, Res]) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// take removes the pending batch and invalidates its timer, counting the
// flush in the same critical section as the caller's trigger counter so
// Stats snapshots always see the trigger breakdown sum to Flushes.
// Callers hold c.mu.
func (c *Collector[Req, Res]) take() []collectorWaiter[Req, Res] {
	ws := c.pending
	c.pending = nil
	c.gen++
	if len(ws) > 0 {
		c.stats.Flushes++
	}
	return ws
}

// awaitTimer flushes the batch of generation gen when its timer fires; if
// that batch already flushed (by size, FlushNow, or drain), the
// generation moved on and the timer is stale.
func (c *Collector[Req, Res]) awaitTimer(gen uint64, timer <-chan time.Time) {
	<-timer
	c.mu.Lock()
	if c.gen != gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	ws := c.take()
	c.stats.TimeoutFlushes++
	c.mu.Unlock()
	c.flush(ws)
}

// flush hands one gathered batch to the FlushFunc and fans each outcome
// out to its waiter, counting errors.
func (c *Collector[Req, Res]) flush(ws []collectorWaiter[Req, Res]) {
	if c.opts.OnDwell != nil {
		now := time.Now()
		for _, w := range ws {
			c.opts.OnDwell(now.Sub(w.at))
		}
	}
	reqs := make([]Req, len(ws))
	for i, w := range ws {
		reqs[i] = w.req
	}
	outs := c.flushFn(reqs)

	var errs int64
	for i, w := range ws {
		out := Outcome[Res]{Err: ErrClosed}
		if i < len(outs) {
			out = outs[i]
		}
		if out.Err != nil {
			errs++
		}
		w.ch <- out
	}
	if errs > 0 {
		c.mu.Lock()
		c.stats.Errors += errs
		c.mu.Unlock()
	}
}

// FanError is the FlushFunc helper for all-or-nothing backends: it
// spreads one error across every request of a batch.
func FanError[Res any](n int, err error) []Outcome[Res] {
	outs := make([]Outcome[Res], n)
	for i := range outs {
		outs[i].Err = err
	}
	return outs
}
