package batch

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// echoFlush doubles each request, failing requests equal to poison.
func echoFlush(poison int) FlushFunc[int, int] {
	return func(reqs []int) []Outcome[int] {
		outs := make([]Outcome[int], len(reqs))
		for i, r := range reqs {
			if r == poison {
				outs[i] = Outcome[int]{Err: errors.New("poisoned")}
				continue
			}
			outs[i] = Outcome[int]{Res: 2 * r}
		}
		return outs
	}
}

func TestCollectorSizeFlush(t *testing.T) {
	c, err := NewCollector(echoFlush(-1), QueueOptions{MaxBatch: 4, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	results := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Do(i)
			if err != nil {
				t.Errorf("Do(%d): %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != 2*i {
			t.Errorf("Do(%d) = %d, want %d", i, r, 2*i)
		}
	}
	st := c.Stats()
	if st.Enqueued != 4 || st.SizeFlushes != 1 || st.Flushes != 1 {
		t.Errorf("stats = %+v, want 4 enqueued in 1 size flush", st)
	}
}

// TestCollectorPartialFailure: one request's error must not fail its
// batch-mates — the per-outcome contract the cluster submitter's
// replica-retry depends on.
func TestCollectorPartialFailure(t *testing.T) {
	c, err := NewCollector(echoFlush(1), QueueOptions{MaxBatch: 2, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	vals := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.Do(i)
		}(i)
	}
	wg.Wait()
	if errs[0] != nil || vals[0] != 0 {
		t.Errorf("request 0: val %d err %v, want 0, nil", vals[0], errs[0])
	}
	if errs[1] == nil {
		t.Error("poisoned request 1 should fail")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
}

func TestCollectorFlushNowAndResetStats(t *testing.T) {
	c, err := NewCollector(echoFlush(-1), QueueOptions{MaxBatch: 100, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan int, 1)
	go func() {
		res, err := c.Do(21)
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		done <- res
	}()
	// Wait for the request to gather, then force the flush.
	for c.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.FlushNow()
	if res := <-done; res != 42 {
		t.Errorf("FlushNow result = %d, want 42", res)
	}
	if st := c.Stats(); st.DrainFlushes != 1 {
		t.Errorf("drain flushes = %d, want 1", st.DrainFlushes)
	}

	c.ResetStats()
	if st := c.Stats(); st != (QueueStats{}) {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
}

// TestCollectorShortFlushResult: a misbehaving FlushFunc that returns too
// few outcomes fails the unmatched waiters instead of hanging them.
func TestCollectorShortFlushResult(t *testing.T) {
	short := func(reqs []int) []Outcome[int] { return nil }
	c, err := NewCollector(short, QueueOptions{MaxBatch: 1, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(1); !errors.Is(err, ErrClosed) {
		t.Errorf("short flush result: got %v, want ErrClosed", err)
	}
}

func TestCollectorClosed(t *testing.T) {
	c, err := NewCollector(echoFlush(-1), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close: got %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector[int, int](nil, QueueOptions{}); err == nil {
		t.Error("nil flush func should error")
	}
}
