// Package batch implements the miss-coalescing batched retrieval
// pipeline: the layer between the Proximity cache and the vector
// database that amortizes index traversal across concurrent cache
// misses, the optimization serving-oriented RAG systems (RAGCache)
// identify as the dominant latency lever once lookups are concurrent.
//
// Two mechanisms stack:
//
//   - Coalescer: per-fingerprint singleflight. Concurrent misses whose
//     embeddings share a fingerprint (byte-identical by default, or
//     LSH-signature-equal for near-identical rephrasings) share one
//     database search; followers wait on the leader's flight and get a
//     private copy of its results instead of racing duplicate scans.
//   - Queue: a per-shard batch collector. Unique misses routed to a
//     queue gather until the batch reaches MaxBatch or a
//     microsecond-scale timeout elapses, then flush as one
//     vectordb.SearchBatch call — the IVF index probes each coarse cell
//     once per batch, the flat index walks the corpus once per batch.
//
// Pipeline composes both behind the same Search signature the retriever
// already uses, so it drops into core.CachedRetriever via the Searcher
// option (or anywhere a vectordb.DB is expected). Requests inside a
// flush may ask for different k; the queue issues one batched search per
// distinct k (one call in the steady state, where every miss shares the
// retriever's ρ·K), so results are exact even over indexes whose
// candidate sets depend on k.
package batch
