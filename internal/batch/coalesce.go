package batch

import (
	"context"
	"errors"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

// Searcher is the minimal search surface the coalescer fronts — satisfied
// by a Queue, a Pipeline, or any vectordb.DB.
type Searcher interface {
	Search(q vec.Vector, k int) ([]vec.Scored, error)
}

// KeyFunc maps a query to its coalescing fingerprint. Requests with equal
// (fingerprint, k) that overlap in time share one inner search.
type KeyFunc func(q vec.Vector) uint32

// CoalesceStats are cumulative coalescer counters.
type CoalesceStats struct {
	// Leads counts requests that performed the inner search.
	Leads int64
	// Coalesced counts requests served from another request's flight.
	Coalesced int64
	// Collisions counts requests whose fingerprint matched an in-flight
	// search but whose embedding did not (verified mode only); they
	// searched independently rather than receive another query's
	// documents.
	Collisions int64
}

// Rate returns the fraction of requests served without an inner search.
func (s CoalesceStats) Rate() float64 {
	if n := s.Leads + s.Coalesced; n > 0 {
		return float64(s.Coalesced) / float64(n)
	}
	return 0
}

// flight is one in-progress inner search shared by duplicate requests.
type flight struct {
	q       vec.Vector // the leader's embedding, for collision verification
	traceID uint64     // the leader's trace ID (0 if the leader is unsampled)
	done    chan struct{}
	res     []vec.Scored
	err     error
}

// Coalescer deduplicates concurrent identical (or, with an LSH-signature
// key, near-identical) searches: the first request with a given
// (fingerprint, k) becomes the leader and performs the inner search;
// requests arriving while it is in flight wait and receive a private copy
// of its results. Sequential duplicates are NOT deduplicated — that is
// the cache's job; the coalescer only collapses races between concurrent
// misses. Safe for concurrent use.
// flightKey identifies one joinable flight. The generation changes on
// every SetKey, so flights filed under a retired key function are never
// joined by requests hashed with the new one — numeric key equality
// across two different draws carries no similarity guarantee at all.
type flightKey struct {
	gen uint32
	key uint32
	k   int
}

// keyState pairs the key function with its generation in one value, so
// a reader can never observe a new function with an old generation (or
// vice versa) — either tear would reopen the cross-draw join window.
type keyState struct {
	fn  KeyFunc
	gen uint32
}

type Coalescer struct {
	inner  Searcher
	key    atomic.Pointer[keyState] // swapped whole by SetKey; read lock-free
	genCtr atomic.Uint32            // mints a unique generation per SetKey
	verify bool                     // require embedding equality, not just key equality
	tel    *telemetry.Telemetry     // optional: coalesce_wait stage observations

	mu       sync.Mutex
	inflight map[flightKey]*flight
	stats    CoalesceStats
}

// NewCoalescer creates a singleflight front for inner, keyed by key.
// Requests whose keys match are assumed to be interchangeable — the
// right semantics for a locality-sensitive key such as an LSH signature,
// where near-identical queries are meant to share a flight.
func NewCoalescer(inner Searcher, key KeyFunc) (*Coalescer, error) {
	return newCoalescer(inner, key, false)
}

// NewVerifiedCoalescer is NewCoalescer for keys that promise exact
// deduplication (e.g. a byte fingerprint): a request joins a flight only
// if its embedding equals the leader's, so a hash collision degrades to
// an independent search instead of silently serving — and then caching —
// another query's documents.
func NewVerifiedCoalescer(inner Searcher, key KeyFunc) (*Coalescer, error) {
	return newCoalescer(inner, key, true)
}

func newCoalescer(inner Searcher, key KeyFunc, verify bool) (*Coalescer, error) {
	if inner == nil {
		return nil, errors.New("batch: coalescer requires an inner searcher")
	}
	if key == nil {
		return nil, errors.New("batch: coalescer requires a key function")
	}
	c := &Coalescer{
		inner:    inner,
		verify:   verify,
		inflight: make(map[flightKey]*flight),
	}
	c.key.Store(&keyState{fn: key})
	return c, nil
}

// SetTelemetry attaches a telemetry hub: follower waits are then
// observed under the coalesce_wait stage. Call before serving traffic.
func (c *Coalescer) SetTelemetry(tel *telemetry.Telemetry) { c.tel = tel }

// Search performs (or joins) the deduplicated search for q.
func (c *Coalescer) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	return c.search(nil, q, k)
}

// SearchContext is Search carrying a sampled trace: followers record a
// coalesce_wait span around the flight wait, leaders (and collision
// bypasses) a db_search span around the inner search.
func (c *Coalescer) SearchContext(ctx context.Context, q vec.Vector, k int) ([]vec.Scored, error) {
	return c.search(telemetry.FromContext(ctx), q, k)
}

func (c *Coalescer) search(trace *telemetry.Trace, q vec.Vector, k int) ([]vec.Scored, error) {
	ks := c.key.Load()
	key := flightKey{gen: ks.gen, key: ks.fn(q), k: k}

	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		if c.verify && !slices.Equal(f.q, q) {
			// Fingerprint collision between distinct embeddings: search
			// independently, bypassing the flight.
			c.stats.Collisions++
			c.mu.Unlock()
			finish := trace.StartSpan(telemetry.StageDBSearch)
			res, err := c.inner.Search(q, k)
			finish(err)
			return res, err
		}
		c.stats.Coalesced++
		c.mu.Unlock()
		// Link the wait to the leader's trace: the follower's latency is
		// the leader's work, and the link keeps that search attributable
		// from every request it served.
		finish := trace.StartSpanLinked(telemetry.StageCoalesceWait, f.traceID)
		var waitStart time.Time
		if c.tel != nil {
			waitStart = time.Now()
		}
		<-f.done
		if c.tel != nil {
			c.tel.ObserveStage(telemetry.StageCoalesceWait, time.Since(waitStart))
		}
		finish(f.err)
		if f.err != nil {
			return nil, f.err
		}
		// Followers get their own copy so no two callers share a
		// mutable result slice.
		out := make([]vec.Scored, len(f.res))
		copy(out, f.res)
		return out, nil
	}
	f := &flight{q: q, traceID: trace.ID(), done: make(chan struct{})}
	c.inflight[key] = f
	c.stats.Leads++
	c.mu.Unlock()

	finish := trace.StartSpan(telemetry.StageDBSearch)
	f.res, f.err = c.inner.Search(q, k)
	finish(f.err)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	// The leader also returns a copy: followers may still be copying
	// from f.res after this call returns, so the flight's slice must
	// stay immutable no matter what any caller does with its result.
	out := make([]vec.Scored, len(f.res))
	copy(out, f.res)
	return out, nil
}

// SetKey atomically replaces the fingerprint function. Flights already
// in progress complete under the (function, generation) pair they were
// filed under; requests hashed by the new function carry a fresh
// generation, so they can never join a retired draw's flight even when
// the numeric keys coincide — cross-draw key equality carries no
// similarity guarantee. The one cost is a missed coalescing opportunity
// for requests straddling the swap. Used to keep CoalesceLSH duplicate
// detection in step with a re-drawn shard partitioner.
func (c *Coalescer) SetKey(key KeyFunc) {
	if key == nil {
		return
	}
	c.key.Store(&keyState{fn: key, gen: c.genCtr.Add(1)})
}

// Stats returns a snapshot of the cumulative counters.
func (c *Coalescer) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the cumulative counters. In-flight searches are
// unaffected: they complete and fan out normally, but no longer count
// toward the zeroed statistics.
func (c *Coalescer) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = CoalesceStats{}
}

// Inflight returns the number of searches currently in flight, for
// diagnostics and tests.
func (c *Coalescer) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}
