package batch

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"proximity/internal/lsh"
	"proximity/internal/shard"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// CoalesceMode selects how in-flight duplicate misses are detected.
type CoalesceMode int

const (
	// CoalesceExact deduplicates byte-identical embeddings (FNV-1a
	// fingerprint, shared with the shard router). The default.
	CoalesceExact CoalesceMode = iota + 1
	// CoalesceLSH deduplicates embeddings with equal random-hyperplane
	// signatures: near-identical rephrasings share one search, the same
	// locality argument as Proximity-LSH itself. Followers receive the
	// leader's documents, so this trades a little exactness on the miss
	// path for fewer index traversals — sound for the same reason the
	// approximate cache is.
	CoalesceLSH
	// CoalesceOff disables singleflight; only batching applies.
	CoalesceOff
)

// String implements fmt.Stringer.
func (m CoalesceMode) String() string {
	switch m {
	case CoalesceExact:
		return "exact"
	case CoalesceLSH:
		return "lsh"
	case CoalesceOff:
		return "off"
	default:
		return fmt.Sprintf("coalesce(%d)", int(m))
	}
}

// Options configures a Pipeline.
type Options struct {
	// Queues is the number of independently-locked batch queues misses
	// are spread over (fingerprint-routed). Defaults to
	// runtime.GOMAXPROCS(0).
	Queues int
	// MaxBatch is the per-queue flush size. Defaults to DefaultMaxBatch.
	MaxBatch int
	// Timeout is the per-queue flush deadline. Defaults to
	// DefaultTimeout.
	Timeout time.Duration
	// Coalesce selects duplicate detection. Defaults to CoalesceExact.
	Coalesce CoalesceMode
	// SignatureBits is the hyperplane count under CoalesceLSH. Defaults
	// to shard.DefaultSignatureBits, capped at lsh.MaxBits.
	SignatureBits int
	// Seed drives the CoalesceLSH hyperplane draw.
	Seed uint64
	// Clock supplies the queue flush timers. Defaults to SystemClock.
	Clock Clock
	// Telemetry, when non-nil, receives per-stage observations from the
	// pipeline: coalesce_wait (follower flight waits), batch_queue
	// (enqueue-to-flush dwell), and db_search (backend SearchBatch
	// latency). Nil disables all timestamping beyond what the queues
	// already do.
	Telemetry *telemetry.Telemetry
}

// Stats aggregates pipeline counters across the coalescer and all queues.
type Stats struct {
	// Searches is the number of Search calls into the pipeline.
	Searches int64
	// Coalesced is the subset served from another request's flight.
	Coalesced int64
	// Collisions counts fingerprint collisions between distinct
	// embeddings (exact mode only); such requests search independently.
	Collisions int64
	// Enqueued is the number of searches that reached a batch queue.
	Enqueued int64
	// Flushes is the number of SearchBatch calls issued to the index.
	Flushes int64
	// SizeFlushes, TimeoutFlushes, and DrainFlushes break Flushes down
	// by trigger.
	SizeFlushes    int64
	TimeoutFlushes int64
	DrainFlushes   int64
	// Errors counts searches that returned a database error.
	Errors int64
}

// CoalesceRate returns the fraction of searches that skipped the index.
func (s Stats) CoalesceRate() float64 {
	if s.Searches > 0 {
		return float64(s.Coalesced) / float64(s.Searches)
	}
	return 0
}

// MeanBatch returns the average flush size, or 0 before any flush.
func (s Stats) MeanBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Enqueued) / float64(s.Flushes)
}

// Pipeline is the full miss-coalescing batched retrieval path: a
// singleflight coalescer in front of fingerprint-routed batch queues in
// front of a (batch-aware) vector database. It satisfies vectordb.DB and
// core.Searcher, so it drops into core.CachedRetriever either as the
// database itself or as the miss-path Searcher option. Safe for
// concurrent use; Close drains the queues.
type Pipeline struct {
	db     vectordb.DB
	queues []*Queue
	co     *Coalescer // nil under CoalesceOff
	opts   Options
}

var _ vectordb.DB = (*Pipeline)(nil)
var _ Searcher = (*Pipeline)(nil)

// New builds a pipeline over db.
func New(db vectordb.DB, opts Options) (*Pipeline, error) {
	if db == nil {
		return nil, fmt.Errorf("batch: pipeline requires a database")
	}
	if opts.Queues < 0 {
		return nil, fmt.Errorf("batch: queue count must be non-negative, got %d", opts.Queues)
	}
	if opts.Queues == 0 {
		opts.Queues = runtime.GOMAXPROCS(0)
	}
	if opts.Coalesce == 0 {
		opts.Coalesce = CoalesceExact
	}
	p := &Pipeline{db: db, opts: opts}
	p.queues = make([]*Queue, opts.Queues)
	var onDwell func(time.Duration)
	if opts.Telemetry != nil {
		tel := opts.Telemetry
		onDwell = func(d time.Duration) { tel.ObserveStage(telemetry.StageBatchQueue, d) }
	}
	for i := range p.queues {
		q, err := NewQueue(db, QueueOptions{
			MaxBatch:  opts.MaxBatch,
			Timeout:   opts.Timeout,
			Clock:     opts.Clock,
			OnDwell:   onDwell,
			Telemetry: opts.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		p.queues[i] = q
	}

	var key KeyFunc
	verified := false
	switch opts.Coalesce {
	case CoalesceExact:
		// The fingerprint promises byte-identical dedup, so flights are
		// joined only after verifying embedding equality — a 32-bit
		// hash collision must not serve (and then cache) another
		// query's documents.
		key = shard.FingerprintOf
		verified = true
	case CoalesceLSH:
		bits := opts.SignatureBits
		if bits == 0 {
			bits = shard.DefaultSignatureBits
		}
		if bits > lsh.MaxBits {
			bits = lsh.MaxBits
		}
		hasher, err := lsh.NewHasher(db.Dim(), bits, opts.Seed)
		if err != nil {
			return nil, err
		}
		p.opts.SignatureBits = bits // resolved width, for Reseed
		key = hasher.Hash
	case CoalesceOff:
		return p, nil
	default:
		return nil, fmt.Errorf("batch: unknown coalesce mode %d", int(opts.Coalesce))
	}
	newCo := NewCoalescer
	if verified {
		newCo = NewVerifiedCoalescer
	}
	co, err := newCo(searcherFunc(p.enqueue), key)
	if err != nil {
		return nil, err
	}
	co.SetTelemetry(opts.Telemetry)
	p.co = co
	return p, nil
}

// searcherFunc adapts a function to the Searcher interface.
type searcherFunc func(q vec.Vector, k int) ([]vec.Scored, error)

// Search implements Searcher.
func (f searcherFunc) Search(q vec.Vector, k int) ([]vec.Scored, error) { return f(q, k) }

// Search runs one retrieval through the pipeline: duplicate in-flight
// misses coalesce, unique ones gather into per-queue batches.
func (p *Pipeline) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if p.co != nil {
		return p.co.Search(q, k)
	}
	return p.enqueue(q, k)
}

// SearchContext is Search with trace propagation: a sampled trace in ctx
// records coalesce_wait / db_search spans as the request moves through
// the pipeline (the db_search span on the batched path covers queue
// dwell plus the shared backend call — the request's view of the miss;
// the stage histograms attribute the components separately). Implements
// core.ContextSearcher.
func (p *Pipeline) SearchContext(ctx context.Context, q vec.Vector, k int) ([]vec.Scored, error) {
	if p.co != nil {
		return p.co.SearchContext(ctx, q, k)
	}
	finish := telemetry.FromContext(ctx).StartSpan(telemetry.StageDBSearch)
	res, err := p.enqueue(q, k)
	finish(err)
	return res, err
}

// enqueue routes a unique search to its fingerprint-assigned queue.
func (p *Pipeline) enqueue(q vec.Vector, k int) ([]vec.Scored, error) {
	return p.queues[int(shard.FingerprintOf(q)%uint32(len(p.queues)))].Search(q, k)
}

// Close drains every queue; in-flight waiters receive their results and
// later Search calls fail with ErrClosed.
func (p *Pipeline) Close() error {
	for _, q := range p.queues {
		_ = q.Close()
	}
	return nil
}

// Reset flushes every queue's gathered batch immediately and zeroes all
// pipeline counters (queues and coalescer). The pipeline stays open.
// The server's cache-flush endpoint calls this so a flushed deployment
// reports a clean slate: without it, /v1/stats would keep pre-flush batch
// counters and pending pre-flush waiters alive across the flush.
// Coalescer flights already in progress complete normally — their
// waiters still receive results — but no longer count toward the zeroed
// statistics.
func (p *Pipeline) Reset() {
	for _, q := range p.queues {
		q.FlushNow()
		q.ResetStats()
	}
	if p.co != nil {
		p.co.ResetStats()
	}
}

// Reseed re-draws the CoalesceLSH duplicate-detection hyperplanes from
// seed. When a re-drawn shard partitioner changes which queries share a
// signature, a pipeline coalescing by the old draw would dedup a
// different notion of "near-identical" than the cache routes by; the
// rebalance actuator calls this (via its OnReseed hook) so both draws
// stay in step. Under CoalesceExact and CoalesceOff it is a no-op —
// byte fingerprints are content hashes, seed-independent — as is queue
// routing, which also keys on the content fingerprint.
func (p *Pipeline) Reseed(seed uint64) error {
	if p.opts.Coalesce != CoalesceLSH || p.co == nil {
		return nil
	}
	hasher, err := lsh.NewHasher(p.db.Dim(), p.opts.SignatureBits, seed)
	if err != nil {
		return err
	}
	p.co.SetKey(hasher.Hash)
	return nil
}

// Dim implements vectordb.DB.
func (p *Pipeline) Dim() int { return p.db.Dim() }

// Len implements vectordb.DB.
func (p *Pipeline) Len() int { return p.db.Len() }

// DB returns the wrapped database.
func (p *Pipeline) DB() vectordb.DB { return p.db }

// NumQueues returns the batch-queue count.
func (p *Pipeline) NumQueues() int { return len(p.queues) }

// Pending returns the total gathered-but-unflushed searches across all
// queues — the queue-depth gauge the metrics endpoint exports.
func (p *Pipeline) Pending() int {
	n := 0
	for _, q := range p.queues {
		n += q.Pending()
	}
	return n
}

// Stats returns a snapshot of the aggregated counters.
func (p *Pipeline) Stats() Stats {
	var s Stats
	for _, q := range p.queues {
		qs := q.Stats()
		s.Enqueued += qs.Enqueued
		s.Flushes += qs.Flushes
		s.SizeFlushes += qs.SizeFlushes
		s.TimeoutFlushes += qs.TimeoutFlushes
		s.DrainFlushes += qs.DrainFlushes
		s.Errors += qs.Errors
	}
	s.Searches = s.Enqueued
	if p.co != nil {
		cs := p.co.Stats()
		s.Coalesced = cs.Coalesced
		s.Collisions = cs.Collisions
		s.Searches = cs.Leads + cs.Coalesced + cs.Collisions
	}
	return s
}
