package batch

import (
	"errors"
	"sync"
	"time"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// ErrClosed is returned by Search calls issued after Close.
var ErrClosed = errors.New("batch: queue closed")

// DefaultMaxBatch is the flush size when QueueOptions.MaxBatch is zero.
const DefaultMaxBatch = 16

// DefaultTimeout is the flush deadline when QueueOptions.Timeout is zero:
// long enough for a concurrent miss burst to gather, short enough to be
// invisible next to a production database search.
const DefaultTimeout = 200 * time.Microsecond

// QueueOptions configures a Queue.
type QueueOptions struct {
	// MaxBatch flushes the pending batch as soon as it reaches this
	// size. Defaults to DefaultMaxBatch.
	MaxBatch int
	// Timeout flushes whatever has gathered once this much time has
	// passed since the first request of the batch arrived. Defaults to
	// DefaultTimeout.
	Timeout time.Duration
	// Clock supplies the flush timer. Defaults to SystemClock.
	Clock Clock
}

func (o *QueueOptions) fillDefaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
}

// QueueStats are cumulative queue counters.
type QueueStats struct {
	// Enqueued is the number of Search calls accepted.
	Enqueued int64
	// Flushes is the number of SearchBatch calls issued.
	Flushes int64
	// SizeFlushes counts flushes triggered by reaching MaxBatch.
	SizeFlushes int64
	// TimeoutFlushes counts flushes triggered by the batch timer.
	TimeoutFlushes int64
	// DrainFlushes counts the final flush Close performs (0 or 1).
	DrainFlushes int64
	// Errors counts Search calls that returned a database error.
	Errors int64
}

// MeanBatch returns the average flush size, or 0 before any flush.
func (s QueueStats) MeanBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Enqueued) / float64(s.Flushes)
}

// waiter is one pending Search call.
type waiter struct {
	q  vec.Vector
	k  int
	ch chan flushResult
}

type flushResult struct {
	res []vec.Scored
	err error
}

// Queue collects concurrent Search calls and serves each gathered batch
// with a single vectordb.SearchBatch pass. A batch flushes when it
// reaches MaxBatch, when Timeout elapses after its first request, or
// when the queue is closed (drain); a database error fans out to every
// waiter of the affected flush. All methods are safe for concurrent use.
type Queue struct {
	db   vectordb.DB
	opts QueueOptions

	mu      sync.Mutex
	pending []waiter
	gen     uint64 // bumped on every flush; stale timers check it
	closed  bool
	stats   QueueStats
}

// NewQueue creates a batch queue in front of db.
func NewQueue(db vectordb.DB, opts QueueOptions) (*Queue, error) {
	if db == nil {
		return nil, errors.New("batch: queue requires a database")
	}
	opts.fillDefaults()
	return &Queue{db: db, opts: opts}, nil
}

// Search enqueues the query and blocks until its batch is served,
// returning the k nearest documents exactly as a direct db.Search would.
func (b *Queue) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	ch := make(chan flushResult, 1)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.pending = append(b.pending, waiter{q: q, k: k, ch: ch})
	b.stats.Enqueued++
	switch {
	case len(b.pending) >= b.opts.MaxBatch:
		ws := b.take()
		b.stats.SizeFlushes++
		b.mu.Unlock()
		b.flush(ws)
	case len(b.pending) == 1:
		// First request of a fresh batch: arm its flush timer.
		gen := b.gen
		timer := b.opts.Clock.After(b.opts.Timeout)
		b.mu.Unlock()
		go b.awaitTimer(gen, timer)
	default:
		b.mu.Unlock()
	}

	r := <-ch
	return r.res, r.err
}

// Close drains the pending batch and rejects subsequent Search calls with
// ErrClosed. Waiters of the drained batch receive their results.
func (b *Queue) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ws := b.take()
	if len(ws) > 0 {
		b.stats.DrainFlushes++
	}
	b.mu.Unlock()
	if len(ws) > 0 {
		b.flush(ws)
	}
	return nil
}

// Stats returns a snapshot of the cumulative counters.
func (b *Queue) Stats() QueueStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Pending returns the current batch occupancy, for diagnostics and tests.
func (b *Queue) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// take removes the pending batch and invalidates its timer, counting the
// flush in the same critical section as the caller's trigger counter so
// Stats snapshots always see the trigger breakdown sum to Flushes.
// Callers hold b.mu.
func (b *Queue) take() []waiter {
	ws := b.pending
	b.pending = nil
	b.gen++
	if len(ws) > 0 {
		b.stats.Flushes++
	}
	return ws
}

// awaitTimer flushes the batch of generation gen when its timer fires; if
// that batch already flushed (by size or drain), the generation moved on
// and the timer is stale.
func (b *Queue) awaitTimer(gen uint64, timer <-chan time.Time) {
	<-timer
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	ws := b.take()
	b.stats.TimeoutFlushes++
	b.mu.Unlock()
	b.flush(ws)
}

// flush serves one gathered batch, issuing one SearchBatch call per
// distinct k so every waiter gets exactly what a direct db.Search(q, k)
// would return — searching once at the batch maximum and truncating
// would silently change results on beam-width-sensitive indexes (HNSW,
// Vamana), whose candidate sets depend on k. In the steady state every
// waiter shares the retriever's ρ·K, so this is one call per flush. An
// error fans out to every waiter of the affected SearchBatch call.
func (b *Queue) flush(ws []waiter) {
	// Group waiters by k, preserving arrival order within each group.
	byK := make(map[int][]waiter, 1)
	for _, w := range ws {
		byK[w.k] = append(byK[w.k], w)
	}
	for k, group := range byK {
		qs := make([]vec.Vector, len(group))
		for i, w := range group {
			qs[i] = w.q
		}
		res, err := vectordb.SearchBatch(b.db, qs, k)
		if err != nil {
			b.mu.Lock()
			b.stats.Errors += int64(len(group))
			b.mu.Unlock()
			for _, w := range group {
				w.ch <- flushResult{err: err}
			}
			continue
		}
		for i, w := range group {
			w.ch <- flushResult{res: res[i]}
		}
	}
}
