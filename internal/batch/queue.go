package batch

import (
	"errors"
	"time"

	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// ErrClosed is returned by Search calls issued after Close.
var ErrClosed = errors.New("batch: queue closed")

// errNilFlush guards NewCollector.
var errNilFlush = errors.New("batch: collector requires a flush function")

// DefaultMaxBatch is the flush size when QueueOptions.MaxBatch is zero.
const DefaultMaxBatch = 16

// DefaultTimeout is the flush deadline when QueueOptions.Timeout is zero:
// long enough for a concurrent miss burst to gather, short enough to be
// invisible next to a production database search.
const DefaultTimeout = 200 * time.Microsecond

// QueueOptions configures a Queue (and the generic Collector behind it).
type QueueOptions struct {
	// MaxBatch flushes the pending batch as soon as it reaches this
	// size. Defaults to DefaultMaxBatch.
	MaxBatch int
	// Timeout flushes whatever has gathered once this much time has
	// passed since the first request of the batch arrived. Defaults to
	// DefaultTimeout.
	Timeout time.Duration
	// Clock supplies the flush timer. Defaults to SystemClock.
	Clock Clock
	// OnDwell, when set, observes each request's queue dwell — the time
	// from enqueue to its batch being taken for flush. The telemetry
	// hook for the batch_queue stage; nil adds no timestamping at all.
	OnDwell func(time.Duration)
	// Telemetry, when non-nil, records the latency of each backend
	// SearchBatch call under the db_search stage.
	Telemetry *telemetry.Telemetry
}

func (o *QueueOptions) fillDefaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
}

// QueueStats are cumulative queue counters.
type QueueStats struct {
	// Enqueued is the number of Search calls accepted.
	Enqueued int64
	// Flushes is the number of batch flushes issued.
	Flushes int64
	// SizeFlushes counts flushes triggered by reaching MaxBatch.
	SizeFlushes int64
	// TimeoutFlushes counts flushes triggered by the batch timer.
	TimeoutFlushes int64
	// DrainFlushes counts flushes forced by Close or FlushNow.
	DrainFlushes int64
	// Errors counts Search calls that returned a backend error.
	Errors int64
}

// MeanBatch returns the average flush size, or 0 before any flush.
func (s QueueStats) MeanBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Enqueued) / float64(s.Flushes)
}

// searchReq is one pending Search call's request.
type searchReq struct {
	q vec.Vector
	k int
}

// Queue collects concurrent Search calls and serves each gathered batch
// with a single vectordb.SearchBatch pass. A batch flushes when it
// reaches MaxBatch, when Timeout elapses after its first request, or
// when the queue is closed (drain); a database error fans out to every
// waiter of the affected flush. The gather/flush machinery is the generic
// Collector; this type binds it to the vector-search request shape. All
// methods are safe for concurrent use.
type Queue struct {
	db  vectordb.DB
	tel *telemetry.Telemetry
	c   *Collector[searchReq, []vec.Scored]
}

// NewQueue creates a batch queue in front of db.
func NewQueue(db vectordb.DB, opts QueueOptions) (*Queue, error) {
	if db == nil {
		return nil, errors.New("batch: queue requires a database")
	}
	b := &Queue{db: db, tel: opts.Telemetry}
	c, err := NewCollector(b.flush, opts)
	if err != nil {
		return nil, err
	}
	b.c = c
	return b, nil
}

// Search enqueues the query and blocks until its batch is served,
// returning the k nearest documents exactly as a direct db.Search would.
func (b *Queue) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	return b.c.Do(searchReq{q: q, k: k})
}

// Close drains the pending batch and rejects subsequent Search calls with
// ErrClosed. Waiters of the drained batch receive their results.
func (b *Queue) Close() error { return b.c.Close() }

// FlushNow flushes whatever has gathered without waiting for the size or
// timeout trigger. The queue stays open.
func (b *Queue) FlushNow() { b.c.FlushNow() }

// Stats returns a snapshot of the cumulative counters.
func (b *Queue) Stats() QueueStats { return b.c.Stats() }

// ResetStats zeroes the cumulative counters.
func (b *Queue) ResetStats() { b.c.ResetStats() }

// Pending returns the current batch occupancy, for diagnostics and tests.
func (b *Queue) Pending() int { return b.c.Pending() }

// flush serves one gathered batch, issuing one SearchBatch call per
// distinct k so every waiter gets exactly what a direct db.Search(q, k)
// would return — searching once at the batch maximum and truncating
// would silently change results on beam-width-sensitive indexes (HNSW,
// Vamana), whose candidate sets depend on k. In the steady state every
// waiter shares the retriever's ρ·K, so this is one call per flush. An
// error fans out to every waiter of the affected SearchBatch call, not
// the whole flush.
func (b *Queue) flush(reqs []searchReq) []Outcome[[]vec.Scored] {
	// Group waiters by k, preserving arrival order within each group.
	byK := make(map[int][]int, 1)
	for i, r := range reqs {
		byK[r.k] = append(byK[r.k], i)
	}
	outs := make([]Outcome[[]vec.Scored], len(reqs))
	for k, idxs := range byK {
		qs := make([]vec.Vector, len(idxs))
		for i, ri := range idxs {
			qs[i] = reqs[ri].q
		}
		start := time.Now()
		res, err := vectordb.SearchBatch(b.db, qs, k)
		b.tel.ObserveStage(telemetry.StageDBSearch, time.Since(start))
		if err != nil {
			for _, ri := range idxs {
				outs[ri] = Outcome[[]vec.Scored]{Err: err}
			}
			continue
		}
		for i, ri := range idxs {
			outs[ri] = Outcome[[]vec.Scored]{Res: res[i]}
		}
	}
	return outs
}
