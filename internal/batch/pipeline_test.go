package batch_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// buildIVF creates a deterministic IVF index over a random corpus.
func buildIVF(t *testing.T, n, dim int, seed uint64) *vectordb.IVFIndex {
	t.Helper()
	rng := vec.NewRand(seed)
	vectors := make([]vec.Vector, n)
	for i := range vectors {
		vectors[i] = vec.RandomGaussian(rng, dim)
	}
	ix, err := vectordb.BuildIVF(vectors, vec.L2Distance, vectordb.IVFConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestPipelineMatchesDirectSearch replays a query stream through the full
// pipeline (coalescer + queues + SearchBatch) under concurrency and
// checks every result against a direct db.Search — the pipeline must be
// an invisible performance layer.
func TestPipelineMatchesDirectSearch(t *testing.T) {
	ix := buildIVF(t, 120, 8, 3)
	pipe, err := batch.New(ix, batch.Options{Queues: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	const n = 64
	rng := vec.NewRand(21)
	queries := make([]vec.Vector, n)
	for i := range queries {
		if i%3 == 0 && i > 0 {
			queries[i] = queries[i-1] // in-flight duplicates
		} else {
			queries[i] = vec.RandomGaussian(rng, 8)
		}
	}

	results := make([][]vec.Scored, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pipe.Search(queries[i], 5)
		}(i)
	}
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := ix.Search(queries[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("query %d: pipeline %v, direct %v", i, results[i], want)
		}
	}

	st := pipe.Stats()
	if st.Searches != n {
		t.Errorf("Searches = %d, want %d", st.Searches, n)
	}
	if st.Searches != st.Coalesced+st.Enqueued {
		t.Errorf("counter mismatch: searches=%d coalesced=%d enqueued=%d",
			st.Searches, st.Coalesced, st.Enqueued)
	}
	if st.Flushes != st.SizeFlushes+st.TimeoutFlushes+st.DrainFlushes {
		t.Errorf("flush trigger breakdown %+v does not sum to Flushes", st)
	}
	if st.Flushes == 0 || st.MeanBatch() < 1 {
		t.Errorf("no batching observed: %+v", st)
	}
}

// TestPipelineThroughRetriever wires the pipeline into a CachedRetriever
// via the Searcher option and checks the retrieved documents match an
// unbatched retriever query-for-query, hits and misses alike.
func TestPipelineThroughRetriever(t *testing.T) {
	ix := buildIVF(t, 80, 8, 7)
	pipe, err := batch.New(ix, batch.Options{Queues: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	newCache := func() core.Cache {
		c, err := core.NewFlat(8, core.Options{Capacity: 64, Tolerance: 0.5, Policy: core.LRU})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	batched, err := core.NewCachedRetriever(newCache(), ix, core.RetrieverOptions{K: 3, Searcher: pipe})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.NewCachedRetriever(newCache(), ix, core.RetrieverOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	rng := vec.NewRand(31)
	for i := 0; i < 40; i++ {
		var q vec.Vector
		if i%4 == 3 {
			q = vec.RandomGaussian(vec.NewRand(1000), 8) // same query each time → cache hits
		} else {
			q = vec.RandomGaussian(rng, 8)
		}
		got, err := batched.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Retrieve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Docs, want.Docs) || got.Hit != want.Hit {
			t.Fatalf("query %d: batched (%v, hit=%v) vs plain (%v, hit=%v)",
				i, got.Docs, got.Hit, want.Docs, want.Hit)
		}
	}
	if st := pipe.Stats(); st.Searches == 0 {
		t.Error("pipeline saw no miss traffic")
	}
}

// TestPipelineLSHCoalescing checks that near-identical concurrent misses
// share one index search under CoalesceLSH.
func TestPipelineLSHCoalescing(t *testing.T) {
	ix := buildIVF(t, 60, 8, 11)
	counting := vectordb.NewInstrumented(ix, nil)
	pipe, err := batch.New(counting, batch.Options{
		Queues:   1,
		MaxBatch: 64, // force timeout/drain flushes, not size
		Coalesce: batch.CoalesceLSH,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}

	base := vec.RandomGaussian(vec.NewRand(77), 8)
	near := vec.Clone(base)
	near[0] += 1e-6 // byte-distinct, signature-identical w.h.p.

	const pairs = 16
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		for _, q := range []vec.Vector{base, near} {
			wg.Add(1)
			go func(q vec.Vector) {
				defer wg.Done()
				if _, err := pipe.Search(q, 3); err != nil {
					t.Error(err)
				}
			}(q)
		}
	}
	wg.Wait()
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	st := pipe.Stats()
	if st.Searches != 2*pairs {
		t.Fatalf("Searches = %d, want %d", st.Searches, 2*pairs)
	}
	// Concurrency makes the exact coalesce count scheduling-dependent,
	// but byte-distinct near-duplicates can only coalesce via the LSH
	// signature, so any coalescing at all proves the mode works.
	if st.Coalesced == 0 {
		t.Error("no LSH coalescing observed across 32 near-identical concurrent misses")
	}
	if got := int64(counting.Calls()); got != st.Enqueued {
		t.Errorf("database calls = %d, enqueued = %d (should match)", got, st.Enqueued)
	}
}

// TestPipelineClose verifies drain-on-close and rejection afterwards.
func TestPipelineClose(t *testing.T) {
	ix := buildIVF(t, 40, 8, 13)
	pipe, err := batch.New(ix, batch.Options{Queues: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Search(vec.RandomGaussian(vec.NewRand(1), 8), 2); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Search(vec.RandomGaussian(vec.NewRand(2), 8), 2); !errors.Is(err, batch.ErrClosed) {
		t.Errorf("Search after Close = %v, want ErrClosed", err)
	}
}

// TestPipelineIsADB pins the vectordb.DB passthrough surface.
func TestPipelineIsADB(t *testing.T) {
	ix := buildIVF(t, 50, 8, 17)
	pipe, err := batch.New(ix, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	var db vectordb.DB = pipe
	if db.Dim() != ix.Dim() || db.Len() != ix.Len() {
		t.Errorf("passthrough Dim/Len = %d/%d, want %d/%d", db.Dim(), db.Len(), ix.Dim(), ix.Len())
	}
	if pipe.NumQueues() < 1 {
		t.Error("pipeline built no queues")
	}
	if pipe.DB() != vectordb.DB(ix) {
		t.Error("DB() does not return the wrapped database")
	}
}
