package batch_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"proximity/internal/batch"
	"proximity/internal/experiments"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// queueCorpus builds a small deterministic flat index whose per-query
// Search results are the ground truth for every flush path.
func queueCorpus(t *testing.T) *vectordb.FlatIndex {
	t.Helper()
	rng := vec.NewRand(17)
	vectors := make([]vec.Vector, 12)
	for i := range vectors {
		vectors[i] = vec.RandomGaussian(rng, 4)
	}
	ix, err := vectordb.NewFlatFromVectors(vectors, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// errDB fails every search with a fixed error.
type errDB struct{ err error }

func (e *errDB) Search(vec.Vector, int) ([]vec.Scored, error) { return nil, e.err }
func (e *errDB) Dim() int                                     { return 4 }
func (e *errDB) Len() int                                     { return 1 }

// waitPending polls until the queue holds n pending requests.
func waitPending(t *testing.T, q *batch.Queue, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if q.Pending() == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("queue never reached %d pending (have %d)", n, q.Pending())
}

// TestQueueFlushSemantics drives every flush trigger deterministically on
// the fake clock: size flushes need no time to pass, timeout flushes fire
// only when the clock is advanced, Close drains what gathered, and a
// database error fans out to every waiter of the flush.
func TestQueueFlushSemantics(t *testing.T) {
	dbErr := errors.New("search backend down")
	cases := []struct {
		name     string
		maxBatch int
		requests int    // concurrent Search calls, query i asks for ks[i]
		ks       []int  // per-request k (len == requests)
		action   string // "", "advance", or "close"
		failDB   bool

		wantFlushes int64
		wantSize    int64
		wantTimeout int64
		wantDrain   int64
	}{
		{
			name:     "flush on size",
			maxBatch: 4, requests: 4, ks: []int{3, 3, 3, 3},
			action:      "",
			wantFlushes: 1, wantSize: 1,
		},
		{
			name:     "flush on size with mixed k grouping",
			maxBatch: 3, requests: 3, ks: []int{1, 5, 2},
			action:      "",
			wantFlushes: 1, wantSize: 1,
		},
		{
			name:     "flush on timeout",
			maxBatch: 16, requests: 2, ks: []int{4, 4},
			action:      "advance",
			wantFlushes: 1, wantTimeout: 1,
		},
		{
			name:     "timeout flush of a single straggler",
			maxBatch: 16, requests: 1, ks: []int{2},
			action:      "advance",
			wantFlushes: 1, wantTimeout: 1,
		},
		{
			name:     "drain on close",
			maxBatch: 16, requests: 3, ks: []int{2, 4, 1},
			action:      "close",
			wantFlushes: 1, wantDrain: 1,
		},
		{
			name:     "error fan-out to all waiters",
			maxBatch: 3, requests: 3, ks: []int{2, 2, 2},
			action: "", failDB: true,
			wantFlushes: 1, wantSize: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var db vectordb.DB
			flat := queueCorpus(t)
			db = flat
			if tc.failDB {
				db = &errDB{err: dbErr}
			}
			clock := experiments.NewFakeClock()
			q, err := batch.NewQueue(db, batch.QueueOptions{
				MaxBatch: tc.maxBatch,
				Timeout:  time.Millisecond,
				Clock:    clock,
			})
			if err != nil {
				t.Fatal(err)
			}

			queries := make([]vec.Vector, tc.requests)
			rng := vec.NewRand(99)
			for i := range queries {
				queries[i] = vec.RandomGaussian(rng, 4)
			}
			results := make([][]vec.Scored, tc.requests)
			errs := make([]error, tc.requests)
			var wg sync.WaitGroup
			for i := 0; i < tc.requests; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = q.Search(queries[i], tc.ks[i])
				}(i)
			}

			switch tc.action {
			case "advance":
				waitPending(t, q, tc.requests)
				clock.BlockUntil(1)
				clock.Advance(time.Millisecond)
			case "close":
				waitPending(t, q, tc.requests)
				if err := q.Close(); err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()

			for i := range results {
				if tc.failDB {
					if !errors.Is(errs[i], dbErr) {
						t.Errorf("request %d error = %v, want %v", i, errs[i], dbErr)
					}
					continue
				}
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				want, err := flat.Search(queries[i], tc.ks[i])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(results[i], want) {
					t.Errorf("request %d (k=%d): batched result %v, want per-query result %v",
						i, tc.ks[i], results[i], want)
				}
			}

			st := q.Stats()
			if st.Enqueued != int64(tc.requests) {
				t.Errorf("Enqueued = %d, want %d", st.Enqueued, tc.requests)
			}
			if st.Flushes != tc.wantFlushes || st.SizeFlushes != tc.wantSize ||
				st.TimeoutFlushes != tc.wantTimeout || st.DrainFlushes != tc.wantDrain {
				t.Errorf("flush stats = %+v, want flushes=%d size=%d timeout=%d drain=%d",
					st, tc.wantFlushes, tc.wantSize, tc.wantTimeout, tc.wantDrain)
			}
			if tc.failDB && st.Errors != int64(tc.requests) {
				t.Errorf("Errors = %d, want %d", st.Errors, tc.requests)
			}

			if tc.action == "close" {
				if _, err := q.Search(queries[0], 1); !errors.Is(err, batch.ErrClosed) {
					t.Errorf("Search after Close = %v, want ErrClosed", err)
				}
				if err := q.Close(); err != nil {
					t.Errorf("second Close = %v, want nil", err)
				}
			}
		})
	}
}

// TestQueueSequentialBatchesKeepTimersStraight exercises generation
// handling: a size-flushed batch's stale timer must not flush the next
// batch early, and the next batch's own timer must still work.
func TestQueueSequentialBatchesKeepTimersStraight(t *testing.T) {
	flat := queueCorpus(t)
	clock := experiments.NewFakeClock()
	q, err := batch.NewQueue(flat, batch.QueueOptions{
		MaxBatch: 2,
		Timeout:  time.Millisecond,
		Clock:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(5)
	search := func() chan error {
		done := make(chan error, 1)
		qv := vec.RandomGaussian(rng, 4)
		go func() {
			_, err := q.Search(qv, 2)
			done <- err
		}()
		return done
	}

	// Batch 1 flushes by size; its timer (generation 0) is now stale.
	d1, d2 := search(), search()
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	if err := <-d2; err != nil {
		t.Fatal(err)
	}

	// Batch 2 gathers one request. Firing the stale timer must not
	// flush it...
	d3 := search()
	waitPending(t, q, 1)
	clock.BlockUntil(2) // stale timer + batch 2's timer
	clock.Advance(time.Millisecond)
	if err := <-d3; err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.SizeFlushes != 1 || st.TimeoutFlushes != 1 || st.Flushes != 2 {
		t.Errorf("stats = %+v, want 1 size flush and 1 timeout flush", st)
	}
}
