package batch_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"proximity/internal/batch"
	"proximity/internal/vec"
)

// TestCoalescerSetKey: a swapped key function takes effect for
// subsequent searches without disturbing the counters.
func TestCoalescerSetKey(t *testing.T) {
	inner := searcherFunc(func(q vec.Vector, k int) ([]vec.Scored, error) {
		return []vec.Scored{{ID: 1}}, nil
	})
	var aCalls, bCalls atomic.Int64
	keyA := func(vec.Vector) uint32 { aCalls.Add(1); return 1 }
	keyB := func(vec.Vector) uint32 { bCalls.Add(1); return 2 }

	co, err := batch.NewCoalescer(inner, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Search(vec.Vector{1}, 1); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 1 {
		t.Fatalf("initial key called %d times, want 1", aCalls.Load())
	}
	co.SetKey(keyB)
	co.SetKey(nil) // ignored: a coalescer must always have a key
	if _, err := co.Search(vec.Vector{2}, 1); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 1 || bCalls.Load() != 1 {
		t.Fatalf("after SetKey: keyA %d calls, keyB %d calls; want 1 and 1",
			aCalls.Load(), bCalls.Load())
	}
	if st := co.Stats(); st.Leads != 2 {
		t.Errorf("Leads = %d, want 2", st.Leads)
	}
}

// searcherFunc adapts a function to batch.Searcher.
type searcherFunc func(q vec.Vector, k int) ([]vec.Scored, error)

func (f searcherFunc) Search(q vec.Vector, k int) ([]vec.Scored, error) { return f(q, k) }

// TestPipelineReseed: re-drawing the CoalesceLSH signature leaves the
// pipeline an invisible layer (results still match direct search), and
// non-LSH modes treat Reseed as a no-op.
func TestPipelineReseed(t *testing.T) {
	ix := buildIVF(t, 100, 8, 5)
	pipe, err := batch.New(ix, batch.Options{
		Queues:        2,
		Coalesce:      batch.CoalesceLSH,
		SignatureBits: 6,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	q := vec.RandomGaussian(vec.NewRand(9), 8)
	want, err := ix.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Reseed(42); err != nil {
		t.Fatal(err)
	}
	got, err := pipe.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-reseed search = %v, want %v", got, want)
	}

	exact, err := batch.New(ix, batch.Options{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	if err := exact.Reseed(42); err != nil {
		t.Errorf("Reseed on an exact-mode pipeline should be a no-op, got %v", err)
	}
}
