// Package embed provides the embedding-model substrate for the Proximity
// reproduction.
//
// The paper encodes queries and passages with MedCPT (MedRAG) and DPR
// (MMLU), both 768-dimensional neural encoders served outside the cache.
// Neither model is available in this offline, stdlib-only environment, so
// the package substitutes a deterministic token-hash encoder that
// preserves the two properties the paper's evaluation depends on:
//
//  1. semantically equivalent rephrasings of a query land a small L2
//     distance apart (they share canonical content tokens and differ only
//     in low-weight filler), and
//  2. distinct queries land far apart (disjoint content tokens produce
//     near-orthogonal sums in high dimension).
//
// Synonym knowledge — the part of a neural encoder that maps "treatment"
// and "therapy" nearby — is modeled explicitly with a Thesaurus that
// canonicalizes tokens before hashing. The resulting embedding geometry is
// calibrated by the dataset generators (token counts per question) so that
// the paper's tolerance grid τ ∈ {0.5 … 10} spans the same regimes:
// exact-only matching, variant matching, and false-positive-prone
// matching. See DESIGN.md §3 for the substitution rationale.
package embed

import (
	"hash/fnv"
	"strings"
	"sync"
	"unicode"

	"proximity/internal/vec"
)

// Embedder converts text into a dense vector. Implementations must be
// deterministic and safe for concurrent use; the same text must always map
// to the same vector, as the paper assumes a fixed encoder shared by the
// indexing and query paths (§2.1).
type Embedder interface {
	// Embed returns the embedding of the given text. The returned
	// vector is owned by the caller.
	Embed(text string) vec.Vector
	// Dim returns the embedding dimensionality.
	Dim() int
	// Name identifies the encoder (used in reports).
	Name() string
}

// Option configures a TokenHash embedder.
type Option interface {
	apply(*options)
}

type options struct {
	name       string
	thesaurus  *Thesaurus
	stopwords  map[string]struct{}
	stopWeight float32
}

type nameOption string

func (n nameOption) apply(o *options) { o.name = string(n) }

// WithName sets the encoder name reported by Name().
func WithName(name string) Option { return nameOption(name) }

type thesaurusOption struct{ t *Thesaurus }

func (t thesaurusOption) apply(o *options) { o.thesaurus = t.t }

// WithThesaurus installs a synonym table; synonymous tokens share one
// embedding vector.
func WithThesaurus(t *Thesaurus) Option { return thesaurusOption{t: t} }

type stopwordsOption []string

func (s stopwordsOption) apply(o *options) {
	for _, w := range s {
		o.stopwords[strings.ToLower(w)] = struct{}{}
	}
}

// WithStopwords adds low-weight tokens on top of the built-in English
// stopword list.
func WithStopwords(words ...string) Option { return stopwordsOption(words) }

type stopWeightOption float32

func (w stopWeightOption) apply(o *options) { o.stopWeight = float32(w) }

// WithStopWeight sets the weight applied to stopword tokens (default
// 0.25). Content tokens always weigh 1.
func WithStopWeight(w float32) Option { return stopWeightOption(w) }

// TokenHash is the deterministic token-hash encoder. Each canonical token
// deterministically maps to a unit vector; a text embeds as the weighted
// sum of its token vectors. It is safe for concurrent use.
type TokenHash struct {
	dim        int
	seed       uint64
	name       string
	thesaurus  *Thesaurus
	stopwords  map[string]struct{}
	stopWeight float32

	mu    sync.RWMutex
	cache map[string]vec.Vector // canonical token -> unit vector
}

var _ Embedder = (*TokenHash)(nil)

// NewTokenHash creates a token-hash encoder of the given dimensionality.
// Two encoders built with the same dim, seed, and thesaurus produce
// identical embeddings. The paper's encoders are 768-dimensional; use
// Dim768 for fidelity.
func NewTokenHash(dim int, seed uint64, opts ...Option) *TokenHash {
	o := options{
		name:       "tokenhash",
		stopwords:  defaultStopwords(),
		stopWeight: 0.25,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	return &TokenHash{
		dim:        dim,
		seed:       seed,
		name:       o.name,
		thesaurus:  o.thesaurus,
		stopwords:  o.stopwords,
		stopWeight: o.stopWeight,
		cache:      make(map[string]vec.Vector),
	}
}

// Dim768 is the dimensionality of the paper's MedCPT and DPR encoders.
const Dim768 = 768

// Dim returns the embedding dimensionality.
func (e *TokenHash) Dim() int { return e.dim }

// Name returns the configured encoder name.
func (e *TokenHash) Name() string { return e.name }

// Embed tokenizes, canonicalizes, and sums token vectors. Duplicate tokens
// in one text contribute once per occurrence, like a bag-of-words model.
func (e *TokenHash) Embed(text string) vec.Vector {
	out := make(vec.Vector, e.dim)
	for _, tok := range Tokenize(text) {
		canonical := tok
		if e.thesaurus != nil {
			canonical = e.thesaurus.Canonical(tok)
		}
		w := float32(1)
		if _, stop := e.stopwords[canonical]; stop {
			w = e.stopWeight
		}
		vec.AXPY(out, w, e.tokenVector(canonical))
	}
	return out
}

// tokenVector returns (building and caching on first use) the unit vector
// for a canonical token.
func (e *TokenHash) tokenVector(token string) vec.Vector {
	e.mu.RLock()
	v, ok := e.cache[token]
	e.mu.RUnlock()
	if ok {
		return v
	}

	h := fnv.New64a()
	// Writing to an fnv hash never fails.
	_, _ = h.Write([]byte(token))
	rng := vec.NewRand(h.Sum64() ^ e.seed)
	fresh := vec.RandomUnit(rng, e.dim)

	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.cache[token]; ok {
		return existing
	}
	e.cache[token] = fresh
	return fresh
}

// Tokenize lower-cases the text and splits it into maximal runs of letters
// and digits. Exported because the rephraser and dataset generators must
// agree with the encoder on token boundaries.
func Tokenize(text string) []string {
	var (
		tokens []string
		cur    strings.Builder
	)
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
			continue
		}
		flush()
	}
	flush()
	return tokens
}

// defaultStopwords returns the built-in low-weight token set. Filler words
// are what the workload rephraser perturbs, so they carry reduced weight —
// the mechanism by which rephrasings stay close in embedding space.
func defaultStopwords() map[string]struct{} {
	words := []string{
		"a", "an", "the", "is", "are", "was", "were", "be", "been",
		"do", "does", "did", "what", "which", "who", "whom", "whose",
		"when", "where", "why", "how", "can", "could", "should",
		"would", "will", "shall", "may", "might", "must", "of", "in",
		"on", "at", "to", "for", "with", "about", "as", "by", "from",
		"that", "this", "these", "those", "it", "its", "and", "or",
		"not", "no", "yes", "me", "my", "you", "your", "we", "our",
		"they", "their", "he", "she", "his", "her", "them", "i",
		"please", "tell", "explain", "describe", "say", "regarding",
		"concerning", "question", "answer", "following", "best",
	}
	out := make(map[string]struct{}, len(words))
	for _, w := range words {
		out[w] = struct{}{}
	}
	return out
}
