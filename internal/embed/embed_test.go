package embed

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"proximity/internal/vec"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		give string
		want []string
	}{
		{name: "simple", give: "Hello World", want: []string{"hello", "world"}},
		{name: "punctuation", give: "what's best, doctor?", want: []string{"what", "s", "best", "doctor"}},
		{name: "digits", give: "top 10 drugs", want: []string{"top", "10", "drugs"}},
		{name: "empty", give: "", want: nil},
		{name: "whitespace only", give: "  \t\n", want: nil},
		{name: "unicode separators", give: "a—b", want: []string{"a", "b"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Tokenize(tt.give)
			if len(got) != len(tt.want) {
				t.Fatalf("Tokenize(%q) = %v, want %v", tt.give, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Tokenize(%q) = %v, want %v", tt.give, got, tt.want)
				}
			}
		})
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e := NewTokenHash(64, 42)
	a := e.Embed("aspirin reduces cardiovascular risk")
	b := e.Embed("aspirin reduces cardiovascular risk")
	if !vec.Equal(a, b) {
		t.Error("same text must embed identically")
	}
	e2 := NewTokenHash(64, 42)
	if !vec.Equal(a, e2.Embed("aspirin reduces cardiovascular risk")) {
		t.Error("a fresh encoder with the same seed must agree")
	}
	e3 := NewTokenHash(64, 43)
	if vec.Equal(a, e3.Embed("aspirin reduces cardiovascular risk")) {
		t.Error("a different seed should produce different embeddings")
	}
}

func TestEmbedDim(t *testing.T) {
	e := NewTokenHash(32, 1, WithName("test-encoder"))
	if e.Dim() != 32 {
		t.Errorf("Dim = %d", e.Dim())
	}
	if e.Name() != "test-encoder" {
		t.Errorf("Name = %q", e.Name())
	}
	if got := len(e.Embed("hello")); got != 32 {
		t.Errorf("embedding length = %d", got)
	}
	if got := vec.Norm(e.Embed("")); got != 0 {
		t.Errorf("empty text should embed to the zero vector, norm=%v", got)
	}
}

func TestEmbedOrderInsensitiveForBagOfWords(t *testing.T) {
	// Word order changes are one of the paper's rephrasing modes ("best
	// treatment for asthma" vs "asthma best therapies"); a bag-of-words
	// encoder is exactly order-invariant.
	e := NewTokenHash(128, 7)
	a := e.Embed("best treatment for asthma")
	b := e.Embed("for asthma treatment best")
	// Summation order differs, so allow float rounding error.
	if d := vec.L2(a, b); d > 1e-5 {
		t.Errorf("reordering should not move the embedding, dist=%v", d)
	}
}

func TestSynonymsCollapseWithThesaurus(t *testing.T) {
	th := EnglishMedical()
	e := NewTokenHash(128, 7, WithThesaurus(th))
	a := e.Embed("best treatment for asthma")
	b := e.Embed("asthma best therapies")
	// Only the stopword "for" differs between the two phrasings, so the
	// residual distance is bounded by the stopword weight (0.25).
	if d := vec.L2(a, b); d > 0.3 {
		t.Errorf("paper's canonical rephrasing pair should nearly coincide, dist=%v", d)
	}

	// Without the thesaurus the same pair is far apart.
	plain := NewTokenHash(128, 7)
	if d := vec.L2(plain.Embed("best treatment for asthma"), plain.Embed("asthma best therapies")); d < 0.5 {
		t.Errorf("without synonym knowledge the pair should differ, dist=%v", d)
	}
}

func TestStopwordsCarryLowWeight(t *testing.T) {
	e := NewTokenHash(128, 9)
	base := e.Embed("aspirin dosage myocardial infarction")
	prefixed := e.Embed("please tell me about the aspirin dosage myocardial infarction")
	content := e.Embed("ibuprofen overdose renal failure")
	dPrefix := vec.L2(base, prefixed)
	dContent := vec.L2(base, content)
	if dPrefix >= dContent/2 {
		t.Errorf("prefix chatter moved the embedding too far: prefix=%v unrelated=%v", dPrefix, dContent)
	}
}

func TestStopWeightOption(t *testing.T) {
	heavy := NewTokenHash(64, 3, WithStopWeight(1))
	light := NewTokenHash(64, 3, WithStopWeight(0.05))
	base := "aspirin dosage"
	noisy := "please tell me about the aspirin dosage"
	if dh, dl := vec.L2(heavy.Embed(base), heavy.Embed(noisy)), vec.L2(light.Embed(base), light.Embed(noisy)); dh <= dl {
		t.Errorf("higher stop weight should mean larger drift: heavy=%v light=%v", dh, dl)
	}
}

func TestWithStopwords(t *testing.T) {
	e := NewTokenHash(64, 3, WithStopwords("foobar"))
	base := e.Embed("aspirin dosage")
	noisy := e.Embed("foobar aspirin dosage")
	other := e.Embed("zzz aspirin dosage")
	if vec.L2(base, noisy) >= vec.L2(base, other) {
		t.Error("custom stopword should carry less weight than an unknown content token")
	}
}

func TestUnrelatedTextsAreFar(t *testing.T) {
	e := NewTokenHash(Dim768, 5)
	a := e.Embed("aspirin dosage myocardial infarction prevention guidelines evidence")
	b := e.Embed("quantum chromodynamics lattice gauge simulation convergence theory")
	// Each text has ~6 content tokens of unit norm; near-orthogonal sums
	// put the distance near sqrt(12) ≈ 3.46.
	if d := float64(vec.L2(a, b)); d < 2.5 {
		t.Errorf("unrelated texts too close: %v", d)
	}
	// Norm of each should be near sqrt(#content tokens).
	if n := float64(vec.Norm(a)); math.Abs(n-math.Sqrt(6)) > 0.8 {
		t.Errorf("norm = %v, want ≈ %v", n, math.Sqrt(6))
	}
}

func TestEmbedConcurrentSafe(t *testing.T) {
	e := NewTokenHash(64, 11)
	texts := []string{
		"alpha beta gamma", "delta epsilon zeta", "eta theta iota",
		"alpha delta eta", "beta epsilon theta",
	}
	var wg sync.WaitGroup
	results := make([][]vec.Vector, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]vec.Vector, len(texts))
			for i, txt := range texts {
				out[i] = e.Embed(txt)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range texts {
			if !vec.Equal(results[0][i], results[g][i]) {
				t.Fatalf("goroutine %d produced different embedding for %q", g, texts[i])
			}
		}
	}
}

// Property: duplicating a text's tokens scales the embedding by 2 (bag of
// words linearity), and token-vector caching never changes results.
func TestEmbedLinearity(t *testing.T) {
	e := NewTokenHash(32, 13)
	f := func(seed uint64) bool {
		words := []string{"aaa", "bbb", "ccc", "ddd", "eee", "fff"}
		r := vec.NewRand(seed)
		n := 1 + int(r.Uint64()%5)
		var txt string
		for i := 0; i < n; i++ {
			txt += words[r.Uint64()%uint64(len(words))] + " "
		}
		single := e.Embed(txt)
		double := e.Embed(txt + " " + txt)
		scaled := vec.Scale(vec.Clone(single), 2)
		return vec.L2(double, scaled) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestThesaurus(t *testing.T) {
	th := NewThesaurus()
	th.Register("treatment", "therapy", "remedy")
	th.Register() // no-op
	if got := th.Canonical("therapy"); got != "treatment" {
		t.Errorf("Canonical(therapy) = %q", got)
	}
	if got := th.Canonical("TREATMENT"); got != "TREATMENT" {
		// Canonical receives already-lowercased tokens from Tokenize;
		// raw uppercase lookups miss by design.
		t.Errorf("Canonical(TREATMENT) = %q, want passthrough", got)
	}
	if got := th.Canonical("unregistered"); got != "unregistered" {
		t.Errorf("Canonical(unregistered) = %q", got)
	}
	syn := th.Synonyms("remedy")
	if len(syn) != 2 {
		t.Errorf("Synonyms(remedy) = %v, want 2 entries", syn)
	}
	if th.Len() != 3 {
		t.Errorf("Len = %d, want 3", th.Len())
	}
}

func TestEnglishMedicalThesaurus(t *testing.T) {
	th := EnglishMedical()
	if th.Canonical("therapies") != "treatment" {
		t.Error("therapies should canonicalize to treatment")
	}
	if th.Canonical("tumour") != th.Canonical("cancer") {
		t.Error("tumour and cancer should share a canonical form")
	}
}
