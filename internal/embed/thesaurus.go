package embed

import (
	"sort"
	"strings"
)

// Thesaurus maps synonymous surface forms onto one canonical token. It is
// the explicit stand-in for the semantic knowledge inside a neural
// encoder: MedCPT places "treatment" and "therapy" nearby because it was
// trained on biomedical text; the token-hash encoder places them at the
// same point because the thesaurus says so. Dataset generators register
// the synonym families their rephraser draws from, so rephrased queries
// provably land near the original.
//
// A Thesaurus is safe for concurrent reads after construction; Register
// calls must not race with use.
type Thesaurus struct {
	canonical map[string]string
}

// NewThesaurus creates an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{canonical: make(map[string]string)}
}

// Register declares that every word in the group is a synonym of the
// first. Words are lower-cased. Registering an empty group is a no-op.
func (t *Thesaurus) Register(group ...string) {
	if len(group) == 0 {
		return
	}
	head := strings.ToLower(group[0])
	for _, w := range group {
		t.canonical[strings.ToLower(w)] = head
	}
}

// Canonical returns the canonical form of the token, or the token itself
// when it is not registered.
func (t *Thesaurus) Canonical(token string) string {
	if c, ok := t.canonical[token]; ok {
		return c
	}
	return token
}

// Synonyms returns all registered surface forms for the token's canonical
// group, excluding the token itself, sorted lexicographically so callers
// that pick a synonym by index stay deterministic.
func (t *Thesaurus) Synonyms(token string) []string {
	canon := t.Canonical(strings.ToLower(token))
	var out []string
	for w, c := range t.canonical {
		if c == canon && w != strings.ToLower(token) {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered surface forms.
func (t *Thesaurus) Len() int { return len(t.canonical) }

// EnglishMedical returns a small built-in thesaurus with the kind of
// rephrasing pairs §2.3 of the paper cites ("best treatment for asthma"
// vs. "asthma best therapies"). Used by the quickstart example and tests.
func EnglishMedical() *Thesaurus {
	t := NewThesaurus()
	groups := [][]string{
		{"treatment", "therapy", "therapies", "treatments", "remedy"},
		{"doctor", "physician", "clinician"},
		{"medicine", "medication", "drug", "drugs"},
		{"illness", "disease", "condition", "disorder"},
		{"symptom", "symptoms", "sign", "signs"},
		{"effective", "efficacious", "beneficial"},
		{"cause", "causes", "etiology"},
		{"prevent", "prevention", "prophylaxis"},
		{"heart", "cardiac", "cardiovascular"},
		{"cancer", "tumor", "tumour", "malignancy"},
	}
	for _, g := range groups {
		t.Register(g...)
	}
	return t
}
