//go:build !race

package perfguard

const raceEnabled = false
