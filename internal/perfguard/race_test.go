//go:build race

package perfguard

// raceEnabled gates the allocation-count assertions: race
// instrumentation adds bookkeeping allocations that would fail the
// budgets for reasons unrelated to the code under test. CI runs this
// package without -race in the vet job.
const raceEnabled = true
