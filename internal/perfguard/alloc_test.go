// Package perfguard holds the allocation-budget regression tests for
// the //proximity:hotpath functions. The static side of the contract is
// proximity-vet's hotpathalloc analyzer; these tests are the dynamic
// side — they pin the actual per-call allocation counts so a regression
// that slips past the analyzer (an allocation inside a callee, an
// escape-analysis change) still fails CI.
//
// Budgets: hnsw.SearchInto is allocation-free in steady state;
// FlatCache.Get, IndexedCache.Get, and the tiered hot-hit lookup are
// allowed exactly their one documented caller-owned docs copy.
package perfguard

import (
	"testing"

	"proximity/internal/core"
	"proximity/internal/hnsw"
	"proximity/internal/tier"
	"proximity/internal/vec"
)

const dim = 32

// testVec builds a deterministic unit-ish vector for slot i.
func testVec(i int) vec.Vector {
	v := make(vec.Vector, dim)
	for j := range v {
		v[j] = float32((i*31+j*7)%13) / 13
	}
	return v
}

func checkBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under -race")
	}
	// One warm-up call settles pools and grow-once buffers before
	// counting.
	f()
	if allocs := testing.AllocsPerRun(200, f); allocs > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.0f", name, allocs, budget)
	}
}

func TestSearchIntoAllocFree(t *testing.T) {
	ix, err := hnsw.New(dim, vec.L2Distance, hnsw.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := ix.Add(testVec(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := testVec(17)
	dst := make([]vec.Scored, 0, 64)
	checkBudget(t, "hnsw.SearchInto", 0, func() {
		dst = dst[:0]
		if _, err := ix.SearchInto(dst, q, 8, 32); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFlatGetBudget(t *testing.T) {
	c, err := core.NewFlat(dim, core.Options{Capacity: 64, Tolerance: 10, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		c.Put(testVec(i), []int{i, i + 1})
	}
	q := testVec(5)
	checkBudget(t, "FlatCache.Get", 1, func() {
		if _, ok := c.Get(q); !ok {
			t.Fatal("expected a hit")
		}
	})
}

// TestIndexedGetBudget pins both lookup regimes: the sub-crossover
// exact scan and the graph beam search.
func TestIndexedGetBudget(t *testing.T) {
	for name, crossover := range map[string]int{"scan": 1 << 20, "graph": 4} {
		t.Run(name, func(t *testing.T) {
			c, err := core.NewIndexed(dim, core.IndexedOptions{
				Capacity: 64, Tolerance: 10, Policy: core.LRU,
				Crossover: crossover, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 32; i++ {
				c.Put(testVec(i), []int{i, i + 1})
			}
			q := testVec(5)
			checkBudget(t, "IndexedCache.Get/"+name, 1, func() {
				if _, ok := c.Get(q); !ok {
					t.Fatal("expected a hit")
				}
			})
		})
	}
}

// TestTierHotHitBudget pins the tiered lookup's hot-hit path: the
// TierGet docs copy is the only allocation — in particular the deferred
// Commit must not cost a closure allocation per hit.
func TestTierHotHitBudget(t *testing.T) {
	tc, err := tier.New(dim, tier.Options{
		HotCapacity: 64, WarmCapacity: 128, Tolerance: 10,
		Policy: core.FIFO, Dir: t.TempDir(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	for i := 0; i < 32; i++ {
		tc.Put(testVec(i), []int{i, i + 1})
	}
	q := testVec(5)
	checkBudget(t, "TieredCache.Get (hot hit)", 1, func() {
		if _, ok := tc.Get(q); !ok {
			t.Fatal("expected a hot hit")
		}
	})
}
