package cluster

import (
	"reflect"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership should error")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate node should error")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty node ID should error")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Error("negative vnodes should error")
	}
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint32(0); key < 1000; key++ {
		la, lb := a.Lookup(key), b.Lookup(key)
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("key %d: membership order changed the ring: %v vs %v", key, la, lb)
		}
	}
}

// TestRingLookupCoversAllNodesDistinctly: the replica order is a
// permutation of the membership — every node appears exactly once, the
// primary first.
func TestRingLookupCoversAllNodesDistinctly(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint32(0); key < 1000; key++ {
		order := r.Lookup(key)
		if len(order) != len(nodes) {
			t.Fatalf("key %d: lookup returned %d nodes, want %d", key, len(order), len(nodes))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("key %d: node %s repeated in replica order %v", key, n, order)
			}
			seen[n] = true
		}
		if order[0] != r.Primary(key) {
			t.Fatalf("key %d: Lookup[0] = %s, Primary = %s", key, order[0], r.Primary(key))
		}
	}
}

// TestRingBalance: with default vnodes, no node's share of a uniform
// keyspace should stray wildly from 1/N.
func TestRingBalance(t *testing.T) {
	const keys = 20000
	r, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for key := uint32(0); key < keys; key++ {
		counts[r.Primary(key)]++
	}
	want := keys / r.Len()
	for n, got := range counts {
		if got < want/2 || got > 2*want {
			t.Errorf("node %s owns %d of %d keys, want within [%d, %d]", n, got, keys, want/2, 2*want)
		}
	}
}

// TestRingMinimalMovement: a node joining a 4-node ring should take over
// roughly 1/5 of the keyspace and leave every other assignment alone —
// the property that preserves warm cache entries across rebalances.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 20000
	r4, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := r4.WithNode("n5")
	if err != nil {
		t.Fatal(err)
	}
	moved, movedElsewhere := 0, 0
	for key := uint32(0); key < keys; key++ {
		before, after := r4.Primary(key), r5.Primary(key)
		if before != after {
			moved++
			if after != "n5" {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between surviving nodes; a join must only move keys to the joiner", movedElsewhere)
	}
	// Expected movement is 1/5; allow generous slack for vnode variance.
	if frac := float64(moved) / keys; frac > 0.4 {
		t.Errorf("join moved %.1f%% of keys, want ~20%%", 100*frac)
	}

	// Leaving restores the old assignment exactly.
	back, err := r5.WithoutNode("n5")
	if err != nil {
		t.Fatal(err)
	}
	for key := uint32(0); key < keys; key++ {
		if back.Primary(key) != r4.Primary(key) {
			t.Fatalf("key %d: leave did not restore the pre-join owner", key)
		}
	}

	if _, err := r4.WithoutNode("ghost"); err == nil {
		t.Error("removing an unknown node should error")
	}
}
