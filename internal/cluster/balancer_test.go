package cluster

import (
	"testing"
	"time"

	"proximity/internal/rebalance"
	"proximity/internal/server"
)

// TestBalancerShiftsWeightOffHotNode creates a guaranteed-lopsided load
// (traffic aimed straight at one node: the balancer reads each node's
// OWN lookup counters, so it sees skew however it arrives), then lets
// the balancer act: the hot node must end up with a lower ring weight
// than the cold one. Which node the ring would favor is irrelevant —
// and deliberately so, since loopback node IDs (ephemeral ports) make
// ring ownership nondeterministic across runs.
func TestBalancerShiftsWeightOffHotNode(t *testing.T) {
	c, nodes, _ := startCluster(t, 2, Options{Seed: 1})
	bal, err := NewBalancer(c, BalancerOptions{})
	if err != nil {
		t.Fatal(err)
	}

	hot, cold := nodes[0].base, nodes[1].base
	direct := server.NewClient(hot)
	for _, q := range queries(40, 7) {
		if _, err := direct.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}

	sample := bal.Sample()
	// Loads 40 vs 0 over 2 nodes: max/mean = 2.
	if sample.Imbalance < 1.5 {
		t.Fatalf("sample imbalance %v, want ~2 for one-sided load", sample.Imbalance)
	}

	out, err := bal.Rebalance(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Acted {
		t.Fatalf("balancer declined: %s", out.Detail)
	}
	if out.Before < 1.5 {
		t.Errorf("outcome Before = %v, want the observed skew", out.Before)
	}
	w := c.Weights()
	if w[hot] >= w[cold] {
		t.Errorf("hot node %s weight %v not below cold node %s weight %v", hot, w[hot], cold, w[cold])
	}
	if c.RouterStats().Rebalances != 1 {
		t.Errorf("Rebalances = %d, want 1", c.RouterStats().Rebalances)
	}
	// The baseline reset: an immediate re-sample sees no new load.
	if s := bal.Sample(); s.Imbalance != 1 {
		t.Errorf("post-rebalance sample imbalance = %v, want 1 (deltas reset)", s.Imbalance)
	}
}

// TestBalancerAbsorbsCounterReset: a node whose cumulative counters
// drop below the baseline has restarted; its load signal must re-anchor
// to "since restart", not become a huge negative delta that a rebalance
// would convert into a near-maximal weight boost for a cold node.
func TestBalancerAbsorbsCounterReset(t *testing.T) {
	c, nodes, _ := startCluster(t, 2, Options{Seed: 1})
	bal, err := NewBalancer(c, BalancerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries(20, 13) {
		if _, _, err := c.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a restart: pretend the baseline was far above what the
	// node now reports.
	bal.mu.Lock()
	bal.baseline[nodes[0].base] = 1 << 40
	bal.mu.Unlock()

	for _, l := range bal.snapshot() {
		if l.delta < 0 {
			t.Fatalf("node %s delta %d went negative across a counter reset", l.node, l.delta)
		}
	}
	out, err := bal.Rebalance(bal.Sample())
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		for _, w := range c.Weights() {
			if w > 4 {
				t.Fatalf("counter reset produced an extreme weight %v: %s", w, out.Detail)
			}
		}
	}
}

// TestBalancerDeclinesOnUnreachableNode: re-weighting on a partial load
// snapshot would punish whichever node failed to report, so the balancer
// must decline instead.
func TestBalancerDeclinesOnUnreachableNode(t *testing.T) {
	c, nodes, _ := startCluster(t, 2, Options{Seed: 1})
	bal, err := NewBalancer(c, BalancerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries(8, 9) {
		if _, _, err := c.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[0].stop(); err != nil {
		t.Fatal(err)
	}
	out, err := bal.Rebalance(bal.Sample())
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Error("balancer acted on an incomplete load snapshot")
	}
	if c.RouterStats().Rebalances != 0 {
		t.Error("declined action must not change the ring")
	}
}

// TestClusterRebalanceOption: the Options.Rebalance wiring starts a
// controller that lives and dies with the client.
func TestClusterRebalanceOption(t *testing.T) {
	c, _, _ := startCluster(t, 2, Options{
		Seed: 1,
		Rebalance: &rebalance.Options{
			Threshold: 1.2,
			Interval:  time.Hour, // policy loop stays quiet; we trigger manually
		},
	})
	ctrl := c.Controller()
	if ctrl == nil {
		t.Fatal("Options.Rebalance set but Controller() is nil")
	}
	for _, q := range queries(6, 11) {
		if _, _, err := c.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctrl.TriggerNow(); err != nil {
		t.Fatalf("manual trigger: %v", err)
	}
	if st := ctrl.Stats(); st.Triggers != 1 {
		t.Errorf("Triggers = %d, want 1", st.Triggers)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.TriggerNow(); err == nil {
		t.Error("controller should be closed with the client")
	}
}
