package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/lsh"
	"proximity/internal/rebalance"
	"proximity/internal/server"
	"proximity/internal/shard"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// DefaultReplicas is the number of distinct nodes a query may try when
// Options.Replicas is zero: the ring owner plus one backup.
const DefaultReplicas = 2

// DefaultBatchTimeout is the per-node submitter flush deadline when
// Options.BatchTimeout is zero. Wider than the in-process pipeline's
// default because the cost being amortized is an HTTP round trip, not an
// index traversal.
const DefaultBatchTimeout = time.Millisecond

// DefaultProbeCooldown is how long a node marked down stays sidelined
// before one routing caller re-probes its /healthz.
const DefaultProbeCooldown = time.Second

// Options configures a Client.
type Options struct {
	// Partition selects the routing key, mirroring the in-process
	// partitioner: LSHSignature (the default) keeps similar queries on
	// the same node so approximate cache hits survive distribution;
	// Fingerprint spreads uniformly but only byte-identical repeats
	// collide.
	Partition shard.Partition
	// SignatureBits is the LSHSignature hyperplane count. Defaults to
	// shard.DefaultSignatureBits, capped at lsh.MaxBits.
	SignatureBits int
	// Seed drives the LSHSignature hyperplane draw, so a fixed seed
	// reproduces the same node assignment.
	Seed uint64
	// VNodes is the virtual-node count per node. Defaults to
	// DefaultVNodes.
	VNodes int
	// Replicas is the maximum number of distinct nodes a query may try
	// before failing. Defaults to DefaultReplicas, capped at the node
	// count.
	Replicas int
	// MaxBatch is the per-node submitter flush size. Defaults to
	// batch.DefaultMaxBatch.
	MaxBatch int
	// BatchTimeout is the per-node submitter flush deadline. Defaults
	// to DefaultBatchTimeout.
	BatchTimeout time.Duration
	// ProbeCooldown is how long a down node stays sidelined between
	// health re-probes. Defaults to DefaultProbeCooldown.
	ProbeCooldown time.Duration
	// Clock supplies the submitter flush timers. Defaults to
	// batch.SystemClock.
	Clock batch.Clock
	// Rebalance, when non-nil, starts an adaptive ring re-weighting
	// controller over this client: per-node lookup imbalance beyond the
	// policy's threshold (sustained for its window) shifts hash arcs
	// off overloaded nodes by re-weighting virtual-node counts (see
	// Balancer). The controller lives and dies with the Client; reach
	// it via Controller for stats or manual triggers.
	Rebalance *rebalance.Options
	// BalancerGain is the adaptive controller's correction exponent
	// (0 = DefaultGain; ignored without Rebalance).
	BalancerGain float64
	// Telemetry, when non-nil, receives node_rpc stage observations for
	// every traced node call. Sampled queries (a live trace in the
	// RetrieveContext context) bypass the per-node batch submitter and go
	// out as direct traced calls, so the node's spans come back under the
	// parent trace's ID; see Client.RetrieveContext.
	Telemetry *telemetry.Telemetry
	// Logger receives structured routing events: replica retries, nodes
	// marked down, whole-query fallbacks, and ring re-weightings.
	// Defaults to slog.Default().
	Logger *slog.Logger
}

func (o *Options) fillDefaults() {
	if o.Partition == 0 {
		o.Partition = shard.LSHSignature
	}
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = DefaultBatchTimeout
	}
	if o.ProbeCooldown <= 0 {
		o.ProbeCooldown = DefaultProbeCooldown
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
}

// RouterStats are the client-side routing counters.
type RouterStats struct {
	// Served counts queries answered by some node.
	Served int64
	// Retried counts served queries that needed more than one node.
	Retried int64
	// Failed counts queries no tried replica could answer (through the
	// core.Cache surface these fall back to the caller's local miss
	// path).
	Failed int64
	// RemoteHits counts served queries the owning node answered from
	// its cache.
	RemoteHits int64
	// Rebalances counts ring re-weightings applied via Rebalance.
	Rebalances int64
}

// NodeStatus is one node's slice of a Status snapshot.
type NodeStatus struct {
	// Node is the node's base URL.
	Node string
	// Healthy is the router's current verdict (no probe is issued).
	Healthy bool
	// Reachable reports whether the stats fetch below succeeded.
	Reachable bool
	// Remote is the node's own /v1/stats payload (zero unless
	// Reachable).
	Remote server.StatsResponse
	// Submit is this client's per-node batch-submitter counters.
	Submit batch.QueueStats
}

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("cluster: client closed")

// Client routes queries across shard nodes — instances of the HTTP
// middleware — by consistent hashing over the same routing fingerprints
// the in-process partitioner uses. It satisfies core.Cache and
// core.Searcher, so it drops into core.CachedRetriever unchanged; see
// the package documentation for the semantics of each surface. All
// methods are safe for concurrent use.
type Client struct {
	opts   Options
	dim    int
	hasher *lsh.Hasher          // LSHSignature routing; nil under Fingerprint
	tel    *telemetry.Telemetry // nil disables stage observation
	log    *slog.Logger

	mu     sync.RWMutex
	ring   *Ring
	nodes  map[string]*node
	closed bool

	ctrl *rebalance.Controller // nil unless Options.Rebalance was set

	served     atomic.Int64
	retried    atomic.Int64
	failed     atomic.Int64
	remoteHits atomic.Int64
	rebalances atomic.Int64
}

var (
	_ core.Cache           = (*Client)(nil)
	_ core.Searcher        = (*Client)(nil)
	_ core.ContextCache    = (*Client)(nil)
	_ core.ContextSearcher = (*Client)(nil)
)

// New creates a cluster client for dim-dimensional embeddings over the
// given node base URLs (e.g. "http://10.0.0.1:8080").
func New(dim int, nodes []string, opts Options) (*Client, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("cluster: dimension must be positive, got %d", dim)
	}
	opts.fillDefaults()
	c := &Client{
		opts:  opts,
		dim:   dim,
		nodes: make(map[string]*node, len(nodes)),
		tel:   opts.Telemetry,
		log:   opts.Logger,
	}
	switch opts.Partition {
	case shard.LSHSignature:
		bits := opts.SignatureBits
		if bits == 0 {
			bits = shard.DefaultSignatureBits
		}
		if bits > lsh.MaxBits {
			bits = lsh.MaxBits
		}
		hasher, err := lsh.NewHasher(dim, bits, opts.Seed)
		if err != nil {
			return nil, err
		}
		c.hasher = hasher
	case shard.Fingerprint:
		// No partitioner state needed.
	default:
		return nil, fmt.Errorf("cluster: unknown partition strategy %d", int(opts.Partition))
	}
	ring, err := NewRing(nodes, opts.VNodes)
	if err != nil {
		return nil, err
	}
	c.ring = ring
	// Submitters own flush timers and keep-alive connections from the
	// moment they are built; every later constructor failure must close
	// what already started or an embedding process leaks one goroutine
	// per node per failed New.
	closeNodes := func() {
		for _, n := range c.nodes {
			_ = n.sub.Close()
		}
	}
	for _, base := range ring.Nodes() {
		n, err := newNode(base, opts)
		if err != nil {
			closeNodes()
			return nil, err
		}
		c.nodes[base] = n
	}
	if opts.Rebalance != nil {
		bal, err := NewBalancer(c, BalancerOptions{Gain: opts.BalancerGain})
		if err != nil {
			closeNodes()
			return nil, err
		}
		ctrl, err := rebalance.New(bal, bal, *opts.Rebalance)
		if err != nil {
			closeNodes()
			return nil, err
		}
		if err := ctrl.Start(); err != nil {
			closeNodes()
			return nil, err
		}
		c.ctrl = ctrl
	}
	return c, nil
}

// Controller returns the adaptive rebalance controller, or nil when
// Options.Rebalance was not set.
func (c *Client) Controller() *rebalance.Controller { return c.ctrl }

// KeyOf returns the routing fingerprint of a query — the same key the
// in-process partitioner would use. Exported for diagnostics and tests.
func (c *Client) KeyOf(q vec.Vector) uint32 {
	if c.hasher != nil {
		return c.hasher.Hash(q)
	}
	return shard.FingerprintOf(q)
}

// RouteFor returns the replica order a query would try, for diagnostics
// and tests.
func (c *Client) RouteFor(q vec.Vector) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Lookup(c.KeyOf(q))
}

// Retrieve routes the query to its ring owner and returns that node's
// retrieval. A retryable failure (transport error or 5xx — a sick node)
// sidelines the node and walks to the next distinct ring replica, up to
// Replicas nodes; a 4xx surfaces immediately, since every replica would
// reject the same input. Known-down nodes are skipped while their
// cooldown lasts, so a dead node costs one failed round trip, not one
// per query.
func (c *Client) Retrieve(q vec.Vector) (docs []int, hit bool, err error) {
	return c.retrieve(nil, q)
}

// RetrieveContext is Retrieve with trace propagation: when ctx carries a
// sampled trace, every node attempt bypasses the per-node batch submitter
// and goes out as a direct traced call — the request ships the trace ID
// in the X-Proximity-Trace header, the node records its own spans under
// that ID, and the response header carries them back to be grafted into
// the parent trace, labeled with the node's address. The router adds one
// node_rpc span per attempt (failed attempts carry the error), so a
// replica retry shows up as two node_rpc spans under one trace ID.
// Untraced contexts take the plain batched Retrieve path unchanged.
func (c *Client) RetrieveContext(ctx context.Context, q vec.Vector) (docs []int, hit bool, err error) {
	return c.retrieve(telemetry.FromContext(ctx), q)
}

func (c *Client) retrieve(trace *telemetry.Trace, q vec.Vector) (docs []int, hit bool, err error) {
	if q == nil {
		return nil, false, errors.New("cluster: nil query embedding")
	}
	if len(q) != c.dim {
		return nil, false, fmt.Errorf("cluster: query dim %d, cluster dim %d: %w",
			len(q), c.dim, vec.ErrDimensionMismatch)
	}

	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, false, ErrClosed
	}
	order := c.ring.Lookup(c.KeyOf(q))
	cands := make([]*node, 0, len(order))
	for _, base := range order {
		cands = append(cands, c.nodes[base])
	}
	c.mu.RUnlock()

	// Available nodes keep their ring order; sidelined ones sink to the
	// end as a last resort, so a query prefers live replicas but is
	// never left unattempted while any node remains.
	ordered := make([]*node, 0, len(cands))
	var down []*node
	for _, n := range cands {
		if n.available(c.opts.ProbeCooldown) {
			ordered = append(ordered, n)
		} else {
			down = append(down, n)
		}
	}
	cands = append(ordered, down...)
	if len(cands) > c.opts.Replicas {
		cands = cands[:c.opts.Replicas]
	}

	var lastErr error
	for i, n := range cands {
		item, err := c.attempt(trace, n, q)
		if err == nil {
			n.markUp()
			c.served.Add(1)
			if i > 0 {
				c.retried.Add(1)
			}
			if item.Hit {
				c.remoteHits.Add(1)
			}
			return item.Docs, item.Hit, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, false, err
		}
		c.log.Warn("cluster: node attempt failed, sidelining node",
			"node", n.base, "attempt", i+1, "replicas", len(cands), "err", err)
		n.markDown()
	}
	c.failed.Add(1)
	c.log.Error("cluster: all replicas failed, falling back to caller",
		"replicas", len(cands), "err", lastErr)
	return nil, false, fmt.Errorf("cluster: all %d replicas failed: %w", len(cands), lastErr)
}

// attempt issues one node call. Untraced queries ride the node's batch
// submitter (amortizing the HTTP round trip); traced ones go direct so
// the node's span timeline attaches to exactly this request.
func (c *Client) attempt(trace *telemetry.Trace, n *node, q vec.Vector) (server.BatchItem, error) {
	if trace == nil {
		return n.do(q)
	}
	finish := trace.StartSpanNode(telemetry.StageNodeRPC, n.base)
	start := time.Now()
	resp, spans, err := n.client.RetrieveTraced(q, trace.ID())
	if c.tel != nil {
		c.tel.ObserveStage(telemetry.StageNodeRPC, time.Since(start))
	}
	// Label the node's own spans with where they ran: the node doesn't
	// know its public address, but the router does.
	for i := range spans {
		if spans[i].Node == "" {
			spans[i].Node = n.base
		}
	}
	trace.AddSpans(spans)
	finish(err)
	if err != nil {
		return server.BatchItem{}, err
	}
	return server.BatchItem{Docs: resp.Docs, Hit: resp.Hit}, nil
}

// retryable classifies a node failure: transport errors and 5xx replies
// indict the node, so the next replica may succeed; a 4xx indicts the
// input, which every replica would reject the same way. This is exactly
// the 400-vs-500 contract of server.retrieveStatus.
func retryable(err error) bool {
	var se *server.StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// Get implements core.Cache over the cluster: the owning node runs the
// full cache-or-database path, so any successful reply is a hit from the
// local retriever's point of view — the local process must not redo the
// search the node already performed. ok=false only when every tried
// replica failed, in which case the wrapping retriever falls back to its
// local miss path: a degraded cluster loses speed, never availability.
func (c *Client) Get(q vec.Vector) ([]int, bool) {
	docs, _, err := c.Retrieve(q)
	if err != nil {
		return nil, false
	}
	return docs, true
}

// GetContext implements core.ContextCache: Get with trace propagation
// (see RetrieveContext), so a sampled retrieval through a cluster-backed
// retriever stitches the remote node's spans into its trace.
func (c *Client) GetContext(ctx context.Context, q vec.Vector) ([]int, bool) {
	docs, _, err := c.RetrieveContext(ctx, q)
	if err != nil {
		return nil, false
	}
	return docs, true
}

// Put implements core.Cache as a no-op: nodes fill their own caches on
// their own miss paths, so the routed retrieval that preceded this call
// already populated the owner.
func (c *Client) Put(q vec.Vector, docs []int) {}

// PutWithTolerance implements core.Cache as a no-op (see Put).
func (c *Client) PutWithTolerance(q vec.Vector, docs []int, tol float32) {}

// Search implements core.Searcher: the routed node retrieval as a miss-
// path hook. Distances are positional (the node returns docs already
// ranked but does not expose scores over the wire), so the result is
// order-faithful but not metric-faithful; callers that need true
// distances — dynamic tolerance, re-ranking — should keep those features
// on the nodes.
func (c *Client) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	docs, _, err := c.Retrieve(q)
	if err != nil {
		return nil, err
	}
	if len(docs) > k {
		docs = docs[:k]
	}
	scored := make([]vec.Scored, len(docs))
	for i, id := range docs {
		scored[i] = vec.Scored{ID: id, Dist: float32(i)}
	}
	return scored, nil
}

// SearchContext implements core.ContextSearcher: Search with trace
// propagation (see RetrieveContext). Distances are positional, as in
// Search.
func (c *Client) SearchContext(ctx context.Context, q vec.Vector, k int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	docs, _, err := c.RetrieveContext(ctx, q)
	if err != nil {
		return nil, err
	}
	if len(docs) > k {
		docs = docs[:k]
	}
	scored := make([]vec.Scored, len(docs))
	for i, id := range docs {
		scored[i] = vec.Scored{ID: id, Dist: float32(i)}
	}
	return scored, nil
}

// AddNode joins a node to the ring. Keys whose arcs it takes over start
// routing to it immediately; the expected share is 1/(N+1) of the
// keyspace, so existing nodes keep most of their warm entries.
func (c *Client) AddNode(base string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	ring, err := c.ring.WithNode(base)
	if err != nil {
		return err
	}
	n, err := newNode(base, c.opts)
	if err != nil {
		return err
	}
	c.ring = ring
	c.nodes[base] = n
	return nil
}

// RemoveNode leaves a node from the ring, draining its submitter.
// Requests in flight on the removed node fail over to the ring's
// remaining replicas through the normal retry path.
func (c *Client) RemoveNode(base string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	ring, err := c.ring.WithoutNode(base)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	n := c.nodes[base]
	c.ring = ring
	delete(c.nodes, base)
	c.mu.Unlock()
	return n.sub.Close()
}

// Rebalance swaps the ring for a re-weighted one over the same
// membership: a node's virtual-node count scales with its weight, so
// lowering an overloaded node's weight moves arcs — and the keys on
// them — to its neighbors without any node joining or leaving. Keys
// whose owner changes are served by a cold replica until its cache
// warms: a transient hit-rate dip, never an outage, exactly like a
// membership change. Weights merge over the current ones (see
// Ring.WithWeights); validation errors leave routing untouched.
func (c *Client) Rebalance(weights map[string]float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	ring, err := c.ring.WithWeights(weights)
	if err != nil {
		return err
	}
	c.ring = ring
	c.rebalances.Add(1)
	c.log.Info("cluster: ring re-weighted", "nodes", len(weights))
	return nil
}

// Weights returns the current per-node ring weights.
func (c *Client) Weights() map[string]float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Weights()
}

// Ring returns the current ring (immutable; a Rebalance or membership
// change installs a new one).
func (c *Client) Ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// Nodes returns the current ring membership, sorted.
func (c *Client) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Nodes()
}

// RouterStats returns the client-side routing counters.
func (c *Client) RouterStats() RouterStats {
	return RouterStats{
		Served:     c.served.Load(),
		Retried:    c.retried.Load(),
		Failed:     c.failed.Load(),
		RemoteHits: c.remoteHits.Load(),
		Rebalances: c.rebalances.Load(),
	}
}

// Status snapshots every node: the router's health verdict, the node's
// own /v1/stats (per-node hit/miss, occupancy, batch pipeline), and this
// client's per-node submitter counters. The remote fetches fan out in
// parallel on the short-timeout admin clients, so one hung node delays a
// snapshot by the admin deadline, not the sum of data-path timeouts.
// Unreachable nodes report Reachable=false with zero remote stats.
func (c *Client) Status() []NodeStatus {
	c.mu.RLock()
	bases := c.ring.Nodes()
	nodes := make([]*node, len(bases))
	for i, b := range bases {
		nodes[i] = c.nodes[b]
	}
	c.mu.RUnlock()

	out := make([]NodeStatus, len(bases))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			st := NodeStatus{Node: n.base, Healthy: n.isHealthy(), Submit: n.sub.Stats()}
			if remote, err := n.admin.Stats(); err == nil {
				st.Reachable = true
				st.Remote = remote
			}
			out[i] = st
		}(i, n)
	}
	wg.Wait()
	return out
}

// StatsSnapshot delivers the aggregated counters, entry count, and
// capacity from ONE Status fan-out. The server's stats endpoint prefers
// this over calling Stats/Len/Capacity separately, each of which costs
// its own per-node fetch round.
func (c *Client) StatsSnapshot() (stats core.Stats, entries, capacity int) {
	for _, st := range c.Status() {
		stats.Hits += st.Remote.Hits
		stats.Misses += st.Remote.Misses
		stats.Evictions += st.Remote.Evictions
		entries += st.Remote.Entries
		capacity += st.Remote.Capacity
	}
	return stats, entries, capacity
}

// Len implements core.Cache: the summed entry count across reachable
// nodes (best effort — a down node contributes zero). Prefer
// StatsSnapshot when Stats and Capacity are wanted too.
func (c *Client) Len() int {
	_, entries, _ := c.StatsSnapshot()
	return entries
}

// Capacity implements core.Cache: the summed capacity across reachable
// nodes (best effort).
func (c *Client) Capacity() int {
	_, _, capacity := c.StatsSnapshot()
	return capacity
}

// Stats implements core.Cache by aggregating the nodes' own cache
// counters (best effort: unreachable nodes contribute nothing). Hits and
// misses are therefore the cache tier's view — a remote miss that the
// node's database answered still succeeded from the router's view; see
// RouterStats for the routing-level counters.
func (c *Client) Stats() core.Stats {
	stats, _, _ := c.StatsSnapshot()
	return stats
}

// Clear implements core.Cache by flushing every reachable node.
func (c *Client) Clear() {
	c.mu.RLock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.RUnlock()
	for _, n := range nodes {
		_ = n.client.Flush()
	}
}

// Close drains every node submitter and fails subsequent operations with
// ErrClosed.
func (c *Client) Close() error {
	// Stop the adaptive loop FIRST, while the client is still open: an
	// in-flight tick completes against a working client (no spurious
	// controller failure recorded), and by the time the submitters
	// drain below no rebalance can race the shutdown.
	c.mu.RLock()
	ctrl, closed := c.ctrl, c.closed
	c.mu.RUnlock()
	if closed {
		return nil
	}
	if ctrl != nil {
		_ = ctrl.Close()
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		_ = n.sub.Close()
	}
	return nil
}
