package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proximity/internal/vec"
)

// TestClusterNodeDownMidBatch: killing a node while a gathered batch is
// bound for it fans the failure out to every waiter, each of which
// retries on the next ring replica — the acceptance criterion's "a
// killed node degrades throughput but produces zero failed queries".
func TestClusterNodeDownMidBatch(t *testing.T) {
	c, nodes, _ := startCluster(t, 3, Options{
		Seed:         7,
		MaxBatch:     8,
		BatchTimeout: 2 * time.Millisecond,
		// A long cooldown so the killed node stays sidelined for the
		// whole test once discovered.
		ProbeCooldown: time.Minute,
	})
	qs := queries(96, 11)

	// Find a node that owns live traffic, then kill it.
	victim := c.RouteFor(qs[0])[0]
	var victimNode *testNode
	for _, n := range nodes {
		if n.base == victim {
			victimNode = n
		}
	}
	if err := victimNode.stop(); err != nil {
		t.Fatal(err)
	}

	// Fire all queries concurrently: those owned by the victim gather
	// into batches whose flush fails, fans out, and retries elsewhere.
	var wg sync.WaitGroup
	var failures, served atomic.Int64
	for _, q := range qs {
		wg.Add(1)
		go func(q vec.Vector) {
			defer wg.Done()
			if _, _, err := c.Retrieve(q); err != nil {
				t.Errorf("query failed despite replicas: %v", err)
				failures.Add(1)
				return
			}
			served.Add(1)
		}(q)
	}
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d queries failed; replica retry should absorb a dead node", failures.Load())
	}
	if served.Load() != int64(len(qs)) {
		t.Fatalf("served %d of %d", served.Load(), len(qs))
	}
	rs := c.RouterStats()
	if rs.Retried == 0 {
		t.Error("some queries must have needed the backup replica")
	}
	if rs.Failed != 0 {
		t.Errorf("router failed count = %d, want 0", rs.Failed)
	}

	// The victim is sidelined: later queries it owns skip it without
	// paying a connection attempt, and Status reports it unhealthy.
	for _, ns := range c.Status() {
		if ns.Node == victim {
			if ns.Healthy {
				t.Error("killed node should be marked unhealthy")
			}
			if ns.Reachable {
				t.Error("killed node should be unreachable")
			}
		}
	}
}

// TestClusterNodeRecovery: a sidelined node rejoins service once its
// cooldown expires and a health probe succeeds.
func TestClusterNodeRecovery(t *testing.T) {
	c, nodes, db := startCluster(t, 2, Options{
		Seed:          7,
		ProbeCooldown: 10 * time.Millisecond,
	})
	q := queries(1, 12)[0]
	victim := c.RouteFor(q)[0]
	var victimNode *testNode
	for _, n := range nodes {
		if n.base == victim {
			victimNode = n
			_ = n.stop()
		}
	}

	// Query: served by the survivor via retry, victim marked down.
	if _, _, err := c.Retrieve(q); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ns := range c.Status() {
		if ns.Node == victim && !ns.Healthy {
			found = true
		}
	}
	if !found {
		t.Fatal("victim should be sidelined after the kill")
	}

	// Bring a middleware back on the victim's address. The listener is
	// closed, so the port is free to rebind.
	startNodeOn(t, db, victimNode.base[len("http://"):])

	// After the cooldown, routing re-probes /healthz and restores the
	// node.
	deadline := time.Now().Add(2 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if _, _, err := c.Retrieve(q); err != nil {
			t.Fatal(err)
		}
		for _, ns := range c.Status() {
			if ns.Node == victim && ns.Healthy {
				recovered = true
			}
		}
		if recovered {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("victim never recovered despite a live /healthz")
	}
}

// TestClusterSubmitterStress: many goroutines hammering every surface of
// the per-node submitters at once — routed retrievals, stats snapshots,
// cache admin — to let -race shake out interleavings in the gather/flush
// machinery.
func TestClusterSubmitterStress(t *testing.T) {
	c, _, _ := startCluster(t, 2, Options{
		Seed:         7,
		MaxBatch:     4,
		BatchTimeout: 500 * time.Microsecond,
	})
	qs := queries(16, 14)
	const goroutines = 32
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := qs[(g+i)%len(qs)]
				if _, _, err := c.Retrieve(q); err != nil {
					failures.Add(1)
				}
				if i%7 == 0 {
					_ = c.RouterStats()
				}
				if i%13 == 0 {
					_ = c.Status()
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Errorf("%d retrievals failed under stress", failures.Load())
	}
	rs := c.RouterStats()
	if want := int64(goroutines * 20); rs.Served != want {
		t.Errorf("served %d, want %d", rs.Served, want)
	}
}

// TestClusterRebalanceUnderLoad: membership churn (join/leave) while
// queries are in flight neither fails queries nor races (-race).
func TestClusterRebalanceUnderLoad(t *testing.T) {
	c, _, db := startCluster(t, 3, Options{
		Seed:         7,
		MaxBatch:     4,
		BatchTimeout: time.Millisecond,
	})
	extra := startNode(t, db)
	qs := queries(48, 13)

	var wg sync.WaitGroup
	stopChurn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			if err := c.AddNode(extra.base); err != nil {
				t.Errorf("AddNode: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
			if err := c.RemoveNode(extra.base); err != nil {
				t.Errorf("RemoveNode: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var failures atomic.Int64
	for round := 0; round < 10; round++ {
		var qwg sync.WaitGroup
		for _, q := range qs {
			qwg.Add(1)
			go func(q vec.Vector) {
				defer qwg.Done()
				if _, ok := c.Get(q); !ok {
					failures.Add(1)
				}
			}(q)
		}
		qwg.Wait()
	}
	close(stopChurn)
	wg.Wait()

	if failures.Load() != 0 {
		t.Errorf("%d Gets missed during rebalance; churn must not drop queries", failures.Load())
	}
}
