package cluster

import (
	"errors"
	"testing"
	"time"

	"proximity/internal/core"
	"proximity/internal/server"
	"proximity/internal/shard"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

const testDim = 16

// testNode is one loopback middleware instance.
type testNode struct {
	base string
	stop func() error
}

// newCorpus builds a deterministic random corpus index shared by every
// node of a test cluster.
func newCorpus(t *testing.T, n int, seed uint64) *vectordb.FlatIndex {
	t.Helper()
	rng := vec.NewRand(seed)
	vecs := make([]vec.Vector, n)
	for i := range vecs {
		vecs[i] = vec.RandomGaussian(rng, testDim)
	}
	db, err := vectordb.NewFlatFromVectors(vecs, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// startNode spins one shard node — its own FLAT cache over the shared
// database — on an ephemeral loopback port.
func startNode(t *testing.T, db vectordb.DB) *testNode {
	return startNodeOn(t, db, "127.0.0.1:0")
}

// startNodeOn is startNode bound to an explicit address (restart tests
// rebind a killed node's port).
func startNodeOn(t *testing.T, db vectordb.DB, addr string) *testNode {
	t.Helper()
	cache, err := core.NewFlat(testDim, core.Options{Capacity: 256, Tolerance: 0.25, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Retriever: retr})
	if err != nil {
		t.Fatal(err)
	}
	bound, stop, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{base: "http://" + bound, stop: stop}
	t.Cleanup(func() { _ = n.stop() })
	return n
}

// startCluster spins n nodes over one shared corpus and a client routing
// across them.
func startCluster(t *testing.T, n int, opts Options) (*Client, []*testNode, *vectordb.FlatIndex) {
	t.Helper()
	db := newCorpus(t, 64, 1)
	nodes := make([]*testNode, n)
	bases := make([]string, n)
	for i := range nodes {
		nodes[i] = startNode(t, db)
		bases[i] = nodes[i].base
	}
	c, err := New(testDim, bases, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, nodes, db
}

// queries returns m deterministic query embeddings.
func queries(m int, seed uint64) []vec.Vector {
	rng := vec.NewRand(seed)
	out := make([]vec.Vector, m)
	for i := range out {
		out[i] = vec.RandomGaussian(rng, testDim)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []string{"http://x"}, Options{}); err == nil {
		t.Error("zero dim should error")
	}
	if _, err := New(testDim, nil, Options{}); err == nil {
		t.Error("empty node list should error")
	}
	if _, err := New(testDim, []string{"http://x"}, Options{Partition: shard.Partition(99)}); err == nil {
		t.Error("unknown partition should error")
	}
}

// TestClusterRetrieveMatchesDirect: a routed retrieval returns exactly
// what the owning node would return directly, and repeats of the same
// query hit the owner's cache.
func TestClusterRetrieveMatchesDirect(t *testing.T) {
	c, _, db := startCluster(t, 3, Options{Seed: 7})
	qs := queries(32, 2)

	for i, q := range qs {
		docs, hit, err := c.Retrieve(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if hit {
			t.Errorf("query %d: cold cluster should miss node caches", i)
		}
		want, err := db.Search(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		for j, s := range want {
			if docs[j] != s.ID {
				t.Fatalf("query %d: docs %v, want IDs %v", i, docs, vec.IDs(want))
			}
		}
	}
	// Second pass: every query repeats, so its owner answers from cache.
	for i, q := range qs {
		_, hit, err := c.Retrieve(q)
		if err != nil {
			t.Fatalf("repeat query %d: %v", i, err)
		}
		if !hit {
			t.Errorf("repeat query %d: want a remote cache hit", i)
		}
	}
	rs := c.RouterStats()
	if rs.Served != int64(2*len(qs)) || rs.Failed != 0 {
		t.Errorf("router stats = %+v, want %d served, 0 failed", rs, 2*len(qs))
	}
	if rs.RemoteHits != int64(len(qs)) {
		t.Errorf("remote hits = %d, want %d", rs.RemoteHits, len(qs))
	}
}

// TestClusterRoutingIsStable: the same query always routes to the same
// node, and traffic spreads across the membership.
func TestClusterRoutingIsStable(t *testing.T) {
	c, _, _ := startCluster(t, 4, Options{Seed: 7})
	qs := queries(64, 3)
	owners := map[string]int{}
	for _, q := range qs {
		route := c.RouteFor(q)
		if len(route) != 4 {
			t.Fatalf("route %v should cover all 4 nodes", route)
		}
		for i := 0; i < 3; i++ {
			if got := c.RouteFor(q); got[0] != route[0] {
				t.Fatalf("routing unstable: %v then %v", route[0], got[0])
			}
		}
		owners[route[0]]++
	}
	if len(owners) < 2 {
		t.Errorf("64 queries all routed to %d node(s); expected spread", len(owners))
	}
}

// TestClusterGetFallsBackOnTotalFailure: the core.Cache surface reports
// a miss (never an error) when every replica is down, so a wrapping
// retriever can serve from its local database.
func TestClusterGetFallsBackOnTotalFailure(t *testing.T) {
	c, nodes, db := startCluster(t, 2, Options{Seed: 7})
	q := queries(1, 4)[0]

	if _, ok := c.Get(q); !ok {
		t.Fatal("healthy cluster should answer Get")
	}
	for _, n := range nodes {
		_ = n.stop()
	}
	if _, ok := c.Get(q); ok {
		t.Fatal("Get should report a miss with every node down")
	}
	if rs := c.RouterStats(); rs.Failed == 0 {
		t.Error("total failure should count as Failed")
	}

	// The drop-in promise: a retriever over the cluster cache degrades
	// to its local database instead of erroring.
	retr, err := core.NewCachedRetriever(c, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := retr.Retrieve(q)
	if err != nil {
		t.Fatalf("degraded retrieve: %v", err)
	}
	if res.Hit {
		t.Error("degraded retrieve should be a miss")
	}
	if len(res.Docs) != 2 {
		t.Errorf("degraded retrieve returned %d docs, want 2", len(res.Docs))
	}
}

// TestClusterBadInputNotRetried: a 4xx reply must surface immediately
// instead of burning retries — every replica would reject the same
// input. The wrong-dimension case is caught client-side; server-side
// 4xx handling is exercised through the status classification tests in
// internal/server.
func TestClusterBadInputNotRetried(t *testing.T) {
	c, _, _ := startCluster(t, 2, Options{Seed: 7})
	if _, _, err := c.Retrieve(vec.Vector{1, 2, 3}); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Fatalf("wrong-dim query: got %v, want dimension mismatch", err)
	}
	if _, _, err := c.Retrieve(nil); err == nil {
		t.Fatal("nil query should error")
	}
	if rs := c.RouterStats(); rs.Served != 0 || rs.Failed != 0 {
		t.Errorf("rejected input should not touch routing counters: %+v", rs)
	}
}

// TestClusterSearchSurface: the core.Searcher view returns ranked,
// k-truncated, positionally-scored results.
func TestClusterSearchSurface(t *testing.T) {
	c, _, db := startCluster(t, 2, Options{Seed: 7})
	q := queries(1, 5)[0]

	if _, err := c.Search(q, 0); !errors.Is(err, vectordb.ErrBadK) {
		t.Fatalf("k=0: got %v, want ErrBadK", err)
	}
	got, err := c.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Search(k=1) returned %d results", len(got))
	}
	want, err := db.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != want[0].ID {
		t.Errorf("Search ID = %d, want %d", got[0].ID, want[0].ID)
	}
}

// TestClusterCacheAdmin: Len/Capacity/Stats/Clear aggregate and fan out
// across nodes.
func TestClusterCacheAdmin(t *testing.T) {
	c, _, _ := startCluster(t, 3, Options{Seed: 7})
	qs := queries(24, 6)
	for _, q := range qs {
		if _, ok := c.Get(q); !ok {
			t.Fatal("healthy cluster should answer")
		}
	}
	if got := c.Len(); got != len(qs) {
		t.Errorf("Len = %d, want %d (one entry per unique query)", got, len(qs))
	}
	if c.Capacity() != 3*256 {
		t.Errorf("Capacity = %d, want %d", c.Capacity(), 3*256)
	}
	st := c.Stats()
	if st.Misses != int64(len(qs)) {
		t.Errorf("aggregated misses = %d, want %d", st.Misses, len(qs))
	}
	c.Clear()
	if got := c.Len(); got != 0 {
		t.Errorf("Len after Clear = %d, want 0", got)
	}

	status := c.Status()
	if len(status) != 3 {
		t.Fatalf("Status covers %d nodes, want 3", len(status))
	}
	var flushes int64
	for _, ns := range status {
		if !ns.Reachable || !ns.Healthy {
			t.Errorf("node %s should be healthy and reachable: %+v", ns.Node, ns)
		}
		flushes += ns.Submit.Flushes
	}
	if flushes == 0 {
		t.Error("submitter counters should show batch flushes")
	}
}

// TestClusterSubmitterCoalesces: concurrent queries bound for the same
// node gather into shared /v1/retrieve/batch calls — strictly fewer
// flushes than queries.
func TestClusterSubmitterCoalesces(t *testing.T) {
	c, _, _ := startCluster(t, 1, Options{
		Seed:         7,
		MaxBatch:     8,
		BatchTimeout: 5 * time.Millisecond,
	})
	qs := queries(64, 8)
	errs := make(chan error, len(qs))
	for _, q := range qs {
		go func(q vec.Vector) {
			_, _, err := c.Retrieve(q)
			errs <- err
		}(q)
	}
	for range qs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := c.Status()[0]
	if st.Submit.Enqueued != int64(len(qs)) {
		t.Fatalf("submitter enqueued %d, want %d", st.Submit.Enqueued, len(qs))
	}
	if st.Submit.Flushes >= int64(len(qs)) {
		t.Errorf("submitter made %d flushes for %d queries; expected coalescing", st.Submit.Flushes, len(qs))
	}
	if mean := st.Submit.MeanBatch(); mean <= 1 {
		t.Errorf("mean batch %.2f, want > 1", mean)
	}
}

// TestClusterRemoveNode: a leaving node's keys move to survivors and its
// submitter drains; queries keep succeeding throughout.
func TestClusterRemoveNode(t *testing.T) {
	c, nodes, _ := startCluster(t, 3, Options{Seed: 7})
	qs := queries(30, 9)
	for _, q := range qs {
		if _, _, err := c.Retrieve(q); err != nil {
			t.Fatal(err)
		}
	}
	removed := nodes[0].base
	if err := c.RemoveNode(removed); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 2 {
		t.Fatalf("membership after remove = %v", got)
	}
	for _, q := range qs {
		route := c.RouteFor(q)
		for _, n := range route {
			if n == removed {
				t.Fatalf("removed node still in route %v", route)
			}
		}
		if _, _, err := c.Retrieve(q); err != nil {
			t.Fatalf("post-remove retrieve: %v", err)
		}
	}
	if err := c.RemoveNode(removed); err == nil {
		t.Error("removing a removed node should error")
	}
	if err := c.AddNode(removed); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 3 {
		t.Fatalf("membership after re-add = %v", got)
	}
}

func TestClusterClosed(t *testing.T) {
	c, _, _ := startCluster(t, 1, Options{Seed: 7})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retrieve(queries(1, 10)[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Retrieve after Close: got %v, want ErrClosed", err)
	}
	if err := c.AddNode("http://x"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddNode after Close: got %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
