package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultVNodes is the virtual-node count per unit of weight when
// Options.VNodes is zero. Each node owns Weight·VNodes arcs of the hash
// circle, smoothing the load split: with ~100 vnodes the expected
// per-node share deviates from its weight share by only a few percent,
// and a leaving node's arcs scatter across all survivors instead of
// dumping onto one successor.
const DefaultVNodes = 100

// Weight bounds. Weights outside this range stop approximating "share of
// the keyspace" — a node at 1/16th weight holds so few arcs that its
// share is mostly variance — so the ring rejects them rather than let a
// runaway controller starve or flood a node.
const (
	MinWeight = 1.0 / 16
	MaxWeight = 16.0
)

// Typed membership errors. WithoutNode returns ErrLastNode (never an
// empty ring, whose Primary/Lookup would panic); constructors return
// ErrEmptyRing for an empty node list.
var (
	ErrEmptyRing = errors.New("cluster: ring requires at least one node")
	ErrLastNode  = errors.New("cluster: cannot remove the last node from the ring")
)

// Ring is an immutable consistent-hash ring over named, weighted nodes.
// Keys are the 32-bit routing fingerprints the in-process partitioner
// already uses (shard.FingerprintOf or an LSH signature); each key owns
// the arc ending at the next virtual-node point clockwise. A node's
// virtual-node count scales with its weight, so re-weighting shifts arcs
// between nodes without changing membership — the network-tier
// rebalancing lever. Membership and weight changes build a new Ring
// (WithNode/WithoutNode/WithWeights), so lookups never lock.
type Ring struct {
	vnodes  int
	nodes   []string  // sorted distinct node IDs
	weights []float64 // parallel to nodes
	points  []ringPoint
}

// ringPoint is one virtual node: a position on the circle owned by a real
// node.
type ringPoint struct {
	pos  uint64
	node int // index into nodes
}

// NewRing builds a unit-weight ring over the given node IDs with vnodes
// virtual nodes each (0 = DefaultVNodes). Node IDs must be non-empty and
// distinct; order does not matter — the same membership always builds
// the same ring.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	return NewWeightedRing(nodes, nil, vnodes)
}

// NewWeightedRing is NewRing with per-node weights: a node's virtual-node
// count is round(weight · vnodes), at least 1, so a weight-2 node owns
// roughly twice the keyspace of a weight-1 node. Nodes absent from the
// weights map get weight 1; weights must lie in [MinWeight, MaxWeight]
// and name known nodes. A nil map is the unit-weight ring.
func NewWeightedRing(nodes []string, weights map[string]float64, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, ErrEmptyRing
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("cluster: vnode count must be non-negative, got %d", vnodes)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		nodes:   sorted,
		weights: make([]float64, len(sorted)),
	}
	for i := range r.weights {
		r.weights[i] = 1
	}
	for node, w := range weights {
		i := sort.SearchStrings(r.nodes, node)
		if i >= len(r.nodes) || r.nodes[i] != node {
			return nil, fmt.Errorf("cluster: weight for unknown node %q", node)
		}
		if math.IsNaN(w) || w < MinWeight || w > MaxWeight {
			return nil, fmt.Errorf("cluster: weight %v for node %q outside [%v, %v]",
				w, node, MinWeight, MaxWeight)
		}
		r.weights[i] = w
	}
	for ni, n := range r.nodes {
		for v := 0; v < vnodeCount(r.weights[ni], vnodes); v++ {
			r.points = append(r.points, ringPoint{pos: vnodePos(n, v), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		// Identical positions (astronomically rare) tie-break by node so
		// the ring stays a pure function of its membership.
		return a.node < b.node
	})
	return r, nil
}

// vnodeCount converts a weight into a virtual-node count: proportional,
// rounded, never zero (every member must own at least one arc or Lookup
// could not reach it).
func vnodeCount(weight float64, vnodes int) int {
	n := int(weight*float64(vnodes) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// weightMap snapshots the ring's weights as the map form the With*
// builders consume.
func (r *Ring) weightMap() map[string]float64 {
	m := make(map[string]float64, len(r.nodes))
	for i, n := range r.nodes {
		m[n] = r.weights[i]
	}
	return m
}

// WithNode returns a new ring with the node added at weight 1; existing
// weights are preserved.
func (r *Ring) WithNode(node string) (*Ring, error) {
	return NewWeightedRing(append(append([]string(nil), r.nodes...), node), r.weightMap(), r.vnodes)
}

// WithoutNode returns a new ring with the node removed, preserving the
// survivors' weights. Removing the last node returns ErrLastNode — never
// an empty ring.
func (r *Ring) WithoutNode(node string) (*Ring, error) {
	rest := make([]string, 0, len(r.nodes))
	weights := r.weightMap()
	delete(weights, node)
	for _, n := range r.nodes {
		if n != node {
			rest = append(rest, n)
		}
	}
	if len(rest) == len(r.nodes) {
		return nil, fmt.Errorf("cluster: node %q not in ring", node)
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("cluster: removing %q: %w", node, ErrLastNode)
	}
	return NewWeightedRing(rest, weights, r.vnodes)
}

// WithWeights returns a re-weighted ring over the same membership. Nodes
// absent from the map keep their current weight; see NewWeightedRing for
// validation.
func (r *Ring) WithWeights(weights map[string]float64) (*Ring, error) {
	merged := r.weightMap()
	for n, w := range weights {
		merged[n] = w
	}
	return NewWeightedRing(r.nodes, merged, r.vnodes)
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Weights returns the per-node weights.
func (r *Ring) Weights() map[string]float64 { return r.weightMap() }

// Weight returns one node's weight (ok=false for a non-member).
func (r *Ring) Weight(node string) (float64, bool) {
	i := sort.SearchStrings(r.nodes, node)
	if i >= len(r.nodes) || r.nodes[i] != node {
		return 0, false
	}
	return r.weights[i], true
}

// VNodesFor returns the virtual-node count a node owns (0 for a
// non-member) — weight made concrete, for diagnostics and the
// balancer's moved-arc accounting.
func (r *Ring) VNodesFor(node string) int {
	w, ok := r.Weight(node)
	if !ok {
		return 0
	}
	return vnodeCount(w, r.vnodes)
}

// Len returns the number of real nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the virtual-node count per unit of weight.
func (r *Ring) VNodes() int { return r.vnodes }

// Primary returns the node that owns the key: the owner of the first
// virtual node at or clockwise of the key's position.
func (r *Ring) Primary(key uint32) string {
	return r.nodes[r.points[r.start(key)].node]
}

// Lookup returns every node in replica order for the key: the primary
// first, then each distinct node encountered walking the ring clockwise.
// Successive entries are the retry targets when earlier ones fail — the
// walk visits all nodes, so a caller can degrade through the whole
// cluster.
func (r *Ring) Lookup(key uint32) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for i, start := 0, r.start(key); i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// start returns the index of the first virtual node at or clockwise of
// the key's ring position.
func (r *Ring) start(key uint32) int {
	pos := keyPos(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the last point back to the ring start
	}
	return i
}

// vnodePos places virtual node v of a node on the circle. FNV alone has
// weak avalanche on short, similar inputs ("n1#0", "n1#1", …), which
// visibly skews arc lengths; the splitmix64 finalizer restores a uniform
// spread.
func vnodePos(node string, v int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{'#', byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return mix64(h.Sum64())
}

// keyPos spreads a 32-bit routing fingerprint over the 64-bit circle.
// Fingerprints are FNV-mixed already but LSH signatures occupy only the
// low SignatureBits, so the key is re-mixed either way.
func keyPos(key uint32) uint64 {
	return mix64(uint64(key))
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on
// 64-bit words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
