package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per real node when
// Options.VNodes is zero. Each node owns VNodes arcs of the hash circle,
// smoothing the load split: with ~100 vnodes the expected per-node share
// deviates from 1/N by only a few percent, and a leaving node's arcs
// scatter across all survivors instead of dumping onto one successor.
const DefaultVNodes = 100

// Ring is an immutable consistent-hash ring over named nodes. Keys are
// the 32-bit routing fingerprints the in-process partitioner already uses
// (shard.FingerprintOf or an LSH signature); each key owns the arc ending
// at the next virtual-node point clockwise. Membership changes build a
// new Ring (see WithNode/WithoutNode), so lookups never lock.
type Ring struct {
	vnodes int
	nodes  []string // sorted distinct node IDs
	points []ringPoint
}

// ringPoint is one virtual node: a position on the circle owned by a real
// node.
type ringPoint struct {
	pos  uint64
	node int // index into nodes
}

// NewRing builds a ring over the given node IDs with vnodes virtual
// nodes each (0 = DefaultVNodes). Node IDs must be non-empty and
// distinct; order does not matter — the same membership always builds
// the same ring.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring requires at least one node")
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("cluster: vnode count must be non-negative, got %d", vnodes)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for ni, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: vnodePos(n, v), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		// Identical positions (astronomically rare) tie-break by node so
		// the ring stays a pure function of its membership.
		return a.node < b.node
	})
	return r, nil
}

// WithNode returns a new ring with the node added.
func (r *Ring) WithNode(node string) (*Ring, error) {
	return NewRing(append(append([]string(nil), r.nodes...), node), r.vnodes)
}

// WithoutNode returns a new ring with the node removed.
func (r *Ring) WithoutNode(node string) (*Ring, error) {
	rest := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			rest = append(rest, n)
		}
	}
	if len(rest) == len(r.nodes) {
		return nil, fmt.Errorf("cluster: node %q not in ring", node)
	}
	return NewRing(rest, r.vnodes)
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the number of real nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the virtual-node count per real node.
func (r *Ring) VNodes() int { return r.vnodes }

// Primary returns the node that owns the key: the owner of the first
// virtual node at or clockwise of the key's position.
func (r *Ring) Primary(key uint32) string {
	return r.nodes[r.points[r.start(key)].node]
}

// Lookup returns every node in replica order for the key: the primary
// first, then each distinct node encountered walking the ring clockwise.
// Successive entries are the retry targets when earlier ones fail — the
// walk visits all nodes, so a caller can degrade through the whole
// cluster.
func (r *Ring) Lookup(key uint32) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for i, start := 0, r.start(key); i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// start returns the index of the first virtual node at or clockwise of
// the key's ring position.
func (r *Ring) start(key uint32) int {
	pos := keyPos(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the last point back to the ring start
	}
	return i
}

// vnodePos places virtual node v of a node on the circle. FNV alone has
// weak avalanche on short, similar inputs ("n1#0", "n1#1", …), which
// visibly skews arc lengths; the splitmix64 finalizer restores a uniform
// spread.
func vnodePos(node string, v int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{'#', byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return mix64(h.Sum64())
}

// keyPos spreads a 32-bit routing fingerprint over the 64-bit circle.
// Fingerprints are FNV-mixed already but LSH signatures occupy only the
// low SignatureBits, so the key is re-mixed either way.
func keyPos(key uint32) uint64 {
	return mix64(uint64(key))
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on
// 64-bit words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
