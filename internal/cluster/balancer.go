package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"proximity/internal/rebalance"
)

// Balancer defaults.
const (
	// DefaultGain tempers the proportional correction: a node's weight
	// is multiplied by (mean load / its load)^Gain. 0.5 halves the
	// correction per step, trading convergence speed for stability —
	// the load observed after a re-weight shifts, so a full-gain step
	// tends to overshoot and oscillate.
	DefaultGain = 0.5
)

// BalancerOptions tunes a Balancer.
type BalancerOptions struct {
	// Gain is the proportional-correction exponent in (0, 1]. Defaults
	// to DefaultGain.
	Gain float64
}

// Balancer adapts a cluster Client to the rebalance controller: Sample
// derives a load-imbalance signal from the per-node lookup counters the
// stats snapshot already aggregates, and Rebalance shifts consistent-hash
// arcs off overloaded nodes by re-weighting their virtual-node counts.
// Loads are measured as deltas since the previous rebalance, so the
// signal tracks the current traffic mix rather than all history. Safe
// for concurrent use; the controller serializes actuations itself.
type Balancer struct {
	c    *Client
	opts BalancerOptions

	mu sync.Mutex
	// baseline holds each node's cumulative lookup count at the last
	// rebalance (or construction), keyed by node base URL.
	baseline map[string]int64
}

var (
	_ rebalance.Source   = (*Balancer)(nil)
	_ rebalance.Actuator = (*Balancer)(nil)
)

// NewBalancer wires a ring re-weighting actuator over the client.
func NewBalancer(c *Client, opts BalancerOptions) (*Balancer, error) {
	if c == nil {
		return nil, fmt.Errorf("cluster: balancer requires a client")
	}
	if opts.Gain == 0 {
		opts.Gain = DefaultGain
	}
	if opts.Gain < 0 || opts.Gain > 1 {
		return nil, fmt.Errorf("cluster: balancer gain must be in (0, 1], got %v", opts.Gain)
	}
	return &Balancer{c: c, opts: opts, baseline: make(map[string]int64)}, nil
}

// nodeLoad is one node's slice of a load snapshot.
type nodeLoad struct {
	node      string
	lookups   int64 // cumulative hits+misses from the node's own stats
	delta     int64 // lookups since the baseline
	entries   int
	reachable bool
}

// snapshot fans one Status round out and derives per-node deltas. Two
// no-signal cases are normalized here rather than poisoning the math
// downstream: an unreachable node contributes zero load (its counters
// simply were not read), and a reachable node whose cumulative counters
// dropped BELOW the baseline has restarted — its baseline re-anchors to
// zero so the load since restart is the signal, not a huge negative
// delta that Rebalance would convert into a near-maximal weight boost
// for a cold-cache node.
func (b *Balancer) snapshot() []nodeLoad {
	st := b.c.Status()
	b.mu.Lock()
	defer b.mu.Unlock()
	loads := make([]nodeLoad, len(st))
	for i, ns := range st {
		cum := ns.Remote.Hits + ns.Remote.Misses
		base := b.baseline[ns.Node]
		delta := cum - base
		switch {
		case !ns.Reachable:
			delta = 0
		case cum < base:
			b.baseline[ns.Node] = 0
			delta = cum
		}
		loads[i] = nodeLoad{
			node:      ns.Node,
			lookups:   cum,
			delta:     delta,
			entries:   ns.Remote.Entries,
			reachable: ns.Reachable,
		}
	}
	return loads
}

// imbalanceOf mirrors the shard tier's definition: max node load over
// mean node load, pinned to 1.0 when there is no load signal or a
// single node. Deltas can go negative when a node restarts (its
// cumulative counters reset below the baseline); a non-positive total
// carries no signal, so it also pins to 1.0 rather than produce a
// nonsensical negative imbalance.
func imbalanceOf(loads []nodeLoad) float64 {
	var total, maxDelta int64
	for _, l := range loads {
		total += l.delta
		if l.delta > maxDelta {
			maxDelta = l.delta
		}
	}
	if total <= 0 || len(loads) <= 1 {
		return 1
	}
	return float64(maxDelta) / (float64(total) / float64(len(loads)))
}

// Sample implements rebalance.Source: the per-node lookup imbalance
// since the last rebalance, plus the cluster-wide entry count.
func (b *Balancer) Sample() rebalance.Sample {
	loads := b.snapshot()
	entries := 0
	for _, l := range loads {
		entries += l.entries
	}
	return rebalance.Sample{Imbalance: imbalanceOf(loads), Entries: entries}
}

// Rebalance implements rebalance.Actuator: multiply each node's ring
// weight by (mean load / its load)^Gain — overloaded nodes shed arcs,
// underloaded nodes absorb them — clamped to the ring's weight bounds.
// It declines (Acted=false) when any node is unreachable (re-weighting
// on partial counters would punish the node that failed to report) or
// when the observed load carries no signal. Unlike the shard tier,
// Outcome.After cannot be measured at action time — the new arc layout
// only shows in future traffic — so it is a PREDICTION (each node's
// observed load scaled by its surviving keyspace share) and the Detail
// string labels it as such.
func (b *Balancer) Rebalance(rebalance.Sample) (rebalance.Outcome, error) {
	loads := b.snapshot()
	// An unreachable node contributes a garbage delta; score the signal
	// over the reachable subset so even a declined outcome reports an
	// in-domain imbalance.
	reachable := make([]nodeLoad, 0, len(loads))
	for _, l := range loads {
		if l.reachable {
			reachable = append(reachable, l)
		}
	}
	before := imbalanceOf(reachable)
	if len(reachable) < len(loads) {
		for _, l := range loads {
			if !l.reachable {
				return rebalance.Outcome{
					Before: before, After: before,
					Detail: fmt.Sprintf("declined: node %s unreachable, load snapshot incomplete", l.node),
				}, nil
			}
		}
	}
	var total int64
	for _, l := range loads {
		total += l.delta
	}
	if total <= 0 || len(loads) <= 1 {
		return rebalance.Outcome{
			Before: before, After: before,
			Detail: "declined: no load observed since the last rebalance",
		}, nil
	}

	mean := float64(total) / float64(len(loads))
	ring := b.c.Ring()
	olds := make([]float64, len(loads))
	raw := make([]float64, len(loads))
	logSum := 0.0
	for i, l := range loads {
		old, ok := ring.Weight(l.node)
		if !ok {
			old = 1
		}
		olds[i] = old
		// A zero-load node gets the full boost the clamp allows; floor
		// the ratio so the exponent never sees a division by zero.
		ratio := mean / math.Max(float64(l.delta), 1)
		raw[i] = old * math.Pow(ratio, b.opts.Gain)
		logSum += math.Log(raw[i])
	}
	// Renormalize by the geometric mean: only weight RATIOS route keys,
	// and by AM≥GM the un-normalized update strictly inflates total
	// log-weight on every unequal load, ratcheting the whole vector
	// toward the MaxWeight clamp (where correction headroom collapses
	// and a later joiner at weight 1 would own a sliver of the
	// keyspace). Centering at geometric mean 1 keeps the identical
	// relative effect with full headroom on both sides.
	gm := math.Exp(logSum / float64(len(loads)))
	weights := make(map[string]float64, len(loads))
	var detail []string
	predMax, predTotal := 0.0, 0.0
	for i, l := range loads {
		w := raw[i] / gm
		w = math.Min(math.Max(w, MinWeight), MaxWeight)
		weights[l.node] = w
		// Predicted post-rebalance load: the node keeps its observed
		// load scaled by how much of its keyspace share survives.
		pl := float64(l.delta) * w / math.Max(olds[i], MinWeight)
		predTotal += pl
		if pl > predMax {
			predMax = pl
		}
		detail = append(detail, fmt.Sprintf("%s %.2f->%.2f", l.node, olds[i], w))
	}
	if err := b.c.Rebalance(weights); err != nil {
		return rebalance.Outcome{}, err
	}
	after := 1.0
	if predTotal > 0 && len(loads) > 1 {
		after = predMax / (predTotal / float64(len(loads)))
	}
	newRing := b.c.Ring()
	moved := 0
	for _, l := range loads {
		moved += absInt(newRing.VNodesFor(l.node) - ring.VNodesFor(l.node))
	}

	// Future deltas measure the new arrangement, not old history.
	b.mu.Lock()
	for _, l := range loads {
		b.baseline[l.node] = l.lookups
	}
	b.mu.Unlock()

	sort.Strings(detail)
	return rebalance.Outcome{
		Acted:  true,
		Before: before,
		After:  after,
		Moved:  moved,
		Detail: "reweighted (after is predicted) " + strings.Join(detail, ", "),
	}, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
