package cluster

import (
	"sync"
	"time"

	"proximity/internal/batch"
	"proximity/internal/server"
	"proximity/internal/vec"
)

// adminTimeout bounds the health probes and stats snapshots a router
// issues: admin traffic to a hung node must fail fast, not inherit the
// data path's generous deadline.
const adminTimeout = 2 * time.Second

// node is one shard node as seen from a Client: the HTTP middleware
// behind a batch submitter (so concurrent queries bound for the same node
// coalesce into one /v1/retrieve/batch call) plus the health state the
// replica-retry path maintains.
type node struct {
	base   string
	client *server.Client // data path
	admin  *server.Client // probes and stats snapshots, short timeout

	sub *batch.Collector[vec.Vector, server.BatchItem]

	mu        sync.Mutex
	healthy   bool
	probing   bool
	lastProbe time.Time
}

// newNode wires the submitter for one shard node.
func newNode(base string, opts Options) (*node, error) {
	n := &node{
		base:    base,
		client:  server.NewClient(base),
		admin:   server.NewClientWithTimeout(base, adminTimeout),
		healthy: true,
	}
	// The node rejects oversized batches outright, so never gather more
	// than it will accept.
	maxBatch := opts.MaxBatch
	if maxBatch > server.MaxBatchElements {
		maxBatch = server.MaxBatchElements
	}
	sub, err := batch.NewCollector(n.flush, batch.QueueOptions{
		MaxBatch: maxBatch,
		Timeout:  opts.BatchTimeout,
		Clock:    opts.Clock,
	})
	if err != nil {
		return nil, err
	}
	n.sub = sub
	return n, nil
}

// do submits one query through the node's batch submitter and blocks for
// its share of the flushed batch.
func (n *node) do(q vec.Vector) (server.BatchItem, error) {
	return n.sub.Do(q)
}

// flush serves one gathered batch with a single batched-retrieve call; a
// node-level failure fans out to every waiter of the batch (each then
// retries on its own next replica).
func (n *node) flush(reqs []vec.Vector) []batch.Outcome[server.BatchItem] {
	embs := make([][]float32, len(reqs))
	for i, q := range reqs {
		embs[i] = q
	}
	resp, err := n.client.RetrieveBatch(embs)
	if err != nil {
		return batch.FanError[server.BatchItem](len(reqs), err)
	}
	outs := make([]batch.Outcome[server.BatchItem], len(reqs))
	for i, item := range resp.Results {
		outs[i] = batch.Outcome[server.BatchItem]{Res: item}
	}
	return outs
}

// available reports whether the node should receive traffic. A healthy
// node always qualifies. A node marked down stays sidelined until
// cooldown has passed since the last verdict, then the first caller to
// notice kicks off ONE background /healthz probe (short timeout, off the
// request path — a routing decision must never wait on a sick node) and
// the node rejoins service once the probe lands.
func (n *node) available(cooldown time.Duration) bool {
	n.mu.Lock()
	if n.healthy {
		n.mu.Unlock()
		return true
	}
	if n.probing || time.Since(n.lastProbe) < cooldown {
		n.mu.Unlock()
		return false
	}
	n.probing = true
	n.mu.Unlock()

	go func() {
		ok := n.admin.Healthy()
		n.mu.Lock()
		n.probing = false
		n.lastProbe = time.Now()
		n.healthy = ok
		n.mu.Unlock()
	}()
	return false
}

// markDown sidelines the node after a retryable failure and starts the
// re-probe cooldown.
func (n *node) markDown() {
	n.mu.Lock()
	n.healthy = false
	n.lastProbe = time.Now()
	n.mu.Unlock()
}

// markUp restores the node after a successful request (a cheaper signal
// than a probe: real traffic just worked).
func (n *node) markUp() {
	n.mu.Lock()
	n.healthy = true
	n.mu.Unlock()
}

// isHealthy reports the current verdict without probing.
func (n *node) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}
