package cluster

import (
	"errors"
	"testing"
)

// TestWeightedArcShares: a node's share of the keyspace tracks its
// weight — the lever the balancer pulls.
func TestWeightedArcShares(t *testing.T) {
	ring, err := NewWeightedRing([]string{"a", "b"}, map[string]float64{"a": 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for key := uint32(0); key < 20000; key += 2 {
		counts[ring.Primary(key)]++
	}
	// Weight 4 vs 1 → expected 80/20 split; allow generous slack.
	if counts["a"] < 3*counts["b"] {
		t.Errorf("weight-4 node owns %d keys vs %d — share does not track weight", counts["a"], counts["b"])
	}
	if counts["b"] == 0 {
		t.Error("weight-1 node owns no keys; every member must keep at least one arc")
	}
	if got := ring.VNodesFor("a"); got != 4*DefaultVNodes {
		t.Errorf("VNodesFor(a) = %d, want %d", got, 4*DefaultVNodes)
	}
	if got := ring.VNodesFor("missing"); got != 0 {
		t.Errorf("VNodesFor(missing) = %d, want 0", got)
	}
}

// TestWithWeightsPreservesMembership: re-weighting never changes who is
// in the ring, merges over current weights, and validates bounds.
func TestWithWeights(t *testing.T) {
	ring, err := NewRing([]string{"a", "b", "c"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := ring.WithWeights(map[string]float64{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rw.Nodes()), 3; got != want {
		t.Fatalf("membership changed: %d nodes, want %d", got, want)
	}
	if w, _ := rw.Weight("a"); w != 2 {
		t.Errorf("Weight(a) = %v, want 2", w)
	}
	if w, _ := rw.Weight("b"); w != 1 {
		t.Errorf("Weight(b) = %v, want 1 (unnamed nodes keep their weight)", w)
	}
	// Weights survive membership changes.
	grown, err := rw.WithNode("d")
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := grown.Weight("a"); w != 2 {
		t.Errorf("WithNode dropped a's weight: %v", w)
	}
	shrunk, err := grown.WithoutNode("b")
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := shrunk.Weight("a"); w != 2 {
		t.Errorf("WithoutNode dropped a's weight: %v", w)
	}

	for _, bad := range []map[string]float64{
		{"nope": 1},             // unknown node
		{"a": 0},                // below MinWeight
		{"a": MaxWeight * 2},    // above MaxWeight
		{"a": MinWeight / 1e64}, // effectively zero
	} {
		if _, err := ring.WithWeights(bad); err == nil {
			t.Errorf("WithWeights(%v) should fail", bad)
		}
	}
}

// TestWithoutNodeLastNode is the regression test for the last-node edge
// case: removal must fail with the typed ErrLastNode, never hand back a
// ring whose Primary/Lookup would panic on zero points.
func TestWithoutNodeLastNode(t *testing.T) {
	ring, err := NewRing([]string{"only"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ring.WithoutNode("only")
	if !errors.Is(err, ErrLastNode) {
		t.Fatalf("WithoutNode(last) error = %v, want ErrLastNode", err)
	}
	if out != nil {
		t.Fatal("WithoutNode(last) must not return a ring")
	}
	// The original ring is untouched and still serves.
	if got := ring.Primary(12345); got != "only" {
		t.Errorf("Primary = %q after failed removal", got)
	}
	if _, err := NewRing(nil, 8); !errors.Is(err, ErrEmptyRing) {
		t.Errorf("NewRing(empty) error = %v, want ErrEmptyRing", err)
	}
}

// TestClientRebalance: a re-weighting swaps routing live and counts in
// the router stats.
func TestClientRebalance(t *testing.T) {
	c, err := New(8, []string{"http://a", "http://b"}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := c.Rebalance(map[string]float64{"http://a": 0.25}); err != nil {
		t.Fatal(err)
	}
	if w := c.Weights()["http://a"]; w != 0.25 {
		t.Errorf("weight after Rebalance = %v, want 0.25", w)
	}
	if got := c.RouterStats().Rebalances; got != 1 {
		t.Errorf("Rebalances = %d, want 1", got)
	}
	if err := c.Rebalance(map[string]float64{"http://nope": 1}); err == nil {
		t.Error("rebalancing an unknown node should fail")
	}
	if got := c.RouterStats().Rebalances; got != 1 {
		t.Errorf("failed rebalance counted: %d", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(map[string]float64{"http://a": 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Rebalance on closed client = %v, want ErrClosed", err)
	}
}
