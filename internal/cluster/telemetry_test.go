package cluster

import (
	"context"
	"io"
	"log/slog"
	"testing"

	"proximity/internal/telemetry"
)

// quietLogger drops routing logs so failure-injection tests don't spam
// the test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestClusterTracePropagation: one traced retrieval through a two-node
// cluster yields a single trace containing both the router's node_rpc
// span and the remote node's own stage timeline, every remote span
// labeled with the node that ran it.
func TestClusterTracePropagation(t *testing.T) {
	tel := telemetry.New(telemetry.Options{SampleEvery: 1, RingSize: 8})
	c, _, _ := startCluster(t, 2, Options{Seed: 3, Telemetry: tel, Logger: quietLogger()})
	q := queries(1, 9)[0]

	ctx, trace := tel.StartTrace(context.Background())
	if trace == nil {
		t.Fatal("1-in-1 sampling must return a live trace")
	}
	id := trace.ID()
	docs, _, err := c.RetrieveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no documents returned")
	}
	spans := trace.Spans()
	trace.Finish()

	var rpcNode string
	rpc, remote := 0, 0
	for _, sp := range spans {
		if sp.Stage == telemetry.StageNodeRPC {
			rpc++
			rpcNode = sp.Node
			if sp.Err != "" {
				t.Errorf("healthy node_rpc span carries error %q", sp.Err)
			}
		} else if sp.Node != "" {
			remote++
		}
	}
	if rpc != 1 {
		t.Fatalf("got %d node_rpc spans (%+v), want 1", rpc, spans)
	}
	if rpcNode == "" {
		t.Error("node_rpc span missing its node label")
	}
	// The node ran its own cache_lookup + db_search + cache_fill under
	// the routed trace ID; all of them must come back labeled with the
	// node the router called.
	if remote < 2 {
		t.Errorf("got %d remote stage spans (%+v), want >= 2", remote, spans)
	}
	for _, sp := range spans {
		if sp.Node != "" && sp.Node != rpcNode {
			t.Errorf("span %+v labeled %q, want %q", sp, sp.Node, rpcNode)
		}
	}

	recent := tel.Tracer.Recent(0)
	if len(recent) != 1 || recent[0].ID != id {
		t.Fatalf("ring = %+v, want one record under trace %#x", recent, id)
	}
	if n := tel.StageSnapshot()[telemetry.StageNodeRPC].N; n != 1 {
		t.Errorf("node_rpc histogram observations = %d, want 1", n)
	}
}

// TestClusterTraceSurvivesRetry: with the ring owner dead, a traced
// query fails over to the replica and the ONE resulting trace shows both
// attempts — a node_rpc span with the error against the dead owner,
// then a clean node_rpc plus the survivor's own spans.
func TestClusterTraceSurvivesRetry(t *testing.T) {
	tel := telemetry.New(telemetry.Options{SampleEvery: 1, RingSize: 8})
	c, nodes, _ := startCluster(t, 2, Options{
		Seed: 5, Replicas: 2, Telemetry: tel, Logger: quietLogger(),
	})
	q := queries(1, 11)[0]

	owner := c.RouteFor(q)[0]
	for _, n := range nodes {
		if n.base == owner {
			_ = n.stop()
		}
	}

	ctx, trace := tel.StartTrace(context.Background())
	id := trace.ID()
	docs, _, err := c.RetrieveContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no documents returned")
	}
	spans := trace.Spans()
	trace.Finish()

	var rpcs []telemetry.Span
	for _, sp := range spans {
		if sp.Stage == telemetry.StageNodeRPC {
			rpcs = append(rpcs, sp)
		}
	}
	if len(rpcs) != 2 {
		t.Fatalf("got %d node_rpc spans (%+v), want 2 (failed owner + survivor)", len(rpcs), spans)
	}
	if rpcs[0].Node != owner || rpcs[0].Err == "" {
		t.Errorf("first attempt = %+v, want error against owner %q", rpcs[0], owner)
	}
	if rpcs[1].Err != "" || rpcs[1].Node == owner || rpcs[1].Node == "" {
		t.Errorf("second attempt = %+v, want clean span on the other node", rpcs[1])
	}
	survivor := rpcs[1].Node
	served := 0
	for _, sp := range spans {
		if sp.Stage != telemetry.StageNodeRPC && sp.Node == survivor {
			served++
		}
	}
	if served == 0 {
		t.Errorf("no remote spans from survivor %q in %+v", survivor, spans)
	}

	recent := tel.Tracer.Recent(1)
	if len(recent) != 1 || recent[0].ID != id {
		t.Fatalf("ring = %+v, want the retried trace under one ID %#x", recent, id)
	}
	if n := tel.StageSnapshot()[telemetry.StageNodeRPC].N; n != 2 {
		t.Errorf("node_rpc histogram observations = %d, want 2", n)
	}
}
