// Package cluster turns the in-process cache partitioner into a
// network-transparent router: queries are consistent-hashed across shard
// NODES — instances of the HTTP middleware (internal/server), each
// owning a slice of the cache keyspace — instead of across in-process
// sub-caches. This is the horizontal half of the paper's §4 deployment
// story: the middleware sits in front of the vector database precisely
// so the cache tier can scale independently of retrieval, and one
// process's cores cap what internal/shard alone can serve. Serving-tier
// RAG caches make the same argument (RAGCache, arXiv:2404.12457;
// Cache-Craft, arXiv:2502.15734).
//
// # Ring
//
// Routing reuses the in-process partitioner's keys — shard.FingerprintOf
// for exact-repeat routing, or a random-hyperplane LSH signature (the
// default) so that near-identical rephrasings land on the same node and
// approximate cache hits survive distribution. The key selects a node
// through a consistent-hash ring (Ring): each node projects VNodes
// virtual points onto a 64-bit circle, and a key belongs to the first
// point clockwise of its position. Membership changes therefore move
// only the arcs adjacent to the joining or leaving node — expected 1/N
// of the keyspace — so the surviving nodes keep their warm cache
// entries, where a modulo partitioner would reshuffle nearly everything.
// Rings are immutable values; the Client swaps in a rebuilt ring under a
// brief write lock on AddNode/RemoveNode and lookups never block.
//
// # Replica retry and health
//
// Ring.Lookup returns every node in clockwise walk order, and the Client
// treats that order as the failover chain: a transport error or 5xx
// reply sidelines the node (it was reachable input-independently sick —
// the 400-vs-500 split in the server's error mapping exists exactly so
// this decision is safe) and the query retries on the next distinct
// node, up to Replicas attempts. A 4xx reply surfaces immediately: the
// input is malformed and every replica would reject it identically.
// Sidelined nodes are skipped by routing until ProbeCooldown elapses,
// then ONE background /healthz probe (short admin timeout, never on a
// request path) decides whether the node rejoins — so a dead node costs
// the cluster one failed round trip plus one async probe per cooldown,
// not one timeout per query.
//
// # Per-node batch submitters
//
// Queries bound for the same node coalesce: each node sits behind a
// batch.Collector (the generic gather/flush engine extracted from the
// miss-coalescing pipeline), which gathers concurrent requests for up to
// MaxBatch/BatchTimeout and flushes them as ONE /v1/retrieve/batch call.
// This amortizes the HTTP round trip and JSON codec the same way the
// in-process pipeline amortizes index traversals, and it composes with
// the node-side pipeline: a batched arrival burst reaches the node's own
// coalescer/queues intact.
//
// # Dropping into the retrieval path
//
// Client satisfies both core.Cache and core.Searcher:
//
//   - As a Cache, Get routes the query to its owner, which runs the full
//     cache-or-database path; any successful reply is a "hit" locally
//     (the work is done — the local process must not redo it), and
//     Put/PutWithTolerance are no-ops because nodes fill their own
//     caches. Only when every tried replica fails does Get report a
//     miss, letting the wrapping core.CachedRetriever fall back to its
//     LOCAL database: a degraded cluster loses speed, never
//     availability.
//   - As a Searcher, Search serves the miss path of a retriever that
//     keeps its own front cache, with positional (order-faithful, not
//     metric-faithful) distances.
//
// See cmd/proximity-server (-node / -peers) for the deployment shape,
// examples/cluster for a complete program, and `proximity-bench
// -experiment loadtest -cluster N` for the loopback A/B against
// single-process sharding.
package cluster
