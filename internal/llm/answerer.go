// Package llm provides the language-model substrates of the reproduction:
// a calibrated answer simulator standing in for LLaMA 3.1 Instruct (the
// paper's generator) and a deterministic rephraser standing in for the
// GPT-4o query rewriting used to build the MedRAG-Zipf workload (§4.2.2).
//
// The paper measures end-to-end test accuracy as a function of retrieved
// context quality: gold passages help, same-domain passages are neutral,
// and off-topic passages mislead (the τ=10 MedRAG accuracy collapse in
// Fig. 6a). The simulator reproduces exactly this causal structure with
// per-question deterministic difficulty draws, making accuracy a pure
// measurement of retrieval quality — the role it plays in the paper —
// while remaining reproducible across runs. See DESIGN.md §3.
package llm

import (
	"fmt"
	"hash/fnv"
)

// ContextQuality classifies the retrieved passages for one question, in
// decreasing order of helpfulness.
type ContextQuality int

const (
	// ContextGold means at least one of the question's gold passages
	// was retrieved.
	ContextGold ContextQuality = iota + 1
	// ContextTopic means no gold passage, but at least one retrieved
	// passage shares the question's topic.
	ContextTopic
	// ContextMisleading means passages were retrieved but none match
	// the question's topic.
	ContextMisleading
	// ContextNone means no passages were retrieved (the no-RAG floor).
	ContextNone
)

// String implements fmt.Stringer.
func (c ContextQuality) String() string {
	switch c {
	case ContextGold:
		return "gold"
	case ContextTopic:
		return "topic"
	case ContextMisleading:
		return "misleading"
	case ContextNone:
		return "none"
	default:
		return fmt.Sprintf("quality(%d)", int(c))
	}
}

// Profile holds the per-benchmark answer probabilities. Values are
// calibrated to the endpoints the paper reports (§4.3.1).
type Profile struct {
	// Name identifies the simulated model/benchmark combination.
	Name string
	// PGold is accuracy with gold context (paper: RAG accuracy with
	// a perfect retriever).
	PGold float64
	// PTopic is accuracy with same-topic but non-gold context.
	PTopic float64
	// PNone is the no-RAG floor (paper: 48% MMLU, 57% MedRAG).
	PNone float64
	// PMisled is accuracy with off-topic context; below PNone when
	// wrong passages actively hurt (paper: 37% MedRAG at τ=10).
	PMisled float64
}

func (p Profile) validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"PGold", p.PGold}, {"PTopic", p.PTopic}, {"PNone", p.PNone}, {"PMisled", p.PMisled},
	} {
		if v.val < 0 || v.val > 1 {
			return fmt.Errorf("llm: %s must be a probability, got %v", v.name, v.val)
		}
	}
	return nil
}

// MMLUProfile matches the paper's MMLU econometrics endpoints: 50.2% with
// RAG, 48% without, and a mild penalty for wrong context (Fig. 6a top:
// accuracy stays near the floor even at τ=10).
func MMLUProfile() Profile {
	return Profile{Name: "llama3.1-mmlu", PGold: 0.502, PTopic: 0.49, PNone: 0.48, PMisled: 0.47}
}

// MedRAGProfile matches the paper's MedRAG endpoints: 87.1% with RAG, 57%
// without, and a collapse to ~37% when misleading passages are injected
// (Fig. 6a bottom, τ=10).
func MedRAGProfile() Profile {
	return Profile{Name: "llama3.1-medrag", PGold: 0.871, PTopic: 0.78, PNone: 0.57, PMisled: 0.37}
}

// Answerer simulates multiple-choice answering. It is stateless and safe
// for concurrent use.
type Answerer struct {
	profile Profile
	seed    uint64
}

// NewAnswerer creates a simulator with the given profile and seed. The
// seed plays the role of the paper's per-run randomness: experiments
// average five seeds (§4.2.4).
func NewAnswerer(profile Profile, seed uint64) (*Answerer, error) {
	if err := profile.validate(); err != nil {
		return nil, err
	}
	return &Answerer{profile: profile, seed: seed}, nil
}

// Profile returns the configured probability profile.
func (a *Answerer) Profile() Profile { return a.profile }

// Question is the minimal view of a benchmark question the simulator
// needs.
type Question struct {
	// ID identifies the question; difficulty draws key on it.
	ID int
	// Topic is the question's topic cluster.
	Topic int
	// Gold lists the passage IDs that answer the question.
	Gold []int
}

// Classify grades a retrieved context. docTopic resolves a passage ID to
// its topic cluster (return -1 for unclustered passages).
func Classify(q Question, docs []int, docTopic func(int) int) ContextQuality {
	if len(docs) == 0 {
		return ContextNone
	}
	gold := make(map[int]struct{}, len(q.Gold))
	for _, g := range q.Gold {
		gold[g] = struct{}{}
	}
	topical := false
	for _, d := range docs {
		if _, ok := gold[d]; ok {
			return ContextGold
		}
		if docTopic != nil && docTopic(d) == q.Topic {
			topical = true
		}
	}
	if topical {
		return ContextTopic
	}
	return ContextMisleading
}

// Correct reports whether the simulated model answers the question
// correctly given the retrieved passages. Deterministic for a fixed
// (question, seed): a question has one latent difficulty draw, so better
// context can only help — a question answered correctly with misleading
// context is also correct with gold context, mirroring how retrieval
// quality shifts aggregate accuracy without flipping easy questions.
func (a *Answerer) Correct(q Question, docs []int, docTopic func(int) int) bool {
	p := a.probability(Classify(q, docs, docTopic))
	return a.difficulty(q.ID) < p
}

// CorrectWithQuality is Correct for callers that already classified the
// context (e.g. ablations probing each quality band).
func (a *Answerer) CorrectWithQuality(q Question, quality ContextQuality) bool {
	return a.difficulty(q.ID) < a.probability(quality)
}

func (a *Answerer) probability(quality ContextQuality) float64 {
	switch quality {
	case ContextGold:
		return a.profile.PGold
	case ContextTopic:
		return a.profile.PTopic
	case ContextMisleading:
		return a.profile.PMisled
	default:
		return a.profile.PNone
	}
}

// difficulty maps (question ID, seed) to a uniform draw in [0, 1).
func (a *Answerer) difficulty(questionID int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(questionID >> (8 * i))
		buf[8+i] = byte(a.seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}
