package llm

import (
	"strings"
	"testing"
	"testing/quick"

	"proximity/internal/embed"
	"proximity/internal/vec"
)

func TestContextQualityString(t *testing.T) {
	tests := []struct {
		give ContextQuality
		want string
	}{
		{ContextGold, "gold"},
		{ContextTopic, "topic"},
		{ContextMisleading, "misleading"},
		{ContextNone, "none"},
		{ContextQuality(9), "quality(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestClassify(t *testing.T) {
	q := Question{ID: 1, Topic: 3, Gold: []int{10, 11}}
	docTopic := func(id int) int {
		if id >= 100 {
			return 3 // same topic
		}
		return 0 // other topic
	}
	tests := []struct {
		name string
		docs []int
		want ContextQuality
	}{
		{name: "empty", docs: nil, want: ContextNone},
		{name: "gold present", docs: []int{5, 11}, want: ContextGold},
		{name: "gold wins over topic", docs: []int{100, 10}, want: ContextGold},
		{name: "topical", docs: []int{100, 5}, want: ContextTopic},
		{name: "misleading", docs: []int{5, 6}, want: ContextMisleading},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(q, tt.docs, docTopic); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassifyNilDocTopic(t *testing.T) {
	q := Question{ID: 1, Topic: 3, Gold: []int{10}}
	if got := Classify(q, []int{5}, nil); got != ContextMisleading {
		t.Errorf("Classify with nil docTopic = %v, want misleading", got)
	}
}

func TestNewAnswererValidation(t *testing.T) {
	bad := Profile{PGold: 1.5}
	if _, err := NewAnswerer(bad, 1); err == nil {
		t.Error("invalid probability should error")
	}
	if _, err := NewAnswerer(Profile{PGold: -0.1}, 1); err == nil {
		t.Error("negative probability should error")
	}
	a, err := NewAnswerer(MedRAGProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile().Name != "llama3.1-medrag" {
		t.Error("profile accessor wrong")
	}
}

func TestAnswererDeterminism(t *testing.T) {
	a, err := NewAnswerer(MedRAGProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	q := Question{ID: 7, Topic: 1, Gold: []int{3}}
	first := a.Correct(q, []int{3}, nil)
	for i := 0; i < 10; i++ {
		if a.Correct(q, []int{3}, nil) != first {
			t.Fatal("same question+context must answer identically")
		}
	}
}

// The monotonicity invariant: improving context quality can only turn
// wrong answers right, never the reverse.
func TestAnswererMonotoneInQuality(t *testing.T) {
	a, err := NewAnswerer(MedRAGProfile(), 3)
	if err != nil {
		t.Fatal(err)
	}
	order := []ContextQuality{ContextMisleading, ContextNone, ContextTopic, ContextGold}
	f := func(qid uint32) bool {
		q := Question{ID: int(qid % 100000)}
		prev := false
		for _, quality := range order {
			cur := a.CorrectWithQuality(q, quality)
			if prev && !cur {
				return false // quality improved but answer flipped to wrong
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Aggregate accuracies must approach the configured profile for a large
// question population — the calibration the harness relies on.
func TestAnswererAccuracyCalibration(t *testing.T) {
	profile := MedRAGProfile()
	a, err := NewAnswerer(profile, 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	counts := map[ContextQuality]int{}
	for id := 0; id < n; id++ {
		q := Question{ID: id}
		for _, quality := range []ContextQuality{ContextGold, ContextTopic, ContextNone, ContextMisleading} {
			if a.CorrectWithQuality(q, quality) {
				counts[quality]++
			}
		}
	}
	check := func(quality ContextQuality, want float64) {
		got := float64(counts[quality]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v accuracy = %.3f, want ≈ %.3f", quality, got, want)
		}
	}
	check(ContextGold, profile.PGold)
	check(ContextTopic, profile.PTopic)
	check(ContextNone, profile.PNone)
	check(ContextMisleading, profile.PMisled)
}

func TestAnswererSeedsDiffer(t *testing.T) {
	a1, _ := NewAnswerer(MMLUProfile(), 1)
	a2, _ := NewAnswerer(MMLUProfile(), 2)
	diff := 0
	for id := 0; id < 500; id++ {
		q := Question{ID: id}
		if a1.CorrectWithQuality(q, ContextGold) != a2.CorrectWithQuality(q, ContextGold) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds should disagree on some questions")
	}
}

func TestProfiles(t *testing.T) {
	m := MMLUProfile()
	if m.PGold <= m.PNone {
		t.Error("MMLU gold context must beat the no-RAG floor")
	}
	r := MedRAGProfile()
	if r.PMisled >= r.PNone {
		t.Error("MedRAG misleading context must fall below the no-RAG floor")
	}
}

func TestPrefixVariant(t *testing.T) {
	r := NewRephraser(nil, 1)
	base := "kapori zutemi relados"
	if got := r.PrefixVariant(base, 0); got != base {
		t.Errorf("variant 0 should be the original, got %q", got)
	}
	v1 := r.PrefixVariant(base, 1)
	v2 := r.PrefixVariant(base, 2)
	if v1 == v2 || v1 == base {
		t.Error("variants must be distinct")
	}
	if !strings.HasSuffix(v1, base) {
		t.Errorf("prefix variant should retain the original text: %q", v1)
	}
	// Deterministic.
	if r.PrefixVariant(base, 1) != v1 {
		t.Error("variants must be deterministic")
	}
}

func TestPrefixVariantEmbeddingDrift(t *testing.T) {
	e := embed.NewTokenHash(128, 5)
	r := NewRephraser(nil, 5)
	base := "kapori zutemi relados mivuto sandor pelira"
	bv := e.Embed(base)
	for variant := 1; variant <= 4; variant++ {
		v := e.Embed(r.PrefixVariant(base, variant))
		d := float64(vec.L2(bv, v))
		if d <= 0 || d > 1.2 {
			t.Errorf("variant %d drift = %v, want small positive (stopword prefix)", variant, d)
		}
	}
}

func TestParaphraseUniqueness(t *testing.T) {
	r := NewRephraser(nil, 7)
	base := "kapori zutemi relados mivuto"
	seen := make(map[string]struct{})
	for occ := 0; occ < 2000; occ++ {
		p := r.Paraphrase(base, occ, 1)
		if _, dup := seen[p]; dup {
			t.Fatalf("duplicate paraphrase at occ %d: %q", occ, p)
		}
		seen[p] = struct{}{}
	}
}

func TestParaphraseDrift(t *testing.T) {
	e := embed.NewTokenHash(256, 9)
	r := NewRephraser(nil, 9)
	base := "kapori zutemi relados mivuto sandor pelira dezubo katrin"
	bv := e.Embed(base)
	for occ := 0; occ < 20; occ++ {
		// swaps=0: only chatter + rotation → drift below ~1.
		p0 := e.Embed(r.Paraphrase(base, occ, 0))
		if d := float64(vec.L2(bv, p0)); d > 1.2 {
			t.Errorf("occ %d swaps=0 drift %v too large", occ, d)
		}
		// swaps=2: two content inflections → drift ≈ sqrt(2·2)≈2 ±
		// chatter; must stay well below the distance to an unrelated
		// question (≈ sqrt(2·8) = 4).
		p2 := e.Embed(r.Paraphrase(base, occ, 2))
		d := float64(vec.L2(bv, p2))
		if d < 1.2 || d > 3.5 {
			t.Errorf("occ %d swaps=2 drift = %v, want in (1.2, 3.5)", occ, d)
		}
	}
}

func TestParaphraseSynonymsNoDrift(t *testing.T) {
	th := embed.NewThesaurus()
	th.Register("kapori", "kaporix", "kaporiy")
	e := embed.NewTokenHash(128, 11, embed.WithThesaurus(th))
	r := NewRephraser(th, 11)
	base := "kapori zutemi relados"
	bv := e.Embed(base)
	for occ := 0; occ < 10; occ++ {
		p := r.Paraphrase(base, occ, 0)
		d := float64(vec.L2(bv, e.Embed(p)))
		if d > 1.2 {
			t.Errorf("synonym paraphrase drift = %v, want chatter-only", d)
		}
	}
	// At least one occurrence should actually use a synonym surface form.
	found := false
	for occ := 0; occ < 10; occ++ {
		p := r.Paraphrase(base, occ, 0)
		if strings.Contains(p, "kaporix") || strings.Contains(p, "kaporiy") {
			found = true
			break
		}
	}
	if !found {
		t.Error("paraphrases never used a registered synonym")
	}
}

func TestParaphraseSwapsRespectTokenCount(t *testing.T) {
	// Asking for more swaps than content tokens must not panic and must
	// still produce unique output.
	r := NewRephraser(nil, 13)
	p := r.Paraphrase("kapori", 0, 10)
	if p == "" {
		t.Error("paraphrase of short text should not be empty")
	}
	if r.Paraphrase("", 0, 2) == "" {
		t.Error("paraphrase of empty text should still emit the unique prefix")
	}
}
