package llm

import (
	"fmt"
	"time"
)

// TTFTModel estimates Time To First Token, the end-to-end latency metric
// motivating the paper (§2.2): Shen et al. measure TTFT rising from
// 495 ms to 965 ms once RAG is deployed, with 71.8% of the increase spent
// in the vector-database lookup and the rest in the longer prefill caused
// by the retrieved passages. The model decomposes TTFT as
//
//	TTFT = Base (model prefill + generation of the first token)
//	     + PerDoc × retrievedDocs (longer prefill per passage)
//	     + retrieval (cache and/or database time, measured elsewhere)
//
// so experiments can report how much of the paper's headline TTFT saving
// a given cache configuration realizes.
type TTFTModel struct {
	// Base is the no-RAG time to first token.
	Base time.Duration
	// PerDoc is the extra prefill time per retrieved passage.
	PerDoc time.Duration
}

// ShenTTFT returns the model calibrated to the measurements the paper
// cites: 495 ms without RAG; with RAG (k = 4 passages) the non-retrieval
// overhead is 470 ms × (1 − 0.718) ≈ 132 ms, i.e. ≈ 33 ms per passage.
func ShenTTFT() TTFTModel {
	return TTFTModel{
		Base:   495 * time.Millisecond,
		PerDoc: 33 * time.Millisecond,
	}
}

// Estimate returns the modeled TTFT for a query whose retrieval took the
// given time and returned docs passages.
func (m TTFTModel) Estimate(docs int, retrieval time.Duration) (time.Duration, error) {
	if docs < 0 {
		return 0, fmt.Errorf("llm: negative document count %d", docs)
	}
	if retrieval < 0 {
		return 0, fmt.Errorf("llm: negative retrieval time %v", retrieval)
	}
	return m.Base + time.Duration(docs)*m.PerDoc + retrieval, nil
}

// RetrievalShare returns the fraction of TTFT spent on retrieval under
// this model — the quantity whose measured value (71.8% of the RAG
// overhead) motivates caching the retrieval step rather than the
// generation step.
func (m TTFTModel) RetrievalShare(docs int, retrieval time.Duration) (float64, error) {
	total, err := m.Estimate(docs, retrieval)
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, nil
	}
	return float64(retrieval) / float64(total), nil
}
