package llm

import (
	"strconv"
	"strings"

	"proximity/internal/embed"
)

// Rephraser deterministically rewrites query text, standing in for the two
// rewriting mechanisms of §4.2.2:
//
//   - PrefixVariant: the uniform MMLU/MedRAG datasets repeat each question
//     four times "in slight variations ... by adding some small textual
//     prefix";
//   - Paraphrase: the MedRAG-Zipf dataset rephrases every occurrence with
//     an LLM so each surface form is unique but semantically equivalent.
//
// Rewrites compose three effects with distinct embedding signatures under
// the token-hash encoder:
//
//   - chatter prefixes made of stopwords (small, weight-damped drift);
//   - synonym substitutions through the thesaurus (zero drift — the
//     encoder knows these are the same word);
//   - content-word inflections ("kapori" → "kapori2") that the encoder
//     does not recognize (≈√2 drift each), modeling the residual distance
//     real encoders show between paraphrases.
//
// All rewrites are deterministic functions of (text, variant/occurrence).
type Rephraser struct {
	thesaurus *embed.Thesaurus
	seed      uint64
}

// NewRephraser creates a rephraser. thesaurus may be nil, disabling
// synonym substitution.
func NewRephraser(thesaurus *embed.Thesaurus, seed uint64) *Rephraser {
	return &Rephraser{thesaurus: thesaurus, seed: seed}
}

// chatterWords are the stopword building blocks for unique prefixes. All
// of them appear in the encoder's default stopword list so prefixes carry
// the damped weight.
var chatterWords = []string{
	"please", "tell", "me", "about", "the", "this", "that", "question",
	"can", "you", "say", "what", "would", "should", "how", "why",
	"explain", "describe", "regarding", "concerning", "answer",
	"following", "is", "it",
}

// PrefixVariant returns the text with a deterministic chatter prefix.
// Variant 0 is the original text; variants ≥ 1 get distinct prefixes of
// 2-4 stopwords.
func (r *Rephraser) PrefixVariant(text string, variant int) string {
	if variant <= 0 {
		return text
	}
	words := r.uniquePhrase(uint64(variant))
	return strings.Join(words, " ") + " " + text
}

// Paraphrase rewrites text for its occ-th occurrence: a unique chatter
// prefix, synonym substitution through the thesaurus, and swaps content-
// word inflections. The result is textually unique per occ (for occ up to
// len(chatterWords)^3 ≈ 13k) and embeds within a small distance of the
// original, like the paper's verified-unique GPT-4o rephrasings.
func (r *Rephraser) Paraphrase(text string, occ int, swaps int) string {
	tokens := embed.Tokenize(text)
	// Synonym substitution: zero embedding drift, surface change only.
	if r.thesaurus != nil {
		for i, tok := range tokens {
			if syns := r.thesaurus.Synonyms(tok); len(syns) > 0 {
				tokens[i] = syns[mix(r.seed, uint64(occ), uint64(i))%uint64(len(syns))]
			}
		}
	}
	// Inflect `swaps` content words: each adds ≈√2 embedding distance.
	if swaps > 0 && len(tokens) > 0 {
		content := contentIndices(tokens)
		for s := 0; s < swaps && len(content) > 0; s++ {
			pick := int(mix(r.seed, uint64(occ), uint64(1000+s)) % uint64(len(content)))
			idx := content[pick]
			digit := 1 + int(mix(r.seed, uint64(occ), uint64(2000+s))%9)
			tokens[idx] += strconv.Itoa(digit)
			content = append(content[:pick], content[pick+1:]...)
		}
	}
	// Word-order rotation: free under the bag-of-words encoder, makes
	// the surface form less templated.
	if len(tokens) > 1 {
		rot := int(mix(r.seed, uint64(occ), 3000) % uint64(len(tokens)))
		tokens = append(tokens[rot:], tokens[:rot]...)
	}
	prefix := r.uniquePhrase(uint64(occ))
	return strings.Join(append(prefix, tokens...), " ")
}

// uniquePhrase maps n to a distinct stopword phrase by writing n in base
// len(chatterWords): at least 3 words, growing as needed, so any two
// distinct n values yield distinct phrases — the textual-uniqueness
// guarantee §4.2.2 requires of the rephrased workload.
func (r *Rephraser) uniquePhrase(n uint64) []string {
	base := uint64(len(chatterWords))
	words := make([]string, 0, 4)
	for i := 0; i < 3 || n > 0; i++ {
		words = append(words, chatterWords[n%base])
		n /= base
	}
	return words
}

// contentIndices returns the positions of non-stopword tokens.
func contentIndices(tokens []string) []int {
	stop := make(map[string]struct{}, len(chatterWords))
	for _, w := range chatterWords {
		stop[w] = struct{}{}
	}
	var out []int
	for i, tok := range tokens {
		if _, isStop := stop[tok]; !isStop {
			out = append(out, i)
		}
	}
	return out
}

// mix is a small deterministic integer hash (splitmix64 finalizer).
func mix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
