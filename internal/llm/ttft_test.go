package llm

import (
	"math"
	"testing"
	"time"
)

func TestShenTTFTCalibration(t *testing.T) {
	m := ShenTTFT()
	// No RAG: 495 ms.
	got, err := m.Estimate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 495*time.Millisecond {
		t.Errorf("no-RAG TTFT = %v, want 495ms", got)
	}
	// With RAG: the paper cites 965 ms total, 71.8% of the 470 ms
	// increase in the database lookup (≈ 337 ms) and the rest in
	// prefill. Reconstruct with k=4 passages.
	retrieval := 337 * time.Millisecond
	got, err = m.Estimate(4, retrieval)
	if err != nil {
		t.Fatal(err)
	}
	if got < 950*time.Millisecond || got > 980*time.Millisecond {
		t.Errorf("RAG TTFT = %v, want ≈ 965ms", got)
	}
	share, err := m.RetrievalShare(4, retrieval)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(share-0.35) > 0.03 { // 337 of ≈964 ms
		t.Errorf("retrieval share = %.3f, want ≈ 0.35", share)
	}
}

func TestTTFTCacheSaving(t *testing.T) {
	// A cache hit turns the 337 ms lookup into microseconds; TTFT drops
	// back to within prefill distance of the no-RAG floor.
	m := ShenTTFT()
	hit, err := m.Estimate(4, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := m.Estimate(4, 337*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	saving := miss - hit
	if saving < 330*time.Millisecond {
		t.Errorf("cache hit saving = %v, want ≈ the whole lookup", saving)
	}
}

func TestTTFTValidation(t *testing.T) {
	m := ShenTTFT()
	if _, err := m.Estimate(-1, 0); err == nil {
		t.Error("negative docs should error")
	}
	if _, err := m.Estimate(0, -time.Second); err == nil {
		t.Error("negative retrieval should error")
	}
	if _, err := m.RetrievalShare(-1, 0); err == nil {
		t.Error("RetrievalShare must propagate errors")
	}
}

func TestTTFTZeroModel(t *testing.T) {
	var m TTFTModel
	share, err := m.RetrievalShare(0, 0)
	if err != nil || share != 0 {
		t.Errorf("zero model share = %v, %v", share, err)
	}
}
