package server

import (
	"net/http/httptest"
	"testing"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// TestStatsBatchFields: a retriever whose miss path runs through the
// batch pipeline surfaces coalescing/batch counters on /v1/stats; a
// plain retriever omits the block entirely.
func TestStatsBatchFields(t *testing.T) {
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"aspirin heart attack prevention dosage",
		"ibuprofen inflammation joint pain",
		"melatonin sleep circadian rhythm",
	}
	for _, p := range texts {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	pipe, err := batch.New(db, batch.Options{Queues: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	cache, err := core.NewFlat(dim, core.Options{Capacity: 8, Tolerance: 1, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2, Searcher: pipe})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	for _, p := range texts { // all distinct → all misses → all batched
		if _, err := client.Query(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batch == nil {
		t.Fatal("stats payload has no batch block despite a batch pipeline searcher")
	}
	if st.Batch.Searches != int64(len(texts)) {
		t.Errorf("batch.searches = %d, want %d", st.Batch.Searches, len(texts))
	}
	if st.Batch.Flushes == 0 || st.Batch.MeanBatchSize < 1 {
		t.Errorf("batch counters show no flushing: %+v", st.Batch)
	}
	if st.Batch.Errors != 0 {
		t.Errorf("batch.errors = %d, want 0", st.Batch.Errors)
	}

	// Control: no pipeline, no batch block.
	plain, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Retriever: plain, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st2, err := NewClient(ts2.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Batch != nil {
		t.Error("plain retriever should omit the batch stats block")
	}
}
