package server

import (
	"errors"
	"net/http/httptest"
	"testing"

	"proximity/internal/core"
	"proximity/internal/rebalance"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// fakeRebalancer scripts the admin surface.
type fakeRebalancer struct {
	stats    rebalance.Stats
	out      rebalance.Outcome
	err      error
	triggers int
}

func (f *fakeRebalancer) Stats() rebalance.Stats { return f.stats }

func (f *fakeRebalancer) TriggerNow() (rebalance.Outcome, error) {
	f.triggers++
	return f.out, f.err
}

func newRebalanceServer(t *testing.T, reb Rebalancer) *Server {
	t.Helper()
	const dim = 16
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add(vec.RandomGaussian(vec.NewRand(1), dim)); err != nil {
		t.Fatal(err)
	}
	cache, err := core.NewFlat(dim, core.Options{Capacity: 8, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Rebalancer: reb})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestRebalanceEndpoint: a manual trigger round-trips the outcome; the
// stats payload carries the controller block.
func TestRebalanceEndpoint(t *testing.T) {
	reb := &fakeRebalancer{
		stats: rebalance.Stats{
			Samples:     7,
			Breaches:    3,
			Triggers:    2,
			Rebalances:  1,
			Declined:    1,
			LastSample:  rebalance.Sample{Imbalance: 1.8, Entries: 500},
			LastOutcome: rebalance.Outcome{Acted: true, Before: 2.1, After: 1.2, Moved: 42, Detail: "reseed"},
		},
		out: rebalance.Outcome{Acted: true, Before: 1.8, After: 1.1, Moved: 9, Detail: "manual"},
	}
	srv := newRebalanceServer(t, reb)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	resp, err := client.RebalanceNow()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Acted || resp.Moved != 9 || resp.Detail != "manual" || resp.Before != 1.8 || resp.After != 1.1 {
		t.Errorf("rebalance response = %+v", resp)
	}
	if reb.triggers != 1 {
		t.Errorf("triggers = %d, want 1", reb.triggers)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebalance == nil {
		t.Fatal("stats payload missing the rebalance block")
	}
	if st.Rebalance.Samples != 7 || st.Rebalance.Rebalances != 1 || st.Rebalance.Declined != 1 {
		t.Errorf("rebalance stats = %+v", st.Rebalance)
	}
	if st.Rebalance.LastImbalance != 1.8 || st.Rebalance.LastMoved != 42 || st.Rebalance.LastDetail != "reseed" {
		t.Errorf("rebalance last-outcome fields = %+v", st.Rebalance)
	}
}

// TestRebalanceEndpointErrors: 501 without a controller, 409 when the
// controller refuses.
func TestRebalanceEndpointErrors(t *testing.T) {
	srv := newRebalanceServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	_, err := client.RebalanceNow()
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 501 {
		t.Fatalf("no-controller error = %v, want a 501 StatusError", err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebalance != nil {
		t.Error("stats payload should omit the rebalance block without a controller")
	}

	busy := &fakeRebalancer{err: rebalance.ErrBusy}
	srv2 := newRebalanceServer(t, busy)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	_, err = NewClient(ts2.URL).RebalanceNow()
	if !errors.As(err, &se) || se.Code != 409 {
		t.Fatalf("busy-controller error = %v, want a 409 StatusError", err)
	}

	// An actuator failure is an internal fault, not a retryable
	// collision.
	broken := &fakeRebalancer{err: errors.New("factory exploded mid-rebuild")}
	srv3 := newRebalanceServer(t, broken)
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	_, err = NewClient(ts3.URL).RebalanceNow()
	if !errors.As(err, &se) || se.Code != 500 {
		t.Fatalf("actuator-failure error = %v, want a 500 StatusError", err)
	}
}
