package server

import (
	"net/http/httptest"
	"testing"

	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// TestStatsIndexFields: serving from a graph-indexed cache surfaces the
// index block through /v1/stats; a flat cache omits it.
func TestStatsIndexFields(t *testing.T) {
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"aspirin heart attack prevention dosage",
		"ibuprofen inflammation joint pain",
		"melatonin sleep circadian rhythm",
		"statin cholesterol cardiovascular risk",
	}
	for _, p := range texts {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := core.NewIndexed(dim, core.IndexedOptions{
		Capacity: 64, Tolerance: 1, Policy: core.LRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	for _, p := range texts {
		if _, err := client.Query(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index == nil {
		t.Fatal("indexed cache server omitted the index stats block")
	}
	if st.Index.Nodes != len(texts) {
		t.Errorf("index nodes = %d, want %d", st.Index.Nodes, len(texts))
	}
	if st.Index.Slots < st.Index.Nodes {
		t.Errorf("index slots = %d < nodes %d", st.Index.Slots, st.Index.Nodes)
	}
	// Four entries is far below the crossover, so lookups took the
	// exact-scan path.
	if st.Index.BruteScans == 0 {
		t.Error("expected sub-crossover lookups to count as brute scans")
	}

	// A flat cache must omit the block.
	flat, err := core.NewFlat(dim, core.Options{Capacity: 64, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	retr2, err := core.NewCachedRetriever(flat, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Retriever: retr2, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st2, err := NewClient(ts2.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Index != nil {
		t.Errorf("flat cache server emitted an index stats block: %+v", st2.Index)
	}
}
