package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// TestStatsIndexFields: serving from a graph-indexed cache surfaces the
// index block through /v1/stats; a flat cache omits it.
func TestStatsIndexFields(t *testing.T) {
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"aspirin heart attack prevention dosage",
		"ibuprofen inflammation joint pain",
		"melatonin sleep circadian rhythm",
		"statin cholesterol cardiovascular risk",
	}
	for _, p := range texts {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := core.NewIndexed(dim, core.IndexedOptions{
		Capacity: 64, Tolerance: 1, Policy: core.LRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	for _, p := range texts {
		if _, err := client.Query(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index == nil {
		t.Fatal("indexed cache server omitted the index stats block")
	}
	if st.Index.Nodes != len(texts) {
		t.Errorf("index nodes = %d, want %d", st.Index.Nodes, len(texts))
	}
	if st.Index.Slots < st.Index.Nodes {
		t.Errorf("index slots = %d < nodes %d", st.Index.Slots, st.Index.Nodes)
	}
	// Four entries is far below the crossover, so lookups took the
	// exact-scan path.
	if st.Index.BruteScans == 0 {
		t.Error("expected sub-crossover lookups to count as brute scans")
	}

	// A flat cache must omit the block.
	flat, err := core.NewFlat(dim, core.Options{Capacity: 64, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	retr2, err := core.NewCachedRetriever(flat, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Retriever: retr2, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st2, err := NewClient(ts2.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Index != nil {
		t.Errorf("flat cache server emitted an index stats block: %+v", st2.Index)
	}
}

// TestStatsIndexRepairFields churns an indexed cache past capacity and
// checks the repair counters flow through /v1/stats and /metrics.
func TestStatsIndexRepairFields(t *testing.T) {
	const dim = 8
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add(enc.Embed("seed doc")); err != nil {
		t.Fatal(err)
	}
	cache, err := core.NewIndexed(dim, core.IndexedOptions{
		Capacity:    32,
		Tolerance:   0.3,
		Seed:        19,
		Maintenance: &core.MaintenanceOptions{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(20)
	for i := 0; i < 200; i++ {
		cache.Put(vec.Scale(vec.RandomGaussian(rng, dim), 2), []int{i})
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Index == nil {
		t.Fatal("index stats block missing")
	}
	if st.Index.ReusedSlots == 0 || st.Index.SeveredInEdges == 0 {
		t.Fatalf("repair counters not surfaced: %+v", st.Index)
	}
	if st.Index.RepairPasses == 0 {
		t.Fatalf("maintenance passes not surfaced: %+v", st.Index)
	}
	body, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"proximity_index_reused_slots_total",
		"proximity_index_severed_in_edges_total",
		"proximity_index_repair_passes_total",
		"proximity_index_repaired_nodes_total",
		"proximity_index_repair_pending",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}
