package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"proximity/internal/telemetry"
)

// Client is a typed HTTP client for the retrieval middleware.
type Client struct {
	base string
	http *http.Client
}

// StatusError is a non-2xx middleware reply. Callers that route around
// failures (the cluster client) use Code to distinguish input the whole
// cluster would reject (4xx: not retryable) from a faulty node (5xx:
// retry the next ring replica).
type StatusError struct {
	Code int    // HTTP status code
	Path string // request path
	Msg  string // server-reported error message, if any
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("client: %s: %s (status %d)", e.Path, e.Msg, e.Code)
	}
	return fmt.Sprintf("client: %s: status %d", e.Path, e.Code)
}

// NewClient targets a middleware at base (e.g. "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return NewClientWithTimeout(base, 30*time.Second)
}

// NewClientWithTimeout is NewClient with an explicit HTTP deadline.
// Health probes and admin snapshots (the cluster router's /healthz and
// /v1/stats fetches) want to fail fast on a hung node rather than
// inherit the data path's generous timeout.
func NewClientWithTimeout(base string, timeout time.Duration) *Client {
	return &Client{
		base: base,
		http: &http.Client{Timeout: timeout},
	}
}

// Retrieve fetches documents for a pre-computed embedding.
func (c *Client) Retrieve(embedding []float32) (RetrieveResponse, error) {
	var out RetrieveResponse
	err := c.post("/v1/retrieve", RetrieveRequest{Embedding: embedding}, &out)
	return out, err
}

// RetrieveTraced is Retrieve under an existing trace: the request
// carries traceID in the X-Proximity-Trace header, and the node's spans
// (recorded under that ID) come back decoded from the response header —
// the cluster router grafts them into the parent trace. traceID 0
// degrades to a plain Retrieve.
func (c *Client) RetrieveTraced(embedding []float32, traceID uint64) (RetrieveResponse, []telemetry.Span, error) {
	var out RetrieveResponse
	body, err := json.Marshal(RetrieveRequest{Embedding: embedding})
	if err != nil {
		return out, nil, fmt.Errorf("client: marshal: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/retrieve", bytes.NewReader(body))
	if err != nil {
		return out, nil, fmt.Errorf("client: request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != 0 {
		req.Header.Set(telemetry.TraceHeader, telemetry.FormatTraceID(traceID))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return out, nil, fmt.Errorf("client: /v1/retrieve: %w", err)
	}
	defer drainClose(resp.Body)
	// Span decode failures are dropped, not fatal: the retrieval result
	// matters more than its timeline.
	spans, _ := telemetry.UnmarshalSpans(resp.Header.Get(telemetry.TraceSpanHeader))
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode, Path: "/v1/retrieve"}
		var e errorResponse
		if decodeErr := json.NewDecoder(resp.Body).Decode(&e); decodeErr == nil {
			se.Msg = e.Error
		}
		return out, spans, se
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, spans, fmt.Errorf("client: /v1/retrieve decode: %w", err)
	}
	return out, spans, nil
}

// Traces fetches up to n recent sampled traces (n <= 0: all buffered).
func (c *Client) Traces(n int) ([]telemetry.TraceRecord, error) {
	url := c.base + "/v1/traces"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	resp, err := c.http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("client: traces: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Path: "/v1/traces"}
	}
	var out TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: traces decode: %w", err)
	}
	return out.Traces, nil
}

// Health fetches the build-info health check.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	resp, err := c.http.Get(c.base + "/v1/healthz")
	if err != nil {
		return out, fmt.Errorf("client: healthz: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return out, &StatusError{Code: resp.StatusCode, Path: "/v1/healthz"}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: healthz decode: %w", err)
	}
	return out, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return "", fmt.Errorf("client: metrics: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Path: "/metrics"}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, drainMax))
	if err != nil {
		return "", fmt.Errorf("client: metrics read: %w", err)
	}
	return string(b), nil
}

// RetrieveBatch fetches documents for several embeddings in one call; the
// results are parallel to embeddings. A failure of any element fails the
// whole batch.
func (c *Client) RetrieveBatch(embeddings [][]float32) (BatchRetrieveResponse, error) {
	var out BatchRetrieveResponse
	err := c.post("/v1/retrieve/batch", BatchRetrieveRequest{Embeddings: embeddings}, &out)
	if err == nil && len(out.Results) != len(embeddings) {
		return out, fmt.Errorf("client: /v1/retrieve/batch: %d results for %d embeddings",
			len(out.Results), len(embeddings))
	}
	return out, err
}

// Query fetches documents for a text query (embedded server-side).
func (c *Client) Query(text string) (RetrieveResponse, error) {
	var out RetrieveResponse
	err := c.post("/v1/query", QueryRequest{Text: text}, &out)
	return out, err
}

// Stats reads cache statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return out, fmt.Errorf("client: stats: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return out, &StatusError{Code: resp.StatusCode, Path: "/v1/stats"}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: stats decode: %w", err)
	}
	return out, nil
}

// Flush clears the cache (and drains/zeroes the server's batch pipeline).
func (c *Client) Flush() error {
	resp, err := c.http.Post(c.base+"/v1/flush", "application/json", nil)
	if err != nil {
		return fmt.Errorf("client: flush: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return &StatusError{Code: resp.StatusCode, Path: "/v1/flush"}
	}
	return nil
}

// RebalanceNow triggers one manual rebalance action on the middleware
// (501 StatusError when the server has no controller configured).
func (c *Client) RebalanceNow() (RebalanceResponse, error) {
	var out RebalanceResponse
	err := c.post("/v1/rebalance", struct{}{}, &out)
	return out, err
}

// Healthy reports whether the middleware answers its health check.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	defer drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Client) post(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: marshal: %w", err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode, Path: path}
		var e errorResponse
		if decodeErr := json.NewDecoder(resp.Body).Decode(&e); decodeErr == nil {
			se.Msg = e.Error
		}
		return se
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: %s decode: %w", path, err)
	}
	return nil
}

// drainMax bounds how much of an unread body drainClose will consume
// before giving up on connection reuse; error bodies are tiny, so the
// limit only guards against a pathological peer.
const drainMax = 1 << 20

// drainClose reads the remaining response body before closing it. An
// http.Response body closed with bytes still buffered forces the
// transport to drop the underlying connection instead of returning it to
// the keep-alive pool — under the cluster loadtest that turned every
// error reply (and every JSON decode that stopped at the value, leaving
// the trailing newline unread) into a fresh TCP connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, drainMax))
	_ = body.Close()
}
