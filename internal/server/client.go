package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client is a typed HTTP client for the retrieval middleware.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a middleware at base (e.g. "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{
		base: base,
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Retrieve fetches documents for a pre-computed embedding.
func (c *Client) Retrieve(embedding []float32) (RetrieveResponse, error) {
	var out RetrieveResponse
	err := c.post("/v1/retrieve", RetrieveRequest{Embedding: embedding}, &out)
	return out, err
}

// Query fetches documents for a text query (embedded server-side).
func (c *Client) Query(text string) (RetrieveResponse, error) {
	var out RetrieveResponse
	err := c.post("/v1/query", QueryRequest{Text: text}, &out)
	return out, err
}

// Stats reads cache statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return out, fmt.Errorf("client: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("client: stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: stats decode: %w", err)
	}
	return out, nil
}

// Flush clears the cache.
func (c *Client) Flush() error {
	resp, err := c.http.Post(c.base+"/v1/flush", "application/json", nil)
	if err != nil {
		return fmt.Errorf("client: flush: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("client: flush: status %d", resp.StatusCode)
	}
	return nil
}

// Healthy reports whether the middleware answers its health check.
func (c *Client) Healthy() bool {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Client) post(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: marshal: %w", err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if decodeErr := json.NewDecoder(resp.Body).Decode(&e); decodeErr == nil && e.Error != "" {
			return fmt.Errorf("client: %s: %s (status %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: %s decode: %w", path, err)
	}
	return nil
}
