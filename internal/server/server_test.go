package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/shard"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// docTexts implements Documents over a string slice.
type docTexts []string

func (d docTexts) Text(id int) (string, error) {
	if id < 0 || id >= len(d) {
		return "", fmt.Errorf("doc %d out of range", id)
	}
	return d[id], nil
}

// newTestServer wires a 3-passage middleware with a flat cache.
func newTestServer(t *testing.T, withEmbedder, withDocs bool) (*Server, []string, embed.Embedder) {
	t.Helper()
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	passages := []string{
		"aspirin heart attack prevention dosage",
		"ibuprofen inflammation joint pain",
		"melatonin sleep circadian rhythm",
	}
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range passages {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := core.NewFlat(dim, core.Options{Capacity: 8, Tolerance: 1, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Retriever: retr}
	if withEmbedder {
		cfg.Embedder = enc
	}
	if withDocs {
		cfg.Docs = docTexts(passages)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, passages, enc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing retriever should error")
	}
}

func TestRetrieveRoundTrip(t *testing.T) {
	srv, _, enc := newTestServer(t, true, true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	if !client.Healthy() {
		t.Fatal("health check failed")
	}

	emb := enc.Embed("aspirin heart attack prevention dosage")
	first, err := client.Retrieve(emb)
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit {
		t.Error("first retrieval should miss")
	}
	if len(first.Docs) != 2 || first.Docs[0] != 0 {
		t.Errorf("docs = %v", first.Docs)
	}
	if len(first.Texts) != 2 || !strings.Contains(first.Texts[0], "aspirin") {
		t.Errorf("texts = %v", first.Texts)
	}

	second, err := client.Retrieve(emb)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit {
		t.Error("repeat retrieval should hit the cache")
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 1 || stats.Misses != 1 || stats.Entries != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.HitRate != 0.5 {
		t.Errorf("hit rate = %v", stats.HitRate)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t, true, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	res, err := client.Query("melatonin sleep circadian rhythm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs[0] != 2 {
		t.Errorf("docs = %v, want melatonin passage first", res.Docs)
	}
	if len(res.Texts) != 0 {
		t.Error("no Docs resolver configured; texts should be empty")
	}
	// Rephrased query should now hit.
	res2, err := client.Query("sleep melatonin circadian rhythm please")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hit {
		t.Error("rephrased query should hit")
	}
}

func TestQueryWithoutEmbedder(t *testing.T) {
	srv, _, _ := newTestServer(t, false, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	if _, err := client.Query("anything"); err == nil {
		t.Error("query without server-side embedder should fail")
	}
}

func TestBadRequests(t *testing.T) {
	srv, _, _ := newTestServer(t, true, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	if _, err := client.Retrieve(nil); err == nil {
		t.Error("empty embedding should fail")
	}
	if _, err := client.Retrieve([]float32{1, 2}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := client.Query(""); err == nil {
		t.Error("empty text should fail")
	}
}

func TestFlush(t *testing.T) {
	srv, _, enc := newTestServer(t, true, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	emb := enc.Embed("ibuprofen inflammation joint pain")
	if _, err := client.Retrieve(emb); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := client.Retrieve(emb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Error("flushed cache should miss")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 { // re-inserted by the post-flush miss
		t.Errorf("entries = %d", stats.Entries)
	}
}

func TestNoCacheServer(t *testing.T) {
	const dim = 8
	enc := embed.NewTokenHash(dim, 2)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add(enc.Embed("only passage")); err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(nil, db, core.RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Capacity != 0 {
		t.Error("no-cache server should report empty stats")
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err) // flush on no cache is a no-op, not an error
	}
}

// TestStatsShardFields: serving from a ShardedCache surfaces per-shard
// occupancy and eviction counters through /v1/stats; an unsharded cache
// omits them.
func TestStatsShardFields(t *testing.T) {
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"aspirin heart attack prevention dosage",
		"ibuprofen inflammation joint pain",
		"melatonin sleep circadian rhythm",
		"statin cholesterol cardiovascular risk",
	}
	for _, p := range texts {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	const shards = 4
	cache, err := shard.NewFlat(dim, shards, core.Options{
		Capacity: 8, Tolerance: 1, Policy: core.LRU,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	for _, p := range texts {
		if _, err := client.Query(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardCount != shards {
		t.Errorf("shardCount = %d, want %d", st.ShardCount, shards)
	}
	if len(st.Shards) != shards {
		t.Fatalf("shards payload has %d entries, want %d", len(st.Shards), shards)
	}
	if st.ShardImbalance < 1 {
		t.Errorf("shardImbalance = %v, want >= 1", st.ShardImbalance)
	}
	entries, capacity := 0, 0
	for i, s := range st.Shards {
		if s.Shard != i {
			t.Errorf("shard %d labeled %d", i, s.Shard)
		}
		if s.Capacity <= 0 {
			t.Errorf("shard %d capacity = %d, want > 0", i, s.Capacity)
		}
		if want := float64(s.Entries) / float64(s.Capacity); s.Occupancy != want {
			t.Errorf("shard %d occupancy = %v, want %v", i, s.Occupancy, want)
		}
		entries += s.Entries
		capacity += s.Capacity
	}
	if entries != st.Entries {
		t.Errorf("per-shard entries sum %d != total %d", entries, st.Entries)
	}
	if capacity != st.Capacity {
		t.Errorf("per-shard capacity sum %d != total %d", capacity, st.Capacity)
	}
	if st.Misses != int64(len(texts)) {
		t.Errorf("misses = %d, want %d", st.Misses, len(texts))
	}

	// The unsharded server keeps the compact payload.
	plain, _, _ := newTestServer(t, true, false)
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	stPlain, err := NewClient(tsPlain.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.ShardCount != 0 || len(stPlain.Shards) != 0 {
		t.Errorf("unsharded stats carry shard fields: %+v", stPlain)
	}
}
