package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// newTelemetryServer wires a middleware whose retriever and server share
// one always-sampling telemetry hub.
func newTelemetryServer(t *testing.T) (*Server, embed.Embedder, *telemetry.Telemetry) {
	t.Helper()
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	passages := []string{
		"aspirin heart attack prevention dosage",
		"ibuprofen inflammation joint pain",
		"melatonin sleep circadian rhythm",
	}
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range passages {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := core.NewFlat(dim, core.Options{Capacity: 8, Tolerance: 1, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(telemetry.Options{SampleEvery: 1, RingSize: 16})
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return srv, enc, tel
}

func TestMetricsEndpoint(t *testing.T) {
	srv, enc, _ := newTelemetryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	emb := enc.Embed("aspirin heart attack prevention dosage")
	if _, err := client.Retrieve(emb); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Retrieve(emb); err != nil {
		t.Fatal(err)
	}

	body, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE proximity_stage_latency_seconds histogram",
		`proximity_stage_latency_seconds_count{stage="cache_lookup"} 2`,
		`proximity_stage_latency_seconds_count{stage="db_search"} 1`,
		"proximity_cache_hits_total 1",
		"proximity_cache_misses_total 1",
		"proximity_cache_entries 1",
		"proximity_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	srv, enc, _ := newTelemetryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	emb := enc.Embed("ibuprofen inflammation joint pain")
	for i := 0; i < 3; i++ {
		if _, err := client.Retrieve(emb); err != nil {
			t.Fatal(err)
		}
	}
	traces, err := client.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	// Newest first: the last two retrievals hit (one cache_lookup span);
	// the first missed (lookup + db_search + cache_fill).
	if len(traces[0].Spans) != 1 || traces[0].Spans[0].Stage != telemetry.StageCacheLookup {
		t.Errorf("hit trace spans = %+v", traces[0].Spans)
	}
	if len(traces[2].Spans) != 3 {
		t.Errorf("miss trace spans = %+v", traces[2].Spans)
	}
	if traces[0].ID == traces[1].ID {
		t.Error("trace IDs must be distinct")
	}

	limited, err := client.Traces(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 || limited[0].ID != traces[0].ID {
		t.Errorf("Traces(1) = %+v", limited)
	}
}

func TestForeignTraceHeader(t *testing.T) {
	srv, enc, tel := newTelemetryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	emb := enc.Embed("melatonin sleep circadian rhythm")
	resp, spans, err := client.RetrieveTraced(emb, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hit {
		t.Error("first retrieval should miss")
	}
	if len(spans) != 3 {
		t.Fatalf("foreign spans = %+v, want lookup+db_search+fill", spans)
	}
	for _, sp := range spans {
		if sp.Dur < 0 {
			t.Errorf("span %+v has negative duration", sp)
		}
	}
	// A foreign-traced request must NOT enter this node's local ring —
	// its timeline belongs to the parent.
	if recent := tel.Tracer.Recent(0); len(recent) != 0 {
		t.Errorf("foreign trace leaked into local ring: %d", len(recent))
	}

	// traceID 0 degrades to a plain retrieve: no span header.
	_, spans, err = client.RetrieveTraced(emb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spans != nil {
		t.Errorf("untraced call returned spans: %+v", spans)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	srv, _, _ := newTelemetryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.GoVersion == "" || h.GoVersion == "unknown" {
		t.Errorf("go version = %q", h.GoVersion)
	}
	if h.Module == "" {
		t.Error("module missing")
	}
}

func TestPprofOptIn(t *testing.T) {
	srv, _, _ := newTelemetryServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Off by default.
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof should be off by default")
	}

	on, _, telHub := newTelemetryServerPprof(t)
	_ = telHub
	ts2 := httptest.NewServer(on.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

// newTelemetryServerPprof is newTelemetryServer with pprof enabled.
func newTelemetryServerPprof(t *testing.T) (*Server, embed.Embedder, *telemetry.Telemetry) {
	t.Helper()
	base, enc, tel := newTelemetryServer(t)
	srv, err := New(Config{
		Retriever:   base.cfg.Retriever,
		Telemetry:   tel,
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, enc, tel
}
