package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/tier"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// TestStatsTierFields: serving from a tiered cache surfaces the tiers
// block through /v1/stats and the proximity_tier_* series through
// /metrics; a flat cache omits both.
func TestStatsTierFields(t *testing.T) {
	const dim = 16
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add(enc.Embed("seed doc")); err != nil {
		t.Fatal(err)
	}
	cache, err := tier.New(dim, tier.Options{
		HotCapacity:  8,
		WarmCapacity: 64,
		Tolerance:    0.5,
		Policy:       core.LRU,
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the hot tier so demotions flow, then re-query an old key
	// so a warm hit and promotion flow too.
	rng := vec.NewRand(11)
	var keys []vec.Vector
	for i := 0; i < 40; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
		cache.Put(k, []int{i})
		keys = append(keys, k)
	}
	if _, ok := cache.Get(keys[20]); !ok {
		t.Fatal("expected warm hit on demoted key")
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiers == nil {
		t.Fatal("tiered cache server omitted the tiers stats block")
	}
	if st.Tiers.HotCapacity != 8 || st.Tiers.WarmCapacity != 64 {
		t.Errorf("tier capacities = %d/%d, want 8/64", st.Tiers.HotCapacity, st.Tiers.WarmCapacity)
	}
	if st.Tiers.HotEntries+st.Tiers.WarmEntries != cache.Len() {
		t.Errorf("tier gauge sum %d != Len %d", st.Tiers.HotEntries+st.Tiers.WarmEntries, cache.Len())
	}
	if st.Tiers.Demotions == 0 || st.Tiers.WarmHits == 0 || st.Tiers.Promotions == 0 {
		t.Errorf("tier flow counters not surfaced: %+v", st.Tiers)
	}
	if st.Tiers.WarmBytes == 0 {
		t.Errorf("warm bytes gauge not surfaced: %+v", st.Tiers)
	}

	body, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"proximity_tier_hot_entries",
		"proximity_tier_warm_entries",
		"proximity_tier_warm_bytes",
		"proximity_tier_hot_hits_total",
		"proximity_tier_warm_hits_total",
		"proximity_tier_promotions_total",
		"proximity_tier_demotions_total",
		"proximity_tier_warm_discards_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	// A flat cache must omit the block and the series.
	flat, err := core.NewFlat(dim, core.Options{Capacity: 64, Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	retr2, err := core.NewCachedRetriever(flat, db, core.RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Retriever: retr2, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := NewClient(ts2.URL)
	st2, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tiers != nil {
		t.Errorf("flat cache server emitted a tiers stats block: %+v", st2.Tiers)
	}
	body2, err := client2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(body2, "proximity_tier_") {
		t.Error("flat cache server registered proximity_tier_* series")
	}
}
