// Package server exposes the Proximity retrieval path as an HTTP
// middleware service: the deployment shape the paper targets, where the
// cache intercepts queries on their way to the vector database (Fig. 4).
// The service accepts raw text (embedded server-side) or pre-computed
// embeddings, and reports cache statistics for operational monitoring.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/shard"
	"proximity/internal/vec"
)

// Documents resolves retrieved indices to their text, so responses can
// carry the passages an LLM prompt needs. Optional.
type Documents interface {
	// Text returns the passage text for a document ID.
	Text(id int) (string, error)
}

// Config wires a Server.
type Config struct {
	// Retriever is the cache+database retrieval path (required).
	Retriever *core.CachedRetriever
	// Embedder encodes text queries (required for /v1/query).
	Embedder embed.Embedder
	// Docs resolves passage text (optional).
	Docs Documents
}

// Server is the HTTP middleware. Create with New, mount via Handler, or
// run with ListenAndServe.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// New validates the config and builds the routes.
func New(cfg Config) (*Server, error) {
	if cfg.Retriever == nil {
		return nil, errors.New("server: retriever is required")
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/retrieve", s.handleRetrieve)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/flush", s.handleFlush)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// Handler returns the HTTP handler for mounting into a custom server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe starts serving on addr, returning the bound listener
// address through the ready callback (useful with addr ":0").
func (s *Server) ListenAndServe(addr string, ready func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// RetrieveRequest asks for the nearest documents to an embedding.
type RetrieveRequest struct {
	Embedding []float32 `json:"embedding"`
}

// QueryRequest asks for the nearest documents to a text query.
type QueryRequest struct {
	Text string `json:"text"`
}

// RetrieveResponse reports one retrieval.
type RetrieveResponse struct {
	Docs        []int    `json:"docs"`
	Texts       []string `json:"texts,omitempty"`
	Hit         bool     `json:"hit"`
	CacheMicros float64  `json:"cacheLookupMicros"`
	DBMillis    float64  `json:"dbServiceMillis"`
}

// StatsResponse is the /v1/stats payload. The shard fields are present
// only when the cache is a shard.ShardedCache (or anything else exposing
// a pressure report).
type StatsResponse struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hitRate"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Evictions int64   `json:"evictions"`

	// ShardCount is the number of cache partitions (0 = unsharded).
	ShardCount int `json:"shardCount,omitempty"`
	// ShardImbalance is max shard entries over mean shard entries
	// (1.0 = perfectly even spread).
	ShardImbalance float64 `json:"shardImbalance,omitempty"`
	// Shards holds per-shard occupancy and eviction counters.
	Shards []ShardStat `json:"shards,omitempty"`

	// Batch holds miss-coalescing/batching counters, present only when
	// the retriever's miss path runs through a batch.Pipeline.
	Batch *BatchStats `json:"batch,omitempty"`
}

// BatchStats is the miss-path coalescing/batching slice of the stats
// payload.
type BatchStats struct {
	Searches       int64   `json:"searches"`
	Coalesced      int64   `json:"coalesced"`
	CoalesceRate   float64 `json:"coalesceRate"`
	Flushes        int64   `json:"flushes"`
	SizeFlushes    int64   `json:"sizeFlushes"`
	TimeoutFlushes int64   `json:"timeoutFlushes"`
	DrainFlushes   int64   `json:"drainFlushes"`
	MeanBatchSize  float64 `json:"meanBatchSize"`
	Errors         int64   `json:"errors"`
}

// ShardStat is one shard's slice of the stats payload.
type ShardStat struct {
	Shard     int     `json:"shard"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Occupancy float64 `json:"occupancy"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
}

// pressureReporter is the shard-occupancy view a sharded cache exposes;
// satisfied by shard.ShardedCache.
type pressureReporter interface {
	Report() shard.PressureReport
}

// batchStatser is the counter view the miss-coalescing pipeline exposes;
// satisfied by batch.Pipeline.
type batchStatser interface {
	Stats() batch.Stats
}

func (s *Server) handleRetrieve(w http.ResponseWriter, r *http.Request) {
	var req RetrieveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Embedding) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("embedding is required"))
		return
	}
	s.retrieve(w, req.Embedding)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Embedder == nil {
		httpError(w, http.StatusNotImplemented, errors.New("no embedder configured"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Text == "" {
		httpError(w, http.StatusBadRequest, errors.New("text is required"))
		return
	}
	s.retrieve(w, s.cfg.Embedder.Embed(req.Text))
}

func (s *Server) retrieve(w http.ResponseWriter, embedding vec.Vector) {
	res, err := s.cfg.Retriever.Retrieve(embedding)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := RetrieveResponse{
		Docs:        res.Docs,
		Hit:         res.Hit,
		CacheMicros: float64(res.CacheLookup) / float64(time.Microsecond),
		DBMillis:    float64(res.DBTime) / float64(time.Millisecond),
	}
	if s.cfg.Docs != nil {
		resp.Texts = make([]string, 0, len(res.Docs))
		for _, id := range res.Docs {
			text, err := s.cfg.Docs.Text(id)
			if err != nil {
				httpError(w, http.StatusInternalServerError, fmt.Errorf("resolve doc %d: %w", id, err))
				return
			}
			resp.Texts = append(resp.Texts, text)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var batchStats *BatchStats
	if bs, ok := s.cfg.Retriever.Searcher().(batchStatser); ok {
		st := bs.Stats()
		batchStats = &BatchStats{
			Searches:       st.Searches,
			Coalesced:      st.Coalesced,
			CoalesceRate:   st.CoalesceRate(),
			Flushes:        st.Flushes,
			SizeFlushes:    st.SizeFlushes,
			TimeoutFlushes: st.TimeoutFlushes,
			DrainFlushes:   st.DrainFlushes,
			MeanBatchSize:  st.MeanBatch(),
			Errors:         st.Errors,
		}
	}
	cache := s.cfg.Retriever.Cache()
	if cache == nil {
		writeJSON(w, http.StatusOK, StatsResponse{Batch: batchStats})
		return
	}
	st := cache.Stats()
	resp := StatsResponse{
		Batch:     batchStats,
		Hits:      st.Hits,
		Misses:    st.Misses,
		HitRate:   st.HitRate(),
		Entries:   cache.Len(),
		Capacity:  cache.Capacity(),
		Evictions: st.Evictions,
	}
	if pr, ok := cache.(pressureReporter); ok {
		rep := pr.Report()
		resp.ShardCount = len(rep.Shards)
		resp.ShardImbalance = rep.Imbalance
		resp.Shards = make([]ShardStat, len(rep.Shards))
		for i, s := range rep.Shards {
			resp.Shards[i] = ShardStat{
				Shard:     s.Shard,
				Entries:   s.Entries,
				Capacity:  s.Capacity,
				Occupancy: s.Occupancy,
				Hits:      s.Hits,
				Misses:    s.Misses,
				Evictions: s.Evictions,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if cache := s.cfg.Retriever.Cache(); cache != nil {
		cache.Clear()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding fails only on marshal errors of our own types or on a
	// closed connection; neither is recoverable here.
	_ = json.NewEncoder(w).Encode(v)
}
