// Package server exposes the Proximity retrieval path as an HTTP
// middleware service: the deployment shape the paper targets, where the
// cache intercepts queries on their way to the vector database (Fig. 4).
// The service accepts raw text (embedded server-side) or pre-computed
// embeddings, and reports cache statistics for operational monitoring.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/rebalance"
	"proximity/internal/shard"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

// Documents resolves retrieved indices to their text, so responses can
// carry the passages an LLM prompt needs. Optional.
type Documents interface {
	// Text returns the passage text for a document ID.
	Text(id int) (string, error)
}

// Rebalancer is the admin surface of a rebalance controller (satisfied
// by rebalance.Controller): the stats endpoint reads its counters and
// /v1/rebalance triggers a manual action.
type Rebalancer interface {
	Stats() rebalance.Stats
	TriggerNow() (rebalance.Outcome, error)
}

// Config wires a Server.
type Config struct {
	// Retriever is the cache+database retrieval path (required).
	Retriever *core.CachedRetriever
	// Embedder encodes text queries (required for /v1/query).
	Embedder embed.Embedder
	// Docs resolves passage text (optional).
	Docs Documents
	// Rebalancer exposes an adaptive rebalance controller on the admin
	// surface (optional; /v1/rebalance returns 501 without one).
	Rebalancer Rebalancer
	// Telemetry is the observability hub behind /metrics and /v1/traces.
	// When nil, the retriever's hub is used; when that is nil too, a
	// standalone hub is created so /metrics always answers (its stage
	// histograms then stay empty — the retriever observes into its own).
	Telemetry *telemetry.Telemetry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in
	// because profile endpoints on a production port are an operator
	// decision, not a default.
	EnablePprof bool
	// Logger receives structured error-path logs (5xx responses). Nil
	// uses slog.Default.
	Logger *slog.Logger
}

// Server is the HTTP middleware. Create with New, mount via Handler, or
// run with ListenAndServe.
type Server struct {
	cfg Config
	mux *http.ServeMux
	tel *telemetry.Telemetry
	log *slog.Logger
}

// New validates the config and builds the routes.
func New(cfg Config) (*Server, error) {
	if cfg.Retriever == nil {
		return nil, errors.New("server: retriever is required")
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), tel: cfg.Telemetry, log: cfg.Logger}
	if s.tel == nil {
		s.tel = cfg.Retriever.Telemetry()
	}
	if s.tel == nil {
		s.tel = telemetry.New(telemetry.Options{})
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	s.registerMetrics()
	s.mux.HandleFunc("POST /v1/retrieve", s.handleRetrieve)
	s.mux.HandleFunc("POST /v1/retrieve/batch", s.handleRetrieveBatch)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("POST /v1/flush", s.handleFlush)
	s.mux.HandleFunc("POST /v1/rebalance", s.handleRebalance)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// registerMetrics wires the process's operational counters into the
// telemetry registry. Collectors read live values at scrape time; caches
// whose Stats fan out over the network (statsSnapshotter — the cluster
// client) are skipped so a scrape never triggers remote calls.
func (s *Server) registerMetrics() {
	reg := s.tel.Registry
	if reg == nil {
		return
	}
	telemetry.RegisterRuntimeMetrics(reg)
	ret := s.cfg.Retriever
	if cache := ret.Cache(); cache != nil {
		if _, remote := cache.(statsSnapshotter); !remote {
			reg.CounterFunc(telemetry.MetricCacheHitsTotal, "Cache hits.",
				func() float64 { return float64(cache.Stats().Hits) })
			reg.CounterFunc(telemetry.MetricCacheMissesTotal, "Cache misses.",
				func() float64 { return float64(cache.Stats().Misses) })
			reg.CounterFunc(telemetry.MetricCacheEvictionsTotal, "Cache evictions.",
				func() float64 { return float64(cache.Stats().Evictions) })
			reg.CounterFunc(telemetry.MetricCachePutsTotal, "Cache fills.",
				func() float64 { return float64(cache.Stats().Puts) })
			reg.CounterFunc(telemetry.MetricCacheDistCompsTotal,
				"Exact distance computations performed by cache lookups.",
				func() float64 { return float64(cache.Stats().DistComps) })
			reg.GaugeFunc(telemetry.MetricCacheEntries, "Resident cache entries.",
				func() float64 { return float64(cache.Len()) })
			reg.GaugeFunc(telemetry.MetricCacheCapacity, "Configured cache capacity.",
				func() float64 { return float64(cache.Capacity()) })
		}
		if is, ok := cache.(core.IndexStatser); ok {
			reg.CounterFunc(telemetry.MetricIndexGraphHopsTotal,
				"Graph-index traversal hops.",
				func() float64 { return float64(is.IndexStats().GraphHops) })
			reg.CounterFunc(telemetry.MetricIndexReranksTotal,
				"Exact re-rank passes after graph traversal.",
				func() float64 { return float64(is.IndexStats().Reranks) })
			reg.GaugeFunc(telemetry.MetricIndexTombstones,
				"Tombstoned (deleted, not yet reused) graph slots.",
				func() float64 { return float64(is.IndexStats().Tombstones) })
			reg.CounterFunc(telemetry.MetricIndexReusedSlotsTotal,
				"Evicted graph slots recycled for new entries.",
				func() float64 { return float64(is.IndexStats().ReusedSlots) })
			reg.CounterFunc(telemetry.MetricIndexSeveredInEdgesTotal,
				"Stale incoming edges cut at slot reuse.",
				func() float64 { return float64(is.IndexStats().SeveredInEdges) })
			reg.CounterFunc(telemetry.MetricIndexRepairPassesTotal,
				"Incremental graph-maintenance passes.",
				func() float64 { return float64(is.IndexStats().RepairPasses) })
			reg.CounterFunc(telemetry.MetricIndexRepairedNodesTotal,
				"Degraded neighborhoods re-linked by maintenance.",
				func() float64 { return float64(is.IndexStats().RepairedNodes) })
			reg.GaugeFunc(telemetry.MetricIndexRepairPending,
				"Graph nodes queued for repair.",
				func() float64 { return float64(is.IndexStats().PendingRepair) })
		}
		if ts, ok := cache.(core.TierStatser); ok {
			reg.GaugeFunc(telemetry.MetricTierHotEntries, "Resident hot-tier entries.",
				func() float64 { return float64(ts.TierStats().HotEntries) })
			reg.GaugeFunc(telemetry.MetricTierHotCapacity, "Configured hot-tier capacity.",
				func() float64 { return float64(ts.TierStats().HotCapacity) })
			reg.GaugeFunc(telemetry.MetricTierWarmEntries, "Resident warm-tier entries.",
				func() float64 { return float64(ts.TierStats().WarmEntries) })
			reg.GaugeFunc(telemetry.MetricTierWarmCapacity, "Configured warm-tier capacity.",
				func() float64 { return float64(ts.TierStats().WarmCapacity) })
			reg.GaugeFunc(telemetry.MetricTierWarmBytes, "Vector bytes resident in warm record files.",
				func() float64 { return float64(ts.TierStats().WarmBytes) })
			reg.CounterFunc(telemetry.MetricTierHotHitsTotal, "Lookups served by the hot tier.",
				func() float64 { return float64(ts.TierStats().HotHits) })
			reg.CounterFunc(telemetry.MetricTierWarmHitsTotal, "Lookups served by the warm tier.",
				func() float64 { return float64(ts.TierStats().WarmHits) })
			reg.CounterFunc(telemetry.MetricTierPromotionsTotal,
				"Warm entries moved back into the hot tier on a hit.",
				func() float64 { return float64(ts.TierStats().Promotions) })
			reg.CounterFunc(telemetry.MetricTierDemotionsTotal,
				"Hot-tier evictions absorbed into the warm tier.",
				func() float64 { return float64(ts.TierStats().Demotions) })
			reg.CounterFunc(telemetry.MetricTierWarmDiscardsTotal,
				"Entries aged out of the warm tier (true evictions).",
				func() float64 { return float64(ts.TierStats().WarmDiscards) })
			reg.CounterFunc(telemetry.MetricTierWarmScannedTotal,
				"Warm vectors read and exactly compared during lookups.",
				func() float64 { return float64(ts.TierStats().WarmScanned) })
			reg.CounterFunc(telemetry.MetricTierWarmPrunedTotal,
				"Warm entries skipped by pivot lower bounds without a record read.",
				func() float64 { return float64(ts.TierStats().WarmPruned) })
		}
	}
	if bs, ok := ret.Searcher().(batchStatser); ok {
		reg.CounterFunc(telemetry.MetricBatchSearchesTotal,
			"Searches entering the miss-coalescing pipeline.",
			func() float64 { return float64(bs.Stats().Searches) })
		reg.CounterFunc(telemetry.MetricBatchCoalescedTotal,
			"Searches served from another request's flight.",
			func() float64 { return float64(bs.Stats().Coalesced) })
		reg.CounterFunc(telemetry.MetricBatchFlushesTotal,
			"Batched SearchBatch calls issued to the index.",
			func() float64 { return float64(bs.Stats().Flushes) })
		reg.CounterFunc(telemetry.MetricBatchErrorsTotal,
			"Pipeline searches that returned a backend error.",
			func() float64 { return float64(bs.Stats().Errors) })
	}
	if pd, ok := ret.Searcher().(interface{ Pending() int }); ok {
		reg.GaugeFunc(telemetry.MetricBatchQueueDepth,
			"Gathered-but-unflushed searches across batch queues.",
			func() float64 { return float64(pd.Pending()) })
	}
}

// Handler returns the HTTP handler for mounting into a custom server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe starts serving on addr, returning the bound listener
// address through the ready callback (useful with addr ":0").
func (s *Server) ListenAndServe(addr string, ready func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// Listen binds addr (use "127.0.0.1:0" for an ephemeral loopback port)
// and serves in a background goroutine, returning the bound address and a
// stop function. Stop closes the listener and every active connection
// immediately — the abrupt-death shape the cluster failure tests need —
// so a stopped node looks exactly like a crashed one to its clients.
func (s *Server) Listen(addr string) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("server: listen: %w", err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// RetrieveRequest asks for the nearest documents to an embedding.
type RetrieveRequest struct {
	Embedding []float32 `json:"embedding"`
}

// QueryRequest asks for the nearest documents to a text query.
type QueryRequest struct {
	Text string `json:"text"`
}

// RetrieveResponse reports one retrieval.
type RetrieveResponse struct {
	Docs        []int    `json:"docs"`
	Texts       []string `json:"texts,omitempty"`
	Hit         bool     `json:"hit"`
	CacheMicros float64  `json:"cacheLookupMicros"`
	DBMillis    float64  `json:"dbServiceMillis"`
}

// BatchRetrieveRequest asks for the nearest documents to several
// embeddings in one call — the submission shape the cluster router's
// per-node batch submitters use to amortize the HTTP round trip across a
// gathered batch. Elements are served concurrently (so they reach a
// node-side miss-coalescing pipeline together); results stay parallel to
// the request, but elements of one batch observe no ordering among
// themselves.
type BatchRetrieveRequest struct {
	Embeddings [][]float32 `json:"embeddings"`
}

// BatchItem is one element of a batched retrieval.
type BatchItem struct {
	Docs []int `json:"docs"`
	Hit  bool  `json:"hit"`
}

// BatchRetrieveResponse reports a batched retrieval; Results is parallel
// to the request's Embeddings.
type BatchRetrieveResponse struct {
	Results []BatchItem `json:"results"`
}

// MaxBatchElements caps one batched-retrieve request. Elements are
// served concurrently, so the cap bounds the goroutines (and retrievals)
// a single caller can demand of a node.
const MaxBatchElements = 256

// StatsResponse is the /v1/stats payload. The shard fields are present
// only when the cache is a shard.ShardedCache (or anything else exposing
// a pressure report).
type StatsResponse struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hitRate"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Evictions int64   `json:"evictions"`

	// ShardCount is the number of cache partitions (0 = unsharded).
	ShardCount int `json:"shardCount,omitempty"`
	// ShardImbalance is max shard entries over mean shard entries
	// (1.0 = perfectly even spread).
	ShardImbalance float64 `json:"shardImbalance,omitempty"`
	// Shards holds per-shard occupancy and eviction counters.
	Shards []ShardStat `json:"shards,omitempty"`

	// Batch holds miss-coalescing/batching counters, present only when
	// the retriever's miss path runs through a batch.Pipeline.
	Batch *BatchStats `json:"batch,omitempty"`

	// Rebalance holds adaptive-rebalancing counters, present only when
	// a controller is configured.
	Rebalance *RebalanceStats `json:"rebalance,omitempty"`

	// Index holds graph-index counters (node/tombstone counts, traversal
	// hops, exact re-ranks), present only when the cache is backed by a
	// graph index (core.IndexedCache, possibly sharded).
	Index *IndexStats `json:"index,omitempty"`

	// Tiers holds the hot/warm tier breakdown (per-tier occupancy, hit
	// split, promotion/demotion traffic), present only when the cache is
	// tiered (tier.TieredCache, possibly sharded).
	Tiers *TierStats `json:"tiers,omitempty"`
}

// IndexStats is the graph-index slice of the stats payload. The repair
// fields describe churn maintenance: slot-reuse in-edge severing plus
// the incremental background re-link pass.
type IndexStats struct {
	Nodes           int   `json:"nodes"`
	Slots           int   `json:"slots"`
	Tombstones      int   `json:"tombstones"`
	GraphHops       int64 `json:"graphHops"`
	Reranks         int64 `json:"reranks"`
	BruteScans      int64 `json:"bruteScans"`
	Searches        int64 `json:"searches"`
	ReusedSlots     int64 `json:"reusedSlots"`
	SeveredInEdges  int64 `json:"severedInEdges"`
	ReroutedInEdges int64 `json:"reroutedInEdges"`
	DroppedInRefs   int64 `json:"droppedInRefs"`
	RepairPasses    int64 `json:"repairPasses"`
	RepairedNodes   int64 `json:"repairedNodes"`
	PendingRepair   int   `json:"pendingRepair"`
	RepairNanos     int64 `json:"repairNanos"`
}

// TierStats is the tiered-cache slice of the stats payload: occupancy
// gauges per tier, the hit split by serving tier, and the
// demotion/promotion flow between them.
type TierStats struct {
	HotEntries   int   `json:"hotEntries"`
	HotCapacity  int   `json:"hotCapacity"`
	WarmEntries  int   `json:"warmEntries"`
	WarmCapacity int   `json:"warmCapacity"`
	WarmBytes    int64 `json:"warmBytes"`
	HotHits      int64 `json:"hotHits"`
	WarmHits     int64 `json:"warmHits"`
	Promotions   int64 `json:"promotions"`
	Demotions    int64 `json:"demotions"`
	WarmDiscards int64 `json:"warmDiscards"`
	WarmLookups  int64 `json:"warmLookups"`
	WarmScanned  int64 `json:"warmScanned"`
	WarmPruned   int64 `json:"warmPruned"`
}

// RebalanceStats is the adaptive-rebalancing slice of the stats payload.
type RebalanceStats struct {
	Samples       int64   `json:"samples"`
	Breaches      int64   `json:"breaches"`
	Triggers      int64   `json:"triggers"`
	Rebalances    int64   `json:"rebalances"`
	Declined      int64   `json:"declined"`
	Failures      int64   `json:"failures"`
	LastImbalance float64 `json:"lastImbalance"`
	LastBefore    float64 `json:"lastBefore"`
	LastAfter     float64 `json:"lastAfter"`
	LastMoved     int     `json:"lastMoved"`
	LastDetail    string  `json:"lastDetail,omitempty"`
	LastError     string  `json:"lastError,omitempty"`
}

// RebalanceResponse reports one manually-triggered rebalance action.
type RebalanceResponse struct {
	Acted  bool    `json:"acted"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	Moved  int     `json:"moved"`
	Detail string  `json:"detail,omitempty"`
}

// BatchStats is the miss-path coalescing/batching slice of the stats
// payload.
type BatchStats struct {
	Searches       int64   `json:"searches"`
	Coalesced      int64   `json:"coalesced"`
	CoalesceRate   float64 `json:"coalesceRate"`
	Flushes        int64   `json:"flushes"`
	SizeFlushes    int64   `json:"sizeFlushes"`
	TimeoutFlushes int64   `json:"timeoutFlushes"`
	DrainFlushes   int64   `json:"drainFlushes"`
	MeanBatchSize  float64 `json:"meanBatchSize"`
	Errors         int64   `json:"errors"`
}

// ShardStat is one shard's slice of the stats payload.
type ShardStat struct {
	Shard     int     `json:"shard"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Occupancy float64 `json:"occupancy"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
}

// pressureReporter is the shard-occupancy view a sharded cache exposes;
// satisfied by shard.ShardedCache.
type pressureReporter interface {
	Report() shard.PressureReport
}

// batchStatser is the counter view the miss-coalescing pipeline exposes;
// satisfied by batch.Pipeline.
type batchStatser interface {
	Stats() batch.Stats
}

// statsSnapshotter lets a cache deliver its counters, entry count, and
// capacity in one call; satisfied by cluster.Client, where the three
// separate Cache methods would each fan a remote stats fetch out to
// every node.
type statsSnapshotter interface {
	StatsSnapshot() (stats core.Stats, entries, capacity int)
}

func (s *Server) handleRetrieve(w http.ResponseWriter, r *http.Request) {
	var req RetrieveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Embedding) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("embedding is required"))
		return
	}
	s.retrieve(w, r, req.Embedding)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Embedder == nil {
		httpError(w, http.StatusNotImplemented, errors.New("no embedder configured"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Text == "" {
		httpError(w, http.StatusBadRequest, errors.New("text is required"))
		return
	}
	s.retrieve(w, r, s.cfg.Embedder.Embed(req.Text))
}

func (s *Server) handleRetrieveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRetrieveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Embeddings) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("at least one embedding is required"))
		return
	}
	// Each element gets a goroutine below, so the batch size bounds the
	// concurrency one request can demand of the node; reject oversized
	// batches rather than let an arbitrary caller OOM the server (the
	// cluster submitter's flushes are far smaller than this cap).
	if len(req.Embeddings) > MaxBatchElements {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the %d-element limit", len(req.Embeddings), MaxBatchElements))
		return
	}
	for i, emb := range req.Embeddings {
		if len(emb) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("embedding %d is empty", i))
			return
		}
	}
	// Serve the elements concurrently: the batched endpoint exists so a
	// gathered burst arrives at this node's miss-coalescing pipeline
	// TOGETHER — a sequential loop would feed the coalescer one query at
	// a time, each gathering alone and paying the full flush timeout
	// with zero SearchBatch amortization. Fan-in keeps the wire
	// contract: results parallel to the request, and the first failure
	// fails the whole batch (the cluster client's retry unit).
	resp := BatchRetrieveResponse{Results: make([]BatchItem, len(req.Embeddings))}
	errs := make([]error, len(req.Embeddings))
	var wg sync.WaitGroup
	for i, emb := range req.Embeddings {
		wg.Add(1)
		go func(i int, emb vec.Vector) {
			defer wg.Done()
			res, err := s.cfg.Retriever.Retrieve(emb)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Results[i] = BatchItem{Docs: res.Docs, Hit: res.Hit}
		}(i, emb)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			s.fail(w, r.URL.Path, retrieveStatus(err), fmt.Errorf("embedding %d: %w", i, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// retrieveStatus classifies a Retriever.Retrieve error: only failures the
// caller provoked with malformed input (a query of the wrong
// dimensionality) are client errors; everything else — backend search
// failures, re-rank source errors — is an internal fault. The cluster
// router depends on this split: 5xx marks a node unhealthy and retries
// the query on the next ring replica, while 4xx surfaces immediately
// because every replica would reject the same input.
func retrieveStatus(err error) int {
	if errors.Is(err, vec.ErrDimensionMismatch) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) retrieve(w http.ResponseWriter, r *http.Request, embedding vec.Vector) {
	// Trace admission: a request arriving with the propagation header is
	// part of a trace some upstream router already sampled — record
	// under its ID and return this node's spans in the response header.
	// Otherwise this node makes its own sampling decision.
	ctx := r.Context()
	var trace *telemetry.Trace
	foreign := false
	if id, ok := telemetry.ParseTraceID(r.Header.Get(telemetry.TraceHeader)); ok {
		ctx, trace = s.tel.Tracer.StartForeign(ctx, id)
		foreign = trace != nil
	} else {
		ctx, trace = s.tel.StartTrace(ctx)
	}

	res, err := s.cfg.Retriever.RetrieveContext(ctx, embedding)
	if foreign {
		if enc, mErr := telemetry.MarshalSpans(trace.Spans()); mErr == nil && enc != "" {
			w.Header().Set(telemetry.TraceSpanHeader, enc)
		}
	}
	trace.Finish()
	if err != nil {
		s.fail(w, r.URL.Path, retrieveStatus(err), err)
		return
	}
	resp := RetrieveResponse{
		Docs:        res.Docs,
		Hit:         res.Hit,
		CacheMicros: float64(res.CacheLookup) / float64(time.Microsecond),
		DBMillis:    float64(res.DBTime) / float64(time.Millisecond),
	}
	if s.cfg.Docs != nil {
		resp.Texts = make([]string, 0, len(res.Docs))
		for _, id := range res.Docs {
			text, err := s.cfg.Docs.Text(id)
			if err != nil {
				s.fail(w, r.URL.Path, http.StatusInternalServerError, fmt.Errorf("resolve doc %d: %w", id, err))
				return
			}
			resp.Texts = append(resp.Texts, text)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// fail writes an error response, logging server faults (5xx) through the
// structured logger; client errors (4xx) stay quiet — they are the
// caller's bug, not an operational signal.
func (s *Server) fail(w http.ResponseWriter, path string, code int, err error) {
	if code >= 500 {
		s.log.Error("request failed", "path", path, "status", code, "err", err)
	}
	httpError(w, code, err)
}

// handleMetrics serves the Prometheus text exposition of every
// registered series: cache counters, batch/queue gauges, per-stage
// latency histograms, and runtime self-sampling.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.Registry.WritePrometheus(w)
}

// TracesResponse is the /v1/traces payload: recent sampled traces,
// newest first.
type TracesResponse struct {
	Traces []telemetry.TraceRecord `json:"traces"`
}

// handleTraces serves the ring buffer of recent sampled traces. The
// optional ?n= query bounds the count (default: everything buffered).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		n = parsed
	}
	recs := s.tel.Tracer.Recent(n)
	if recs == nil {
		recs = []telemetry.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: recs})
}

// HealthResponse is the /v1/healthz payload: liveness plus build
// identity, so a fleet operator can verify node homogeneity.
type HealthResponse struct {
	Status    string `json:"status"`
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
}

// handleHealthz is the build-info health check (the bare /healthz stays
// as the minimal liveness probe the cluster router polls).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	bi := telemetry.ReadBuildInfo()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Module:    bi.Module,
		Version:   bi.Version,
		GoVersion: bi.GoVersion,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var batchStats *BatchStats
	if bs, ok := s.cfg.Retriever.Searcher().(batchStatser); ok {
		st := bs.Stats()
		batchStats = &BatchStats{
			Searches:       st.Searches,
			Coalesced:      st.Coalesced,
			CoalesceRate:   st.CoalesceRate(),
			Flushes:        st.Flushes,
			SizeFlushes:    st.SizeFlushes,
			TimeoutFlushes: st.TimeoutFlushes,
			DrainFlushes:   st.DrainFlushes,
			MeanBatchSize:  st.MeanBatch(),
			Errors:         st.Errors,
		}
	}
	var rebStats *RebalanceStats
	if s.cfg.Rebalancer != nil {
		st := s.cfg.Rebalancer.Stats()
		rebStats = &RebalanceStats{
			Samples:       st.Samples,
			Breaches:      st.Breaches,
			Triggers:      st.Triggers,
			Rebalances:    st.Rebalances,
			Declined:      st.Declined,
			Failures:      st.Failures,
			LastImbalance: st.LastSample.Imbalance,
			LastBefore:    st.LastOutcome.Before,
			LastAfter:     st.LastOutcome.After,
			LastMoved:     st.LastOutcome.Moved,
			LastDetail:    st.LastOutcome.Detail,
			LastError:     st.LastError,
		}
	}
	cache := s.cfg.Retriever.Cache()
	if cache == nil {
		writeJSON(w, http.StatusOK, StatsResponse{Batch: batchStats, Rebalance: rebStats})
		return
	}
	// Caches whose counters are expensive to assemble (the cluster
	// client fans a remote fetch out per node) provide all three
	// aggregates in one snapshot; plain caches answer the three cheap
	// calls directly.
	var st core.Stats
	var entries, capacity int
	if snap, ok := cache.(statsSnapshotter); ok {
		st, entries, capacity = snap.StatsSnapshot()
	} else {
		st, entries, capacity = cache.Stats(), cache.Len(), cache.Capacity()
	}
	resp := StatsResponse{
		Batch:     batchStats,
		Rebalance: rebStats,
		Hits:      st.Hits,
		Misses:    st.Misses,
		HitRate:   st.HitRate(),
		Entries:   entries,
		Capacity:  capacity,
		Evictions: st.Evictions,
	}
	// A sharded flat/LSH cache also satisfies core.IndexStatser (its
	// aggregation just finds no indexed sub-caches), so gate the block
	// on the stats being non-zero rather than on the type alone.
	if is, ok := cache.(core.IndexStatser); ok {
		if st := is.IndexStats(); st != (core.IndexStats{}) {
			resp.Index = &IndexStats{
				Nodes:           st.Nodes,
				Slots:           st.Slots,
				Tombstones:      st.Tombstones,
				GraphHops:       st.GraphHops,
				Reranks:         st.Reranks,
				BruteScans:      st.BruteScans,
				Searches:        st.Searches,
				ReusedSlots:     st.ReusedSlots,
				SeveredInEdges:  st.SeveredInEdges,
				ReroutedInEdges: st.ReroutedInEdges,
				DroppedInRefs:   st.DroppedInRefs,
				RepairPasses:    st.RepairPasses,
				RepairedNodes:   st.RepairedNodes,
				PendingRepair:   st.PendingRepair,
				RepairNanos:     st.RepairNanos,
			}
		}
	}
	// Same non-zero gating as Index: a sharded flat/LSH cache satisfies
	// core.TierStatser through aggregation that finds no tiered
	// sub-caches.
	if ts, ok := cache.(core.TierStatser); ok {
		if st := ts.TierStats(); st != (core.TierStats{}) {
			resp.Tiers = &TierStats{
				HotEntries:   st.HotEntries,
				HotCapacity:  st.HotCapacity,
				WarmEntries:  st.WarmEntries,
				WarmCapacity: st.WarmCapacity,
				WarmBytes:    st.WarmBytes,
				HotHits:      st.HotHits,
				WarmHits:     st.WarmHits,
				Promotions:   st.Promotions,
				Demotions:    st.Demotions,
				WarmDiscards: st.WarmDiscards,
				WarmLookups:  st.WarmLookups,
				WarmScanned:  st.WarmScanned,
				WarmPruned:   st.WarmPruned,
			}
		}
	}
	if pr, ok := cache.(pressureReporter); ok {
		rep := pr.Report()
		resp.ShardCount = len(rep.Shards)
		resp.ShardImbalance = rep.Imbalance
		resp.Shards = make([]ShardStat, len(rep.Shards))
		for i, s := range rep.Shards {
			resp.Shards[i] = ShardStat{
				Shard:     s.Shard,
				Entries:   s.Entries,
				Capacity:  s.Capacity,
				Occupancy: s.Occupancy,
				Hits:      s.Hits,
				Misses:    s.Misses,
				Evictions: s.Evictions,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// pipelineResetter is the flush-time reset hook of the miss-coalescing
// pipeline; satisfied by batch.Pipeline.
type pipelineResetter interface {
	Reset()
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if cache := s.cfg.Retriever.Cache(); cache != nil {
		cache.Clear()
	}
	// A flush promises a clean slate, and the batch pipeline holds state
	// the cache Clear does not reach: gathered-but-unflushed waiters and
	// the /v1/stats batch counters. Drain and zero them too, or
	// post-flush stats would misreport pre-flush traffic.
	if rs, ok := s.cfg.Retriever.Searcher().(pipelineResetter); ok {
		rs.Reset()
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRebalance triggers one manual rebalance through the configured
// controller — the operator's override when waiting for the sustained-
// breach window is not wanted (e.g. right after a deliberate skew, or in
// a runbook). The controller's post-action cooldown still arms.
func (s *Server) handleRebalance(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Rebalancer == nil {
		httpError(w, http.StatusNotImplemented, errors.New("no rebalance controller configured"))
		return
	}
	out, err := s.cfg.Rebalancer.TriggerNow()
	if err != nil {
		// Only a genuine collision with another in-flight action is a
		// retryable 409; an actuator failure (factory error mid-rebuild,
		// hasher construction) is an internal fault — the same
		// 4xx-vs-5xx split the retrieve path draws, and a runbook must
		// not retry a 500 blindly against a possibly half-migrated cache.
		code := http.StatusInternalServerError
		if errors.Is(err, rebalance.ErrBusy) || errors.Is(err, shard.ErrMigrationInProgress) {
			code = http.StatusConflict
		}
		s.fail(w, "/v1/rebalance", code, err)
		return
	}
	s.log.Info("rebalance committed",
		"acted", out.Acted, "before", out.Before, "after", out.After, "moved", out.Moved)
	writeJSON(w, http.StatusOK, RebalanceResponse{
		Acted:  out.Acted,
		Before: out.Before,
		After:  out.After,
		Moved:  out.Moved,
		Detail: out.Detail,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding fails only on marshal errors of our own types or on a
	// closed connection; neither is recoverable here.
	_ = json.NewEncoder(w).Encode(v)
}
