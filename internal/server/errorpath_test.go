package server

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/embed"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// flakyDB wraps a DB, failing every Search while broken is set — the
// backend-outage shape whose status code the cluster retry logic keys on.
type flakyDB struct {
	vectordb.DB
	broken atomic.Bool
}

var errBackendDown = errors.New("backend connection lost")

func (f *flakyDB) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if f.broken.Load() {
		return nil, errBackendDown
	}
	return f.DB.Search(q, k)
}

// newFlakyServer wires a middleware over a switchable-failure backend.
func newFlakyServer(t *testing.T) (*httptest.Server, *flakyDB, embed.Embedder) {
	t.Helper()
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"aspirin dosage", "ibuprofen pain", "melatonin sleep"} {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	flaky := &flakyDB{DB: db}
	retr, err := core.NewCachedRetriever(nil, flaky, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, flaky, enc
}

// TestRetrieveErrorStatus: malformed input (wrong dimensionality) is the
// caller's fault → 400; a backend failure is the server's fault → 500.
// Before the fix every Retrieve error mapped to 400, so a cluster client
// could not tell "this query is bad everywhere" from "this node is sick,
// try the next replica".
func TestRetrieveErrorStatus(t *testing.T) {
	ts, flaky, enc := newFlakyServer(t)
	client := NewClient(ts.URL)

	// Wrong dimensionality → 400.
	_, err := client.Retrieve([]float32{1, 2, 3})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("dimension mismatch: got %v, want StatusError 400", err)
	}

	// Backend failure → 500.
	flaky.broken.Store(true)
	_, err = client.Retrieve(enc.Embed("aspirin dosage"))
	if !errors.As(err, &se) || se.Code != 500 {
		t.Fatalf("backend failure: got %v, want StatusError 500", err)
	}

	// Recovery: the same query succeeds once the backend is back.
	flaky.broken.Store(false)
	if _, err := client.Retrieve(enc.Embed("aspirin dosage")); err != nil {
		t.Fatalf("recovered backend: %v", err)
	}
}

// TestRetrieveBatchRoundTrip: the batched endpoint returns one result per
// embedding, parallel to the request, with per-item hit flags.
func TestRetrieveBatchRoundTrip(t *testing.T) {
	srv, _, enc := newTestServer(t, false, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	q1 := enc.Embed("aspirin heart attack prevention dosage")
	q2 := enc.Embed("melatonin sleep circadian rhythm")
	resp, err := client.RetrieveBatch([][]float32{q1, q2, q1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for i, r := range resp.Results {
		if len(r.Docs) == 0 {
			t.Errorf("result %d returned no docs", i)
		}
	}
	// Elements of one batch run concurrently, so the intra-batch repeat
	// of q1 may race its twin; docs must agree regardless.
	if fmt.Sprint(resp.Results[0].Docs) != fmt.Sprint(resp.Results[2].Docs) {
		t.Errorf("repeat query changed docs: %v vs %v", resp.Results[0].Docs, resp.Results[2].Docs)
	}

	// A second batch sees the first one's fills: everything hits.
	resp, err = client.RetrieveBatch([][]float32{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if !r.Hit {
			t.Errorf("result %d of the repeat batch should hit the warm cache", i)
		}
	}
}

// TestRetrieveBatchErrorStatus: batched retrieval classifies errors the
// same way as the single endpoint.
func TestRetrieveBatchErrorStatus(t *testing.T) {
	ts, flaky, enc := newFlakyServer(t)
	client := NewClient(ts.URL)
	good := enc.Embed("aspirin dosage")

	var se *StatusError
	if _, err := client.RetrieveBatch(nil); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("empty batch: got %v, want StatusError 400", err)
	}
	if _, err := client.RetrieveBatch([][]float32{good, {}}); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("empty embedding: got %v, want StatusError 400", err)
	}
	oversized := make([][]float32, MaxBatchElements+1)
	for i := range oversized {
		oversized[i] = good
	}
	if _, err := client.RetrieveBatch(oversized); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("oversized batch: got %v, want StatusError 400", err)
	}
	if _, err := client.RetrieveBatch([][]float32{good, {1, 2}}); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("dimension mismatch: got %v, want StatusError 400", err)
	}
	flaky.broken.Store(true)
	if _, err := client.RetrieveBatch([][]float32{good}); !errors.As(err, &se) || se.Code != 500 {
		t.Fatalf("backend failure: got %v, want StatusError 500", err)
	}
}

// TestFlushResetsBatchPipeline: /v1/flush must leave the batch pipeline
// as clean as the cache — before the fix the coalescer/queue counters
// survived the flush and post-flush /v1/stats misreported pre-flush
// traffic.
func TestFlushResetsBatchPipeline(t *testing.T) {
	const dim = 32
	enc := embed.NewTokenHash(dim, 1)
	db, err := vectordb.NewFlatIndex(dim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"aspirin dosage", "ibuprofen pain", "melatonin sleep"}
	for _, p := range texts {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}
	pipe, err := batch.New(db, batch.Options{Queues: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	cache, err := core.NewFlat(dim, core.Options{Capacity: 8, Tolerance: 1, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2, Searcher: pipe})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Retriever: retr, Embedder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	for _, p := range texts {
		if _, err := client.Query(p); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batch == nil || st.Batch.Searches == 0 {
		t.Fatalf("pre-flush stats should show batch traffic, got %+v", st.Batch)
	}

	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err = client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 {
		t.Errorf("post-flush entries = %d, want 0", st.Entries)
	}
	if st.Batch == nil {
		t.Fatal("batch block should survive the flush (zeroed, not dropped)")
	}
	if st.Batch.Searches != 0 || st.Batch.Flushes != 0 || st.Batch.Coalesced != 0 {
		t.Errorf("post-flush batch counters not reset: %+v", st.Batch)
	}

	// The pipeline must stay serviceable after the reset.
	if _, err := client.Query(texts[0]); err != nil {
		t.Fatal(err)
	}
	if st, err = client.Stats(); err != nil {
		t.Fatal(err)
	}
	if st.Batch.Searches != 1 {
		t.Errorf("post-flush traffic not counted from zero: searches = %d, want 1", st.Batch.Searches)
	}
}
