package server

import (
	"testing"
	"time"
)

// TestListenAndServeReadyCallback exercises the ephemeral-port startup
// path the ragserver example uses.
func TestListenAndServeReadyCallback(t *testing.T) {
	srv, _, enc := newTestServer(t, true, false)
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() {
		errs <- srv.ListenAndServe("127.0.0.1:0", func(addr string) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errs:
		t.Fatalf("server failed to start: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not become ready")
	}
	client := NewClient(base)
	if !client.Healthy() {
		t.Fatal("health check failed over TCP")
	}
	res, err := client.Retrieve(enc.Embed("aspirin heart attack prevention dosage"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) == 0 {
		t.Error("expected documents over TCP transport")
	}
	// The listener goroutine keeps running; the process exit reaps it
	// (ListenAndServe has no shutdown hook by design — the middleware
	// runs for the process lifetime, like the paper's deployment).
}

func TestListenAndServeBadAddress(t *testing.T) {
	srv, _, _ := newTestServer(t, false, false)
	if err := srv.ListenAndServe("256.0.0.1:99999", nil); err == nil {
		t.Error("invalid address should error")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	if client.Healthy() {
		t.Error("health check against a dead server should fail")
	}
	if _, err := client.Retrieve([]float32{1}); err == nil {
		t.Error("retrieve against a dead server should error")
	}
	if _, err := client.Stats(); err == nil {
		t.Error("stats against a dead server should error")
	}
	if err := client.Flush(); err == nil {
		t.Error("flush against a dead server should error")
	}
}
