package server

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestClientReusesConnectionsOnErrorPaths: a response body closed before
// it is fully read forces the transport to drop the TCP connection, so a
// client that never drains error replies opens a fresh connection per
// failed request — the connection-churn leak the cluster loadtest
// surfaces when a node is degraded. Every client path (success, 4xx, 5xx,
// stats, flush, health) must leave the connection reusable: the whole
// sequence below should ride a single keep-alive connection.
func TestClientReusesConnectionsOnErrorPaths(t *testing.T) {
	srv, flaky, enc := newFlakyServerConnCounted(t)
	defer srv.ts.Close()
	client := NewClient(srv.ts.URL)
	good := enc.Embed("aspirin dosage")

	for i := 0; i < 5; i++ {
		if _, err := client.Retrieve(good); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Retrieve([]float32{1}); err == nil { // 400
			t.Fatal("dimension mismatch should error")
		}
		flaky.broken.Store(true)
		if _, err := client.Retrieve(good); err == nil { // 500
			t.Fatal("broken backend should error")
		}
		if _, err := client.RetrieveBatch([][]float32{good}); err == nil { // 500
			t.Fatal("broken backend should error on the batch path")
		}
		flaky.broken.Store(false)
		if _, err := client.Stats(); err != nil {
			t.Fatal(err)
		}
		if err := client.Flush(); err != nil {
			t.Fatal(err)
		}
		if !client.Healthy() {
			t.Fatal("health check failed")
		}
	}
	if n := srv.conns.Load(); n != 1 {
		t.Errorf("sequential requests opened %d connections, want 1 (bodies not drained before close?)", n)
	}
}

// connCountedServer wraps an httptest server that counts accepted TCP
// connections.
type connCountedServer struct {
	ts    *httptest.Server
	conns atomic.Int64
}

func newFlakyServerConnCounted(t *testing.T) (*connCountedServer, *flakyDB, interface{ Embed(string) []float32 }) {
	t.Helper()
	ts, flaky, enc := newFlakyServer(t)
	handler := ts.Config.Handler
	ts.Close()

	out := &connCountedServer{}
	out.ts = httptest.NewUnstartedServer(handler)
	out.ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			out.conns.Add(1)
		}
	}
	out.ts.Start()
	return out, flaky, enc
}
