package workload

import (
	"testing"

	"proximity/internal/core"
	"proximity/internal/dataset"
)

func TestBurstyValidation(t *testing.T) {
	b := testBench(t) // 30 questions
	if _, err := Bursty(b, BurstyConfig{Total: 0}); err == nil {
		t.Error("total 0 should error")
	}
	if _, err := Bursty(b, BurstyConfig{Total: 10, WorkingSet: 100}); err == nil {
		t.Error("oversized working set should error")
	}
}

func TestBurstyShape(t *testing.T) {
	b := testBench(t)
	w, err := Bursty(b, BurstyConfig{Total: 400, BurstLength: 50, WorkingSet: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 400 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Within one burst only the working set appears.
	for burst := 0; burst < 8; burst++ {
		qs := make(map[int]struct{})
		for i := burst * 50; i < (burst+1)*50; i++ {
			qs[w.Queries[i].Question] = struct{}{}
		}
		if len(qs) > 5 {
			t.Errorf("burst %d touched %d questions, working set is 5", burst, len(qs))
		}
	}
	// Surface forms stay unique.
	texts := make(map[string]struct{}, w.Len())
	for _, q := range w.Queries {
		if _, dup := texts[q.Text]; dup {
			t.Fatalf("duplicate paraphrase %q", q.Text)
		}
		texts[q.Text] = struct{}{}
	}
}

func TestBurstyDeterminism(t *testing.T) {
	b := testBench(t)
	w1, err := Bursty(b, BurstyConfig{Total: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Bursty(b, BurstyConfig{Total: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Queries {
		if w1.Queries[i].Text != w2.Queries[i].Text {
			t.Fatal("same seed must generate the same stream")
		}
	}
}

// Validates the paper's §3.3.2 claim: under bursty traffic with strong
// temporal locality, LRU outperforms FIFO, because a cache smaller than
// the cumulative question set must preferentially retain the entries the
// current burst keeps touching.
func TestBurstyLRUBeatsFIFO(t *testing.T) {
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions: 60, Topics: 10, DocsPerTopic: 4, Dim: 128, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Bursty(bench, BurstyConfig{
		Total: 1500, BurstLength: 150, WorkingSet: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	hitRate := func(policy core.Policy) float64 {
		// Capacity 6 < working set 10: the cache cannot hold a whole
		// burst, so the eviction policy decides whether the Zipf-hot
		// head of the working set stays resident (LRU) or rotates out
		// by insertion age (FIFO).
		cache, err := core.NewFlat(bench.Dim(), core.Options{
			Capacity:  6,
			Tolerance: 5,
			Policy:    policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range w.Queries {
			if _, ok := cache.Get(q.Embedding); !ok {
				cache.Put(q.Embedding, []int{q.Question})
			}
		}
		return cache.Stats().HitRate()
	}
	lru, fifo := hitRate(core.LRU), hitRate(core.FIFO)
	t.Logf("bursty workload: LRU hit rate %.3f vs FIFO %.3f", lru, fifo)
	if lru <= fifo {
		t.Errorf("LRU (%.3f) should beat FIFO (%.3f) under bursty traffic (§3.3.2)", lru, fifo)
	}
}
