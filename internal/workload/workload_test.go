package workload

import (
	"testing"

	"proximity/internal/dataset"
	"proximity/internal/vec"
)

func testBench(t *testing.T) *dataset.Benchmark {
	t.Helper()
	b, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions: 30, Topics: 6, DocsPerTopic: 5, Dim: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestUniformVariants(t *testing.T) {
	b := testBench(t)
	w, err := UniformVariants(b, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 120 {
		t.Fatalf("Len = %d, want 120", w.Len())
	}
	if w.UniqueQuestions() != 30 {
		t.Errorf("UniqueQuestions = %d", w.UniqueQuestions())
	}
	if got := w.MaxHitRate(); got != 0.75 {
		t.Errorf("MaxHitRate = %v, want 0.75 (4 variants)", got)
	}
	// Each question appears exactly 4 times with distinct occurrence
	// indices and texts.
	type key struct{ q, v int }
	seen := make(map[key]string)
	for _, q := range w.Queries {
		k := key{q.Question, q.Occurrence}
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate (question, variant) pair %v", k)
		}
		seen[k] = q.Text
	}
	// Embeddings must match the benchmark encoder.
	enc := b.Embedder()
	for _, q := range w.Queries[:5] {
		if !vec.Equal(q.Embedding, enc.Embed(q.Text)) {
			t.Fatal("embedding does not match encoder output")
		}
	}
}

func TestUniformVariantsValidation(t *testing.T) {
	b := testBench(t)
	if _, err := UniformVariants(b, 0, 1); err == nil {
		t.Error("0 variants should error")
	}
}

func TestUniformVariantsShuffled(t *testing.T) {
	b := testBench(t)
	w, err := UniformVariants(b, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The stream must not be grouped by question: count adjacent pairs
	// with the same question; grouped order would give ~75%.
	same := 0
	for i := 1; i < w.Len(); i++ {
		if w.Queries[i].Question == w.Queries[i-1].Question {
			same++
		}
	}
	if frac := float64(same) / float64(w.Len()-1); frac > 0.3 {
		t.Errorf("stream looks unshuffled: %.2f adjacent same-question pairs", frac)
	}
}

func TestUniformVariantsDeterminism(t *testing.T) {
	b := testBench(t)
	w1, err := UniformVariants(b, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := UniformVariants(b, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Queries {
		if w1.Queries[i].Text != w2.Queries[i].Text {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestZipfVariants(t *testing.T) {
	b := testBench(t)
	w, err := ZipfVariants(b, 600, 0.8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 600 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.UniqueQuestions() != 30 {
		t.Errorf("every question must appear at least once, got %d/30", w.UniqueQuestions())
	}
	// All surface forms unique (paper: verified unique across dataset).
	texts := make(map[string]struct{}, w.Len())
	for _, q := range w.Queries {
		if _, dup := texts[q.Text]; dup {
			t.Fatalf("duplicate paraphrase %q", q.Text)
		}
		texts[q.Text] = struct{}{}
	}
	// Skew: the most frequent question must dominate.
	counts := make(map[int]int)
	for _, q := range w.Queries {
		counts[q.Question]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 40 { // 600 draws over 30 questions, Zipf(0.8): head ≫ mean of 20
		t.Errorf("head question count = %d, expected strong skew", maxCount)
	}
}

func TestZipfVariantsValidation(t *testing.T) {
	b := testBench(t)
	if _, err := ZipfVariants(b, 10, 0.8, 1); err == nil {
		t.Error("total below question count should error")
	}
	if _, err := ZipfVariants(b, 100, -1, 1); err == nil {
		t.Error("invalid exponent should error")
	}
}

func TestFromTripClick(t *testing.T) {
	log, err := dataset.NewTripClick(dataset.TripClickConfig{
		UniqueQueries: 50, TotalQueries: 400, Topics: 5, DocsPerTopic: 4, Dim: 64, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := FromTripClick(log)
	if w.Len() != 400 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Repeats are exact: same question → same text and same embedding
	// values.
	byQuestion := make(map[int]Query)
	for _, q := range w.Queries {
		if prev, ok := byQuestion[q.Question]; ok {
			if prev.Text != q.Text || !vec.Equal(prev.Embedding, q.Embedding) {
				t.Fatal("tripclick repeats must be exact")
			}
		} else {
			byQuestion[q.Question] = q
		}
	}
	if len(byQuestion) != 50 {
		t.Errorf("unique questions = %d", len(byQuestion))
	}
	// Order preserved from the log.
	for i := range w.Queries {
		if w.Queries[i].Question != log.Stream[i] {
			t.Fatal("workload must preserve log order")
		}
	}
}

func TestMaxHitRateEmpty(t *testing.T) {
	var w Workload
	if w.MaxHitRate() != 0 {
		t.Error("empty workload MaxHitRate should be 0")
	}
}
