// Package workload materializes the query streams of §4.2.2: the
// *uniform* datasets (every question repeated four times in slight
// variations, shuffled), the *Zipf* dataset (10k draws from a Zipf(0.8)
// over the question set, every occurrence uniquely rephrased), and the
// TripClick log replay (exact repeats in log order). A workload carries
// pre-computed embeddings so experiments measure cache and database time,
// not encoding time — matching the paper, where the encoder runs before
// the retriever in both cached and uncached pipelines.
package workload

import (
	"fmt"

	"proximity/internal/dataset"
	"proximity/internal/vec"
	"proximity/internal/zipf"
)

// Query is one workload element.
type Query struct {
	// Text is the surface form issued to the pipeline.
	Text string
	// Embedding is the pre-computed query embedding.
	Embedding vec.Vector
	// Question is the position of the underlying question in the
	// benchmark's Questions slice (not the Question.ID, which subsets
	// preserve from the full set).
	Question int
	// Occurrence distinguishes repeats of the same question (variant
	// index for uniform workloads, global draw index for skewed ones).
	Occurrence int
}

// Workload is an ordered query stream.
type Workload struct {
	Name    string
	Queries []Query
}

// Len returns the number of queries.
func (w Workload) Len() int { return len(w.Queries) }

// UniqueQuestions returns how many distinct benchmark questions appear.
func (w Workload) UniqueQuestions() int {
	seen := make(map[int]struct{})
	for _, q := range w.Queries {
		seen[q.Question] = struct{}{}
	}
	return len(seen)
}

// MaxHitRate returns the best hit rate any cache could reach on this
// workload: repeats of a question can hit, first occurrences cannot
// (unless tolerance admits cross-question matches).
func (w Workload) MaxHitRate() float64 {
	if len(w.Queries) == 0 {
		return 0
	}
	return 1 - float64(w.UniqueQuestions())/float64(len(w.Queries))
}

// UniformVariants builds the uniform workload: `variants` variations of
// every benchmark question, shuffled (§4.2.2: four variants each, 524
// queries for MMLU, 800 for MedRAG).
func UniformVariants(b *dataset.Benchmark, variants int, seed uint64) (Workload, error) {
	if variants <= 0 {
		return Workload{}, fmt.Errorf("workload: variants must be positive, got %d", variants)
	}
	enc := b.Embedder()
	queries := make([]Query, 0, len(b.Questions)*variants)
	for qi, q := range b.Questions {
		for v := 0; v < variants; v++ {
			text := b.VariantText(q, v)
			queries = append(queries, Query{
				Text:       text,
				Embedding:  enc.Embed(text),
				Question:   qi,
				Occurrence: v,
			})
		}
	}
	shuffle(queries, seed)
	return Workload{Name: b.Name + "-uniform", Queries: queries}, nil
}

// ZipfVariants builds the skewed workload: `total` draws from a bounded
// Zipf over the question set, each occurrence uniquely rephrased, with
// every question appearing at least once (§4.2.2's MedRAG-Zipf:
// 10k draws, exponent 0.8, most frequent question ≈700 times). Queries
// are statistically independent — the paper's stated worst case for
// temporal locality.
func ZipfVariants(b *dataset.Benchmark, total int, exponent float64, seed uint64) (Workload, error) {
	if total < len(b.Questions) {
		return Workload{}, fmt.Errorf("workload: total %d below question count %d", total, len(b.Questions))
	}
	rng := vec.NewRand(seed)
	sampler, err := zipf.NewSampler(rng, len(b.Questions), exponent)
	if err != nil {
		return Workload{}, fmt.Errorf("workload: %w", err)
	}
	rankToQuestion := rng.Perm(len(b.Questions))

	// Draw the question sequence, then patch coverage before paying
	// for paraphrase generation and embedding.
	draws := make([]int, total)
	counts := make([]int, len(b.Questions))
	for i := range draws {
		draws[i] = rankToQuestion[sampler.Next()]
		counts[draws[i]]++
	}
	pos := total - 1
	for qid, c := range counts {
		if c > 0 {
			continue
		}
		for pos >= 0 && counts[draws[pos]] < 2 {
			pos--
		}
		if pos < 0 {
			return Workload{}, fmt.Errorf("workload: cannot guarantee coverage of %d questions in %d draws",
				len(b.Questions), total)
		}
		counts[draws[pos]]--
		draws[pos] = qid
		counts[qid]++
	}

	enc := b.Embedder()
	queries := make([]Query, total)
	for i, qid := range draws {
		text := b.ParaphraseText(b.Questions[qid], i)
		queries[i] = Query{
			Text:       text,
			Embedding:  enc.Embed(text),
			Question:   qid,
			Occurrence: i,
		}
	}
	shuffle(queries, seed+1)
	return Workload{Name: b.Name + "-zipf", Queries: queries}, nil
}

// FromTripClick replays the synthetic TripClick log: exact repeats in log
// order, embeddings shared across occurrences of the same query.
func FromTripClick(log *dataset.TripClickLog) Workload {
	enc := log.Bench.Embedder()
	embeds := make([]vec.Vector, len(log.Bench.Questions))
	for i, q := range log.Bench.Questions {
		embeds[i] = enc.Embed(q.Text)
	}
	queries := make([]Query, len(log.Stream))
	for i, qid := range log.Stream {
		queries[i] = Query{
			Text:       log.Bench.Questions[qid].Text,
			Embedding:  embeds[qid],
			Question:   qid,
			Occurrence: i,
		}
	}
	return Workload{Name: "tripclick-log", Queries: queries}
}

// shuffle is a seeded Fisher-Yates permutation.
func shuffle(qs []Query, seed uint64) {
	rng := vec.NewRand(seed)
	for i := len(qs) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		qs[i], qs[j] = qs[j], qs[i]
	}
}
