package workload

import (
	"fmt"

	"proximity/internal/dataset"
	"proximity/internal/vec"
	"proximity/internal/zipf"
)

// BurstyConfig parameterizes a workload with temporal locality. The
// paper's MedRAG-Zipf stream is deliberately i.i.d. — "a worst-case
// scenario for caching" (§4.2.2) — and its §3.3.2 remarks that LRU should
// beat FIFO precisely when traffic is bursty. This workload provides the
// missing regime so that claim can be validated: queries arrive in bursts
// during which a small working set of questions dominates, and the
// working set drifts over time.
type BurstyConfig struct {
	// Total is the number of queries to generate.
	Total int
	// BurstLength is how many queries share one working set.
	BurstLength int
	// WorkingSet is how many questions are hot within a burst.
	WorkingSet int
	// Exponent is the Zipf skew applied within the working set.
	Exponent float64
	// Seed drives everything.
	Seed uint64
}

func (c *BurstyConfig) fillDefaults() {
	if c.BurstLength == 0 {
		c.BurstLength = 100
	}
	if c.WorkingSet == 0 {
		c.WorkingSet = 10
	}
	if c.Exponent == 0 {
		c.Exponent = 0.8
	}
}

// Bursty builds the temporally-local workload: each burst picks a fresh
// working set of questions (sliding over the question list) and draws
// queries Zipf-skewed from it, each occurrence uniquely rephrased.
func Bursty(b *dataset.Benchmark, cfg BurstyConfig) (Workload, error) {
	cfg.fillDefaults()
	if cfg.Total <= 0 {
		return Workload{}, fmt.Errorf("workload: bursty total must be positive, got %d", cfg.Total)
	}
	if cfg.WorkingSet > len(b.Questions) {
		return Workload{}, fmt.Errorf("workload: working set %d exceeds question count %d",
			cfg.WorkingSet, len(b.Questions))
	}
	rng := vec.NewRand(cfg.Seed)
	sampler, err := zipf.NewSampler(rng, cfg.WorkingSet, cfg.Exponent)
	if err != nil {
		return Workload{}, fmt.Errorf("workload: bursty sampler: %w", err)
	}
	enc := b.Embedder()

	queries := make([]Query, 0, cfg.Total)
	var working []int
	for i := 0; i < cfg.Total; i++ {
		if i%cfg.BurstLength == 0 {
			// New burst: sample a fresh working set.
			perm := rng.Perm(len(b.Questions))
			working = perm[:cfg.WorkingSet]
		}
		qi := working[sampler.Next()]
		text := b.ParaphraseText(b.Questions[qi], i)
		queries = append(queries, Query{
			Text:       text,
			Embedding:  enc.Embed(text),
			Question:   qi,
			Occurrence: i,
		})
	}
	return Workload{Name: b.Name + "-bursty", Queries: queries}, nil
}
