package tsne

import (
	"errors"
	"fmt"
	"math"

	"proximity/internal/vec"
)

// Config parameterizes the t-SNE optimization.
type Config struct {
	// Perplexity targets the effective neighborhood size (default 30,
	// clamped to (n-1)/3).
	Perplexity float64
	// Iterations is the gradient-descent step count (default 300).
	Iterations int
	// LearningRate defaults to 200.
	LearningRate float64
	// Seed drives the initial layout.
	Seed uint64
}

func (c *Config) fillDefaults(n int) {
	if c.Perplexity == 0 {
		c.Perplexity = 30
	}
	if maxPerp := float64(n-1) / 3; c.Perplexity > maxPerp && maxPerp > 1 {
		c.Perplexity = maxPerp
	}
	if c.Iterations == 0 {
		c.Iterations = 300
	}
	if c.LearningRate == 0 {
		c.LearningRate = 200
	}
}

// Embed runs exact (O(n²)) t-SNE on the given points (rows of equal
// length, typically PCA output) and returns 2-D coordinates.
func Embed(points [][]float64, cfg Config) ([][2]float64, error) {
	n := len(points)
	if n < 4 {
		return nil, errors.New("tsne: need at least 4 points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("tsne: row %d has dim %d, expected %d", i, len(p), d)
		}
	}
	cfg.fillDefaults(n)

	// Pairwise squared distances in the input space.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.0
			for k := 0; k < d; k++ {
				diff := points[i][k] - points[j][k]
				s += diff * diff
			}
			d2[i][j], d2[j][i] = s, s
		}
	}

	p := conditionalProbabilities(d2, cfg.Perplexity)
	// Symmetrize and normalize.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j], p[j][i] = v, v
		}
		p[i][i] = 0
	}

	// Initial layout ~ N(0, 1e-4).
	rng := vec.NewRand(cfg.Seed)
	y := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	vel := make([][2]float64, n)

	const (
		exaggeration     = 4.0
		exaggerationEnds = 0.33 // fraction of iterations
	)
	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if float64(iter) < exaggerationEnds*float64(cfg.Iterations) {
			exag = exaggeration
		}
		momentum := 0.5
		if iter > cfg.Iterations/2 {
			momentum = 0.8
		}

		// Student-t affinities in the output space.
		q := make([][]float64, n)
		sumQ := 0.0
		for i := 0; i < n; i++ {
			q[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				w := 1 / (1 + dx*dx + dy*dy)
				q[i][j], q[j][i] = w, w
				sumQ += 2 * w
			}
		}

		for i := 0; i < n; i++ {
			var gx, gy float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				qij := q[i][j] / sumQ
				if qij < 1e-12 {
					qij = 1e-12
				}
				mult := (exag*p[i][j] - qij) * q[i][j]
				gx += mult * (y[i][0] - y[j][0])
				gy += mult * (y[i][1] - y[j][1])
			}
			vel[i][0] = momentum*vel[i][0] - cfg.LearningRate*4*gx
			vel[i][1] = momentum*vel[i][1] - cfg.LearningRate*4*gy
		}
		for i := 0; i < n; i++ {
			y[i][0] += vel[i][0]
			y[i][1] += vel[i][1]
		}
	}
	return y, nil
}

// conditionalProbabilities computes p(j|i) with a per-point bandwidth
// found by binary search to match the target perplexity.
func conditionalProbabilities(d2 [][]float64, perplexity float64) [][]float64 {
	n := len(d2)
	target := math.Log(perplexity)
	p := make([][]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0 // precision 1/(2σ²)
		for step := 0; step < 50; step++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p[i][j] = math.Exp(-d2[i][j] * beta)
				sum += p[i][j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			// Shannon entropy of the conditional distribution.
			entropy := 0.0
			for j := 0; j < n; j++ {
				if j == i || p[i][j] == 0 {
					continue
				}
				pj := p[i][j] / sum
				if pj > 1e-12 {
					entropy -= pj * math.Log(pj)
				}
			}
			for j := 0; j < n; j++ {
				p[i][j] /= sum
			}
			if math.Abs(entropy-target) < 1e-4 {
				break
			}
			if entropy > target {
				lo = beta
				if hi == 1e20 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				if lo == 1e-20 {
					beta /= 2
				} else {
					beta = (beta + lo) / 2
				}
			}
		}
	}
	return p
}

// GridDensity rasterizes 2-D points into a cells×cells count grid over
// their bounding box — the rendering of Fig. 3.
func GridDensity(points [][2]float64, cells int) ([][]int, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("tsne: cells must be positive, got %d", cells)
	}
	if len(points) == 0 {
		return nil, errors.New("tsne: no points")
	}
	minX, maxX := points[0][0], points[0][0]
	minY, maxY := points[0][1], points[0][1]
	for _, p := range points {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	grid := make([][]int, cells)
	for i := range grid {
		grid[i] = make([]int, cells)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	for _, p := range points {
		cx := int(float64(cells) * (p[0] - minX) / spanX)
		cy := int(float64(cells) * (p[1] - minY) / spanY)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		grid[cy][cx]++
	}
	return grid, nil
}

// ClusterScore measures how well labeled points cluster in 2-D: the ratio
// of mean inter-label distance to mean intra-label distance (higher means
// tighter clusters). A score meaningfully above 1 reproduces Fig. 3's
// observation that semantically related queries group together.
func ClusterScore(points [][2]float64, labels []int) (float64, error) {
	if len(points) != len(labels) {
		return 0, errors.New("tsne: points/labels length mismatch")
	}
	if len(points) < 2 {
		return 0, errors.New("tsne: need at least 2 points")
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			dx := points[i][0] - points[j][0]
			dy := points[i][1] - points[j][1]
			dist := math.Hypot(dx, dy)
			if labels[i] == labels[j] {
				intra += dist
				nIntra++
			} else {
				inter += dist
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		return 0, errors.New("tsne: need both intra- and inter-label pairs")
	}
	return (inter / float64(nInter)) / (intra / float64(nIntra)), nil
}
