package tsne

import (
	"math"
	"testing"

	"proximity/internal/vec"
)

func TestPCAValidation(t *testing.T) {
	if _, err := PCA(nil, 2, 1); err == nil {
		t.Error("empty data should error")
	}
	data := []vec.Vector{{1, 2}, {3, 4}}
	if _, err := PCA(data, 0, 1); err == nil {
		t.Error("0 components should error")
	}
	if _, err := PCA(data, 3, 1); err == nil {
		t.Error("components > dim should error")
	}
	if _, err := PCA([]vec.Vector{{1, 2}, {1}}, 1, 1); err == nil {
		t.Error("ragged input should error")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points spread along (1, 1, 0)/√2 with small noise: the first
	// component must align with that axis.
	rng := vec.NewRand(3)
	data := make([]vec.Vector, 200)
	for i := range data {
		tval := float32(rng.NormFloat64() * 10)
		data[i] = vec.Vector{
			tval + float32(rng.NormFloat64())*0.1,
			tval + float32(rng.NormFloat64())*0.1,
			float32(rng.NormFloat64()) * 0.1,
		}
	}
	proj, err := PCA(data, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 200 || len(proj[0]) != 2 {
		t.Fatalf("projection shape wrong: %d×%d", len(proj), len(proj[0]))
	}
	// Variance along component 1 must dominate component 2.
	var v1, v2 float64
	for _, p := range proj {
		v1 += p[0] * p[0]
		v2 += p[1] * p[1]
	}
	if v1 < 50*v2 {
		t.Errorf("first component variance %v should dominate second %v", v1, v2)
	}
}

func TestPCAProjectionPreservesClusterSeparation(t *testing.T) {
	rng := vec.NewRand(5)
	centerA := vec.Scale(vec.RandomUnit(rng, 64), 10)
	centerB := vec.Scale(vec.RandomUnit(rng, 64), 10)
	var data []vec.Vector
	var labels []int
	for i := 0; i < 60; i++ {
		data = append(data, vec.GaussianAround(rng, centerA, 0.2))
		labels = append(labels, 0)
		data = append(data, vec.GaussianAround(rng, centerB, 0.2))
		labels = append(labels, 1)
	}
	proj, err := PCA(data, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Project to [2]float64 and check clusters separate.
	pts := make([][2]float64, len(proj))
	for i, p := range proj {
		pts[i] = [2]float64{p[0], p[1]}
	}
	score, err := ClusterScore(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 2 {
		t.Errorf("PCA cluster score = %v, want clear separation", score)
	}
}

func TestTSNEValidation(t *testing.T) {
	if _, err := Embed(nil, Config{}); err == nil {
		t.Error("empty input should error")
	}
	small := [][]float64{{1}, {2}, {3}}
	if _, err := Embed(small, Config{}); err == nil {
		t.Error("fewer than 4 points should error")
	}
	ragged := [][]float64{{1, 2}, {1}, {1, 2}, {1, 2}}
	if _, err := Embed(ragged, Config{}); err == nil {
		t.Error("ragged input should error")
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	// Two well-separated Gaussian blobs in 10-D must stay separated in
	// the 2-D embedding — the property Fig. 3 relies on.
	rng := vec.NewRand(7)
	var data [][]float64
	var labels []int
	for i := 0; i < 40; i++ {
		rowA := make([]float64, 10)
		rowB := make([]float64, 10)
		for j := range rowA {
			rowA[j] = rng.NormFloat64() * 0.3
			rowB[j] = 8 + rng.NormFloat64()*0.3
		}
		data = append(data, rowA, rowB)
		labels = append(labels, 0, 1)
	}
	pts, err := Embed(data, Config{Iterations: 150, Seed: 8, Perplexity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(data) {
		t.Fatalf("output length %d", len(pts))
	}
	score, err := ClusterScore(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 2 {
		t.Errorf("t-SNE cluster score = %v, want ≥ 2", score)
	}
}

func TestTSNEDeterminism(t *testing.T) {
	rng := vec.NewRand(9)
	data := make([][]float64, 20)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	a, err := Embed(data, Config{Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(data, Config{Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must embed identically")
		}
	}
}

func TestGridDensity(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 1}, {1, 1}, {0.49, 0.49}}
	grid, err := GridDensity(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range grid {
		for _, c := range row {
			total += c
		}
	}
	if total != 4 {
		t.Errorf("grid total = %d, want 4", total)
	}
	if grid[0][0] != 2 { // origin + (0.49, 0.49)
		t.Errorf("grid[0][0] = %d, want 2", grid[0][0])
	}
	if grid[1][1] != 2 { // the two (1,1) points clamp into the last cell
		t.Errorf("grid[1][1] = %d, want 2", grid[1][1])
	}
}

func TestGridDensityEdgeCases(t *testing.T) {
	if _, err := GridDensity(nil, 10); err == nil {
		t.Error("no points should error")
	}
	if _, err := GridDensity([][2]float64{{0, 0}}, 0); err == nil {
		t.Error("0 cells should error")
	}
	// Degenerate bounding box (all identical points).
	grid, err := GridDensity([][2]float64{{3, 3}, {3, 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range grid {
		for _, c := range row {
			total += c
		}
	}
	if total != 2 {
		t.Errorf("degenerate grid total = %d", total)
	}
}

func TestClusterScoreValidation(t *testing.T) {
	if _, err := ClusterScore(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ClusterScore([][2]float64{{0, 0}}, []int{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ClusterScore([][2]float64{{0, 0}, {1, 1}}, []int{0, 0}); err == nil {
		t.Error("single label should error (no inter pairs)")
	}
}

func TestClusterScoreKnownValue(t *testing.T) {
	// Two pairs at distance 1 within labels, distance ~5 across.
	pts := [][2]float64{{0, 0}, {1, 0}, {5, 0}, {6, 0}}
	labels := []int{0, 0, 1, 1}
	score, err := ClusterScore(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	// intra = 1, inter = (5+6+4+5)/4 = 5.
	if math.Abs(score-5) > 1e-9 {
		t.Errorf("score = %v, want 5", score)
	}
}
