// Package tsne implements the dimensionality-reduction pipeline of the
// paper's Fig. 3: principal component analysis as a preprocessing step
// followed by t-distributed stochastic neighbor embedding, used to
// visualize that syntactically different queries cluster by semantic
// content in embedding space (§2.3).
package tsne

import (
	"errors"
	"fmt"
	"math"

	"proximity/internal/vec"
)

// PCA projects the data onto its top `components` principal directions
// using power iteration with deflation. Input vectors share one
// dimensionality d; the output has one row per input with `components`
// values. Complexity is O(iters · n · d) per component, with no d×d
// matrix materialized, so it is comfortable at d = 768.
func PCA(data []vec.Vector, components int, seed uint64) ([][]float64, error) {
	if len(data) == 0 {
		return nil, errors.New("tsne: PCA needs data")
	}
	d := len(data[0])
	for i, v := range data {
		if len(v) != d {
			return nil, fmt.Errorf("tsne: vector %d has dim %d, expected %d: %w",
				i, len(v), d, vec.ErrDimensionMismatch)
		}
	}
	if components <= 0 || components > d {
		return nil, fmt.Errorf("tsne: components must be in [1, %d], got %d", d, components)
	}

	// Center the data.
	mean := make([]float64, d)
	for _, v := range data {
		for j, x := range v {
			mean[j] += float64(x)
		}
	}
	for j := range mean {
		mean[j] /= float64(len(data))
	}
	centered := make([][]float64, len(data))
	for i, v := range data {
		row := make([]float64, d)
		for j, x := range v {
			row[j] = float64(x) - mean[j]
		}
		centered[i] = row
	}

	rng := vec.NewRand(seed)
	basis := make([][]float64, 0, components)
	const iters = 60
	for c := 0; c < components; c++ {
		// Random start, orthogonalized against found components.
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for it := 0; it < iters; it++ {
			orthogonalize(v, basis)
			normalize(v)
			// v ← Cov·v computed as Σ_i x_i (x_i · v).
			next := make([]float64, d)
			for _, row := range centered {
				dot := 0.0
				for j := range row {
					dot += row[j] * v[j]
				}
				for j := range row {
					next[j] += row[j] * dot
				}
			}
			v = next
		}
		orthogonalize(v, basis)
		if norm(v) < 1e-12 {
			// Degenerate direction (rank-deficient data): keep a
			// zero component rather than failing.
			v = make([]float64, d)
		} else {
			normalize(v)
		}
		basis = append(basis, v)
	}

	out := make([][]float64, len(data))
	for i, row := range centered {
		proj := make([]float64, components)
		for c, b := range basis {
			dot := 0.0
			for j := range row {
				dot += row[j] * b[j]
			}
			proj[c] = dot
		}
		out[i] = proj
	}
	return out, nil
}

func orthogonalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		dot := 0.0
		for j := range v {
			dot += v[j] * b[j]
		}
		for j := range v {
			v[j] -= dot * b[j]
		}
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for j := range v {
		v[j] /= n
	}
}
