package hnsw

import (
	"errors"
	"sync"
	"testing"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		dim  int
		cfg  Config
	}{
		{name: "zero dim", dim: 0, cfg: Config{}},
		{name: "M too small", dim: 4, cfg: Config{M: 1}},
		{name: "negative efSearch", dim: 4, cfg: Config{EfSearch: -1}},
		{name: "negative efConstruction", dim: 4, cfg: Config{EfConstruction: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.dim, vec.L2Distance, tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestEmptyAndBadQueries(t *testing.T) {
	ix, err := New(3, vec.L2Distance, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(vec.Vector{0, 0, 0}, 1); !errors.Is(err, vectordb.ErrEmptyIndex) {
		t.Errorf("empty index error = %v", err)
	}
	if err := ix.Add(vec.Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(vec.Vector{0, 0, 0}, 0); !errors.Is(err, vectordb.ErrBadK) {
		t.Errorf("k=0 error = %v", err)
	}
	if _, err := ix.Search(vec.Vector{0}, 1); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("dim mismatch error = %v", err)
	}
	if err := ix.Add(vec.Vector{1}); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("Add dim mismatch error = %v", err)
	}
}

func TestSingleVector(t *testing.T) {
	ix, _ := New(2, vec.L2Distance, Config{Seed: 1})
	if err := ix.Add(vec.Vector{1, 1}); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(vec.Vector{0, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 0 {
		t.Errorf("Search = %+v", res)
	}
}

func TestExactOnTinyData(t *testing.T) {
	// With few points, HNSW degenerates to exact search.
	ix, _ := New(2, vec.L2Distance, Config{Seed: 2})
	pts := []vec.Vector{{0, 0}, {1, 0}, {0, 1}, {5, 5}, {-3, 2}}
	if err := ix.Add(pts...); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(vec.Vector{0.9, 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 1 || res[1].ID != 0 {
		t.Errorf("Search = %+v, want ids [1 0]", res)
	}
	if ix.Len() != 5 || ix.Dim() != 2 || ix.Metric() != vec.L2Distance {
		t.Error("accessors wrong")
	}
}

func TestVectorAccessor(t *testing.T) {
	ix, _ := New(2, vec.L2Distance, Config{Seed: 1})
	if err := ix.Add(vec.Vector{3, 4}); err != nil {
		t.Fatal(err)
	}
	v, err := ix.Vector(0)
	if err != nil || !vec.Equal(v, vec.Vector{3, 4}) {
		t.Errorf("Vector(0) = %v, %v", v, err)
	}
	if _, err := ix.Vector(1); err == nil {
		t.Error("out of range should error")
	}
}

// buildRandom indexes n random d-dim vectors and returns the index plus an
// exact flat reference over the same data.
func buildRandom(t *testing.T, n, d int, seed uint64) (*Index, *vectordb.FlatIndex) {
	t.Helper()
	rng := vec.NewRand(seed)
	ix, err := New(d, vec.L2Distance, Config{Seed: seed, M: 12, EfConstruction: 100, EfSearch: 64})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := vectordb.NewFlatIndex(d, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := vec.RandomGaussian(rng, d)
		if err := ix.Add(v); err != nil {
			t.Fatal(err)
		}
		if err := flat.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return ix, flat
}

func TestRecallAgainstExact(t *testing.T) {
	const (
		n       = 2000
		d       = 32
		k       = 10
		queries = 50
	)
	ix, flat := buildRandom(t, n, d, 42)
	rng := vec.NewRand(43)
	var hits, total int
	for qi := 0; qi < queries; qi++ {
		q := vec.RandomGaussian(rng, d)
		approx, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := flat.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[int]struct{}, k)
		for _, s := range exact {
			truth[s.ID] = struct{}{}
		}
		for _, s := range approx {
			if _, ok := truth[s.ID]; ok {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Errorf("recall@%d = %.3f, want ≥ 0.9", k, recall)
	}
}

func TestSearchEfImprovesRecall(t *testing.T) {
	const (
		n = 1500
		d = 24
		k = 10
	)
	ix, flat := buildRandom(t, n, d, 7)
	rng := vec.NewRand(8)
	recallAt := func(ef int) float64 {
		var hits, total int
		for qi := 0; qi < 40; qi++ {
			q := vec.RandomGaussian(rng, d)
			approx, err := ix.SearchEf(q, k, ef)
			if err != nil {
				t.Fatal(err)
			}
			exact, _ := flat.Search(q, k)
			truth := make(map[int]struct{}, k)
			for _, s := range exact {
				truth[s.ID] = struct{}{}
			}
			for _, s := range approx {
				if _, ok := truth[s.ID]; ok {
					hits++
				}
			}
			total += k
		}
		return float64(hits) / float64(total)
	}
	low, high := recallAt(k), recallAt(128)
	if high < low-0.02 {
		t.Errorf("recall should not degrade with larger ef: ef=k %.3f vs ef=128 %.3f", low, high)
	}
	if high < 0.9 {
		t.Errorf("recall at ef=128 = %.3f, want ≥ 0.9", high)
	}
}

func TestResultsSortedAscending(t *testing.T) {
	ix, _ := buildRandom(t, 500, 16, 3)
	rng := vec.NewRand(4)
	for qi := 0; qi < 20; qi++ {
		res, err := ix.Search(vec.RandomGaussian(rng, 16), 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res); i++ {
			if res[i-1].Dist > res[i].Dist {
				t.Fatalf("results unsorted: %+v", res)
			}
		}
	}
}

func TestConcurrentSearch(t *testing.T) {
	ix, _ := buildRandom(t, 800, 16, 5)
	rng := vec.NewRand(6)
	queries := make([]vec.Vector, 16)
	for i := range queries {
		queries[i] = vec.RandomGaussian(rng, 16)
	}
	want := make([][]vec.Scored, len(queries))
	for i, q := range queries {
		res, err := ix.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				res, err := ix.Search(q, 3)
				if err != nil {
					errs <- err
					return
				}
				for j := range res {
					if res[j] != want[i][j] {
						errs <- errors.New("concurrent search result mismatch")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, _ := buildRandom(t, 300, 8, 9)
	b, _ := buildRandom(t, 300, 8, 9)
	rng := vec.NewRand(10)
	for qi := 0; qi < 10; qi++ {
		q := vec.RandomGaussian(rng, 8)
		ra, err := a.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("same-seed builds must answer identically")
			}
		}
	}
}
