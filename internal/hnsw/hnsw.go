// Package hnsw implements a Hierarchical Navigable Small World graph index
// (Malkov & Yashunin, TPAMI 2018) — the reproduction's stand-in for
// FAISS-HNSW, which the paper uses to serve the 21M-passage wiki_dpr
// corpus for the MMLU benchmark (§4.2.1).
//
// The index is a multi-layer proximity graph: each vector is assigned a
// maximum layer drawn from a geometric distribution; search descends
// greedily from the sparse top layers to layer 0, where a best-first beam
// of width ef explores the dense base graph. Construction is sequential;
// Search is safe for concurrent use once building is done.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// Config parameterizes graph construction.
type Config struct {
	// M is the out-degree target for upper layers (layer 0 allows 2M).
	// Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Default 200.
	EfConstruction int
	// EfSearch is the default beam width for queries. Default 64;
	// raise for higher recall, lower for faster lookups.
	EfSearch int
	// Seed drives the layer assignment.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.M == 0 {
		c.M = 16
	}
	if c.EfConstruction == 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch == 0 {
		c.EfSearch = 64
	}
}

func (c Config) validate() error {
	if c.M < 2 {
		return fmt.Errorf("hnsw: M must be ≥ 2, got %d", c.M)
	}
	if c.EfConstruction < 1 || c.EfSearch < 1 {
		return fmt.Errorf("hnsw: ef parameters must be positive (construction=%d search=%d)",
			c.EfConstruction, c.EfSearch)
	}
	return nil
}

// Index is the HNSW graph. It implements vectordb.DB and
// vectordb.VectorSource.
type Index struct {
	cfg    Config
	dim    int
	metric vec.Metric
	dist   vec.DistanceFunc
	rng    interface{ Float64() float64 }
	mult   float64 // level multiplier 1/ln(M)

	vectors  []vec.Vector
	levels   []int           // max layer per node
	layers   []map[int][]int // layers[l][node] = neighbor ids
	entry    int             // entry point node
	maxLevel int
}

var (
	_ vectordb.DB           = (*Index)(nil)
	_ vectordb.VectorSource = (*Index)(nil)
)

// New creates an empty HNSW index.
func New(dim int, metric vec.Metric, cfg Config) (*Index, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("hnsw: dimension must be positive, got %d", dim)
	}
	return &Index{
		cfg:    cfg,
		dim:    dim,
		metric: metric,
		dist:   metric.Func(),
		rng:    vec.NewRand(cfg.Seed),
		mult:   1 / math.Log(float64(cfg.M)),
		entry:  -1,
	}, nil
}

// Dim returns the indexed dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.vectors) }

// Metric returns the distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Vector returns the stored vector for an ID.
func (ix *Index) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= len(ix.vectors) {
		return nil, fmt.Errorf("hnsw: id %d out of range (have %d)", id, len(ix.vectors))
	}
	return ix.vectors[id], nil
}

// Add inserts vectors sequentially. Not safe to call concurrently with
// Search.
func (ix *Index) Add(vectors ...vec.Vector) error {
	for i, v := range vectors {
		if len(v) != ix.dim {
			return fmt.Errorf("hnsw: vector %d has dim %d, index dim %d: %w",
				i, len(v), ix.dim, vec.ErrDimensionMismatch)
		}
	}
	for _, v := range vectors {
		ix.insert(v)
	}
	return nil
}

func (ix *Index) randomLevel() int {
	return int(-math.Log(1-ix.rng.Float64()) * ix.mult)
}

func (ix *Index) neighbors(node, layer int) []int {
	if layer >= len(ix.layers) {
		return nil
	}
	return ix.layers[layer][node]
}

func (ix *Index) setNeighbors(node, layer int, ns []int) {
	for len(ix.layers) <= layer {
		ix.layers = append(ix.layers, make(map[int][]int))
	}
	ix.layers[layer][node] = ns
}

func (ix *Index) insert(v vec.Vector) {
	id := len(ix.vectors)
	ix.vectors = append(ix.vectors, v)
	level := ix.randomLevel()
	ix.levels = append(ix.levels, level)

	if ix.entry < 0 {
		for l := 0; l <= level; l++ {
			ix.setNeighbors(id, l, nil)
		}
		ix.entry = id
		ix.maxLevel = level
		return
	}

	ep := ix.entry
	// Greedy descent through layers above the node's level.
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(v, ep, l)
	}
	// Beam insert from min(level, maxLevel) down to 0.
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		candidates := ix.searchLayer(v, ep, ix.cfg.EfConstruction, l)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		selected := vec.TopK(candidates, ix.cfg.M)
		ns := vec.IDs(selected)
		ix.setNeighbors(id, l, ns)
		for _, n := range ns {
			ix.linkBack(n, id, l, m)
		}
		if len(candidates) > 0 {
			ep = candidates[0].ID
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = id
	}
}

// linkBack adds id to node's neighbor list at the layer, pruning to the
// mMax closest if the list overflows.
func (ix *Index) linkBack(node, id, layer, mMax int) {
	ns := append(ix.neighbors(node, layer), id)
	if len(ns) > mMax {
		scored := make([]vec.Scored, len(ns))
		base := ix.vectors[node]
		for i, n := range ns {
			scored[i] = vec.Scored{ID: n, Dist: ix.dist(base, ix.vectors[n])}
		}
		ns = vec.IDs(vec.TopK(scored, mMax))
	}
	ix.setNeighbors(node, layer, ns)
}

// greedyClosest walks layer l from ep to the locally closest node to q.
func (ix *Index) greedyClosest(q vec.Vector, ep, layer int) int {
	cur := ep
	curDist := ix.dist(q, ix.vectors[cur])
	for {
		improved := false
		for _, n := range ix.neighbors(cur, layer) {
			if d := ix.dist(q, ix.vectors[n]); d < curDist {
				cur, curDist = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the best-first beam search of HNSW (Algorithm 2 of the
// paper's HNSW reference): it maintains the ef closest found so far and
// expands the closest unexplored candidate until no candidate can improve
// the result set. Returns found nodes sorted ascending by distance.
func (ix *Index) searchLayer(q vec.Vector, ep, ef, layer int) []vec.Scored {
	visited := map[int]struct{}{ep: {}}
	epDist := ix.dist(q, ix.vectors[ep])

	// candidates: min-heap by distance; results: max-heap capped at ef.
	cands := &minHeap{{ID: ep, Dist: epDist}}
	results := &maxHeap{{ID: ep, Dist: epDist}}

	for cands.Len() > 0 {
		c := heap.Pop(cands).(vec.Scored)
		worst := (*results)[0]
		if c.Dist > worst.Dist && results.Len() >= ef {
			break
		}
		for _, n := range ix.neighbors(c.ID, layer) {
			if _, seen := visited[n]; seen {
				continue
			}
			visited[n] = struct{}{}
			d := ix.dist(q, ix.vectors[n])
			if results.Len() < ef || d < (*results)[0].Dist {
				heap.Push(cands, vec.Scored{ID: n, Dist: d})
				heap.Push(results, vec.Scored{ID: n, Dist: d})
				if results.Len() > ef {
					heap.Pop(results)
				}
			}
		}
	}
	out := make([]vec.Scored, results.Len())
	copy(out, *results)
	return vec.TopK(out, len(out))
}

// Search returns the approximate k nearest neighbors using the default
// EfSearch beam width.
func (ix *Index) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	return ix.SearchEf(q, k, ix.cfg.EfSearch)
}

// SearchEf searches with an explicit beam width ef ≥ k for recall tuning.
func (ix *Index) SearchEf(q vec.Vector, k, ef int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	if len(ix.vectors) == 0 {
		return nil, vectordb.ErrEmptyIndex
	}
	if len(q) != ix.dim {
		return nil, fmt.Errorf("hnsw: query dim %d, index dim %d: %w",
			len(q), ix.dim, vec.ErrDimensionMismatch)
	}
	if ef < k {
		ef = k
	}
	ep := ix.entry
	for l := ix.maxLevel; l > 0; l-- {
		ep = ix.greedyClosest(q, ep, l)
	}
	found := ix.searchLayer(q, ep, ef, 0)
	return vec.TopK(found, k), nil
}

type minHeap []vec.Scored

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Dist < h[j].Dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(vec.Scored)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type maxHeap []vec.Scored

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(vec.Scored)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
