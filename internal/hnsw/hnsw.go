// Package hnsw implements a Hierarchical Navigable Small World graph index
// (Malkov & Yashunin, TPAMI 2018) — the reproduction's stand-in for
// FAISS-HNSW, which the paper uses to serve the 21M-passage wiki_dpr
// corpus for the MMLU benchmark (§4.2.1).
//
// The index is a multi-layer proximity graph: each vector is assigned a
// maximum layer drawn from a geometric distribution; search descends
// greedily from the sparse top layers to layer 0, where a best-first beam
// of width ef explores the dense base graph.
//
// Beyond the static database role, the index tracks an EVICTING cache
// (core.IndexedCache): Insert assigns ids incrementally, Delete tombstones
// a node (its edges stay traversable so the graph never fragments, but it
// is excluded from results), and tombstoned slots are reused by later
// inserts — steady-state churn at a fixed capacity neither grows the
// graph nor requires rebuilds. With Config.Quantized the traversal ranks
// candidates by asymmetric int8 distances (vec.Quantized), streaming one
// byte per dimension instead of four through the beam's inner loop.
//
// Slot reuse is where churn used to erode recall: edges built toward the
// evicted vector kept pointing at the slot after an unrelated vector
// moved in, silently mis-routing traversal. The index now tracks a
// bounded reverse-edge (in-neighbor) list per slot, so reuse severs every
// stale in-edge — re-routing each pointing node to the evictee's nearest
// surviving out-neighbor when it has room — and the recycled slot is
// re-linked bidirectionally at its freshly drawn level. Neighborhoods
// that lost an edge without a replacement queue for Repair, the
// incremental background pass that re-links them in small batches.
//
// Insert, Delete, and Repair must be externally serialized (the cache
// holds its own lock); Search is safe for concurrent use between
// mutations.
package hnsw

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// Config parameterizes graph construction.
type Config struct {
	// M is the out-degree target for upper layers (layer 0 allows 2M).
	// Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Default 200.
	EfConstruction int
	// EfSearch is the default beam width for queries. Default 64;
	// raise for higher recall, lower for faster lookups.
	EfSearch int
	// Seed drives the layer assignment.
	Seed uint64
	// Quantized stores an int8 scalar-quantized copy of every vector
	// and ranks query-time traversal by the asymmetric quantized
	// kernel. Construction-time link selection keeps full precision
	// (the graph is built once, searched many times), and the exact
	// float32 vectors remain available through Vector for re-ranking.
	Quantized bool
	// DisableInEdgeRepair turns off reverse-edge tracking and the
	// sever/re-route pass on slot reuse — the pre-repair behavior, in
	// which edges built toward an evicted vector keep routing traversal
	// to whatever vector reuses its slot. Kept only so the churn
	// experiment can measure the repair machinery's cost and recall
	// value against the legacy graph; leave it off in production.
	DisableInEdgeRepair bool
}

func (c *Config) fillDefaults() {
	if c.M == 0 {
		c.M = 16
	}
	if c.EfConstruction == 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch == 0 {
		c.EfSearch = 64
	}
}

func (c Config) validate() error {
	if c.M < 2 {
		return fmt.Errorf("hnsw: M must be ≥ 2, got %d", c.M)
	}
	if c.EfConstruction < 1 || c.EfSearch < 1 {
		return fmt.Errorf("hnsw: ef parameters must be positive (construction=%d search=%d)",
			c.EfConstruction, c.EfSearch)
	}
	return nil
}

// Index is the HNSW graph. It implements vectordb.DB and
// vectordb.VectorSource.
type Index struct {
	cfg    Config
	dim    int
	metric vec.Metric
	dist   vec.DistanceFunc
	rng    interface{ Float64() float64 }
	mult   float64 // level multiplier 1/ln(M)

	vectors []vec.Vector
	codes   []vec.Quantized // parallel to vectors; nil unless cfg.Quantized
	levels  []int           // max layer per node
	deleted []bool          // tombstones: traversable but never returned
	free    []int           // tombstoned slots awaiting reuse
	numDel  int

	// Layer-0 adjacency is a dense slice (every node lives there; the
	// beam spends almost all its time on it); upper layers are sparse
	// maps (a 1/M^l fraction of nodes).
	base  [][]int         // base[node] = neighbor ids
	upper []map[int][]int // upper[l-1][node] = neighbor ids at layer l

	// inEdges[v] tracks which (node, layer) pairs currently list v as a
	// neighbor, bounded at inBound refs per slot, so slot reuse can
	// sever the edges aimed at the evicted vector instead of leaving
	// them mis-routing traversal. nil when Config.DisableInEdgeRepair.
	inEdges [][]inRef
	inBound int

	// dirty queues nodes whose neighborhood degraded (an edge severed
	// with no replacement available) for the incremental Repair pass;
	// dirtySet deduplicates membership.
	dirty    []int
	dirtySet []bool

	// Churn-pressure and repair counters (mutation-path, so plain ints
	// under the caller's serialization).
	reused            int64 // slots recycled by allocSlot
	reusedSinceRepair int   // reset by Repair; the maintenance trigger
	severed           int64 // stale in-edges removed at reuse
	rerouted          int64 // severed edges replaced with a live target
	droppedRefs       int64 // in-edge refs lost to the per-slot bound
	repairPasses      int64
	repairedNodes     int64

	entry    int // entry point node, -1 when no live node exists
	maxLevel int

	// searches/hops count query-time Search calls and their distance
	// evaluations (greedy descent + beam). Atomic because Search is
	// concurrent; construction work is excluded.
	searches atomic.Int64
	hops     atomic.Int64

	scratch sync.Pool // *searchScratch
}

var (
	_ vectordb.DB           = (*Index)(nil)
	_ vectordb.VectorSource = (*Index)(nil)
)

// New creates an empty HNSW index.
func New(dim int, metric vec.Metric, cfg Config) (*Index, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("hnsw: dimension must be positive, got %d", dim)
	}
	return &Index{
		cfg:     cfg,
		dim:     dim,
		metric:  metric,
		dist:    metric.Func(),
		rng:     vec.NewRand(cfg.Seed),
		mult:    1 / math.Log(float64(cfg.M)),
		inBound: 4 * cfg.M,
		entry:   -1,
	}, nil
}

// Dim returns the indexed dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of live (non-tombstoned) vectors.
func (ix *Index) Len() int { return len(ix.vectors) - ix.numDel }

// Slots returns the total number of graph slots, live plus tombstoned.
func (ix *Index) Slots() int { return len(ix.vectors) }

// Tombstones returns the number of deleted-but-not-yet-reused slots.
func (ix *Index) Tombstones() int { return ix.numDel }

// Metric returns the distance metric.
func (ix *Index) Metric() vec.Metric { return ix.metric }

// Quantized reports whether traversal uses int8 quantized distances.
func (ix *Index) Quantized() bool { return ix.cfg.Quantized }

// Hops returns the cumulative distance evaluations performed by query
// searches (greedy descent plus beam expansion) — the graph-traversal
// analogue of a flat scan's DistComps.
func (ix *Index) Hops() int64 { return ix.hops.Load() }

// Searches returns the cumulative query search count.
func (ix *Index) Searches() int64 { return ix.searches.Load() }

// Vector returns the stored vector for an ID (tombstoned slots included:
// the slot retains its last vector until reused).
func (ix *Index) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= len(ix.vectors) {
		return nil, fmt.Errorf("hnsw: id %d out of range (have %d)", id, len(ix.vectors))
	}
	return ix.vectors[id], nil
}

// Deleted reports whether the slot is tombstoned.
func (ix *Index) Deleted(id int) bool {
	return id >= 0 && id < len(ix.deleted) && ix.deleted[id]
}

// Add inserts vectors sequentially. Not safe to call concurrently with
// Search.
func (ix *Index) Add(vectors ...vec.Vector) error {
	for i, v := range vectors {
		if len(v) != ix.dim {
			return fmt.Errorf("hnsw: vector %d has dim %d, index dim %d: %w",
				i, len(v), ix.dim, vec.ErrDimensionMismatch)
		}
	}
	for _, v := range vectors {
		ix.insert(v)
	}
	return nil
}

// Insert adds one vector and returns its assigned slot id — a tombstoned
// slot when one is free, a fresh one otherwise. The id is stable until
// Delete(id); callers tracking external state per entry (the indexed
// cache) key it by this id. Not safe to call concurrently with Search.
func (ix *Index) Insert(v vec.Vector) (int, error) {
	if len(v) != ix.dim {
		return 0, fmt.Errorf("hnsw: vector has dim %d, index dim %d: %w",
			len(v), ix.dim, vec.ErrDimensionMismatch)
	}
	return ix.insert(v), nil
}

// Delete tombstones a slot: the node's edges remain traversable so paths
// through it survive, but it is excluded from every result set, and the
// slot is queued for reuse by a later Insert. Not safe to call
// concurrently with Search.
func (ix *Index) Delete(id int) error {
	if id < 0 || id >= len(ix.vectors) {
		return fmt.Errorf("hnsw: delete id %d out of range (have %d)", id, len(ix.vectors))
	}
	if ix.deleted[id] {
		return fmt.Errorf("hnsw: id %d already deleted", id)
	}
	ix.deleted[id] = true
	ix.numDel++
	ix.free = append(ix.free, id)
	if ix.Len() == 0 {
		ix.entry = -1
		ix.maxLevel = 0
	} else if id == ix.entry {
		ix.resetEntry()
	}
	return nil
}

// resetEntry re-elects the entry point after the current one was
// tombstoned. The old entry's own neighbor lists are tried first — its
// top-layer neighbors are the highest-level nodes the graph knows about,
// and scanning them is O(levels·M) — so eviction patterns that
// repeatedly hit the entry no longer pay an O(n) sweep per Delete. The
// full scan remains as the fallback when every listed neighbor is
// tombstoned. The elected node's level may undercut the true global
// maximum (its seniors stay reachable through layer 0, and a later
// higher-level insert re-takes the top), which both paths accept:
// maxLevel tracks the entry, not the population.
func (ix *Index) resetEntry() {
	old := ix.entry
	best, bestLevel := -1, -1
	if old >= 0 {
		for l := ix.levels[old]; l >= 0; l-- {
			for _, n := range ix.neighbors(old, l) {
				if !ix.deleted[n] && ix.levels[n] > bestLevel {
					best, bestLevel = n, ix.levels[n]
				}
			}
		}
	}
	if best < 0 {
		for i := range ix.vectors {
			if !ix.deleted[i] && ix.levels[i] > bestLevel {
				best, bestLevel = i, ix.levels[i]
			}
		}
	}
	ix.entry = best
	if best >= 0 {
		ix.maxLevel = bestLevel
	} else {
		ix.maxLevel = 0
	}
}

func (ix *Index) randomLevel() int {
	return int(-math.Log(1-ix.rng.Float64()) * ix.mult)
}

func (ix *Index) neighbors(node, layer int) []int {
	if layer == 0 {
		if node >= len(ix.base) {
			return nil
		}
		return ix.base[node]
	}
	if layer-1 >= len(ix.upper) {
		return nil
	}
	return ix.upper[layer-1][node]
}

func (ix *Index) setNeighbors(node, layer int, ns []int) {
	if layer == 0 {
		for len(ix.base) <= node {
			ix.base = append(ix.base, nil)
		}
		ix.base[node] = ns
		return
	}
	for len(ix.upper) < layer {
		ix.upper = append(ix.upper, make(map[int][]int))
	}
	ix.upper[layer-1][node] = ns
}

// inRef records one tracked incoming edge: refs[v] holds (node, layer)
// pairs whose adjacency list at that layer contains v.
type inRef struct {
	node  int32
	layer int32
}

// trackInEdges reports whether reverse-edge bookkeeping is on.
func (ix *Index) trackInEdges() bool { return !ix.cfg.DisableInEdgeRepair }

// addInEdge records the edge from→to at layer. Upper-layer refs are
// always tracked: a stale upper edge mis-routes the greedy descent
// itself (the costliest failure) and there are few of them — layer-l
// edges originate from the ~n/2^l nodes of level ≥ l, each with
// out-degree ≤ M. Base-layer refs are bounded at inBound per slot; on
// overflow the new ref is dropped and counted, and that edge simply
// survives the slot's next reuse untracked (the wide layer-0 beam
// tolerates a few stale edges; the descent does not).
func (ix *Index) addInEdge(to, from, layer int) {
	if !ix.trackInEdges() {
		return
	}
	refs := ix.inEdges[to]
	if layer == 0 && len(refs) >= ix.inBound {
		ix.droppedRefs++
		return
	}
	ix.inEdges[to] = append(refs, inRef{node: int32(from), layer: int32(layer)})
}

// removeInEdge forgets the tracked edge from→to at layer (swap-remove;
// missing refs — dropped at the bound — are ignored).
func (ix *Index) removeInEdge(to, from, layer int) {
	if !ix.trackInEdges() {
		return
	}
	refs := ix.inEdges[to]
	for i, r := range refs {
		if r.node == int32(from) && r.layer == int32(layer) {
			refs[i] = refs[len(refs)-1]
			ix.inEdges[to] = refs[:len(refs)-1]
			return
		}
	}
}

// markDirty queues a node whose neighborhood degraded for Repair.
func (ix *Index) markDirty(u int) {
	for len(ix.dirtySet) <= u {
		ix.dirtySet = append(ix.dirtySet, false)
	}
	if !ix.dirtySet[u] {
		ix.dirtySet[u] = true
		ix.dirty = append(ix.dirty, u)
	}
}

// severInEdges repairs the graph around a slot that is about to be
// reused: every tracked edge that pointed at the evicted vector is
// removed from its owner's adjacency list, and where possible re-routed
// in place to the evictee's old out-neighbor closest to the pointing
// node — preserving connectivity through the region the evictee used to
// bridge. Owners left short an edge are queued for Repair. Must run
// before clearNeighbors (it reads the evictee's old out-edges as
// re-route candidates).
func (ix *Index) severInEdges(id int) {
	if !ix.trackInEdges() {
		return
	}
	refs := ix.inEdges[id]
	ix.inEdges[id] = refs[:0]
	// Rank the evictee's surviving out-neighbors by proximity to the
	// evicted vector once per layer; every severed edge at that layer
	// re-routes from this list with no further distance work. The
	// replacement sits near the hole the eviction leaves — which is
	// where the severed edges were aimed — so routing toward that
	// region survives. (An earlier version picked the candidate nearest
	// each in-neighbor instead: marginally better edges, but O(in-degree
	// × out-degree) distance computations per reuse, which showed up as
	// >20% Put overhead under heavy churn.)
	var ranked [][]int
	for _, r := range refs {
		u, l := int(r.node), int(r.layer)
		ns := ix.neighbors(u, l)
		i := slices.Index(ns, id)
		if i < 0 {
			continue
		}
		ix.severed++
		if ranked == nil {
			ranked = ix.rankSurvivors(id)
		}
		if w := rerouteTarget(ranked, u, l, ns); w >= 0 {
			ns[i] = w
			ix.addInEdge(w, u, l)
			ix.rerouted++
			continue
		}
		ns[i] = ns[len(ns)-1]
		ix.setNeighbors(u, l, ns[:len(ns)-1])
		ix.markDirty(u)
	}
}

// rankSurvivors orders the evictee's live out-neighbors at each of its
// layers by distance to the evicted vector (still resident in
// vectors[id] at sever time), nearest first.
func (ix *Index) rankSurvivors(id int) [][]int {
	ranked := make([][]int, ix.levels[id]+1)
	old := ix.vectors[id]
	for l := range ranked {
		ns := ix.neighbors(id, l)
		scored := make([]vec.Scored, 0, len(ns))
		for _, w := range ns {
			if ix.deleted[w] {
				continue
			}
			scored = append(scored, vec.Scored{ID: w, Dist: ix.dist(old, ix.vectors[w])})
		}
		ranked[l] = vec.IDs(vec.TopK(scored, len(scored)))
	}
	return ranked
}

// rerouteTarget picks the replacement for a severed edge u→id at layer:
// the best-ranked survivor u is not already linked to. Returns -1 when
// no candidate qualifies (the edge is then dropped and u queued for
// repair).
func rerouteTarget(ranked [][]int, u, layer int, uNeighbors []int) int {
	if layer >= len(ranked) {
		return -1
	}
	for _, w := range ranked[layer] {
		if w != u && !slices.Contains(uNeighbors, w) {
			return w
		}
	}
	return -1
}

// clearNeighbors drops a slot's outgoing edges at every layer (and their
// reverse refs) before the slot is reused.
func (ix *Index) clearNeighbors(node int) {
	if node < len(ix.base) {
		for _, n := range ix.base[node] {
			ix.removeInEdge(n, node, 0)
		}
		ix.base[node] = nil
	}
	for l := range ix.upper {
		if ns, ok := ix.upper[l][node]; ok {
			for _, n := range ns {
				ix.removeInEdge(n, node, l+1)
			}
			delete(ix.upper[l], node)
		}
	}
}

// allocSlot claims a slot for v: a tombstoned one when available — after
// severing the stale edges still aimed at its previous occupant and
// clearing its old adjacency — or a fresh append otherwise.
func (ix *Index) allocSlot(v vec.Vector, level int) int {
	if n := len(ix.free); n > 0 {
		id := ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.severInEdges(id)
		ix.clearNeighbors(id)
		ix.vectors[id] = v
		ix.levels[id] = level
		ix.deleted[id] = false
		ix.numDel--
		ix.reused++
		ix.reusedSinceRepair++
		if ix.cfg.Quantized {
			ix.codes[id] = vec.Quantize(v)
		}
		return id
	}
	id := len(ix.vectors)
	ix.vectors = append(ix.vectors, v)
	ix.levels = append(ix.levels, level)
	ix.deleted = append(ix.deleted, false)
	if ix.trackInEdges() {
		ix.inEdges = append(ix.inEdges, nil)
	}
	if ix.cfg.Quantized {
		ix.codes = append(ix.codes, vec.Quantize(v))
	}
	return id
}

func (ix *Index) insert(v vec.Vector) int {
	level := ix.randomLevel()
	id := ix.allocSlot(v, level)

	if ix.entry < 0 {
		for l := 0; l <= level; l++ {
			ix.setNeighbors(id, l, nil)
		}
		ix.entry = id
		ix.maxLevel = level
		return id
	}

	// Construction keeps full float32 precision regardless of the
	// quantized setting: link quality is decided once and searched
	// forever after.
	ctx := searchCtx{ix: ix, q: v}
	scr := ix.getScratch()

	ep := ix.entry
	// Greedy descent through layers above the node's level.
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(&ctx, ep, l)
	}
	// Beam insert from min(level, maxLevel) down to 0.
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		candidates := ix.searchLayer(&ctx, scr, ep, ix.cfg.EfConstruction, l, nil)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		selected := vec.TopK(candidates, ix.cfg.M)
		ns := vec.IDs(selected)
		ix.setNeighbors(id, l, ns)
		for _, n := range ns {
			ix.addInEdge(n, id, l)
			ix.linkBack(n, id, l, m)
		}
		if len(candidates) > 0 {
			ep = candidates[0].ID
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = id
	}
	ix.putScratch(scr)
	return id
}

// RepairStats reports one incremental Repair pass.
type RepairStats struct {
	// Examined is the number of dirty nodes dequeued (budget-bounded).
	Examined int
	// Relinked is how many of those were live and had their
	// neighborhoods rebuilt.
	Relinked int
}

// MaintenanceStats is the churn-pressure and repair counter snapshot.
type MaintenanceStats struct {
	// ReusedSlots counts tombstoned slots recycled by Insert.
	ReusedSlots int64
	// SeveredInEdges counts stale incoming edges removed at reuse.
	SeveredInEdges int64
	// ReroutedInEdges counts severed edges replaced in place with the
	// evictee's nearest surviving out-neighbor.
	ReroutedInEdges int64
	// DroppedInRefs counts reverse refs lost to the per-slot bound
	// (those edges survive the slot's next reuse untracked).
	DroppedInRefs int64
	// RepairPasses and RepairedNodes count Repair invocations and the
	// neighborhoods they rebuilt.
	RepairPasses  int64
	RepairedNodes int64
	// PendingRepair is the dirty-queue depth awaiting a pass.
	PendingRepair int
	// ReusedSinceRepair is the churn-pressure trigger: slot reuses
	// since the last Repair.
	ReusedSinceRepair int
}

// Maintenance returns the churn-pressure and repair counters.
func (ix *Index) Maintenance() MaintenanceStats {
	return MaintenanceStats{
		ReusedSlots:       ix.reused,
		SeveredInEdges:    ix.severed,
		ReroutedInEdges:   ix.rerouted,
		DroppedInRefs:     ix.droppedRefs,
		RepairPasses:      ix.repairPasses,
		RepairedNodes:     ix.repairedNodes,
		PendingRepair:     len(ix.dirty),
		ReusedSinceRepair: ix.reusedSinceRepair,
	}
}

// PendingRepair returns the dirty-queue depth: nodes whose neighborhood
// lost an edge without a replacement, awaiting an incremental Repair.
func (ix *Index) PendingRepair() int { return len(ix.dirty) }

// ReusedSinceRepair returns the slot reuses since the last Repair pass —
// the churn-pressure signal maintenance schedules on.
func (ix *Index) ReusedSinceRepair() int { return ix.reusedSinceRepair }

// TombstoneRatio returns the deleted-awaiting-reuse fraction of all
// slots (0 for an empty graph) — the second churn-pressure signal, for
// delete-heavy workloads whose slots are not being recycled.
func (ix *Index) TombstoneRatio() float64 {
	if len(ix.vectors) == 0 {
		return 0
	}
	return float64(ix.numDel) / float64(len(ix.vectors))
}

// Repair is the incremental background maintenance pass: it dequeues up
// to budget nodes whose neighborhoods degraded (an in-edge severed at
// slot reuse with no re-route available) and rebuilds each one's
// adjacency with a construction-quality beam search, linking back
// bidirectionally — the same work an insert would do, amortized over
// small batches so no single Put stalls. Resets the reused-since-repair
// pressure counter. Must be serialized with Insert/Delete, like every
// mutation.
func (ix *Index) Repair(budget int) RepairStats {
	var st RepairStats
	if budget <= 0 {
		return st
	}
	ix.repairPasses++
	ix.reusedSinceRepair = 0
	for st.Examined < budget && len(ix.dirty) > 0 {
		u := ix.dirty[len(ix.dirty)-1]
		ix.dirty = ix.dirty[:len(ix.dirty)-1]
		ix.dirtySet[u] = false
		st.Examined++
		if ix.deleted[u] || ix.entry < 0 || ix.Len() < 2 {
			continue
		}
		ix.relink(u)
		st.Relinked++
	}
	ix.repairedNodes += int64(st.Relinked)
	return st
}

// relink rebuilds a live node's neighborhood at every layer it occupies:
// a fresh construction search for its own vector, merged with whatever
// healthy edges it still has, re-selecting the M best and linking new
// neighbors back — an in-place re-insert that never moves the slot.
func (ix *Index) relink(u int) {
	ctx := searchCtx{ix: ix, q: ix.vectors[u]}
	scr := ix.getScratch()
	defer ix.putScratch(scr)
	level := ix.levels[u]
	ep := ix.entry
	for l := ix.maxLevel; l > level; l-- {
		ep = ix.greedyClosest(&ctx, ep, l)
	}
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		candidates := ix.searchLayer(&ctx, scr, ep, ix.cfg.EfConstruction, l, nil)
		if len(candidates) > 0 {
			ep = candidates[0].ID
		}
		// Merge search results with current neighbors (the search may
		// miss a healthy existing edge), excluding u itself.
		cur := ix.neighbors(u, l)
		merged := make([]vec.Scored, 0, len(candidates)+len(cur))
		for _, c := range candidates {
			if c.ID != u {
				merged = append(merged, c)
			}
		}
		for _, n := range cur {
			if n != u && !containsID(candidates, n) {
				merged = append(merged, vec.Scored{ID: n, Dist: ctx.distTo(n)})
			}
		}
		if len(merged) == 0 {
			continue
		}
		ns := vec.IDs(vec.TopK(merged, ix.cfg.M))
		ix.replaceNeighbors(u, l, ns)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		for _, n := range ns {
			if !slices.Contains(ix.neighbors(n, l), u) {
				ix.linkBack(n, u, l, m)
			}
		}
	}
}

// containsID reports whether the scored set mentions id.
func containsID(s []vec.Scored, id int) bool {
	for _, c := range s {
		if c.ID == id {
			return true
		}
	}
	return false
}

// replaceNeighbors swaps a node's adjacency at one layer for ns, keeping
// the reverse refs consistent on both the dropped and the added edges.
func (ix *Index) replaceNeighbors(node, layer int, ns []int) {
	old := ix.neighbors(node, layer)
	for _, o := range old {
		if !slices.Contains(ns, o) {
			ix.removeInEdge(o, node, layer)
		}
	}
	for _, n := range ns {
		if !slices.Contains(old, n) {
			ix.addInEdge(n, node, layer)
		}
	}
	ix.setNeighbors(node, layer, ns)
}

// linkBack adds id to node's neighbor list at the layer, pruning to the
// mMax closest if the list overflows. The new edge's reverse ref is
// recorded, and pruned-out neighbors lose theirs, so reuse-time severing
// never chases an edge that no longer exists.
func (ix *Index) linkBack(node, id, layer, mMax int) {
	ns := append(ix.neighbors(node, layer), id)
	ix.addInEdge(id, node, layer)
	if len(ns) > mMax {
		scored := make([]vec.Scored, len(ns))
		base := ix.vectors[node]
		for i, n := range ns {
			scored[i] = vec.Scored{ID: n, Dist: ix.dist(base, ix.vectors[n])}
		}
		kept := vec.IDs(vec.TopK(scored, mMax))
		for _, n := range ns {
			if !slices.Contains(kept, n) {
				ix.removeInEdge(n, node, layer)
			}
		}
		ns = kept
	}
	ix.setNeighbors(node, layer, ns)
}

// searchCtx carries one query through a traversal: the float32 query, the
// prepared quantized form when the index ranks by int8 codes, and the
// hop (distance evaluation) count.
type searchCtx struct {
	ix    *Index
	q     vec.Vector
	pq    vec.PreparedQuery
	quant bool
	hops  int64
}

func (c *searchCtx) distTo(id int) float32 {
	c.hops++
	if c.quant {
		return c.pq.Dist(&c.ix.codes[id])
	}
	return c.ix.dist(c.q, c.ix.vectors[id])
}

// greedyClosest walks layer l from ep to the locally closest node to q.
// Tombstoned nodes still serve as waypoints.
func (ix *Index) greedyClosest(ctx *searchCtx, ep, layer int) int {
	cur := ep
	curDist := ctx.distTo(cur)
	for {
		improved := false
		for _, n := range ix.neighbors(cur, layer) {
			if d := ctx.distTo(n); d < curDist {
				cur, curDist = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchScratch is the reusable per-search state: an epoch-stamped
// visited set (reset is a counter bump, not a clear) and the two beam
// heaps plus an output slice, all retaining their backing arrays across
// searches so steady-state lookups allocate nothing.
type searchScratch struct {
	visited []uint32
	epoch   uint32
	cands   minHeap
	results maxHeap
	out     []vec.Scored
}

func (s *searchScratch) begin(n int) {
	if len(s.visited) < n {
		grown := make([]uint32, n)
		copy(grown, s.visited)
		s.visited = grown
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could collide, clear once
		clear(s.visited)
		s.epoch = 1
	}
	s.cands = s.cands[:0]
	s.results = s.results[:0]
	s.out = s.out[:0]
}

func (s *searchScratch) seen(id int) bool { return s.visited[id] == s.epoch }
func (s *searchScratch) mark(id int)      { s.visited[id] = s.epoch }

func (ix *Index) getScratch() *searchScratch {
	if s, ok := ix.scratch.Get().(*searchScratch); ok {
		return s
	}
	return &searchScratch{}
}

func (ix *Index) putScratch(s *searchScratch) { ix.scratch.Put(s) }

// searchLayer is the best-first beam search of HNSW (Algorithm 2 of the
// paper's HNSW reference): it maintains the ef closest found so far and
// expands the closest unexplored candidate until no candidate can improve
// the result set. Tombstoned nodes are expanded (the graph stays
// connected through them) but never retained as results. Returns found
// nodes sorted ascending by distance; the slice aliases scratch and is
// valid until the scratch's next use.
func (ix *Index) searchLayer(ctx *searchCtx, s *searchScratch, ep, ef, layer int, deleted []bool) []vec.Scored {
	s.begin(len(ix.vectors))
	s.mark(ep)
	epDist := ctx.distTo(ep)

	// candidates: min-heap by distance; results: max-heap capped at ef.
	s.cands.push(vec.Scored{ID: ep, Dist: epDist})
	if deleted == nil || !deleted[ep] {
		s.results.push(vec.Scored{ID: ep, Dist: epDist})
	}

	for len(s.cands) > 0 {
		c := s.cands.pop()
		if len(s.results) >= ef && c.Dist > s.results[0].Dist {
			break
		}
		for _, n := range ix.neighbors(c.ID, layer) {
			if s.seen(n) {
				continue
			}
			s.mark(n)
			d := ctx.distTo(n)
			if len(s.results) < ef || d < s.results[0].Dist {
				s.cands.push(vec.Scored{ID: n, Dist: d})
				if deleted == nil || !deleted[n] {
					s.results.push(vec.Scored{ID: n, Dist: d})
					if len(s.results) > ef {
						s.results.pop()
					}
				}
			}
		}
	}
	s.out = append(s.out, s.results...)
	slices.SortFunc(s.out, func(a, b vec.Scored) int {
		if a.Dist != b.Dist {
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		}
		return a.ID - b.ID
	})
	return s.out
}

// Search returns the approximate k nearest neighbors using the default
// EfSearch beam width.
func (ix *Index) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	return ix.SearchEf(q, k, ix.cfg.EfSearch)
}

// SearchEf searches with an explicit beam width ef ≥ k for recall tuning.
func (ix *Index) SearchEf(q vec.Vector, k, ef int) ([]vec.Scored, error) {
	return ix.SearchInto(nil, q, k, ef)
}

// SearchInto is SearchEf appending results into dst (grown as needed) —
// the allocation-free entry point for hot-path callers that own a result
// buffer. With Config.Quantized the returned distances are asymmetric
// int8 approximations intended for candidate ranking; re-rank with the
// exact kernel before threshold comparisons.
//
//proximity:hotpath
func (ix *Index) SearchInto(dst []vec.Scored, q vec.Vector, k, ef int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	if ix.Len() == 0 {
		return nil, vectordb.ErrEmptyIndex
	}
	if len(q) != ix.dim {
		//proximity:allow hotpathalloc cold rejection path, never taken by a well-formed caller
		return nil, fmt.Errorf("hnsw: query dim %d, index dim %d: %w",
			len(q), ix.dim, vec.ErrDimensionMismatch)
	}
	if ef < k {
		ef = k
	}
	ctx := searchCtx{ix: ix, q: q, quant: ix.cfg.Quantized}
	if ctx.quant {
		ctx.pq = ix.metric.Prepare(q)
	}
	scr := ix.getScratch()
	var deleted []bool
	if ix.numDel > 0 {
		deleted = ix.deleted
	}
	ep := ix.entry
	for l := ix.maxLevel; l > 0; l-- {
		ep = ix.greedyClosest(&ctx, ep, l)
	}
	found := ix.searchLayer(&ctx, scr, ep, ef, 0, deleted)
	if len(found) > k {
		found = found[:k]
	}
	dst = append(dst, found...)
	ix.putScratch(scr)
	ix.searches.Add(1)
	ix.hops.Add(ctx.hops)
	return dst, nil
}

// minHeap and maxHeap are binary heaps of scored nodes with typed
// push/pop: container/heap routes every element through interface{},
// which boxes a 16-byte vec.Scored onto the GC heap per push — hundreds
// of allocations per beam search. The hand-rolled sifts keep the search
// scratch genuinely allocation-free in steady state.
type minHeap []vec.Scored

func (h *minHeap) push(x vec.Scored) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].Dist <= s[i].Dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *minHeap) pop() vec.Scored {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].Dist < s[l].Dist {
			m = r
		}
		if s[i].Dist <= s[m].Dist {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

type maxHeap []vec.Scored

func (h *maxHeap) push(x vec.Scored) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].Dist >= s[i].Dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *maxHeap) pop() vec.Scored {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].Dist > s[l].Dist {
			m = r
		}
		if s[i].Dist >= s[m].Dist {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
