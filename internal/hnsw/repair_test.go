package hnsw

import (
	"fmt"
	"testing"

	"math/rand/v2"

	"proximity/internal/vec"
)

// churn drives FIFO insert/delete cycles through ix: it keeps at most
// capacity live nodes, deleting the oldest before each insert past the
// cap, and returns the live id→vector map.
func churn(t *testing.T, ix *Index, rng *rand.Rand, dim, capacity, total int) map[int]vec.Vector {
	t.Helper()
	var fifo []int
	keys := make(map[int]vec.Vector)
	for i := 0; i < total; i++ {
		if len(fifo) >= capacity {
			victim := fifo[0]
			fifo = fifo[1:]
			if err := ix.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(keys, victim)
		}
		v := vec.RandomGaussian(rng, dim)
		id, err := ix.Insert(v)
		if err != nil {
			t.Fatal(err)
		}
		fifo = append(fifo, id)
		keys[id] = v
	}
	return keys
}

// checkInEdgeInvariant asserts the reverse-ref bookkeeping is exact:
// every edge u→v at every layer has a tracked ref (u, layer) in
// inEdges[v], and every tracked ref corresponds to a real edge. Only
// meaningful while no refs have been dropped at the per-slot bound.
func checkInEdgeInvariant(t *testing.T, ix *Index) {
	t.Helper()
	if ix.Maintenance().DroppedInRefs > 0 {
		t.Fatal("in-edge bound overflowed; invariant check needs a larger bound")
	}
	hasRef := func(v, u, layer int) bool {
		for _, r := range ix.inEdges[v] {
			if int(r.node) == u && int(r.layer) == layer {
				return true
			}
		}
		return false
	}
	forEachEdge := func(f func(u, v, layer int)) {
		for u := range ix.base {
			for _, v := range ix.base[u] {
				f(u, v, 0)
			}
		}
		for l := range ix.upper {
			for u, ns := range ix.upper[l] {
				for _, v := range ns {
					f(u, v, l+1)
				}
			}
		}
	}
	edges := 0
	forEachEdge(func(u, v, layer int) {
		edges++
		if !hasRef(v, u, layer) {
			t.Fatalf("edge %d→%d at layer %d has no reverse ref", u, v, layer)
		}
	})
	refs := 0
	for v := range ix.inEdges {
		refs += len(ix.inEdges[v])
		for _, r := range ix.inEdges[v] {
			u, l := int(r.node), int(r.layer)
			found := false
			for _, n := range ix.neighbors(u, l) {
				if n == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("stale reverse ref: %d lists (%d, layer %d) but no such edge", v, u, l)
			}
		}
	}
	if refs != edges {
		t.Fatalf("tracked refs=%d, edges=%d (duplicate refs)", refs, edges)
	}
}

// TestInEdgeInvariantUnderChurn is the bookkeeping property test: after
// heavy FIFO churn with slot reuse, the reverse-edge lists must mirror
// the adjacency exactly — no missed edges (stale edges would survive the
// next reuse) and no stale refs (severing would corrupt a live list).
func TestInEdgeInvariantUnderChurn(t *testing.T) {
	ix, err := New(4, vec.L2Distance, Config{M: 6, EfConstruction: 40, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ix.inBound = 1 << 20 // exact invariant needs no layer-0 drops
	rng := vec.NewRand(32)
	churn(t, ix, rng, 4, 60, 600)
	checkInEdgeInvariant(t, ix)
	if m := ix.Maintenance(); m.ReusedSlots == 0 || m.SeveredInEdges == 0 {
		t.Fatalf("churn did not exercise reuse repair: %+v", m)
	}
}

// TestReuseSeversStaleUpperReferences is the level-bookkeeping
// regression: a slot recycled at a LOWER level than its previous life
// must not be referenced by any upper-layer adjacency above its new
// level — stale in-edges from the old life used to keep routing the
// greedy descent into the reused slot.
func TestReuseSeversStaleUpperReferences(t *testing.T) {
	ix, err := New(4, vec.L2Distance, Config{M: 4, EfConstruction: 40, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(34)
	for i := 0; i < 400; i++ {
		if _, err := ix.Insert(vec.RandomGaussian(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	demotions := 0
	for round := 0; round < 40; round++ {
		// Pick a high-level node (not the entry, to keep the scenario
		// minimal) and recycle its slot; the fresh geometric draw lands
		// on level 0 with probability 3/4.
		victim := -1
		for i := range ix.levels {
			if ix.levels[i] >= 1 && i != ix.entry && !ix.deleted[i] {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Fatal("no high-level node to recycle")
		}
		oldLevel := ix.levels[victim]
		if err := ix.Delete(victim); err != nil {
			t.Fatal(err)
		}
		id, err := ix.Insert(vec.RandomGaussian(rng, 4)) // free list is LIFO: reuses victim's slot
		if err != nil {
			t.Fatal(err)
		}
		if id != victim {
			t.Fatalf("round %d: expected slot %d reuse, got %d", round, victim, id)
		}
		if ix.levels[id] < oldLevel {
			demotions++
		}
		// No upper layer above the slot's new level may reference it,
		// outgoing or incoming.
		for l := range ix.upper {
			layer := l + 1
			if layer <= ix.levels[id] {
				continue
			}
			if _, ok := ix.upper[l][id]; ok {
				t.Fatalf("round %d: reused slot %d keeps outgoing edges at layer %d > level %d",
					round, id, layer, ix.levels[id])
			}
			for node, ns := range ix.upper[l] {
				for _, n := range ns {
					if n == id {
						t.Fatalf("round %d: stale in-edge %d→%d at layer %d > level %d",
							round, node, id, layer, ix.levels[id])
					}
				}
			}
		}
	}
	if demotions == 0 {
		t.Fatal("no recycle drew a lower level; regression not exercised")
	}
}

// TestChurnSelfRecallWithRepair pins the headline fix: after 10x-capacity
// churn, live vectors must still find themselves. The pre-repair graph
// lost several percent here; severing plus re-routing holds ≥ 0.98, and
// draining the repair queue must not regress it.
func TestChurnSelfRecallWithRepair(t *testing.T) {
	const capacity, dim = 100, 4
	ix, err := New(dim, vec.L2Distance, Config{M: 8, EfConstruction: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ix.inBound = 1 << 20 // exact invariant check at the end needs no drops
	rng := vec.NewRand(11)
	keys := churn(t, ix, rng, dim, capacity, 1000)
	selfRecall := func() float64 {
		found := 0
		for id, v := range keys {
			res, err := ix.SearchEf(v, 1, 128)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) == 1 && res[0].ID == id {
				found++
			}
		}
		return float64(found) / float64(len(keys))
	}
	if frac := selfRecall(); frac < 0.98 {
		t.Fatalf("post-churn self-recall %.3f with in-edge repair, want ≥ 0.98", frac)
	}
	for ix.PendingRepair() > 0 {
		ix.Repair(64)
	}
	if frac := selfRecall(); frac < 0.98 {
		t.Fatalf("self-recall %.3f after draining Repair, want ≥ 0.98", frac)
	}
	checkInEdgeInvariant(t, ix)
}

// TestRepairCountersAndQueue exercises the incremental pass: budgeted
// dequeue, pressure-counter reset, and no-ops on empty queues and zero
// budgets.
func TestRepairCountersAndQueue(t *testing.T) {
	ix, err := New(4, vec.L2Distance, Config{M: 4, EfConstruction: 30, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(36)
	churn(t, ix, rng, 4, 50, 500)
	m := ix.Maintenance()
	if m.ReusedSlots == 0 || m.ReusedSinceRepair == 0 {
		t.Fatalf("churn pressure not tracked: %+v", m)
	}
	if st := ix.Repair(0); st.Examined != 0 {
		t.Fatalf("Repair(0) examined %d nodes", st.Examined)
	}
	total := 0
	for ix.PendingRepair() > 0 {
		st := ix.Repair(3)
		if st.Examined > 3 {
			t.Fatalf("budget 3 exceeded: examined %d", st.Examined)
		}
		if st.Examined == 0 {
			t.Fatal("pending queue nonempty but nothing examined")
		}
		total += st.Relinked
	}
	m = ix.Maintenance()
	if m.ReusedSinceRepair != 0 {
		t.Fatalf("ReusedSinceRepair=%d after Repair, want 0", m.ReusedSinceRepair)
	}
	if m.RepairPasses == 0 || int(m.RepairedNodes) != total {
		t.Fatalf("pass counters off: %+v vs relinked %d", m, total)
	}
	// An empty-queue pass still resets pressure and counts the pass.
	before := m.RepairPasses
	if st := ix.Repair(8); st.Examined != 0 || st.Relinked != 0 {
		t.Fatalf("empty-queue Repair did work: %+v", st)
	}
	if got := ix.Maintenance().RepairPasses; got != before+1 {
		t.Fatalf("RepairPasses=%d, want %d", got, before+1)
	}
}

// TestDisableInEdgeRepair pins the legacy escape hatch: no reverse-edge
// tracking, no severing, reuse counted but otherwise the pre-repair
// behavior (the churn experiment's baseline arm).
func TestDisableInEdgeRepair(t *testing.T) {
	ix, err := New(4, vec.L2Distance, Config{M: 4, EfConstruction: 30, Seed: 37, DisableInEdgeRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(38)
	churn(t, ix, rng, 4, 40, 200)
	m := ix.Maintenance()
	if m.ReusedSlots == 0 {
		t.Fatal("reuse not counted")
	}
	if m.SeveredInEdges != 0 || m.ReroutedInEdges != 0 || m.PendingRepair != 0 {
		t.Fatalf("repair machinery ran with tracking disabled: %+v", m)
	}
	if ix.inEdges != nil {
		t.Fatal("inEdges allocated with tracking disabled")
	}
	if _, err := ix.Search(vec.RandomGaussian(rng, 4), 3); err != nil {
		t.Fatal(err)
	}
}

// TestTombstoneRatio covers the second churn-pressure signal.
func TestTombstoneRatio(t *testing.T) {
	ix, err := New(2, vec.L2Distance, Config{Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	if r := ix.TombstoneRatio(); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
	a, _ := ix.Insert(vec.Vector{0, 0})
	ix.Insert(vec.Vector{1, 1})
	ix.Insert(vec.Vector{2, 2})
	ix.Insert(vec.Vector{3, 3})
	if err := ix.Delete(a); err != nil {
		t.Fatal(err)
	}
	if r := ix.TombstoneRatio(); r != 0.25 {
		t.Fatalf("ratio = %v, want 0.25", r)
	}
}

// TestResetEntryFallbackScan forces the slow path: when every neighbor
// of the deleted entry is already tombstoned, re-election must fall back
// to the full scan and still find the surviving node.
func TestResetEntryFallbackScan(t *testing.T) {
	ix, err := New(2, vec.L2Distance, Config{M: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := ix.Insert(vec.Vector{float32(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone every neighbor the entry lists, then the entry itself.
	entry := ix.entry
	for l := ix.levels[entry]; l >= 0; l-- {
		for _, n := range append([]int(nil), ix.neighbors(entry, l)...) {
			if !ix.deleted[n] {
				if err := ix.Delete(n); err != nil {
					t.Fatal(err)
				}
				if ix.entry != entry {
					t.Fatal("deleting a neighbor displaced the entry")
				}
			}
		}
	}
	if err := ix.Delete(entry); err != nil {
		t.Fatal(err)
	}
	if ix.Len() > 0 {
		if ix.entry < 0 || ix.deleted[ix.entry] {
			t.Fatalf("fallback scan elected entry %d (deleted=%v)", ix.entry, ix.entry >= 0 && ix.deleted[ix.entry])
		}
		if _, err := ix.Search(vec.Vector{0, 0}, 1); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkDeleteEntryHeavy guards the resetEntry fast path: repeatedly
// deleting the entry node used to pay an O(n) scan per Delete, making
// entry-targeted eviction quadratic. The neighbor-first re-election keeps
// it O(M·levels).
func BenchmarkDeleteEntryHeavy(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			ix, err := New(8, vec.L2Distance, Config{M: 8, EfConstruction: 40, Seed: 43})
			if err != nil {
				b.Fatal(err)
			}
			rng := vec.NewRand(44)
			for i := 0; i < n; i++ {
				if _, err := ix.Insert(vec.RandomGaussian(rng, 8)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Delete(ix.entry); err != nil {
					b.Fatal(err)
				}
				if _, err := ix.Insert(vec.RandomGaussian(rng, 8)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
