package hnsw

import (
	"testing"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func TestInsertReturnsSequentialIDs(t *testing.T) {
	ix, err := New(4, vec.L2Distance, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(7)
	for i := 0; i < 10; i++ {
		id, err := ix.Insert(vec.RandomGaussian(rng, 4))
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("insert %d assigned id %d", i, id)
		}
	}
	if ix.Len() != 10 || ix.Slots() != 10 || ix.Tombstones() != 0 {
		t.Fatalf("len=%d slots=%d tombstones=%d", ix.Len(), ix.Slots(), ix.Tombstones())
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	ix, _ := New(4, vec.L2Distance, Config{Seed: 1})
	if _, err := ix.Insert(vec.Vector{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestDeleteExcludesFromResults(t *testing.T) {
	ix, _ := New(2, vec.L2Distance, Config{Seed: 2})
	vs := []vec.Vector{{0, 0}, {1, 0}, {0, 1}, {5, 5}}
	for _, v := range vs {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 || ix.Tombstones() != 1 {
		t.Fatalf("len=%d tombstones=%d after delete", ix.Len(), ix.Tombstones())
	}
	res, err := ix.Search(vec.Vector{1, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == 1 {
			t.Fatal("tombstoned id 1 returned by Search")
		}
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3 live", len(res))
	}
}

func TestDeleteErrors(t *testing.T) {
	ix, _ := New(2, vec.L2Distance, Config{Seed: 3})
	if err := ix.Delete(0); err == nil {
		t.Fatal("expected out-of-range error on empty index")
	}
	id, _ := ix.Insert(vec.Vector{1, 2})
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(id); err == nil {
		t.Fatal("expected double-delete error")
	}
	if err := ix.Delete(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDeleteAllThenSearchEmpty(t *testing.T) {
	ix, _ := New(2, vec.L2Distance, Config{Seed: 4})
	a, _ := ix.Insert(vec.Vector{0, 0})
	b, _ := ix.Insert(vec.Vector{1, 1})
	if err := ix.Delete(a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(b); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("len=%d after deleting all", ix.Len())
	}
	if _, err := ix.Search(vec.Vector{0, 0}, 1); err != vectordb.ErrEmptyIndex {
		t.Fatalf("search on fully tombstoned index: %v, want ErrEmptyIndex", err)
	}
	// Re-inserting after total deletion must re-establish an entry point.
	if _, err := ix.Insert(vec.Vector{2, 2}); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(vec.Vector{2, 2}, 1)
	if err != nil || len(res) != 1 {
		t.Fatalf("search after revival: res=%v err=%v", res, err)
	}
}

func TestDeleteEntryPointRepair(t *testing.T) {
	ix, _ := New(3, vec.L2Distance, Config{M: 4, Seed: 5})
	rng := vec.NewRand(9)
	for i := 0; i < 200; i++ {
		if _, err := ix.Insert(vec.RandomGaussian(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// Repeatedly kill the entry point; search must keep working and the
	// new entry must always live on the top layer.
	for i := 0; i < 20; i++ {
		if err := ix.Delete(ix.entry); err != nil {
			t.Fatal(err)
		}
		if ix.deleted[ix.entry] {
			t.Fatal("re-elected entry point is tombstoned")
		}
		if ix.levels[ix.entry] != ix.maxLevel {
			t.Fatalf("entry level %d != maxLevel %d", ix.levels[ix.entry], ix.maxLevel)
		}
		if _, err := ix.Search(vec.RandomGaussian(rng, 3), 5); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChurnReusesSlots drives FIFO cache-style churn through the index
// and checks tombstoned slots are reused so the graph stays bounded.
func TestChurnReusesSlots(t *testing.T) {
	const capacity = 100
	ix, _ := New(4, vec.L2Distance, Config{M: 8, EfConstruction: 60, Seed: 6})
	rng := vec.NewRand(11)
	var fifo []int
	keys := make(map[int]vec.Vector)
	for i := 0; i < 1000; i++ {
		if len(fifo) >= capacity {
			victim := fifo[0]
			fifo = fifo[1:]
			if err := ix.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(keys, victim)
		}
		v := vec.RandomGaussian(rng, 4)
		id, err := ix.Insert(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, taken := keys[id]; taken {
			t.Fatalf("insert returned live id %d", id)
		}
		fifo = append(fifo, id)
		keys[id] = v
	}
	if ix.Len() != capacity {
		t.Fatalf("len=%d, want %d", ix.Len(), capacity)
	}
	// Slot reuse keeps the graph near capacity rather than growing with
	// total insert count.
	if ix.Slots() > capacity+1 {
		t.Fatalf("slots=%d after churn, want ≤ %d", ix.Slots(), capacity+1)
	}
	// The live keys must still be findable (search for the exact vector).
	found := 0
	for id, v := range keys {
		res, err := ix.SearchEf(v, 1, 128)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 1 && res[0].ID == id {
			found++
		}
	}
	if frac := float64(found) / float64(len(keys)); frac < 0.95 {
		t.Fatalf("post-churn self-recall %.2f, want ≥ 0.95", frac)
	}
}

// TestQuantizedRecall checks the int8 traversal still finds the right
// neighborhood: recall@1 against the exact flat scan stays high, since
// quantized distances only rank candidates and the beam retains ef of
// them.
func TestQuantizedRecall(t *testing.T) {
	const n, dim = 1500, 16
	rng := vec.NewRand(13)
	vectors := make([]vec.Vector, n)
	for i := range vectors {
		vectors[i] = vec.RandomGaussian(rng, dim)
	}
	ix, err := New(dim, vec.L2Distance, Config{M: 12, EfConstruction: 100, EfSearch: 64, Seed: 7, Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Quantized() {
		t.Fatal("Quantized() = false")
	}
	if err := ix.Add(vectors...); err != nil {
		t.Fatal(err)
	}
	flat, err := vectordb.NewFlatFromVectors(vectors, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		q := vec.RandomGaussian(rng, dim)
		want, err := flat.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].ID == want[0].ID {
			hit++
		}
	}
	if recall := float64(hit) / queries; recall < 0.85 {
		t.Fatalf("quantized recall@1 = %.3f, want ≥ 0.85", recall)
	}
	if ix.Hops() == 0 || ix.Searches() != queries {
		t.Fatalf("hops=%d searches=%d", ix.Hops(), ix.Searches())
	}
}

// TestSearchIntoReusesBuffer verifies the zero-alloc entry point appends
// into the caller's buffer and matches SearchEf.
func TestSearchIntoReusesBuffer(t *testing.T) {
	ix, _ := New(8, vec.L2Distance, Config{Seed: 8})
	rng := vec.NewRand(17)
	for i := 0; i < 300; i++ {
		if _, err := ix.Insert(vec.RandomGaussian(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]vec.Scored, 0, 16)
	for i := 0; i < 20; i++ {
		q := vec.RandomGaussian(rng, 8)
		want, err := ix.SearchEf(q, 5, 32)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.SearchInto(buf[:0], q, 5, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d item %d: %+v vs %+v", i, j, got[j], want[j])
			}
		}
		if cap(buf) >= 5 && len(got) > 0 && &got[0] != &buf[:1][0] {
			t.Fatal("SearchInto did not reuse the provided buffer")
		}
	}
}

func TestVectorAndDeletedAccessors(t *testing.T) {
	ix, _ := New(2, vec.L2Distance, Config{Seed: 9})
	id, _ := ix.Insert(vec.Vector{3, 4})
	v, err := ix.Vector(id)
	if err != nil || v[0] != 3 || v[1] != 4 {
		t.Fatalf("Vector(%d) = %v, %v", id, v, err)
	}
	if _, err := ix.Vector(99); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if ix.Deleted(id) {
		t.Fatal("fresh slot reported deleted")
	}
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	if !ix.Deleted(id) {
		t.Fatal("tombstoned slot not reported deleted")
	}
	if ix.Deleted(-1) || ix.Deleted(99) {
		t.Fatal("out-of-range ids reported deleted")
	}
}
