package hnsw

import (
	"testing"

	"proximity/internal/vec"
)

// TestSearchEfClampsBelowK pins that ef < k is silently raised to k, so
// callers can tune ef without breaking the result count contract.
func TestSearchEfClampsBelowK(t *testing.T) {
	ix, _ := buildRandom(t, 300, 8, 21)
	q := vec.RandomGaussian(vec.NewRand(22), 8)
	res, err := ix.SearchEf(q, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Errorf("SearchEf(k=10, ef=1) returned %d results, want 10", len(res))
	}
}

// TestLevelDistribution checks the geometric layer assignment: most nodes
// live on layer 0 and the hierarchy thins out exponentially — the
// property that makes the greedy descent logarithmic.
func TestLevelDistribution(t *testing.T) {
	const n = 3000
	ix, err := New(4, vec.L2Distance, Config{Seed: 23, M: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(24)
	for i := 0; i < n; i++ {
		if err := ix.Add(vec.RandomGaussian(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[int]int)
	for _, l := range ix.levels {
		counts[l]++
	}
	// With mult = 1/ln(16), P(level ≥ 1) = 1/16: expect roughly n/16
	// nodes above layer 0, within a generous band.
	above := n - counts[0]
	if above < n/40 || above > n/6 {
		t.Errorf("nodes above layer 0 = %d of %d, want ≈ n/16", above, n)
	}
	if ix.maxLevel < 1 {
		t.Errorf("maxLevel = %d, expected a hierarchy at n=%d", ix.maxLevel, n)
	}
	if ix.levels[ix.entry] != ix.maxLevel {
		t.Error("entry point must live on the top layer")
	}
}
