package telemetry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 16)
	sampled := 0
	for i := 0; i < 100; i++ {
		ctx, trace := tr.Start(context.Background())
		if trace != nil {
			sampled++
			if FromContext(ctx) != trace {
				t.Fatal("context does not carry the trace")
			}
			trace.Finish()
		} else if FromContext(ctx) != nil {
			t.Fatal("unsampled context carries a trace")
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
}

func TestTracerDisabled(t *testing.T) {
	tr := NewTracer(0, 4)
	ctx, trace := tr.Start(context.Background())
	if trace != nil {
		t.Fatal("disabled tracer returned a trace")
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled tracer modified the context")
	}
	tr.SetSampleEvery(1)
	if _, trace := tr.Start(context.Background()); trace == nil {
		t.Fatal("re-enabled tracer did not sample")
	}
	// nil tracer / nil trace are valid no-op receivers throughout.
	var nilTr *Tracer
	nilTr.SetSampleEvery(1)
	if _, trace := nilTr.Start(context.Background()); trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	if got := nilTr.Recent(5); got != nil {
		t.Fatal("nil tracer returned traces")
	}
	var nilTrace *Trace
	nilTrace.StartSpan(StageDBSearch)(nil)
	nilTrace.AddSpans([]Span{{}})
	nilTrace.Finish()
	if nilTrace.ID() != 0 || nilTrace.Spans() != nil {
		t.Fatal("nil trace should be inert")
	}
}

func TestTraceSpansAndRing(t *testing.T) {
	tr := NewTracer(1, 4)
	var ids []uint64
	for i := 0; i < 6; i++ {
		_, trace := tr.Start(context.Background())
		finish := trace.StartSpan(StageCacheLookup)
		time.Sleep(100 * time.Microsecond)
		finish(nil)
		trace.StartSpan(StageDBSearch)(errors.New("boom"))
		ids = append(ids, trace.ID())
		trace.Finish()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4 (size cap)", len(recent))
	}
	// Newest first: the last finished trace leads.
	if recent[0].ID != ids[len(ids)-1] {
		t.Fatalf("recent[0].ID = %d, want %d", recent[0].ID, ids[len(ids)-1])
	}
	if got := tr.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) returned %d", len(got))
	}
	rec := recent[0]
	if len(rec.Spans) != 2 {
		t.Fatalf("record has %d spans, want 2", len(rec.Spans))
	}
	if rec.Spans[0].Stage != StageCacheLookup || rec.Spans[0].Dur < 50*time.Microsecond {
		t.Errorf("span 0 = %+v", rec.Spans[0])
	}
	if rec.Spans[1].Err != "boom" {
		t.Errorf("span 1 error = %q, want boom", rec.Spans[1].Err)
	}
	if rec.Total <= 0 {
		t.Errorf("record total = %d", rec.Total)
	}
}

func TestForeignTrace(t *testing.T) {
	tr := NewTracer(1, 4)
	ctx, trace := tr.StartForeign(context.Background(), 0xabcd)
	if trace.ID() != 0xabcd {
		t.Fatalf("foreign trace ID = %x", trace.ID())
	}
	FromContext(ctx).StartSpan(StageDBSearch)(nil)
	spans := trace.Spans()
	trace.Finish()
	if len(spans) != 1 {
		t.Fatalf("foreign trace spans = %d, want 1", len(spans))
	}
	if got := tr.Recent(0); len(got) != 0 {
		t.Fatalf("foreign trace leaked into the ring: %d records", len(got))
	}
	if _, trace := tr.StartForeign(context.Background(), 0); trace != nil {
		t.Fatal("zero foreign ID should not trace")
	}
}

func TestTraceIDCodec(t *testing.T) {
	for _, id := range []uint64{1, 0xabcd, ^uint64(0)} {
		s := FormatTraceID(id)
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Errorf("round trip %x -> %q -> %x ok=%v", id, s, got, ok)
		}
	}
	for _, bad := range []string{"", "xyz", "00000000000000000", "0000000000000000"} {
		if id, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) = %x, want reject", bad, id)
		}
	}
	if id, ok := ParseTraceID("ABCD"); !ok || id != 0xabcd {
		t.Errorf("uppercase parse = %x ok=%v", id, ok)
	}
}

func TestSpanCodec(t *testing.T) {
	in := []Span{
		{Stage: StageNodeRPC, Node: "127.0.0.1:9", Offset: time.Millisecond, Dur: 2 * time.Millisecond},
		{Stage: StageDBSearch, Dur: time.Microsecond, Err: "x"},
	}
	s, err := MarshalSpans(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSpans(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if s, err := MarshalSpans(nil); err != nil || s != "" {
		t.Fatalf("empty marshal = %q, %v", s, err)
	}
	if out, err := UnmarshalSpans(""); err != nil || out != nil {
		t.Fatalf("empty unmarshal = %v, %v", out, err)
	}
	if _, err := UnmarshalSpans("{broken"); err == nil {
		t.Fatal("malformed span header should error")
	}
}

func TestAddSpansGraft(t *testing.T) {
	tr := NewTracer(1, 4)
	_, trace := tr.Start(context.Background())
	trace.StartSpan(StageCacheLookup)(nil)
	trace.AddSpans([]Span{{Stage: StageDBSearch, Node: "remote", Dur: time.Second}})
	trace.AddSpans(nil)
	spans := trace.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[1].Node != "remote" {
		t.Errorf("grafted span = %+v", spans[1])
	}
	trace.Finish()
}

func TestStartSpanLinked(t *testing.T) {
	tr := NewTracer(1, 4)
	_, leader := tr.Start(context.Background())
	_, follower := tr.Start(context.Background())
	follower.StartSpanLinked(StageCoalesceWait, leader.ID())(nil)
	follower.StartSpanLinked(StageCacheLookup, 0)(nil)
	spans := follower.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Link != leader.ID() || leader.ID() == 0 {
		t.Errorf("linked span Link = %d, want leader %d", spans[0].Link, leader.ID())
	}
	if spans[1].Link != 0 {
		t.Errorf("zero-link span carries Link = %d", spans[1].Link)
	}
	// The link must survive the wire codec, and a zero link must be
	// omitted from the JSON entirely.
	s, err := MarshalSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSpans(s)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Link != leader.ID() {
		t.Errorf("link lost in codec: %+v", out[0])
	}
	if strings.Count(s, `"link"`) != 1 {
		t.Errorf("zero link should be omitted from JSON: %s", s)
	}
	// Nil traces stay no-ops.
	var nilTrace *Trace
	nilTrace.StartSpanLinked(StageCoalesceWait, 7)(nil)
	follower.Finish()
	leader.Finish()
}
