package telemetry

// Metric series names: the single registry of every Prometheus series
// this process exports. Registration sites must use these constants —
// never an in-place string literal — because a typo'd literal does not
// fail, it silently forks a fresh series next to the canonical one and
// every dashboard keyed on the real name goes dark for that code path.
// The stagenames analyzer (internal/lint, run by cmd/proximity-vet)
// enforces this at CI time; the Stage enum above plays the same role
// for stage labels.
//
// Names follow Prometheus conventions: a proximity_ namespace prefix,
// _total on counters, base units in the name (_seconds, _bytes).
const (
	// Stage-latency histogram family (labeled by Stage.String()).
	MetricStageLatencySeconds = "proximity_stage_latency_seconds"

	// Cache hit/miss/occupancy (any core.Cache variant).
	MetricCacheHitsTotal      = "proximity_cache_hits_total"
	MetricCacheMissesTotal    = "proximity_cache_misses_total"
	MetricCacheEvictionsTotal = "proximity_cache_evictions_total"
	MetricCachePutsTotal      = "proximity_cache_puts_total"
	MetricCacheDistCompsTotal = "proximity_cache_distance_comparisons_total"
	MetricCacheEntries        = "proximity_cache_entries"
	MetricCacheCapacity       = "proximity_cache_capacity"

	// Graph-index traversal and maintenance (core.IndexedCache).
	MetricIndexGraphHopsTotal      = "proximity_index_graph_hops_total"
	MetricIndexReranksTotal        = "proximity_index_reranks_total"
	MetricIndexTombstones          = "proximity_index_tombstones"
	MetricIndexReusedSlotsTotal    = "proximity_index_reused_slots_total"
	MetricIndexSeveredInEdgesTotal = "proximity_index_severed_in_edges_total"
	MetricIndexRepairPassesTotal   = "proximity_index_repair_passes_total"
	MetricIndexRepairedNodesTotal  = "proximity_index_repaired_nodes_total"
	MetricIndexRepairPending       = "proximity_index_repair_pending"

	// Tier occupancy and traffic (tier.TieredCache).
	MetricTierHotEntries        = "proximity_tier_hot_entries"
	MetricTierHotCapacity       = "proximity_tier_hot_capacity"
	MetricTierWarmEntries       = "proximity_tier_warm_entries"
	MetricTierWarmCapacity      = "proximity_tier_warm_capacity"
	MetricTierWarmBytes         = "proximity_tier_warm_bytes"
	MetricTierHotHitsTotal      = "proximity_tier_hot_hits_total"
	MetricTierWarmHitsTotal     = "proximity_tier_warm_hits_total"
	MetricTierPromotionsTotal   = "proximity_tier_promotions_total"
	MetricTierDemotionsTotal    = "proximity_tier_demotions_total"
	MetricTierWarmDiscardsTotal = "proximity_tier_warm_discards_total"
	MetricTierWarmScannedTotal  = "proximity_tier_warm_scanned_total"
	MetricTierWarmPrunedTotal   = "proximity_tier_warm_pruned_total"

	// Miss-coalescing batch pipeline (internal/batch).
	MetricBatchSearchesTotal  = "proximity_batch_searches_total"
	MetricBatchCoalescedTotal = "proximity_batch_coalesced_total"
	MetricBatchFlushesTotal   = "proximity_batch_flushes_total"
	MetricBatchErrorsTotal    = "proximity_batch_errors_total"
	MetricBatchQueueDepth     = "proximity_batch_queue_depth"

	// Go runtime gauges (RegisterRuntimeMetrics).
	MetricGoroutines         = "proximity_goroutines"
	MetricHeapAllocBytes     = "proximity_heap_alloc_bytes"
	MetricHeapObjects        = "proximity_heap_objects"
	MetricGCCyclesTotal      = "proximity_gc_cycles_total"
	MetricGCLastPauseSeconds = "proximity_gc_last_pause_seconds"
)
