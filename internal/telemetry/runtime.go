package telemetry

import (
	"runtime"
	"runtime/debug"
)

// RegisterRuntimeMetrics adds process self-sampling gauges to reg:
// goroutine count, heap usage, GC cycle count, and last GC pause. The
// values are read fresh at each scrape — no background goroutine.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(MetricGoroutines,
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc(MetricHeapAllocBytes,
		"Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	reg.GaugeFunc(MetricHeapObjects,
		"Number of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapObjects)
		})
	reg.CounterFunc(MetricGCCyclesTotal,
		"Completed GC cycles.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
	reg.GaugeFunc(MetricGCLastPauseSeconds,
		"Duration of the most recent GC stop-the-world pause.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.NumGC == 0 {
				return 0
			}
			return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
		})
}

// BuildInfo describes the running binary for fleet-homogeneity checks.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// ReadBuildInfo extracts module path, module version, and Go toolchain
// version from the binary's embedded build info. Fields degrade to
// "unknown" when the binary was built without module info (go test).
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{Module: "unknown", Version: "unknown", GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			out.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			out.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			out.GoVersion = bi.GoVersion
		}
	}
	return out
}
