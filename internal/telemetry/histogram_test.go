package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketGeometry checks that bucketOf and bucketUpper are consistent
// inverses: every value lands in a bucket whose bounds contain it, and
// bucket upper bounds are strictly increasing (continuous coverage).
func TestBucketGeometry(t *testing.T) {
	prev := int64(0)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper(%d)=%d not increasing (prev %d)", i, up, prev)
		}
		prev = up
	}
	// Exhaustive small values plus a log sweep of large ones.
	check := func(ns int64) {
		idx := bucketOf(ns)
		lo := int64(0)
		if idx > 0 {
			lo = bucketUpper(idx - 1)
		}
		hi := bucketUpper(idx)
		if idx < numBuckets-1 && (ns < lo || ns >= hi) {
			t.Fatalf("bucketOf(%d)=%d but bounds [%d,%d)", ns, idx, lo, hi)
		}
	}
	for ns := int64(0); ns < 4096; ns++ {
		check(ns)
	}
	for ns := int64(1); ns > 0 && ns < int64(1)<<50; ns = ns*3 + 7 {
		check(ns)
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("negative duration bucket = %d, want 0", got)
	}
	if got := bucketOf(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("overflow bucket = %d, want %d", got, numBuckets-1)
	}
}

// TestHistogramQuantileUniform checks quantile estimates against a known
// uniform distribution: relative error must stay within the bucket
// width bound (2^-subBits = 12.5%).
func TestHistogramQuantileUniform(t *testing.T) {
	h := NewLatencyHistogram()
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(1_000_000))) // uniform [0, 1ms)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := q * 1e6
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > 0.13 {
			t.Errorf("q=%.2f: got %.0fns want %.0fns (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	mean := float64(h.Mean())
	if math.Abs(mean-500_000)/500_000 > 0.02 {
		t.Errorf("mean = %.0f, want ~500000", mean)
	}
}

// TestHistogramQuantileBimodal checks a distribution with a distinct
// tail: 90% fast ops at ~10µs, 10% slow at ~10ms. p50 must sit near the
// fast mode and p99 near the slow mode.
func TestHistogramQuantileBimodal(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 9000; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(10 * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 8*time.Microsecond || p50 > 13*time.Microsecond {
		t.Errorf("p50 = %v, want ~10µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8*time.Millisecond || p99 > 13*time.Millisecond {
		t.Errorf("p99 = %v, want ~10ms", p99)
	}
}

// TestHistogramQuantileEdges covers the empty histogram and out-of-range
// q values.
func TestHistogramQuantileEdges(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
	h.Observe(100 * time.Nanosecond)
	lo, hi := h.Quantile(-1), h.Quantile(2)
	if lo <= 0 || hi <= 0 {
		t.Fatalf("clamped quantiles = %v, %v; want positive", lo, hi)
	}
	h.Observe(-time.Second) // clamps to 0, never panics
	if h.Count() != 2 {
		t.Fatalf("count after negative observe = %d, want 2", h.Count())
	}
}

// TestHistogramMerge verifies that merging equals observing the union.
func TestHistogramMerge(t *testing.T) {
	a, b, union := NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(1_000_000))
		a.Observe(d)
		union.Observe(d)
	}
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(100_000_000))
		b.Observe(d)
		union.Observe(d)
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count() != union.Count() || a.Sum() != union.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v", a.Count(), a.Sum(), union.Count(), union.Sum())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := a.Quantile(q), union.Quantile(q); got != want {
			t.Errorf("q=%.2f merged %v != union %v", q, got, want)
		}
	}
}

// TestSnapshotSub verifies delta snapshots isolate an interval.
func TestSnapshotSub(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	delta := h.Snapshot().Sub(before)
	if delta.N != 2 {
		t.Fatalf("delta N = %d, want 2", delta.N)
	}
	if got := delta.Mean(); got < 2*time.Millisecond || got > 3*time.Millisecond {
		t.Errorf("delta mean = %v, want ~2.5ms", got)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot should report zeros")
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while a
// reader snapshots, as a race-detector exercise.
func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(1_000_000)))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot().Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

// BenchmarkHistogramObserve measures the hot-path cost of one
// observation (three atomic adds plus a bit scan).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	b.RunParallel(func(pb *testing.PB) {
		d := 137 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}
