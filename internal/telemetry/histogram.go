package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry. Durations are bucketed on a log scale —
// bucket width grows with the value, so one fixed layout spans nanosecond
// cache hits and multi-second tail stalls with bounded RELATIVE error,
// which is what latency quantiles need (a ±12% p99 is useful; a ±4ms p99
// over microsecond lookups is not).
//
// Each power-of-two octave is split into 2^subBits linear sub-buckets, so
// the worst-case relative quantile error is 2^-subBits ≈ 12.5%. With 40
// octaves (1ns up to ~73 minutes) the whole layout is 320 buckets — 2.5KB
// of atomics per histogram, cheap enough to hold one per stage per
// process and merge across shards and nodes.
const (
	subBits    = 3
	subBuckets = 1 << subBits
	octaves    = 40
	numBuckets = octaves * subBuckets
)

// bucketOf maps a duration in nanoseconds to its bucket index: the top
// subBits bits after the leading one select the linear sub-bucket within
// the value's octave. Values beyond the last octave clamp into it, so
// counts are never dropped.
func bucketOf(ns int64) int {
	if ns < subBuckets {
		// Below subBuckets the octaves are degenerate (fewer distinct
		// integers than sub-buckets); map tiny values one per bucket.
		if ns < 0 {
			ns = 0
		}
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1 // floor(log2(ns)), exp >= subBits
	sub := (ns >> (uint(exp) - subBits)) & (subBuckets - 1)
	idx := (exp-subBits+1)*subBuckets + int(sub)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the exclusive upper bound (ns) of bucket idx — the
// inverse of bucketOf, used for quantile interpolation and exposition.
func bucketUpper(idx int) int64 {
	if idx < subBuckets {
		return int64(idx) + 1
	}
	exp := idx/subBuckets + subBits - 1
	sub := int64(idx % subBuckets)
	return int64(1)<<uint(exp) + (sub+1)<<(uint(exp)-subBits)
}

// LatencyHistogram is a lock-free streaming histogram of durations:
// Observe is a pair of atomic adds, safe for any number of concurrent
// writers, and snapshots/merges/quantiles read the buckets without
// stopping writers. The zero value is NOT ready; use NewLatencyHistogram.
type LatencyHistogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// NewLatencyHistogram creates an empty histogram.
func NewLatencyHistogram() *LatencyHistogram { return &LatencyHistogram{} }

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *LatencyHistogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean observation, or 0 with none.
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Merge folds other's counts into h — the cross-shard / cross-node
// aggregation path. Both histograms share one fixed bucket layout, so the
// merge is a plain per-bucket sum; other may keep receiving observations
// concurrently (the merge then reflects some consistent-enough interleaving,
// the usual monitoring contract).
func (h *LatencyHistogram) Merge(other *LatencyHistogram) {
	if other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Quantile estimates the q-th quantile (0..1) by walking the cumulative
// bucket counts and interpolating linearly within the target bucket. The
// relative error is bounded by the bucket width, 2^-subBits ≈ 12.5%.
// Returns 0 with no observations.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a plain (non-atomic) copy of a histogram's state,
// used for deltas (before/after a load run) and quantile math.
type HistogramSnapshot struct {
	Buckets [numBuckets]int64
	N       int64
	SumNs   int64
}

// Snapshot copies the current counters. Concurrent writers may move the
// histogram mid-copy; the snapshot is then off by in-flight observations,
// which is acceptable for monitoring (and exact once writers quiesce).
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.N = h.count.Load()
	s.SumNs = h.sum.Load()
	return s
}

// Sub returns the delta snapshot s minus prev — the observations that
// arrived between two snapshots of the same histogram.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	out.N = s.N - prev.N
	out.SumNs = s.SumNs - prev.SumNs
	return out
}

// Mean returns the snapshot's mean observation.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.N == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.N)
}

// Quantile estimates the q-th quantile (0..1) of the snapshot.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based, nearest-rank on the
	// cumulative counts; interpolation below recovers sub-bucket
	// resolution).
	rank := int64(math.Ceil(q * float64(s.N)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			// Linear interpolation within the bucket by the rank's
			// position among the bucket's occupants.
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(bucketUpper(numBuckets - 1))
}
