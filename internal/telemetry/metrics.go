package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (hits, misses, flushes).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, entries).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags a registered series for exposition.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

// series is one registered time series: a family name plus an optional
// pre-rendered label set, backed by a live value source.
type series struct {
	name   string // family name, e.g. proximity_stage_latency_seconds
	labels string // pre-rendered, e.g. `stage="cache_lookup"` (may be empty)
	kind   metricKind
	help   string

	counter *Counter
	gauge   *Gauge
	hist    *LatencyHistogram
	fn      func() float64 // CounterFunc / GaugeFunc source
}

// Registry holds the process's metric series and renders them in the
// Prometheus text exposition format. Registration is cheap and happens at
// wiring time; the observation hot paths touch only the returned Counter /
// Gauge / LatencyHistogram values, never the registry lock.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// register adds a series, replacing any previous registration of the same
// (name, labels) pair — re-registration keeps wiring idempotent.
func (r *Registry) register(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := s.name + "{" + s.labels + "}"
	if old, ok := r.byKey[key]; ok {
		*old = *s
		return
	}
	r.byKey[key] = s
	r.series = append(r.series, s)
}

// Counter registers (or returns a new) counter series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&series{name: name, kind: kindCounter, help: help, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters owned elsewhere (cache hit/miss totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&series{name: name, kind: kindCounter, help: help, fn: fn})
}

// Gauge registers (or returns a new) gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&series{name: name, kind: kindGauge, help: help, gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time (queue depth,
// goroutine count, heap bytes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&series{name: name, kind: kindGauge, help: help, fn: fn})
}

// GaugeLabeled is GaugeFunc with one fixed label pair.
func (r *Registry) GaugeLabeled(name, help, label, value string, fn func() float64) {
	r.register(&series{
		name: name, kind: kindGauge, help: help, fn: fn,
		labels: fmt.Sprintf("%s=%q", label, value),
	})
}

// CounterLabeled is CounterFunc with one fixed label pair.
func (r *Registry) CounterLabeled(name, help, label, value string, fn func() float64) {
	r.register(&series{
		name: name, kind: kindCounter, help: help, fn: fn,
		labels: fmt.Sprintf("%s=%q", label, value),
	})
}

// Histogram registers (or returns a new) histogram series.
func (r *Registry) Histogram(name, help string) *LatencyHistogram {
	h := NewLatencyHistogram()
	r.register(&series{name: name, kind: kindHistogram, help: help, hist: h})
	return h
}

// HistogramLabeled registers a histogram with one fixed label pair —
// how the per-stage latency family shares a name across stages.
func (r *Registry) HistogramLabeled(name, help, label, value string) *LatencyHistogram {
	h := NewLatencyHistogram()
	r.register(&series{
		name: name, kind: kindHistogram, help: help, hist: h,
		labels: fmt.Sprintf("%s=%q", label, value),
	})
	return h
}

// expoLe is the fixed bucket boundary list (seconds) used for histogram
// exposition: one bound per octave from 1µs to ~8.6s plus +Inf. The
// internal layout keeps 8 sub-buckets per octave for quantile precision;
// exposition collapses to octaves so a scrape carries 25 series per
// histogram instead of 320.
var expoLe = func() []float64 {
	out := make([]float64, 0, 24)
	for ns := int64(1000); ns <= int64(1000)<<23; ns <<= 1 {
		out = append(out, float64(ns)/1e9)
	}
	return out
}()

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), grouping series that share a family
// name under one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	all := make([]*series, len(r.series))
	copy(all, r.series)
	r.mu.Unlock()

	// Group by family name, preserving registration order of first
	// appearance (Prometheus requires one HELP/TYPE block per family).
	order := make([]string, 0, len(all))
	families := make(map[string][]*series, len(all))
	for _, s := range all {
		if _, ok := families[s.name]; !ok {
			order = append(order, s.name)
		}
		families[s.name] = append(families[s.name], s)
	}
	for _, name := range order {
		group := families[name]
		kind := "counter"
		switch group[0].kind {
		case kindGauge:
			kind = "gauge"
		case kindHistogram:
			kind = "histogram"
		}
		fmt.Fprintf(w, "# HELP %s %s\n", name, group[0].help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		for _, s := range group {
			switch s.kind {
			case kindCounter, kindGauge:
				v := 0.0
				switch {
				case s.fn != nil:
					v = s.fn()
				case s.counter != nil:
					v = float64(s.counter.Value())
				case s.gauge != nil:
					v = s.gauge.Value()
				}
				fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels), fmtFloat(v))
			case kindHistogram:
				writePromHistogram(w, s)
			}
		}
	}
}

// writePromHistogram renders one histogram series: cumulative le buckets
// on the octave boundaries, then _sum and _count.
func writePromHistogram(w io.Writer, s *series) {
	snap := s.hist.Snapshot()
	var cum int64
	next := 0
	for _, le := range expoLe {
		bound := int64(le * 1e9)
		for next < numBuckets && bucketUpper(next) <= bound {
			cum += snap.Buckets[next]
			next++
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, renderLabels(s.labels, fmt.Sprintf("le=%q", fmtFloat(le))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, renderLabels(s.labels, `le="+Inf"`), snap.N)
	fmt.Fprintf(w, "%s_sum%s %s\n", s.name, renderLabels(s.labels), fmtFloat(float64(snap.SumNs)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", s.name, renderLabels(s.labels), snap.N)
}

// renderLabels joins non-empty label fragments into {a="b",c="d"} form.
func renderLabels(fragments ...string) string {
	parts := fragments[:0:0]
	for _, f := range fragments {
		if f != "" {
			parts = append(parts, f)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtFloat renders a float the way Prometheus expects: integral values
// without an exponent, everything else in shortest-round-trip form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Families returns the registered family names, sorted — a test and
// diagnostics helper.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, s := range r.series {
		if !seen[s.name] {
			seen[s.name] = true
			out = append(out, s.name)
		}
	}
	sort.Strings(out)
	return out
}
