package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("proximity_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("proximity_test_depth", "test gauge")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("proximity_hits_total", "Cache hits.")
	c.Add(42)
	reg.GaugeFunc("proximity_queue_depth", "Queue depth.", func() float64 { return 7 })
	reg.CounterLabeled("proximity_cache_ops_total", "Cache ops.", "op", "get",
		func() float64 { return 10 })
	reg.CounterLabeled("proximity_cache_ops_total", "Cache ops.", "op", "put",
		func() float64 { return 3 })
	h := reg.HistogramLabeled("proximity_stage_latency_seconds",
		"Per-stage latency.", "stage", "cache_lookup")
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(50 * time.Millisecond)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP proximity_hits_total Cache hits.",
		"# TYPE proximity_hits_total counter",
		"proximity_hits_total 42",
		"# TYPE proximity_queue_depth gauge",
		"proximity_queue_depth 7",
		`proximity_cache_ops_total{op="get"} 10`,
		`proximity_cache_ops_total{op="put"} 3`,
		"# TYPE proximity_stage_latency_seconds histogram",
		`proximity_stage_latency_seconds_bucket{stage="cache_lookup",le="+Inf"} 3`,
		`proximity_stage_latency_seconds_count{stage="cache_lookup"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// One HELP/TYPE block per family even with multiple labeled series.
	if n := strings.Count(out, "# TYPE proximity_cache_ops_total"); n != 1 {
		t.Errorf("cache_ops family has %d TYPE lines, want 1", n)
	}
	// Cumulative le buckets: the 256µs bound must already include both
	// sub-millisecond observations; the +Inf bound includes all three.
	if !strings.Contains(out, `le="0.000256"} 2`) {
		t.Errorf("exposition missing cumulative 256µs bucket with 2 obs\n---\n%s", out)
	}
	// _sum is in seconds.
	if !strings.Contains(out, "proximity_stage_latency_seconds_sum") {
		t.Errorf("exposition missing _sum\n---\n%s", out)
	}
}

func TestRegistryReregisterIdempotent(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("proximity_x", "x", func() float64 { return 1 })
	reg.GaugeFunc("proximity_x", "x", func() float64 { return 2 })
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if n := strings.Count(sb.String(), "\nproximity_x "); n != 1 {
		t.Fatalf("re-registered series appears %d times, want 1\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "proximity_x 2") {
		t.Fatalf("re-registration should replace the source\n%s", sb.String())
	}
	fams := reg.Families()
	if len(fams) != 1 || fams[0] != "proximity_x" {
		t.Fatalf("families = %v", fams)
	}
}

func TestGaugeLabeledAndHistogramUnlabeled(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeLabeled("proximity_shard_entries", "Entries per shard.", "shard", "0",
		func() float64 { return 12 })
	h := reg.Histogram("proximity_request_seconds", "Request latency.")
	h.Observe(time.Millisecond)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `proximity_shard_entries{shard="0"} 12`) {
		t.Errorf("missing labeled gauge\n%s", out)
	}
	if !strings.Contains(out, `proximity_request_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("missing unlabeled histogram buckets\n%s", out)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		42:     "42",
		-3:     "-3",
		1.5:    "1.5",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := fmtFloat(in); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
