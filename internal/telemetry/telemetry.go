// Package telemetry is the repo's zero-dependency observability layer:
// lock-free log-bucketed latency histograms, a Prometheus-text metrics
// registry, and a pooled sampling request tracer with cross-node
// propagation. Everything is nil-safe — a nil *Telemetry, *Tracer, or
// *Trace turns every call into (at most) a nil check, so instrumented
// hot paths cost nothing when observability is off.
package telemetry

import (
	"context"
	"time"
)

// Stage identifies one timed segment of the retrieval path.
type Stage uint8

const (
	StageCacheLookup    Stage = iota // similarity search over resident entries
	StageCacheFill                   // Put of a fresh result after a miss
	StageCoalesceWait                // follower blocked on an in-flight duplicate
	StageBatchQueue                  // dwell in the batch collector before flush
	StageDBSearch                    // vector DB search (single or batched)
	StageNodeRPC                     // HTTP round trip to a cluster shard node
	StageGraphRepair                 // incremental HNSW maintenance pass (hnsw.Repair)
	StageTierWarmLookup              // warm-tier directory probe + vector reads (internal/tier)
	StageTierPromote                 // warm hit re-inserted into the hot tier
	StageTierDemote                  // hot-tier eviction absorbed into the warm tier
	numStages
)

// stageNames are the wire/metric label values, stable across releases.
var stageNames = [numStages]string{
	"cache_lookup",
	"cache_fill",
	"coalesce_wait",
	"batch_queue",
	"db_search",
	"node_rpc",
	"graph_repair",
	"tier_warm_lookup",
	"tier_promote",
	"tier_demote",
}

// String returns the stage's label ("cache_lookup", ...).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// MarshalJSON encodes the stage as its label string.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a label string back into a Stage; unknown labels
// decode to StageCacheLookup rather than erroring (forward compat).
func (s *Stage) UnmarshalJSON(b []byte) error {
	name := string(b)
	if len(name) >= 2 && name[0] == '"' {
		name = name[1 : len(name)-1]
	}
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	*s = StageCacheLookup
	return nil
}

// Stages returns every defined stage in order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageSet holds one latency histogram per stage. A nil *StageSet is a
// valid no-op receiver.
type StageSet struct {
	hists [numStages]*LatencyHistogram
}

// NewStageSet creates a set with empty histograms, optionally registering
// each under the shared family name in reg.
func NewStageSet(reg *Registry) *StageSet {
	s := &StageSet{}
	for i := range s.hists {
		if reg != nil {
			s.hists[i] = reg.HistogramLabeled(
				MetricStageLatencySeconds,
				"Per-stage latency of the retrieval path.",
				"stage", Stage(i).String(),
			)
		} else {
			s.hists[i] = NewLatencyHistogram()
		}
	}
	return s
}

// Observe records one duration for stage.
func (s *StageSet) Observe(stage Stage, d time.Duration) {
	if s == nil || int(stage) >= len(s.hists) {
		return
	}
	s.hists[stage].Observe(d)
}

// Histogram returns the histogram for stage (nil on a nil set).
func (s *StageSet) Histogram(stage Stage) *LatencyHistogram {
	if s == nil || int(stage) >= len(s.hists) {
		return nil
	}
	return s.hists[stage]
}

// Merge folds other's per-stage counts into s.
func (s *StageSet) Merge(other *StageSet) {
	if s == nil || other == nil {
		return
	}
	for i := range s.hists {
		s.hists[i].Merge(other.hists[i])
	}
}

// StageSnapshot captures every stage's histogram at one instant.
type StageSnapshot [numStages]HistogramSnapshot

// Snapshot copies all stage histograms.
func (s *StageSet) Snapshot() StageSnapshot {
	var out StageSnapshot
	if s == nil {
		return out
	}
	for i := range s.hists {
		out[i] = s.hists[i].Snapshot()
	}
	return out
}

// Sub returns the per-stage delta s minus prev.
func (s StageSnapshot) Sub(prev StageSnapshot) StageSnapshot {
	var out StageSnapshot
	for i := range s {
		out[i] = s[i].Sub(prev[i])
	}
	return out
}

// Options configures a Telemetry hub.
type Options struct {
	// SampleEvery traces 1 in this many requests; <= 0 disables tracing.
	SampleEvery int
	// RingSize bounds the buffer of recent completed traces (default 64).
	RingSize int
}

// Telemetry bundles the process's registry, tracer, and per-stage
// histograms — the single handle threaded through the stack. A nil
// *Telemetry no-ops everywhere, so components accept one unconditionally.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
	Stages   *StageSet
}

// New builds a hub with a fresh registry, tracer, and stage set.
func New(opts Options) *Telemetry {
	reg := NewRegistry()
	return &Telemetry{
		Registry: reg,
		Tracer:   NewTracer(opts.SampleEvery, opts.RingSize),
		Stages:   NewStageSet(reg),
	}
}

// ObserveStage records a stage duration (no-op on nil).
func (t *Telemetry) ObserveStage(stage Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.Stages.Observe(stage, d)
}

// StartTrace samples this request via the hub's tracer (no-op on nil).
func (t *Telemetry) StartTrace(ctx context.Context) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	return t.Tracer.Start(ctx)
}

// StageSnapshot copies the per-stage histograms (zero on nil).
func (t *Telemetry) StageSnapshot() StageSnapshot {
	if t == nil {
		return StageSnapshot{}
	}
	return t.Stages.Snapshot()
}
