package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP request header that carries a trace ID across
// cluster hops. A node that receives it records its own spans under the
// same ID and returns them to the caller via TraceSpanHeader, so a
// distributed query stitches into one timeline at the originating router.
const (
	TraceHeader     = "X-Proximity-Trace"
	TraceSpanHeader = "X-Proximity-Trace-Spans"
)

// Span is one timed stage within a trace. Offset is relative to the
// trace's start on the recording process's clock; cross-node spans carry
// their own node label and are aligned only approximately (no clock
// sync), which is fine for attribution. Link, when nonzero, is the ID of
// a *different* trace this span's time is attributable to — a coalesce
// follower's wait links to the leader's trace, so leader traces remain
// discoverable from every request they served.
type Span struct {
	Stage  Stage         `json:"stage"`
	Node   string        `json:"node,omitempty"`
	Offset time.Duration `json:"offset_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Err    string        `json:"err,omitempty"`
	Link   uint64        `json:"link,omitempty"`
}

// Trace accumulates the spans of one sampled request. Traces are pooled;
// obtain them from a Tracer and never retain one after Finish.
type Trace struct {
	mu    sync.Mutex
	id    uint64
	start time.Time
	spans []Span

	tracer  *Tracer
	foreign bool // span-set belongs to a remote parent; don't ring-buffer
}

// ID returns the trace's identifier.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// StartSpan opens a span for stage and returns a finish function.
// Callers invoke finish exactly once (deferred or explicit); a nil Trace
// returns a no-op finish so unsampled requests pay only a nil check.
func (t *Trace) StartSpan(stage Stage) func(err error) {
	return t.StartSpanNode(stage, "")
}

// StartSpanNode is StartSpan with a node label: the router's view of a
// remote hop records which node it called, while the node's own spans
// (grafted via AddSpans) are labeled by the router on arrival.
func (t *Trace) StartSpanNode(stage Stage, node string) func(err error) {
	return t.startSpan(stage, node, 0)
}

// StartSpanLinked is StartSpan with a link to another trace: the span's
// time is attributed to the linked trace's work (a coalesce follower's
// wait links to the leader that ran the search). A zero link behaves
// exactly like StartSpan.
func (t *Trace) StartSpanLinked(stage Stage, link uint64) func(err error) {
	return t.startSpan(stage, "", link)
}

func (t *Trace) startSpan(stage Stage, node string, link uint64) func(err error) {
	if t == nil {
		return finishNoop
	}
	begin := time.Now()
	return func(err error) {
		end := time.Now()
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		t.mu.Lock()
		t.spans = append(t.spans, Span{
			Stage:  stage,
			Node:   node,
			Offset: begin.Sub(t.start),
			Dur:    end.Sub(begin),
			Err:    msg,
			Link:   link,
		})
		t.mu.Unlock()
	}
}

// finishNoop is the shared finish for nil traces.
func finishNoop(error) {}

// AddSpans grafts externally recorded spans (a remote node's timeline,
// decoded from TraceSpanHeader) into this trace.
func (t *Trace) AddSpans(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// TraceRecord is a completed trace as stored in the ring buffer and
// served at /v1/traces.
type TraceRecord struct {
	ID    uint64    `json:"id"`
	Start time.Time `json:"start"`
	Total int64     `json:"total_ns"`
	Spans []Span    `json:"spans"`
}

// MarshalSpans encodes spans as the compact JSON carried in
// TraceSpanHeader.
func MarshalSpans(spans []Span) (string, error) {
	if len(spans) == 0 {
		return "", nil
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// UnmarshalSpans decodes a TraceSpanHeader value.
func UnmarshalSpans(s string) ([]Span, error) {
	if s == "" {
		return nil, nil
	}
	var spans []Span
	if err := json.Unmarshal([]byte(s), &spans); err != nil {
		return nil, fmt.Errorf("telemetry: bad span header: %w", err)
	}
	return spans, nil
}

// FormatTraceID renders a trace ID for the wire header.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses a wire header back into an ID. Returns 0, false on
// malformed input (the request then simply runs untraced).
func ParseTraceID(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	if id == 0 {
		return 0, false
	}
	return id, true
}

// Tracer samples 1 in every SampleEvery requests into pooled Traces and
// keeps the most recent completed ones in a fixed ring. SampleEvery <= 0
// disables sampling entirely: Start returns nil and the request path
// costs one atomic load.
type Tracer struct {
	sampleEvery atomic.Int64
	seq         atomic.Uint64 // request counter for sampling
	nextID      atomic.Uint64 // trace ID allocator

	pool sync.Pool

	ringMu  sync.Mutex
	ring    []TraceRecord
	ringPos int
	ringLen int
}

// NewTracer creates a tracer sampling 1-in-sampleEvery requests into a
// ring of ringSize completed traces. sampleEvery <= 0 disables tracing;
// ringSize <= 0 defaults to 64.
func NewTracer(sampleEvery, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 64
	}
	t := &Tracer{ring: make([]TraceRecord, ringSize)}
	t.sampleEvery.Store(int64(sampleEvery))
	t.pool.New = func() any { return &Trace{spans: make([]Span, 0, 8)} }
	return t
}

// SetSampleEvery changes the sampling rate at runtime (<= 0 disables).
func (tr *Tracer) SetSampleEvery(n int) {
	if tr == nil {
		return
	}
	tr.sampleEvery.Store(int64(n))
}

// Start decides whether this request is sampled. If so it returns a
// derived context carrying a live Trace plus the trace itself; otherwise
// it returns ctx unchanged and a nil Trace (all of whose methods no-op).
func (tr *Tracer) Start(ctx context.Context) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	every := tr.sampleEvery.Load()
	if every <= 0 {
		return ctx, nil
	}
	if tr.seq.Add(1)%uint64(every) != 0 {
		return ctx, nil
	}
	t := tr.get(tr.nextID.Add(1), false)
	return ContextWithTrace(ctx, t), t
}

// StartForeign begins recording under an externally assigned trace ID —
// a node serving a routed query whose parent lives on another process.
// The trace is always sampled (the parent already made the sampling
// decision) and is NOT ring-buffered here; its spans travel back to the
// parent in the response header.
func (tr *Tracer) StartForeign(ctx context.Context, id uint64) (context.Context, *Trace) {
	if tr == nil || id == 0 {
		return ctx, nil
	}
	t := tr.get(id, true)
	return ContextWithTrace(ctx, t), t
}

// get pulls a pooled trace and resets it.
func (tr *Tracer) get(id uint64, foreign bool) *Trace {
	t := tr.pool.Get().(*Trace)
	t.id = id
	t.start = time.Now()
	t.spans = t.spans[:0]
	t.tracer = tr
	t.foreign = foreign
	return t
}

// Finish completes the trace: locally originated traces are copied into
// the ring buffer; foreign ones are simply returned to the pool (their
// spans were already shipped). The trace must not be used after Finish.
func (t *Trace) Finish() {
	if t == nil || t.tracer == nil {
		return
	}
	tr := t.tracer
	if !t.foreign {
		rec := TraceRecord{
			ID:    t.id,
			Start: t.start,
			Total: int64(time.Since(t.start)),
			Spans: append([]Span(nil), t.spans...),
		}
		tr.ringMu.Lock()
		tr.ring[tr.ringPos] = rec
		tr.ringPos = (tr.ringPos + 1) % len(tr.ring)
		if tr.ringLen < len(tr.ring) {
			tr.ringLen++
		}
		tr.ringMu.Unlock()
	}
	t.tracer = nil
	tr.pool.Put(t)
}

// Recent returns up to n of the most recently completed traces, newest
// first. n <= 0 returns them all.
func (tr *Tracer) Recent(n int) []TraceRecord {
	if tr == nil {
		return nil
	}
	tr.ringMu.Lock()
	defer tr.ringMu.Unlock()
	if n <= 0 || n > tr.ringLen {
		n = tr.ringLen
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (tr.ringPos - 1 - i + len(tr.ring)*2) % len(tr.ring)
		out = append(out, tr.ring[idx])
	}
	return out
}

// traceKey is the context key for the active trace.
type traceKey struct{}

// ContextWithTrace returns ctx carrying t.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext extracts the active trace, or nil — nil is a valid Trace
// receiver for StartSpan/AddSpans/Finish, so callers never branch.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
