package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := []string{"cache_lookup", "cache_fill", "coalesce_wait", "batch_queue", "db_search", "node_rpc", "graph_repair", "tier_warm_lookup", "tier_promote", "tier_demote"}
	stages := Stages()
	if len(stages) != len(want) {
		t.Fatalf("Stages() = %d entries, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.String(), want[i])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range stage should be unknown")
	}
}

func TestStageJSON(t *testing.T) {
	b, err := json.Marshal(StageDBSearch)
	if err != nil || string(b) != `"db_search"` {
		t.Fatalf("marshal = %s, %v", b, err)
	}
	var s Stage
	if err := json.Unmarshal([]byte(`"node_rpc"`), &s); err != nil || s != StageNodeRPC {
		t.Fatalf("unmarshal = %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"future_stage"`), &s); err != nil || s != StageCacheLookup {
		t.Fatalf("unknown label should decode to cache_lookup, got %v, %v", s, err)
	}
}

func TestStageSet(t *testing.T) {
	s := NewStageSet(nil)
	s.Observe(StageCacheLookup, time.Millisecond)
	s.Observe(StageDBSearch, 2*time.Millisecond)
	s.Observe(Stage(250), time.Second) // out of range: dropped
	if got := s.Histogram(StageCacheLookup).Count(); got != 1 {
		t.Fatalf("cache_lookup count = %d", got)
	}
	if s.Histogram(Stage(250)) != nil {
		t.Fatal("out-of-range histogram should be nil")
	}

	other := NewStageSet(nil)
	other.Observe(StageCacheLookup, 3*time.Millisecond)
	s.Merge(other)
	s.Merge(nil)
	if got := s.Histogram(StageCacheLookup).Count(); got != 2 {
		t.Fatalf("merged cache_lookup count = %d, want 2", got)
	}

	snap := s.Snapshot()
	if snap[StageCacheLookup].N != 2 || snap[StageDBSearch].N != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	s.Observe(StageDBSearch, time.Millisecond)
	delta := s.Snapshot().Sub(snap)
	if delta[StageDBSearch].N != 1 || delta[StageCacheLookup].N != 0 {
		t.Fatalf("delta = %+v", delta)
	}

	// nil set is inert.
	var nilSet *StageSet
	nilSet.Observe(StageCacheLookup, time.Second)
	nilSet.Merge(s)
	if nilSet.Histogram(StageCacheLookup) != nil {
		t.Fatal("nil set histogram should be nil")
	}
	_ = nilSet.Snapshot()
}

func TestTelemetryHub(t *testing.T) {
	hub := New(Options{SampleEvery: 1, RingSize: 8})
	ctx, trace := hub.StartTrace(context.Background())
	if trace == nil || FromContext(ctx) != trace {
		t.Fatal("hub did not start a trace")
	}
	trace.Finish()
	hub.ObserveStage(StageCacheLookup, time.Millisecond)
	if hub.StageSnapshot()[StageCacheLookup].N != 1 {
		t.Fatal("hub stage observation lost")
	}

	// Stage histograms are registered in the hub's registry.
	var sb strings.Builder
	hub.Registry.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `proximity_stage_latency_seconds_count{stage="cache_lookup"} 1`) {
		t.Fatalf("hub registry missing stage series\n%s", sb.String())
	}

	// nil hub no-ops.
	var nilHub *Telemetry
	nilHub.ObserveStage(StageDBSearch, time.Second)
	ctx2, trace2 := nilHub.StartTrace(context.Background())
	if trace2 != nil || ctx2 != context.Background() {
		t.Fatal("nil hub should not trace")
	}
	_ = nilHub.StageSnapshot()
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(nil) // no-op
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"proximity_goroutines",
		"proximity_heap_alloc_bytes",
		"proximity_gc_cycles_total",
		"proximity_gc_last_pause_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %s", want)
		}
	}
}

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" || bi.GoVersion == "unknown" {
		t.Fatalf("go version = %q", bi.GoVersion)
	}
	if bi.Module == "" || bi.Version == "" {
		t.Fatalf("build info = %+v", bi)
	}
}

func TestFromContextNil(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil context should yield nil trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("bare context should yield nil trace")
	}
}
