package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/report"
	"proximity/internal/vec"
)

// Fig10Result reproduces Fig. 10: the per-query cache lookup time as the
// number of cached entries n grows, for Proximity-FLAT (linear scan, time
// grows linearly) and Proximity-LSH (bucketed scan, time stays constant).
// The paper measures 2µs at n=20 up to 13ms at n=200k for FLAT and a flat
// 4.8µs for LSH. Absolute numbers depend on hardware; the shape — linear
// versus flat — is the claim.
type Fig10Result struct {
	Dim     int
	Sizes   []int
	FlatUS  []float64 // mean lookup microseconds per size
	LSHUS   []float64
	LSHBits []int // signature width chosen per size so capacity ≥ n
}

// Fig10LookupScaling runs the microbenchmark. Caches are filled with
// random embeddings and probed with a mix of near and far queries under
// the LRU policy, as in §4.5.1.
func (s *Suite) Fig10LookupScaling() (*Fig10Result, error) {
	res := &Fig10Result{
		Dim:     s.cfg.Dim,
		Sizes:   s.cfg.Fig10Sizes,
		FlatUS:  make([]float64, len(s.cfg.Fig10Sizes)),
		LSHUS:   make([]float64, len(s.cfg.Fig10Sizes)),
		LSHBits: make([]int, len(s.cfg.Fig10Sizes)),
	}
	for i, n := range s.cfg.Fig10Sizes {
		flatUS, err := s.measureFlatLookup(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 flat n=%d: %w", n, err)
		}
		res.FlatUS[i] = flatUS

		lshBits := bitsForCapacity(n, core.DefaultBucketCapacity)
		lshUS, err := s.measureLSHLookup(n, lshBits)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 lsh n=%d: %w", n, err)
		}
		res.LSHUS[i] = lshUS
		res.LSHBits[i] = lshBits
	}
	return res, nil
}

// bitsForCapacity picks the smallest L with 2^L·b ≥ n. The paper runs
// Fig. 10 with L=8; beyond 2^8·20 = 5120 entries a wider signature is
// needed to actually store n entries, which leaves the per-lookup cost
// unchanged (one bucket of ≤ b entries is scanned either way).
func bitsForCapacity(n, bucket int) int {
	l := 8
	for (1<<l)*bucket < n && l < 30 {
		l++
	}
	return l
}

func (s *Suite) measureFlatLookup(n int) (float64, error) {
	cache, err := core.NewFlat(s.cfg.Dim, core.Options{
		Capacity:  n,
		Tolerance: 1,
		Policy:    core.LRU,
	})
	if err != nil {
		return 0, err
	}
	return s.fillAndProbe(cache, n)
}

func (s *Suite) measureLSHLookup(n, lshBits int) (float64, error) {
	cache, err := core.NewLSH(s.cfg.Dim, core.LSHOptions{
		Bits:           lshBits,
		BucketCapacity: core.DefaultBucketCapacity,
		Tolerance:      1,
		Policy:         core.LRU,
		Seed:           s.cfg.BaseSeed + 31,
	})
	if err != nil {
		return 0, err
	}
	return s.fillAndProbe(cache, n)
}

// fillAndProbe inserts n random keys and measures the mean Get latency
// over the configured number of lookups (half near cached keys, half
// far), repeated 3× taking the best mean to damp scheduler noise.
func (s *Suite) fillAndProbe(cache core.Cache, n int) (float64, error) {
	rng := vec.NewRand(s.cfg.BaseSeed + 33)
	keys := make([]vec.Vector, 0, minInt(n, 64))
	for i := 0; i < n; i++ {
		v := vec.Scale(vec.RandomUnit(rng, s.cfg.Dim), 10)
		cache.Put(v, []int{i})
		if len(keys) < cap(keys) {
			keys = append(keys, v)
		}
	}
	if cache.Len() == 0 {
		return 0, fmt.Errorf("cache did not retain entries")
	}
	probes := make([]vec.Vector, s.cfg.Fig10Lookups)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = vec.GaussianAround(rng, keys[i%len(keys)], 0.01)
		} else {
			probes[i] = vec.Scale(vec.RandomUnit(rng, s.cfg.Dim), 10)
		}
	}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for _, p := range probes {
			cache.Get(p)
		}
		mean := float64(time.Since(start).Nanoseconds()) / float64(len(probes)) / 1e3
		if rep == 0 || mean < best {
			best = mean
		}
	}
	return best, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render prints the scaling table, including the FLAT/LSH ratio.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: cache lookup time vs entries (d=%d, LRU)\n\n", r.Dim)
	tbl := report.NewTable("", "n", "FLAT [µs]", "LSH [µs]", "LSH bits", "FLAT/LSH")
	for i, n := range r.Sizes {
		ratio := "-"
		if r.LSHUS[i] > 0 {
			ratio = fmt.Sprintf("%.1fx", r.FlatUS[i]/r.LSHUS[i])
		}
		tbl.AddRow(
			strconv.Itoa(n),
			fmt.Sprintf("%.2f", r.FlatUS[i]),
			fmt.Sprintf("%.2f", r.LSHUS[i]),
			strconv.Itoa(r.LSHBits[i]),
			ratio,
		)
	}
	b.WriteString(tbl.String())
	return b.String()
}
