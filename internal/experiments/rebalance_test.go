package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestRebalanceABQuick runs the full static-vs-adaptive harness at CI
// size and checks the acceptance shape: the controller acted, the
// adaptive pass ends less imbalanced than the static pass, and not one
// query failed while the migration ran under live traffic.
func TestRebalanceABQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness skipped in -short mode")
	}
	s, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RebalanceAB(RebalanceABOptions{
		Shards:     4,
		MeasureFor: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Static == nil || res.Adaptive == nil {
		t.Fatal("both passes must report")
	}
	if res.Static.Errors != 0 || res.Adaptive.Errors != 0 {
		t.Fatalf("failed queries: static %d, adaptive %d (must be zero, especially during migration)",
			res.Static.Errors, res.Adaptive.Errors)
	}
	if res.Controller.Rebalances == 0 {
		t.Fatalf("controller never rebalanced: %+v", res.Controller)
	}
	if res.Controller.Failures != 0 {
		t.Fatalf("controller failures: %+v", res.Controller)
	}
	if sa, aa := res.StaticPressure.Imbalance, res.AdaptivePressure.Imbalance; aa >= sa {
		t.Errorf("adaptive imbalance %.2f not below static %.2f", aa, sa)
	}
	if res.Controller.LastOutcome.After >= res.Controller.LastOutcome.Before {
		t.Errorf("migration did not improve imbalance: %+v", res.Controller.LastOutcome)
	}
	out := res.Render()
	for _, want := range []string{
		"adaptive shard rebalancing A/B",
		"static (no controller)",
		"adaptive (controller on)",
		"imbalance",
		"failed queries during migration: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
