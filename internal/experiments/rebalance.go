package experiments

import (
	"fmt"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/loadgen"
	"proximity/internal/rebalance"
	"proximity/internal/shard"
	"proximity/internal/vec"
	"proximity/internal/workload"
	"proximity/internal/zipf"
)

// RebalanceABOptions configures the static-vs-adaptive sharding
// comparison — the knobs proximity-bench exposes for
// `-experiment rebalance`.
type RebalanceABOptions struct {
	// Shards is the cache partition count. Defaults to 4.
	Shards int
	// Concurrency is the closed-loop worker count (0 = one per CPU).
	Concurrency int
	// Threshold is the controller's imbalance trigger. Defaults to 1.3.
	Threshold float64
	// SignatureBits is the partitioner's hyperplane count. The default
	// of 4 is deliberately coarse: 16 signatures over a handful of
	// shards is the regime where signature routing gets lumpy — whole
	// semantic clusters land on one signature, and which shard a
	// signature lands on is pure draw luck — so the draw matters and a
	// re-draw has room to win. (The sharded cache's own default of 10
	// bits spreads so finely that only heavy cluster skew imbalances
	// it.)
	SignatureBits int
	// MeasureFor is the target duration of each measurement phase; the
	// workload replays enough rounds to fill it, giving the adaptive
	// controller time to act mid-traffic. Defaults to 700ms.
	MeasureFor time.Duration
}

func (o *RebalanceABOptions) fillDefaults() {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Threshold == 0 {
		o.Threshold = 1.3
	}
	if o.SignatureBits <= 0 {
		o.SignatureBits = 4
	}
	if o.MeasureFor <= 0 {
		o.MeasureFor = 700 * time.Millisecond
	}
}

// RebalanceABResult reports the comparison: the same Zipf-skewed
// workload replayed against the same sharded cache configuration, once
// with the adversarial partitioner draw left alone and once with the
// adaptive rebalance controller running.
type RebalanceABResult struct {
	Shards int
	// StartSeed is the adversarial partitioner seed both passes start
	// from (the worst of the auditioned draws, so the skew is real).
	StartSeed uint64
	// Rounds is how many times the workload replays per measurement
	// phase.
	Rounds int

	Static   *loadgen.Report
	Adaptive *loadgen.Report
	// StaticPressure and AdaptivePressure are the post-measurement
	// shard reports; the headline is their Imbalance delta.
	StaticPressure   shard.PressureReport
	AdaptivePressure shard.PressureReport
	// Controller is the adaptive pass's rebalance-loop counters.
	Controller rebalance.Stats
}

// RebalanceAB measures what adaptive rebalancing buys under a skewed
// stream. The workload is Zipf-over-semantic-clusters — the trending-
// topics regime the shard imbalance problem actually lives in: members
// of one cluster sit close enough to share an LSH signature (so whole
// clusters land on one shard) but beyond τ of each other (so each
// member holds its own cache line). With only ~3 clusters per shard,
// which shard each cluster lands on is pure draw luck at any scale —
// the broad MedRAG-Zipf stream instead spreads entries finely enough
// that the law of large numbers balances every draw, which is exactly
// why it is the wrong probe here (the same reasoning that gave the
// batch comparison its own thundering-herd stream).
//
// Both passes shard a FLAT cache identically and start from the most
// imbalanced partitioner draw found among a fixed audition set — the
// adversarial-but-reproducible version of an unlucky deploy. Each pass
// replays the workload once to build the skew, then replays it for the
// measurement phase under concurrent load; the adaptive pass attaches
// the rebalance controller after the skew round (post-skew, as in a
// live deployment noticing a standing imbalance), so its re-draw
// migration happens mid-traffic. Capacity is sized to hold the unique
// queries: the cost of a hot shard is then its longer linear scan and
// its serialized lock, which is exactly what the re-draw spreads (with
// capacity pressure instead, every shard eventually pins at its
// capacity and the entry-count signal saturates).
func (s *Suite) RebalanceAB(opts RebalanceABOptions) (*RebalanceABResult, error) {
	opts.fillDefaults()
	_, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}

	// Clustered unique pool, sized from the suite config.
	clusters := 3 * opts.Shards
	uniqueN := s.cfg.ZipfTotal / 8
	if uniqueN < 6*clusters {
		uniqueN = 6 * clusters
	}
	if uniqueN > 1024 {
		uniqueN = 1024
	}
	perCluster := (uniqueN + clusters - 1) / clusters
	rng := vec.NewRand(s.cfg.BaseSeed + 6000)
	var uniques []vec.Vector
	memberOf := make([][]int, clusters) // cluster -> unique indices
	for c := 0; c < clusters; c++ {
		center := vec.RandomGaussian(rng, s.cfg.Dim)
		for m := 0; m < perCluster; m++ {
			q := vec.Clone(center)
			jitter := vec.RandomGaussian(rng, s.cfg.Dim)
			for d := range q {
				q[d] += 0.12 * jitter[d]
			}
			memberOf[c] = append(memberOf[c], len(uniques))
			uniques = append(uniques, q)
		}
	}

	// Zipf popularity ACROSS clusters, uniform within: trending topics.
	zf, err := zipf.NewSampler(vec.NewRand(s.cfg.BaseSeed+6001), clusters, s.cfg.ZipfExponent)
	if err != nil {
		return nil, err
	}
	pick := vec.NewRand(s.cfg.BaseSeed + 6002)
	w := workload.Workload{Name: "zipf-clusters"}
	for i := 0; i < s.cfg.ZipfTotal; i++ {
		members := memberOf[zf.Next()]
		w.Queries = append(w.Queries, workload.Query{
			Embedding: uniques[members[pick.IntN(len(members))]],
			Question:  i,
		})
	}
	capacity := 2 * len(uniques)

	perShard := (capacity + opts.Shards - 1) / opts.Shards
	newCache := func(seed uint64) (*shard.ShardedCache, error) {
		return shard.New(s.cfg.Dim, shard.Options{
			Shards:        opts.Shards,
			Seed:          seed,
			SignatureBits: opts.SignatureBits,
			New: func(int) (core.Cache, error) {
				return core.NewFlat(s.cfg.Dim, core.Options{
					Capacity: perShard,
					// τ below the intra-cluster spacing: exact repeats
					// hit, distinct members each keep their own line.
					Tolerance: 1,
					Policy:    core.LRU,
				})
			},
		})
	}

	// Audition a fixed set of draws against the unique queries and
	// start BOTH passes from the worst: a reproducible unlucky deploy.
	worstSeed, err := s.worstSeed(newCache, uniques, 16)
	if err != nil {
		return nil, err
	}

	res := &RebalanceABResult{Shards: opts.Shards, StartSeed: worstSeed}

	run := func(adaptive bool, rounds int) (*loadgen.Report, shard.PressureReport, error) {
		cache, err := newCache(worstSeed)
		if err != nil {
			return nil, shard.PressureReport{}, err
		}
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 4})
		if err != nil {
			return nil, shard.PressureReport{}, err
		}
		target, err := loadgen.NewRetrieverTarget(retr)
		if err != nil {
			return nil, shard.PressureReport{}, err
		}

		// Skew-building round: fills the cache through the miss path so
		// the adversarial draw's concentration is standing state.
		if _, err := loadgen.Run(target, w, loadgen.Options{
			Mode:    loadgen.ClosedLoop,
			Workers: opts.Concurrency,
			Seed:    s.cfg.BaseSeed + 3000,
		}); err != nil {
			return nil, shard.PressureReport{}, fmt.Errorf("skew round: %w", err)
		}

		// The controller attaches POST-skew — a live deployment noticing
		// a standing imbalance — so its re-draw happens during the
		// measurement traffic below, never against a half-filled cache.
		var ctrl *rebalance.Controller
		if adaptive {
			st, err := rebalance.NewShardTarget(cache, rebalance.ShardTargetOptions{Candidates: 12})
			if err != nil {
				return nil, shard.PressureReport{}, err
			}
			ctrl, err = rebalance.New(st, st, rebalance.Options{
				Threshold:  opts.Threshold,
				Interval:   5 * time.Millisecond,
				Window:     -1, // the skew is standing; act on the first breach
				Cooldown:   opts.MeasureFor / 2,
				MinEntries: 32,
			})
			if err != nil {
				return nil, shard.PressureReport{}, err
			}
			if err := ctrl.Start(); err != nil {
				return nil, shard.PressureReport{}, err
			}
			defer func() { _ = ctrl.Close() }()
		}

		// Measurement phase: enough rounds that the adaptive pass's
		// controller fires (and migrates) while traffic is in flight.
		big := workload.Workload{Name: w.Name + "-x" + fmt.Sprint(rounds)}
		for r := 0; r < rounds; r++ {
			big.Queries = append(big.Queries, w.Queries...)
		}
		rep, err := loadgen.Run(target, big, loadgen.Options{
			Mode:    loadgen.ClosedLoop,
			Workers: opts.Concurrency,
			Seed:    s.cfg.BaseSeed + 3000,
		})
		if err != nil {
			return nil, shard.PressureReport{}, err
		}
		if adaptive {
			res.Controller = ctrl.Stats()
		}
		return rep, cache.Report(), nil
	}

	// Calibrate the round count on a single static round so both passes
	// measure the same offered work for roughly MeasureFor.
	probe, _, err := run(false, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: calibration round: %w", err)
	}
	rounds := 1
	if probe.Elapsed > 0 {
		rounds = int(opts.MeasureFor / probe.Elapsed)
	}
	if rounds < 2 {
		rounds = 2
	}
	if rounds > 256 {
		rounds = 256
	}
	res.Rounds = rounds

	if res.Static, res.StaticPressure, err = run(false, rounds); err != nil {
		return nil, fmt.Errorf("experiments: static pass: %w", err)
	}
	if res.Adaptive, res.AdaptivePressure, err = run(true, rounds); err != nil {
		return nil, fmt.Errorf("experiments: adaptive pass: %w", err)
	}
	return res, nil
}

// worstSeed auditions candidate partitioner seeds over the unique
// queries and returns the most imbalanced draw. It reuses the live
// preview machinery: a probe cache is filled once, then each candidate
// is scored with PreviewSeed against those contents.
func (s *Suite) worstSeed(newCache func(uint64) (*shard.ShardedCache, error), uniques []vec.Vector, candidates int) (uint64, error) {
	base := s.cfg.BaseSeed + 2000
	probe, err := newCache(base)
	if err != nil {
		return 0, err
	}
	for _, q := range uniques {
		probe.Put(q, nil)
	}
	worst, worstImb := base, probe.Report().Imbalance
	for i := 0; i < candidates; i++ {
		seed := base + 1 + uint64(i)
		imb, err := probe.PreviewSeed(seed)
		if err != nil {
			return 0, err
		}
		if imb > worstImb {
			worst, worstImb = seed, imb
		}
	}
	return worst, nil
}

// Render formats the comparison with the headline imbalance and tail-
// latency deltas.
func (r *RebalanceABResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive shard rebalancing A/B (%d shards, adversarial seed %d, %d measurement rounds)\n",
		r.Shards, r.StartSeed, r.Rounds)
	b.WriteString("--- static (no controller) ---\n")
	b.WriteString(r.Static.Render())
	b.WriteString(r.StaticPressure.Render())
	b.WriteString("--- adaptive (controller on) ---\n")
	b.WriteString(r.Adaptive.Render())
	b.WriteString(r.AdaptivePressure.Render())
	fmt.Fprintf(&b, "controller: %d samples, %d breaches, %d rebalances (%d declined, %d failed)",
		r.Controller.Samples, r.Controller.Breaches, r.Controller.Rebalances,
		r.Controller.Declined, r.Controller.Failures)
	if r.Controller.Rebalances > 0 {
		fmt.Fprintf(&b, "; last: %s", r.Controller.LastOutcome.Detail)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "imbalance %.2f -> %.2f", r.StaticPressure.Imbalance, r.AdaptivePressure.Imbalance)
	sp99, ap99 := r.Static.P99, r.Adaptive.P99
	fmt.Fprintf(&b, "; p99 %v -> %v", sp99.Round(time.Microsecond), ap99.Round(time.Microsecond))
	if sp99 > 0 {
		fmt.Fprintf(&b, " (%+.1f%%)", 100*(float64(ap99)-float64(sp99))/float64(sp99))
	}
	fmt.Fprintf(&b, "; failed queries during migration: %d\n", r.Adaptive.Errors)
	return b.String()
}
