package experiments

import (
	"fmt"
	"strings"

	"proximity/internal/core"
	"proximity/internal/loadgen"
	"proximity/internal/shard"
)

// LoadTestOptions configures the concurrency harness — the knobs
// proximity-bench exposes as -shards, -concurrency, and -qps.
type LoadTestOptions struct {
	// Shards is the cache partition count (0 = one per CPU).
	Shards int
	// Concurrency is the closed-loop worker count (0 = one per CPU).
	Concurrency int
	// QPS, when positive, adds an open-loop pass at that offered load
	// after the closed-loop throughput probe.
	QPS float64
}

// LoadTestResult reports the concurrency harness: a closed-loop
// throughput probe, an optional open-loop latency probe, and the shard
// pressure left behind.
type LoadTestResult struct {
	Shards      int
	Concurrency int
	Closed      *loadgen.Report
	Open        *loadgen.Report // nil unless QPS was requested
	Pressure    shard.PressureReport
}

// LoadTest replays the MedRAG-Zipf workload (the paper's skewed serving
// workload, §4.2.2) against a sharded FLAT cache under concurrent load.
// Unlike the figure harnesses, which replay one query at a time, this is
// the ROADMAP's serving question: what throughput and tail latency does
// the middleware sustain at a given concurrency?
func (s *Suite) LoadTest(opts LoadTestOptions) (*LoadTestResult, error) {
	w, err := s.zipfWorkload(s.cfg.BaseSeed + 1000)
	if err != nil {
		return nil, err
	}
	_, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}

	newRetrieverTarget := func() (loadgen.Target, *shard.ShardedCache, error) {
		cache, err := shard.NewFlat(s.cfg.Dim, opts.Shards, core.Options{
			Capacity:  s.cfg.ZipfFlatCapacity,
			Tolerance: 5,
			Policy:    core.LRU,
		}, s.cfg.BaseSeed+2000)
		if err != nil {
			return nil, nil, err
		}
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 4})
		if err != nil {
			return nil, nil, err
		}
		target, err := loadgen.NewRetrieverTarget(retr)
		return target, cache, err
	}

	target, cache, err := newRetrieverTarget()
	if err != nil {
		return nil, err
	}
	res := &LoadTestResult{Shards: cache.NumShards(), Concurrency: opts.Concurrency}
	res.Closed, err = loadgen.Run(target, w, loadgen.Options{
		Mode:    loadgen.ClosedLoop,
		Workers: opts.Concurrency,
		Seed:    s.cfg.BaseSeed + 3000,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: closed-loop pass: %w", err)
	}
	res.Concurrency = res.Closed.Workers
	res.Pressure = cache.Report()

	if opts.QPS > 0 {
		// A fresh cache so the open-loop pass measures cold-to-warm
		// behavior, not the closed-loop pass's leftovers.
		target, cache, err = newRetrieverTarget()
		if err != nil {
			return nil, err
		}
		res.Open, err = loadgen.Run(target, w, loadgen.Options{
			Mode:    loadgen.OpenLoop,
			Workers: opts.Concurrency,
			QPS:     opts.QPS,
			Seed:    s.cfg.BaseSeed + 3000,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: open-loop pass: %w", err)
		}
		res.Pressure = cache.Report()
	}
	return res, nil
}

// Render formats both passes plus the shard-pressure table.
func (r *LoadTestResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Closed.Render())
	if r.Open != nil {
		b.WriteString("\n")
		b.WriteString(r.Open.Render())
	}
	b.WriteString("\n")
	b.WriteString(r.Pressure.Render())
	return b.String()
}
