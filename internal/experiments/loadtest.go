package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/loadgen"
	"proximity/internal/shard"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

// LoadTestOptions configures the concurrency harness — the knobs
// proximity-bench exposes as -shards, -concurrency, -qps, -batch,
// -batch-size, and -batch-timeout.
type LoadTestOptions struct {
	// Shards is the cache partition count (0 = one per CPU).
	Shards int
	// Concurrency is the closed-loop worker count (0 = one per CPU).
	Concurrency int
	// QPS, when positive, adds an open-loop pass at that offered load
	// after the closed-loop throughput probe. With Batch it also
	// overrides the batch comparison's self-calibrated open-loop rate
	// (the geometric mean of the measured capacities).
	QPS float64
	// Batch adds the miss-path comparison: an open-loop unbatched pass
	// vs. a pass through the miss-coalescing batch pipeline, both over
	// the same IVF index at the same offered load.
	Batch bool
	// Cluster, when positive, adds the distribution A/B: the workload
	// replayed against an in-process sharded cache vs. a ring of that
	// many loopback HTTP shard nodes behind the consistent-hash router
	// (internal/cluster), with per-node hit/miss and batch-submitter
	// stats.
	Cluster int
	// MaxBatch is the pipeline flush size (0 = batch.DefaultMaxBatch).
	MaxBatch int
	// BatchTimeout is the pipeline flush deadline (0 =
	// batch.DefaultTimeout).
	BatchTimeout time.Duration
}

// LoadTestResult reports the concurrency harness: a closed-loop
// throughput probe, an optional open-loop latency probe, the shard
// pressure left behind, and the optional batched-vs-unbatched miss-path
// comparison.
type LoadTestResult struct {
	Shards      int
	Concurrency int
	Closed      *loadgen.Report
	Open        *loadgen.Report // nil unless QPS was requested
	Pressure    shard.PressureReport
	Batch       *BatchCompare   // nil unless Batch was requested
	ClusterAB   *ClusterCompare // nil unless Cluster was requested
}

// BatchCompare is the miss-path A/B: the same thundering-herd workload
// replayed against the same IVF index, once with misses issued directly
// and once through the coalescing batch pipeline — closed loop to
// measure each configuration's capacity, then open loop at a fixed rate
// between the two.
type BatchCompare struct {
	// UnbatchedCap and BatchedCap are the closed-loop achieved QPS of
	// each configuration.
	UnbatchedCap float64
	BatchedCap   float64
	// QPS is the fixed open-loop offered load (the geometric mean of
	// the capacities unless overridden).
	QPS       float64
	Unbatched *loadgen.Report
	Batched   *loadgen.Report
	Stats     batch.Stats
}

// Render formats the comparison with the headline p95 delta.
func (c *BatchCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batched miss-path comparison (IVF index, burst misses)\n")
	fmt.Fprintf(&b, "closed-loop capacity: unbatched %.0f qps, batched %.0f qps (%+.1f%%)\n",
		c.UnbatchedCap, c.BatchedCap, 100*(c.BatchedCap-c.UnbatchedCap)/c.UnbatchedCap)
	fmt.Fprintf(&b, "open loop @ %.0f qps:\n", c.QPS)
	b.WriteString("--- unbatched ---\n")
	b.WriteString(c.Unbatched.Render())
	b.WriteString("--- batched ---\n")
	b.WriteString(c.Batched.Render())
	up, bp := c.Unbatched.P95, c.Batched.P95
	fmt.Fprintf(&b, "p95 %v -> %v", up, bp)
	if up > 0 {
		fmt.Fprintf(&b, " (%+.1f%%)", 100*(float64(bp)-float64(up))/float64(up))
	}
	fmt.Fprintf(&b, "; coalesced %.1f%% of misses, mean batch %.2f (%d size / %d timeout / %d drain flushes)\n",
		100*c.Stats.CoalesceRate(), c.Stats.MeanBatch(),
		c.Stats.SizeFlushes, c.Stats.TimeoutFlushes, c.Stats.DrainFlushes)
	return b.String()
}

// LoadTest replays the MedRAG-Zipf workload (the paper's skewed serving
// workload, §4.2.2) against a sharded FLAT cache under concurrent load.
// Unlike the figure harnesses, which replay one query at a time, this is
// the ROADMAP's serving question: what throughput and tail latency does
// the middleware sustain at a given concurrency?
func (s *Suite) LoadTest(opts LoadTestOptions) (*LoadTestResult, error) {
	w, err := s.zipfWorkload(s.cfg.BaseSeed + 1000)
	if err != nil {
		return nil, err
	}
	_, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}

	// Each pass gets a fresh always-on telemetry hub (histograms only, no
	// trace sampling), so the report's stage breakdown attributes exactly
	// that pass's latency to cache lookup vs. database search.
	newRetrieverTarget := func() (loadgen.Target, *shard.ShardedCache, *telemetry.Telemetry, error) {
		cache, err := shard.NewFlat(s.cfg.Dim, opts.Shards, core.Options{
			Capacity:  s.cfg.ZipfFlatCapacity,
			Tolerance: 5,
			Policy:    core.LRU,
		}, s.cfg.BaseSeed+2000)
		if err != nil {
			return nil, nil, nil, err
		}
		tel := telemetry.New(telemetry.Options{})
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 4, Telemetry: tel})
		if err != nil {
			return nil, nil, nil, err
		}
		target, err := loadgen.NewRetrieverTarget(retr)
		return target, cache, tel, err
	}

	target, cache, tel, err := newRetrieverTarget()
	if err != nil {
		return nil, err
	}
	res := &LoadTestResult{Shards: cache.NumShards(), Concurrency: opts.Concurrency}
	res.Closed, err = loadgen.Run(target, w, loadgen.Options{
		Mode:      loadgen.ClosedLoop,
		Workers:   opts.Concurrency,
		Seed:      s.cfg.BaseSeed + 3000,
		Telemetry: tel,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: closed-loop pass: %w", err)
	}
	res.Concurrency = res.Closed.Workers
	res.Pressure = cache.Report()

	if opts.QPS > 0 {
		// A fresh cache so the open-loop pass measures cold-to-warm
		// behavior, not the closed-loop pass's leftovers.
		target, cache, tel, err = newRetrieverTarget()
		if err != nil {
			return nil, err
		}
		res.Open, err = loadgen.Run(target, w, loadgen.Options{
			Mode:      loadgen.OpenLoop,
			Workers:   opts.Concurrency,
			QPS:       opts.QPS,
			Seed:      s.cfg.BaseSeed + 3000,
			Telemetry: tel,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: open-loop pass: %w", err)
		}
		res.Pressure = cache.Report()
	}

	if opts.Batch {
		res.Batch, err = s.batchCompare(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: batch comparison: %w", err)
		}
	}
	if opts.Cluster > 0 {
		res.ClusterAB, err = s.clusterCompare(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster comparison: %w", err)
		}
	}
	return res, nil
}

// batchCompare replays a bursty miss-heavy stream against an IVF index
// with the miss path issued directly vs. through the miss-coalescing
// batch pipeline — identical caches, seeds, and offered load, so the
// delta isolates the pipeline.
//
// The Zipf serving workload is the wrong probe here: the approximate
// cache already absorbs its repeats, leaving residual misses that are
// unique and, on the scaled-down corpora, individually too cheap for
// batching to matter. This harness instead recreates the regime the
// pipeline targets: a thundering-herd stream (each novel query arrives
// as a burst of near-simultaneous duplicates, the trending-query
// pattern) over a corpus where an index traversal has real cost.
//
// The comparison is two-phase. Closed-loop passes first measure each
// configuration's sustainable throughput — the capacity the pipeline is
// supposed to expand by collapsing every racing burst to one traversal.
// The open-loop passes then offer a fixed rate at the geometric mean of
// the two measured capacities: above the unbatched capacity, where its
// queue grows without bound and p95 explodes, yet below the batched
// capacity, where the pipeline still serves promptly. The placement is
// self-calibrating on any hardware — and self-honest: if batching bought
// no capacity, the midpoint saturates both passes and no p95 win
// appears.
func (s *Suite) batchCompare(opts LoadTestOptions) (*BatchCompare, error) {
	const (
		corpusN  = 3072
		uniqueQ  = 320
		burst    = 8 // duplicates per unique query, back-to-back
		compareK = 4
	)
	rng := vec.NewRand(s.cfg.BaseSeed + 4000)
	corpus := make([]vec.Vector, corpusN)
	for i := range corpus {
		corpus[i] = vec.RandomGaussian(rng, s.cfg.Dim)
	}
	// Probe half of the lists so one traversal carries production-
	// shaped cost relative to the per-query fixed overheads.
	ivf, err := vectordb.BuildIVF(corpus, vec.L2Distance, vectordb.IVFConfig{
		NProbe: 27,
		Seed:   s.cfg.BaseSeed + 4001,
	})
	if err != nil {
		return nil, err
	}

	w := workload.Workload{Name: "burst-miss"}
	for q := 0; q < uniqueQ; q++ {
		emb := vec.RandomGaussian(rng, s.cfg.Dim)
		for o := 0; o < burst; o++ {
			w.Queries = append(w.Queries, workload.Query{
				Embedding:  emb,
				Question:   q,
				Occurrence: o,
			})
		}
	}

	// Misses block inside the pipeline for up to the flush timeout, so
	// the worker pool must comfortably exceed the typical burst for
	// batches to gather — but not by so much that worker scheduling
	// itself becomes the bottleneck. Every pass gets the same pool for
	// fairness.
	workers := opts.Concurrency
	if workers < 3*burst {
		workers = 3 * burst
	}

	// A tight default flush deadline: the queue timer throttles both
	// throughput and latency when batches are small, and bursts gather
	// within tens of microseconds anyway.
	flushTimeout := opts.BatchTimeout
	if flushTimeout <= 0 {
		flushTimeout = 50 * time.Microsecond
	}
	newPipe := func() (*batch.Pipeline, error) {
		return batch.New(ivf, batch.Options{
			MaxBatch: opts.MaxBatch,
			Timeout:  flushTimeout,
			Seed:     s.cfg.BaseSeed + 5000,
		})
	}
	run := func(searcher core.Searcher, mode loadgen.Mode, qps float64) (*loadgen.Report, error) {
		// No cache: the A/B isolates the miss path it optimizes. With a
		// cache, late burst members hit once their leader lands and the
		// unbatched pass partly self-heals, entangling cache effects
		// with pipeline effects; cold-cache thundering herds — the
		// regime that hurts in production — are all-miss anyway.
		retr, err := core.NewCachedRetriever(nil, ivf, core.RetrieverOptions{
			K:        compareK,
			Searcher: searcher,
		})
		if err != nil {
			return nil, err
		}
		target, err := loadgen.NewRetrieverTarget(retr)
		if err != nil {
			return nil, err
		}
		return loadgen.Run(target, w, loadgen.Options{
			Mode:    mode,
			Workers: workers,
			QPS:     qps,
			Seed:    s.cfg.BaseSeed + 3000,
		})
	}

	cmp := &BatchCompare{}

	// Phase 1: closed-loop capacity probes.
	uncap, err := run(nil, loadgen.ClosedLoop, 0)
	if err != nil {
		return nil, fmt.Errorf("unbatched capacity probe: %w", err)
	}
	cmp.UnbatchedCap = uncap.AchievedQPS
	pipe, err := newPipe()
	if err != nil {
		return nil, err
	}
	bcap, err := run(pipe, loadgen.ClosedLoop, 0)
	if err != nil {
		return nil, fmt.Errorf("batched capacity probe: %w", err)
	}
	if err := pipe.Close(); err != nil {
		return nil, err
	}
	cmp.BatchedCap = bcap.AchievedQPS

	// Phase 2: open-loop passes at the capacity midpoint (or the
	// explicit -qps override).
	qps := opts.QPS
	if qps <= 0 {
		qps = math.Sqrt(cmp.UnbatchedCap * cmp.BatchedCap)
	}
	cmp.QPS = qps
	if cmp.Unbatched, err = run(nil, loadgen.OpenLoop, qps); err != nil {
		return nil, fmt.Errorf("unbatched pass: %w", err)
	}
	if pipe, err = newPipe(); err != nil {
		return nil, err
	}
	if cmp.Batched, err = run(pipe, loadgen.OpenLoop, qps); err != nil {
		return nil, fmt.Errorf("batched pass: %w", err)
	}
	if err := pipe.Close(); err != nil {
		return nil, err
	}
	cmp.Stats = pipe.Stats()
	return cmp, nil
}

// Render formats both passes plus the shard-pressure table and, when
// requested, the batched-vs-unbatched comparison.
func (r *LoadTestResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Closed.Render())
	if r.Open != nil {
		b.WriteString("\n")
		b.WriteString(r.Open.Render())
	}
	b.WriteString("\n")
	b.WriteString(r.Pressure.Render())
	if r.Batch != nil {
		b.WriteString("\n")
		b.WriteString(r.Batch.Render())
	}
	if r.ClusterAB != nil {
		b.WriteString("\n")
		b.WriteString(r.ClusterAB.Render())
	}
	return b.String()
}

// WriteJSON emits the machine-readable result, including each pass's
// per-stage latency breakdown (loadgen.Report.Stages).
func (r *LoadTestResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
