package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"proximity/internal/core"
	"proximity/internal/report"
	"proximity/internal/stats"
	"proximity/internal/vectordb"
)

// Fig9Result reproduces Fig. 9: the cache occupancy of Proximity-LSH
// after the MedRAG-Zipf workload completes, across hash widths L and
// tolerances τ. Panel (a) is occupancy relative to the theoretical
// capacity 2^L·b; panel (b) is the absolute number of cached entries.
// The paper's findings: relative occupancy falls sharply with L (adaptive
// sparsity) and falls mildly with τ (more hits ⇒ fewer inserts).
type Fig9Result struct {
	Seeds int
	Bits  []int
	Taus  []float64
	// Relative[bi][ti] is Len/Capacity; Absolute[bi][ti] is Len.
	Relative [][]float64
	Absolute [][]float64
	// BucketsUsed[bi][ti] is the number of allocated buckets.
	BucketsUsed [][]float64
}

// Fig9Occupancy runs the grid.
func (s *Suite) Fig9Occupancy() (*Fig9Result, error) {
	full, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}
	source, ok := db.(vectordb.VectorSource)
	if !ok {
		return nil, fmt.Errorf("experiments: fig9 database does not expose vectors for re-ranking")
	}
	bits := []int{4, 6, 8, 10}
	taus := []float64{2.5, 5, 7.5, 10}
	res := &Fig9Result{
		Seeds:       s.cfg.Seeds,
		Bits:        bits,
		Taus:        taus,
		Relative:    newGrid(len(bits), len(taus)),
		Absolute:    newGrid(len(bits), len(taus)),
		BucketsUsed: newGrid(len(bits), len(taus)),
	}
	type cell struct{ bi, ti int }
	var cells []cell
	for bi := range bits {
		for ti := range taus {
			cells = append(cells, cell{bi, ti})
		}
	}
	err = s.parallelFor(len(cells), func(i int) error {
		c := cells[i]
		var rel, abs, used stats.Welford
		for _, seed := range s.seeds() {
			w, err := s.zipfWorkload(seed)
			if err != nil {
				return err
			}
			cache, err := core.NewLSH(s.cfg.Dim, core.LSHOptions{
				Bits:           bits[c.bi],
				BucketCapacity: core.DefaultBucketCapacity,
				Tolerance:      float32(taus[c.ti]),
				Policy:         core.LRU,
				Seed:           seed,
			})
			if err != nil {
				return err
			}
			if _, err := s.run(runSpec{
				bench:      full,
				db:         db,
				w:          w,
				cache:      cache,
				k:          full.DefaultK,
				rerank:     s.cfg.ZipfRerank,
				source:     source,
				answerSeed: seed,
			}); err != nil {
				return fmt.Errorf("experiments: fig9 L=%d τ=%v: %w", bits[c.bi], taus[c.ti], err)
			}
			rel.Add(cache.RelativeOccupancy())
			abs.Add(float64(cache.Len()))
			used.Add(float64(cache.BucketsUsed()))
		}
		res.Relative[c.bi][c.ti] = rel.Mean()
		res.Absolute[c.bi][c.ti] = abs.Mean()
		res.BucketsUsed[c.bi][c.ti] = used.Mean()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the two occupancy panels.
func (r *Fig9Result) Render() string {
	tauCols := make([]string, len(r.Taus))
	for i, tau := range r.Taus {
		tauCols[i] = trimFloat(tau)
	}
	bitRows := make([]string, len(r.Bits))
	for i, b := range r.Bits {
		bitRows[i] = strconv.Itoa(b)
	}
	rel := report.NewHeatmap("Figure 9a: entries used relative to full capacity [%]", "L", "tau", bitRows, tauCols)
	abs := report.NewHeatmap("Figure 9b: cache lines used", "L", "tau", bitRows, tauCols)
	for bi := range r.Bits {
		for ti := range r.Taus {
			rel.Set(bi, ti, report.Percent(r.Relative[bi][ti]))
			abs.SetFloat(bi, ti, r.Absolute[bi][ti], 0)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9, MedRAG-Zipf, LSH-LRU, b=20, %d seed(s)\n\n", r.Seeds)
	b.WriteString(rel.String())
	b.WriteByte('\n')
	b.WriteString(abs.String())
	return b.String()
}
