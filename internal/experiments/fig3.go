package experiments

import (
	"fmt"
	"strings"

	"proximity/internal/report"
	"proximity/internal/tsne"
	"proximity/internal/vec"
)

// Fig3Result reproduces Fig. 3: the 2-D projection (PCA preprocessing +
// t-SNE) of query embeddings rendered as a density grid. The paper's
// takeaway is that syntactically different queries cluster by semantic
// content; ClusterScore quantifies it (inter-topic over intra-topic mean
// 2-D distance — well above 1 means visible clusters).
type Fig3Result struct {
	// Points is the number of projected queries.
	Points int
	// PCAComponents is the intermediate dimensionality.
	PCAComponents int
	// Grid is the density raster (GridCells × GridCells).
	Grid [][]int
	// ClusterScore is the topic-separation ratio in the 2-D layout.
	ClusterScore float64
	// OccupiedCells counts non-empty raster cells.
	OccupiedCells int
}

// Fig3EmbeddingClusters projects the TripClick query embeddings.
func (s *Suite) Fig3EmbeddingClusters() (*Fig3Result, error) {
	log, _, err := s.TripClick()
	if err != nil {
		return nil, err
	}
	n := s.cfg.TSNEPoints
	if n > len(log.Bench.Questions) {
		n = len(log.Bench.Questions)
	}
	enc := log.Bench.Embedder()
	data := make([]vec.Vector, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		q := log.Bench.Questions[i]
		data[i] = enc.Embed(q.Text)
		labels[i] = q.Topic
	}

	// PCA to 30 dimensions (or fewer for tiny configs), as in §2.3.
	components := 30
	if components > s.cfg.Dim {
		components = s.cfg.Dim
	}
	if components > n-1 {
		components = n - 1
	}
	reduced, err := tsne.PCA(data, components, s.cfg.BaseSeed+11)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 pca: %w", err)
	}
	pts, err := tsne.Embed(reduced, tsne.Config{
		Iterations: s.cfg.TSNEIterations,
		Seed:       s.cfg.BaseSeed + 12,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 tsne: %w", err)
	}
	grid, err := tsne.GridDensity(pts, s.cfg.GridCells)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 grid: %w", err)
	}
	score, err := tsne.ClusterScore(pts, labels)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 score: %w", err)
	}
	occupied := 0
	for _, row := range grid {
		for _, c := range row {
			if c > 0 {
				occupied++
			}
		}
	}
	return &Fig3Result{
		Points:        n,
		PCAComponents: components,
		Grid:          grid,
		ClusterScore:  score,
		OccupiedCells: occupied,
	}, nil
}

// Render prints the density raster and the cluster score.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: 2-D projection of query embeddings (PCA→%d, then t-SNE)\n", r.PCAComponents)
	fmt.Fprintf(&b, "points: %d, grid: %dx%d (%d occupied cells)\n",
		r.Points, len(r.Grid), len(r.Grid), r.OccupiedCells)
	fmt.Fprintf(&b, "topic cluster score (inter/intra distance ratio): %.2f\n\n", r.ClusterScore)
	b.WriteString(report.DensityArt(r.Grid))
	return b.String()
}
