package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/stats"
	"proximity/internal/vec"
)

// ChurnOptions configures the churn-decay A/B: the same FIFO
// eviction-and-reinsert stream replayed against the indexed cache with
// in-edge repair disabled (the pre-repair baseline), repair only, and
// repair plus scheduled maintenance — each scored against a graph freshly
// rebuilt over the identical resident set (the recall ceiling).
type ChurnOptions struct {
	// Capacity is the cache size under churn (default 2000).
	Capacity int
	// Dim is the embedding dimensionality (default 16).
	Dim int
	// Mults lists the churn multiples to measure: total Puts per point =
	// mult × Capacity, so mult 1 is a pure fill and mult 5 evicts and
	// reinserts 4× the capacity (default 1, 2, 5).
	Mults []int
	// Queries is the near-duplicate lookup count per variant, all placed
	// within τ of resident keys (default 1000) — the approximate-hit
	// workload the cache exists to serve.
	Queries int
	// Tolerance is the cache-wide τ (default 0.4).
	Tolerance float32
	// MaintEvery and MaintBudget tune the maintained variant's schedule;
	// zero values take the core defaults (64 reuses, 16 nodes per pass).
	MaintEvery  int
	MaintBudget int
	// Seed drives every random draw.
	Seed uint64
}

func (o *ChurnOptions) fillDefaults() {
	if o.Capacity == 0 {
		o.Capacity = 2000
	}
	if o.Dim == 0 {
		o.Dim = 16
	}
	if len(o.Mults) == 0 {
		o.Mults = []int{1, 2, 5}
	}
	if o.Queries == 0 {
		o.Queries = 1000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ChurnVariant is one cache configuration's measurement at one churn
// multiple.
type ChurnVariant struct {
	Name string `json:"name"`
	// SelfRecall is the fraction of resident keys whose lookup returns
	// their own entry — the recall the stale-edge bug erodes.
	SelfRecall float64 `json:"selfRecall"`
	// HitRate is the within-τ near-duplicate query hit fraction.
	HitRate float64 `json:"hitRate"`
	// PutMeanMicros / PutP99Micros is the per-Put latency over the whole
	// churn stream, maintenance passes included for the maintained row.
	PutMeanMicros float64 `json:"putMeanUs"`
	PutP99Micros  float64 `json:"putP99Us"`
	// MaintMillis is the wall time spent inside scheduled maintenance
	// passes (a subset of the Put time above).
	MaintMillis float64 `json:"maintMs"`
	// Repair counters, cumulative over the stream.
	ReusedSlots     int64 `json:"reusedSlots"`
	SeveredInEdges  int64 `json:"severedInEdges"`
	ReroutedInEdges int64 `json:"reroutedInEdges"`
	RepairPasses    int64 `json:"repairPasses"`
	RepairedNodes   int64 `json:"repairedNodes"`
}

// ChurnPoint is the four-way comparison at one churn multiple.
type ChurnPoint struct {
	Mult int `json:"mult"`
	Puts int `json:"puts"`
	// Unrepaired replays the stream with in-edge repair disabled — the
	// pre-repair behavior whose recall decays with churn.
	Unrepaired ChurnVariant `json:"unrepaired"`
	// Repaired tracks and severs stale in-edges at slot reuse but never
	// runs a background pass.
	Repaired ChurnVariant `json:"repaired"`
	// Maintained adds the scheduled incremental repair pass.
	Maintained ChurnVariant `json:"maintained"`
	// Fresh is a graph rebuilt from scratch over the identical resident
	// set — the ceiling churned variants are scored against.
	Fresh ChurnVariant `json:"fresh"`
	// SelfRecallVsFresh is maintained self-recall over fresh self-recall
	// — the headline acceptance (≥ 0.98 at 5× churn).
	SelfRecallVsFresh float64 `json:"selfRecallVsFresh"`
	// UnrepairedVsFresh is the same ratio for the baseline — how much
	// recall the bug costs at this churn multiple.
	UnrepairedVsFresh float64 `json:"unrepairedVsFresh"`
	// PutOverhead is the in-edge tracking cost: repaired mean Put
	// latency over unrepaired, minus 1 (≤ 0.10 acceptance).
	PutOverhead float64 `json:"putOverhead"`
	// MaintOverhead is the same ratio for the maintained variant, whose
	// Puts additionally absorb the scheduled repair passes.
	MaintOverhead float64 `json:"maintOverhead"`
}

// ChurnResult is the full sweep, JSON-serializable as BENCH_churn.json.
type ChurnResult struct {
	Capacity  int          `json:"capacity"`
	Dim       int          `json:"dim"`
	Queries   int          `json:"queries"`
	Tolerance float32      `json:"tolerance"`
	Points    []ChurnPoint `json:"points"`
}

// Churn measures recall decay under FIFO eviction churn and the repair
// machinery's recovery of it. Every variant at a given churn multiple
// replays the identical Put stream and the identical query stream, so
// recall differences are attributable to graph-repair policy alone.
// Standalone (no Suite): the A/B needs no corpus, just geometry.
func Churn(opts ChurnOptions) (*ChurnResult, error) {
	opts.fillDefaults()
	if opts.Capacity < 1 {
		return nil, fmt.Errorf("experiments: capacity must be positive, got %d", opts.Capacity)
	}
	res := &ChurnResult{
		Capacity:  opts.Capacity,
		Dim:       opts.Dim,
		Queries:   opts.Queries,
		Tolerance: opts.Tolerance,
	}
	for _, mult := range opts.Mults {
		if mult < 1 {
			return nil, fmt.Errorf("experiments: churn multiple must be ≥ 1, got %d", mult)
		}
		point, err := churnPoint(mult, opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

func churnPoint(mult int, opts ChurnOptions) (*ChurnPoint, error) {
	puts := mult * opts.Capacity
	rng := vec.NewRand(opts.Seed)
	keys := make([]vec.Vector, puts)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, opts.Dim), 2)
	}
	resident := keys[puts-opts.Capacity:] // FIFO: the last Capacity keys survive
	// Near-duplicate queries within τ of resident keys: the workload the
	// approximate cache exists to serve, and the one stale edges degrade.
	queries := make([]vec.Vector, opts.Queries)
	for i := range queries {
		base := resident[rng.IntN(len(resident))]
		dir := vec.RandomGaussian(rng, opts.Dim)
		dir = vec.Scale(dir, opts.Tolerance*0.8*float32(rng.Float64())/vec.Norm(dir))
		q := vec.Clone(base)
		for j := range q {
			q[j] += dir[j]
		}
		queries[i] = q
	}

	base := core.IndexedOptions{
		Capacity:  opts.Capacity,
		Tolerance: opts.Tolerance,
		Crossover: 1, // always the graph path: the scan would mask decay
		Seed:      opts.Seed + 2,
	}
	point := &ChurnPoint{Mult: mult, Puts: puts}

	unrepairedOpts := base
	unrepairedOpts.DisableInEdgeRepair = true
	v, err := churnVariant("unrepaired", unrepairedOpts, keys, resident, queries, opts)
	if err != nil {
		return nil, err
	}
	point.Unrepaired = *v

	if v, err = churnVariant("repaired", base, keys, resident, queries, opts); err != nil {
		return nil, err
	}
	point.Repaired = *v

	maintainedOpts := base
	maintainedOpts.Maintenance = &core.MaintenanceOptions{Every: opts.MaintEvery, Budget: opts.MaintBudget}
	if v, err = churnVariant("maintained", maintainedOpts, keys, resident, queries, opts); err != nil {
		return nil, err
	}
	point.Maintained = *v

	// The ceiling: a graph that has only ever seen the resident set.
	if v, err = churnVariant("fresh", base, resident, resident, queries, opts); err != nil {
		return nil, err
	}
	point.Fresh = *v

	if point.Fresh.SelfRecall > 0 {
		point.SelfRecallVsFresh = point.Maintained.SelfRecall / point.Fresh.SelfRecall
		point.UnrepairedVsFresh = point.Unrepaired.SelfRecall / point.Fresh.SelfRecall
	}
	if point.Unrepaired.PutMeanMicros > 0 {
		point.PutOverhead = point.Repaired.PutMeanMicros/point.Unrepaired.PutMeanMicros - 1
		point.MaintOverhead = point.Maintained.PutMeanMicros/point.Unrepaired.PutMeanMicros - 1
	}
	return point, nil
}

// churnVariant replays the Put stream into a fresh cache built from
// cacheOpts and measures recall and Put-path cost. The resident slice
// must be the stream's suffix that survives FIFO eviction; doc ids are
// stream positions, so self-recall demands the entry's own doc back.
func churnVariant(name string, cacheOpts core.IndexedOptions, stream, resident, queries []vec.Vector, opts ChurnOptions) (*ChurnVariant, error) {
	c, err := core.NewIndexed(opts.Dim, cacheOpts)
	if err != nil {
		return nil, err
	}
	var rec stats.LatencyRecorder
	firstDoc := len(stream) - len(resident)
	for i, k := range stream {
		start := time.Now()
		c.Put(k, []int{i})
		rec.Record(time.Since(start))
	}
	selfHits := 0
	for i, k := range resident {
		if docs, ok := c.Get(k); ok && len(docs) == 1 && docs[0] == firstDoc+i {
			selfHits++
		}
	}
	hits := 0
	for _, q := range queries {
		if _, ok := c.Get(q); ok {
			hits++
		}
	}
	is := c.IndexStats()
	return &ChurnVariant{
		Name:            name,
		SelfRecall:      float64(selfHits) / float64(len(resident)),
		HitRate:         float64(hits) / float64(len(queries)),
		PutMeanMicros:   float64(rec.Mean()) / float64(time.Microsecond),
		PutP99Micros:    float64(rec.Percentile(99)) / float64(time.Microsecond),
		MaintMillis:     float64(is.RepairNanos) / float64(time.Millisecond),
		ReusedSlots:     is.ReusedSlots,
		SeveredInEdges:  is.SeveredInEdges,
		ReroutedInEdges: is.ReroutedInEdges,
		RepairPasses:    is.RepairPasses,
		RepairedNodes:   is.RepairedNodes,
	}, nil
}

// WriteJSON writes the result as indented JSON — the BENCH_*.json
// trajectory format CI smoke-checks for well-formedness.
func (r *ChurnResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render formats the comparison, one block per churn multiple.
func (r *ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "churn recall A/B: unrepaired vs repaired vs maintained vs fresh rebuild (capacity=%d, dim=%d, τ=%v, %d queries)\n",
		r.Capacity, r.Dim, r.Tolerance, r.Queries)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "--- %d× capacity (%d puts) ---\n", p.Mult, p.Puts)
		fmt.Fprintf(&b, "%-12s %12s %10s %12s %12s %10s %12s\n",
			"variant", "self-recall", "hit rate", "put(µs)", "putP99(µs)", "maint(ms)", "repaired")
		for _, v := range []ChurnVariant{p.Unrepaired, p.Repaired, p.Maintained, p.Fresh} {
			fmt.Fprintf(&b, "%-12s %12.3f %10.3f %12.2f %12.2f %10.1f %12d\n",
				v.Name, v.SelfRecall, v.HitRate, v.PutMeanMicros, v.PutP99Micros, v.MaintMillis, v.RepairedNodes)
		}
		fmt.Fprintf(&b, "maintained/fresh self-recall %.3f (unrepaired %.3f); put overhead: tracking %+.1f%%, maintained %+.1f%%\n",
			p.SelfRecallVsFresh, p.UnrepairedVsFresh, 100*p.PutOverhead, 100*p.MaintOverhead)
	}
	return b.String()
}
