package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/metrics"
	"proximity/internal/report"
	"proximity/internal/vectordb"
)

// fig7Policies are the four cache configurations of Fig. 7a/b.
var fig7Policies = []struct {
	Name   string
	Kind   string
	Policy core.Policy
}{
	{Name: "lsh-lru", Kind: "lsh", Policy: core.LRU},
	{Name: "lsh-fifo", Kind: "lsh", Policy: core.FIFO},
	{Name: "lru", Kind: "flat", Policy: core.LRU},
	{Name: "fifo", Kind: "flat", Policy: core.FIFO},
}

// Fig7Result reproduces Fig. 7 on the MedRAG-Zipf workload (ρ=4, §4.3):
// (a) accuracy and (b) database k-recall per eviction policy with and
// without LSH across tolerances; (c) hit rate and (d) average retrieval
// latency for Proximity-LSH across hash widths L.
type Fig7Result struct {
	Seeds    int
	Taus     []float64
	Policies []string
	Bits     []int
	// Accuracy/Recall indexed [policy][tau].
	Accuracy [][]float64
	Recall   [][]float64
	// HitRate/Latency indexed [bits][tau], LSH-LRU.
	HitRate [][]float64
	Latency [][]time.Duration
}

// Fig7ZipfPolicies runs the four panels.
func (s *Suite) Fig7ZipfPolicies() (*Fig7Result, error) {
	full, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}
	source, ok := db.(vectordb.VectorSource)
	if !ok {
		return nil, fmt.Errorf("experiments: fig7 database does not expose vectors for re-ranking")
	}

	taus := []float64{2.5, 5, 7.5, 10}
	bits := []int{4, 6, 8, 10}
	res := &Fig7Result{
		Seeds:    s.cfg.Seeds,
		Taus:     taus,
		Bits:     bits,
		Accuracy: newGrid(len(fig7Policies), len(taus)),
		Recall:   newGrid(len(fig7Policies), len(taus)),
		HitRate:  newGrid(len(bits), len(taus)),
		Latency:  newDurationGrid(len(bits), len(taus)),
	}
	for _, p := range fig7Policies {
		res.Policies = append(res.Policies, p.Name)
	}

	// Panels a/b: policies × tolerances, with recall measurement.
	type abCell struct{ pi, ti int }
	var abCells []abCell
	for pi := range fig7Policies {
		for ti := range taus {
			abCells = append(abCells, abCell{pi, ti})
		}
	}
	err = s.parallelFor(len(abCells), func(i int) error {
		c := abCells[i]
		pol := fig7Policies[c.pi]
		var agg metrics.Aggregate
		for _, seed := range s.seeds() {
			w, err := s.zipfWorkload(seed)
			if err != nil {
				return err
			}
			cache, err := s.newCache(CacheSpec{
				Kind:           pol.Kind,
				Capacity:       s.cfg.ZipfFlatCapacity,
				Tolerance:      float32(taus[c.ti]),
				Policy:         pol.Policy,
				Bits:           8,
				BucketCapacity: core.DefaultBucketCapacity,
			}, seed)
			if err != nil {
				return err
			}
			run, err := s.run(runSpec{
				bench:         full,
				db:            db,
				latency:       vectordb.PubMedFlatLatency(seed),
				w:             w,
				cache:         cache,
				k:             full.DefaultK,
				rerank:        s.cfg.ZipfRerank,
				source:        source,
				answerSeed:    seed,
				measureRecall: true,
				answer:        true,
			})
			if err != nil {
				return fmt.Errorf("experiments: fig7 %s τ=%v: %w", pol.Name, taus[c.ti], err)
			}
			agg.Add(run)
		}
		res.Accuracy[c.pi][c.ti] = agg.Accuracy()
		res.Recall[c.pi][c.ti] = agg.Recall()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Panels c/d: LSH-LRU hash-width grid, latency-faithful (recall
	// measurement off so database work reflects the real pipeline).
	type cdCell struct{ bi, ti int }
	var cdCells []cdCell
	for bi := range bits {
		for ti := range taus {
			cdCells = append(cdCells, cdCell{bi, ti})
		}
	}
	err = s.parallelFor(len(cdCells), func(i int) error {
		c := cdCells[i]
		var agg metrics.Aggregate
		for _, seed := range s.seeds() {
			w, err := s.zipfWorkload(seed)
			if err != nil {
				return err
			}
			cache, err := s.newCache(CacheSpec{
				Kind:           "lsh",
				Tolerance:      float32(taus[c.ti]),
				Policy:         core.LRU,
				Bits:           bits[c.bi],
				BucketCapacity: core.DefaultBucketCapacity,
			}, seed)
			if err != nil {
				return err
			}
			run, err := s.run(runSpec{
				bench:      full,
				db:         db,
				latency:    vectordb.PubMedFlatLatency(seed),
				w:          w,
				cache:      cache,
				k:          full.DefaultK,
				rerank:     s.cfg.ZipfRerank,
				source:     source,
				answerSeed: seed,
			})
			if err != nil {
				return fmt.Errorf("experiments: fig7 L=%d τ=%v: %w", bits[c.bi], taus[c.ti], err)
			}
			agg.Add(run)
		}
		res.HitRate[c.bi][c.ti] = agg.HitRate()
		res.Latency[c.bi][c.ti] = agg.MeanRetrieval()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the four panels.
func (r *Fig7Result) Render() string {
	tauCols := make([]string, len(r.Taus))
	for i, tau := range r.Taus {
		tauCols[i] = trimFloat(tau)
	}
	bitRows := make([]string, len(r.Bits))
	for i, b := range r.Bits {
		bitRows[i] = strconv.Itoa(b)
	}

	acc := report.NewHeatmap("Figure 7a: test accuracy [%]", "policy", "tau", r.Policies, tauCols)
	rec := report.NewHeatmap("Figure 7b: database k-recall [%]", "policy", "tau", r.Policies, tauCols)
	for pi := range r.Policies {
		for ti := range r.Taus {
			acc.Set(pi, ti, report.Percent(r.Accuracy[pi][ti]))
			rec.Set(pi, ti, report.Percent(r.Recall[pi][ti]))
		}
	}
	hit := report.NewHeatmap("Figure 7c: hit rate [%] (LSH-LRU)", "L", "tau", bitRows, tauCols)
	lat := report.NewHeatmap("Figure 7d: avg retrieval latency [ms] (LSH-LRU)", "L", "tau", bitRows, tauCols)
	for bi := range r.Bits {
		for ti := range r.Taus {
			hit.Set(bi, ti, report.Percent(r.HitRate[bi][ti]))
			lat.Set(bi, ti, report.Millis(r.Latency[bi][ti]))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7, MedRAG-Zipf, ρ=4, %d seed(s)\n\n", r.Seeds)
	for _, p := range []fmt.Stringer{acc, rec, hit, lat} {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}
