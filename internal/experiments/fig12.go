package experiments

import (
	"fmt"
	"strings"

	"proximity/internal/core"
	"proximity/internal/metrics"
	"proximity/internal/report"
	"proximity/internal/workload"
)

// Fig12Result reproduces Fig. 12: hit rate and database k-recall of
// Proximity-LSH (L=8, LRU) replaying the TripClick log against the
// PubMed-sim corpus served by the Vamana (DiskANN-sim) index, across
// small tolerances. The paper reports a stable ≈50% hit rate with recall
// degrading from 99.4% (τ=1.0) to 92.2% (τ=2.5).
type Fig12Result struct {
	Taus      []float64
	HitRate   []float64
	Recall    []float64
	Queries   int
	Unique    int
	IndexSize int
}

// Fig12TripClick runs the sweep. A single replay per tolerance (the log
// itself is the randomness, as in the paper).
func (s *Suite) Fig12TripClick() (*Fig12Result, error) {
	log, ix, err := s.TripClick()
	if err != nil {
		return nil, err
	}
	w := workload.FromTripClick(log)
	taus := []float64{1.0, 1.5, 2.0, 2.5}
	res := &Fig12Result{
		Taus:      taus,
		HitRate:   make([]float64, len(taus)),
		Recall:    make([]float64, len(taus)),
		Queries:   w.Len(),
		Unique:    len(log.Bench.Questions),
		IndexSize: ix.Len(),
	}
	err = s.parallelFor(len(taus), func(i int) error {
		cache, err := core.NewLSH(s.cfg.Dim, core.LSHOptions{
			Bits:           8,
			BucketCapacity: core.DefaultBucketCapacity,
			Tolerance:      float32(taus[i]),
			Policy:         core.LRU,
			Seed:           s.cfg.BaseSeed + 41,
		})
		if err != nil {
			return err
		}
		var agg metrics.Aggregate
		run, err := s.run(runSpec{
			bench:         log.Bench,
			db:            ix,
			w:             w,
			cache:         cache,
			k:             log.Bench.DefaultK,
			rerank:        1,
			measureRecall: true,
		})
		if err != nil {
			return fmt.Errorf("experiments: fig12 τ=%v: %w", taus[i], err)
		}
		agg.Add(run)
		res.HitRate[i] = agg.HitRate()
		res.Recall[i] = agg.Recall()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the sweep.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: TripClick replay (%d queries, %d unique) over DiskANN-sim (%d vectors), LSH L=8, LRU\n\n",
		r.Queries, r.Unique, r.IndexSize)
	tbl := report.NewTable("", "tau", "hit rate [%]", "db recall [%]")
	for i, tau := range r.Taus {
		tbl.AddRow(trimFloat(tau), report.Percent(r.HitRate[i]), report.Percent(r.Recall[i]))
	}
	b.WriteString(tbl.String())
	return b.String()
}
