package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/lsh"
	"proximity/internal/stats"
	"proximity/internal/vec"
)

// ANNIndexOptions configures the cache-lookup A/B: the same fill and the
// same query stream replayed against the flat-scan, LSH-bucket, and
// graph-indexed cache variants.
type ANNIndexOptions struct {
	// Entries lists the resident-entry counts to measure (default
	// 100_000; the paper-scale run adds 1_000_000).
	Entries []int
	// Dim is the embedding dimensionality (default 32 — small enough
	// that the 1M flat baseline finishes, large enough that distance
	// kernels dominate).
	Dim int
	// Queries is the lookup count per variant (default 400, half
	// within-tolerance, half far misses).
	Queries int
	// Tolerance is the cache-wide τ (default 0.5).
	Tolerance float32
	// EfSweep lists the indexed variant's beam widths to evaluate over
	// one graph build (default 64, 128, 256) — lookups re-run per width
	// via SetEfSearch, so the expensive construction is paid once. The
	// headline comparison picks the narrowest beam whose hit rate
	// reaches parity with the flat scan.
	EfSweep []int
	// M and EfConstruction shape the indexed variant's graph (defaults
	// 16 and 96: enough connectivity that recall holds at 1M entries on
	// isotropic Gaussian keys — the hardest geometry for a graph index).
	M              int
	EfConstruction int
	// Seed drives every random draw.
	Seed uint64
}

func (o *ANNIndexOptions) fillDefaults() {
	if len(o.Entries) == 0 {
		o.Entries = []int{100_000}
	}
	if o.Dim == 0 {
		o.Dim = 32
	}
	if o.Queries == 0 {
		o.Queries = 400
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.5
	}
	if len(o.EfSweep) == 0 {
		o.EfSweep = []int{64, 128, 256}
	}
	if o.M == 0 {
		o.M = 16
	}
	if o.EfConstruction == 0 {
		o.EfConstruction = 96
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ANNVariant is one cache variant's measurement at one entry count.
type ANNVariant struct {
	Name       string  `json:"name"`
	FillMillis float64 `json:"fillMs"`
	HitRate    float64 `json:"hitRate"`
	MeanMicros float64 `json:"meanUs"`
	P50Micros  float64 `json:"p50Us"`
	P99Micros  float64 `json:"p99Us"`
	DistComps  int64   `json:"distComps"`
	GraphHops  int64   `json:"graphHops,omitempty"`
	Reranks    int64   `json:"reranks,omitempty"`
}

// ANNIndexPoint is the three-way comparison at one entry count.
type ANNIndexPoint struct {
	Entries int        `json:"entries"`
	Flat    ANNVariant `json:"flat"`
	LSH     ANNVariant `json:"lsh"`
	// Indexed is the headline indexed row: the narrowest swept beam
	// whose hit rate reaches parity with the flat scan (within one
	// standard error of the query sample), else the highest-recall row.
	Indexed ANNVariant `json:"indexed"`
	// IndexedSweep is every swept beam width, narrowest first — the
	// recall-vs-latency tradeoff curve behind the headline choice.
	IndexedSweep []ANNVariant `json:"indexedSweep"`
	// P99SpeedupVsFlat is flat p99 over indexed p99 — the headline
	// claim (≥5x at 1M entries).
	P99SpeedupVsFlat float64 `json:"p99SpeedupVsFlat"`
	// HitRateDelta is indexed hit rate minus flat hit rate; near zero
	// because exact re-ranking preserves τ admission once the beam
	// reliably reaches the admissible node.
	HitRateDelta float64 `json:"hitRateDelta"`
}

// ANNIndexResult is the full A/B, JSON-serializable as the repo's
// BENCH_*.json trajectory format.
type ANNIndexResult struct {
	Dim       int             `json:"dim"`
	Queries   int             `json:"queries"`
	Tolerance float32         `json:"tolerance"`
	Points    []ANNIndexPoint `json:"points"`
}

// ANNIndex measures cache lookup latency head-to-head: flat scan vs LSH
// buckets vs the graph-indexed cache, at each requested entry count. All
// variants are filled with the same entries in the same order and replay
// the same query stream (half perturbed within τ of cached keys, half far
// misses), so hit-rate differences are attributable to the lookup
// structure alone. Standalone (no Suite): the A/B needs no corpus, just
// geometry.
func ANNIndex(opts ANNIndexOptions) (*ANNIndexResult, error) {
	opts.fillDefaults()
	res := &ANNIndexResult{Dim: opts.Dim, Queries: opts.Queries, Tolerance: opts.Tolerance}
	for _, n := range opts.Entries {
		if n < 1 {
			return nil, fmt.Errorf("experiments: entry count must be positive, got %d", n)
		}
		point, err := annIndexPoint(n, opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

func annIndexPoint(n int, opts ANNIndexOptions) (*ANNIndexPoint, error) {
	rng := vec.NewRand(opts.Seed)
	keys := make([]vec.Vector, n)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, opts.Dim), 2)
	}
	// Half the queries land within τ of a cached key (hits under any
	// exact lookup), half are fresh draws (far misses: two random
	// Gaussian points are ~2√(2d) apart, orders beyond τ).
	queries := make([]vec.Vector, opts.Queries)
	for i := range queries {
		if i%2 == 0 {
			base := keys[rng.IntN(n)]
			dir := vec.RandomGaussian(rng, opts.Dim)
			dir = vec.Scale(dir, opts.Tolerance*0.8*float32(rng.Float64())/vec.Norm(dir))
			q := vec.Clone(base)
			for j := range q {
				q[j] += dir[j]
			}
			queries[i] = q
		} else {
			queries[i] = vec.Scale(vec.RandomGaussian(rng, opts.Dim), 2)
		}
	}

	point := &ANNIndexPoint{Entries: n}

	flat, err := core.NewFlat(opts.Dim, core.Options{Capacity: n, Tolerance: opts.Tolerance})
	if err != nil {
		return nil, err
	}
	point.Flat = measureVariant("flat", flat, keys, queries)

	// LSH sized so expected bucket occupancy stays near the paper's
	// recommended b=20: L = log2(n/b), capped at the hasher's limit.
	bits := int(math.Ceil(math.Log2(float64(n)/float64(core.DefaultBucketCapacity) + 1)))
	if bits < 1 {
		bits = 1
	}
	if bits > lsh.MaxBits {
		bits = lsh.MaxBits
	}
	lshc, err := core.NewLSH(opts.Dim, core.LSHOptions{
		Bits:      bits,
		Tolerance: opts.Tolerance,
		Seed:      opts.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	point.LSH = measureVariant("lsh", lshc, keys, queries)

	idx, err := core.NewIndexed(opts.Dim, core.IndexedOptions{
		Capacity:       n,
		Tolerance:      opts.Tolerance,
		EfSearch:       opts.EfSweep[0],
		M:              opts.M,
		EfConstruction: opts.EfConstruction,
		Seed:           opts.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	// One graph build, one query pass per swept beam width.
	fillMs := fillVariant(idx, keys)
	var prevHops, prevReranks int64
	for _, ef := range opts.EfSweep {
		idx.SetEfSearch(ef)
		row := queryVariant(fmt.Sprintf("indexed-ef%d", ef), idx, queries)
		row.FillMillis = fillMs
		is := idx.IndexStats()
		row.GraphHops = is.GraphHops - prevHops
		row.Reranks = is.Reranks - prevReranks
		prevHops, prevReranks = is.GraphHops, is.Reranks
		point.IndexedSweep = append(point.IndexedSweep, row)
	}
	point.Indexed = pickHeadline(point.IndexedSweep, point.Flat.HitRate, len(queries))

	if point.Indexed.P99Micros > 0 {
		point.P99SpeedupVsFlat = point.Flat.P99Micros / point.Indexed.P99Micros
	}
	point.HitRateDelta = point.Indexed.HitRate - point.Flat.HitRate
	return point, nil
}

// pickHeadline selects the narrowest beam at hit-rate parity with the
// flat scan: within one binomial standard error of the flat hit rate on
// this query sample. If no row reaches parity, the highest-recall row is
// the honest claim.
func pickHeadline(sweep []ANNVariant, flatRate float64, queries int) ANNVariant {
	se := math.Sqrt(flatRate * (1 - flatRate) / float64(queries))
	best := sweep[0]
	for _, row := range sweep {
		if row.HitRate > best.HitRate {
			best = row
		}
	}
	for _, row := range sweep {
		if row.HitRate >= flatRate-se {
			return row
		}
	}
	return best
}

func measureVariant(name string, c core.Cache, keys []vec.Vector, queries []vec.Vector) ANNVariant {
	fillMs := fillVariant(c, keys)
	row := queryVariant(name, c, queries)
	row.FillMillis = fillMs
	return row
}

func fillVariant(c core.Cache, keys []vec.Vector) float64 {
	start := time.Now()
	for i, k := range keys {
		c.Put(k, []int{i})
	}
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// queryVariant replays the query stream and reports this pass's own
// latency distribution and distance-work delta (counters are cumulative
// across sweep passes over the same cache).
func queryVariant(name string, c core.Cache, queries []vec.Vector) ANNVariant {
	compsBefore := c.Stats().DistComps
	var rec stats.LatencyRecorder
	hits := 0
	for _, q := range queries {
		start := time.Now()
		_, ok := c.Get(q)
		rec.Record(time.Since(start))
		if ok {
			hits++
		}
	}
	return ANNVariant{
		Name:       name,
		HitRate:    float64(hits) / float64(len(queries)),
		MeanMicros: float64(rec.Mean()) / float64(time.Microsecond),
		P50Micros:  float64(rec.Percentile(50)) / float64(time.Microsecond),
		P99Micros:  float64(rec.Percentile(99)) / float64(time.Microsecond),
		DistComps:  c.Stats().DistComps - compsBefore,
	}
}

// WriteJSON writes the result as indented JSON — the BENCH_*.json
// trajectory format CI smoke-checks for well-formedness.
func (r *ANNIndexResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render formats the comparison, one block per entry count.
func (r *ANNIndexResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache lookup A/B: flat vs lsh vs indexed (dim=%d, τ=%v, %d queries)\n",
		r.Dim, r.Tolerance, r.Queries)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "--- %d entries ---\n", p.Entries)
		fmt.Fprintf(&b, "%-14s %12s %10s %12s %12s %14s\n",
			"variant", "fill(ms)", "hit rate", "p50(µs)", "p99(µs)", "dist comps")
		rows := append([]ANNVariant{p.Flat, p.LSH}, p.IndexedSweep...)
		for _, v := range rows {
			fmt.Fprintf(&b, "%-14s %12.1f %10.3f %12.1f %12.1f %14d\n",
				v.Name, v.FillMillis, v.HitRate, v.P50Micros, v.P99Micros, v.DistComps)
		}
		fmt.Fprintf(&b, "%s vs flat: %.1fx lower p99, hit-rate delta %+.3f\n",
			p.Indexed.Name, p.P99SpeedupVsFlat, p.HitRateDelta)
	}
	return b.String()
}
