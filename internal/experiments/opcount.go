package experiments

import (
	"fmt"
	"strings"

	"proximity/internal/core"
	"proximity/internal/vec"
)

// OpCountResult reproduces the §3.2 back-of-envelope analysis with
// measured counters: for c=10000 cached entries at d=768, a FLAT lookup
// performs c·d ≈ 7.68M multiply-accumulate operations while an LSH lookup
// (L=10, b=20) performs (L+b)·d ≈ 23k — a ≈300× reduction, independent of
// capacity. The counters come from the caches' own instrumentation, not
// an estimate.
type OpCountResult struct {
	Dim        int
	Capacity   int
	Bits       int
	Bucket     int
	Lookups    int
	FlatOps    float64 // per-lookup distance+hash operations × d
	LSHOps     float64
	Reduction  float64
	FlatUS     float64 // measured wall microseconds per lookup
	LSHUS      float64
	SpeedupWal float64
}

// OpCountAblation fills both caches with the same random keys and probes
// them with identical queries, reading per-lookup operation counts from
// the cache statistics.
func (s *Suite) OpCountAblation() (*OpCountResult, error) {
	const (
		capacity = 10000
		lshBits  = 10
		lookups  = 50
	)
	dim := s.cfg.Dim
	flat, err := core.NewFlat(dim, core.Options{Capacity: capacity, Tolerance: 1, Policy: core.LRU})
	if err != nil {
		return nil, err
	}
	lshCache, err := core.NewLSH(dim, core.LSHOptions{
		Bits:           lshBits,
		BucketCapacity: core.DefaultBucketCapacity,
		Tolerance:      1,
		Policy:         core.LRU,
		Seed:           s.cfg.BaseSeed + 51,
	})
	if err != nil {
		return nil, err
	}
	rng := vec.NewRand(s.cfg.BaseSeed + 52)
	for i := 0; i < capacity; i++ {
		v := vec.Scale(vec.RandomUnit(rng, dim), 10)
		flat.Put(v, []int{i})
		lshCache.Put(v, []int{i})
	}
	probes := make([]vec.Vector, lookups)
	for i := range probes {
		probes[i] = vec.Scale(vec.RandomUnit(rng, dim), 10)
	}

	// Snapshot counters around the probe loop so the fill phase's hash
	// and insert accounting does not dilute the per-lookup averages.
	flatBefore, lshBefore := flat.Stats(), lshCache.Stats()
	flatUS, err := timeLookups(flat, probes)
	if err != nil {
		return nil, err
	}
	lshUS, err := timeLookups(lshCache, probes)
	if err != nil {
		return nil, err
	}
	fs, ls := flat.Stats(), lshCache.Stats()

	flatLookups := float64(fs.Lookups() - flatBefore.Lookups())
	lshLookups := float64(ls.Lookups() - lshBefore.Lookups())
	flatOps := float64(fs.DistComps-flatBefore.DistComps) / flatLookups * float64(dim)
	lshOps := float64((ls.DistComps-lshBefore.DistComps)+(ls.HashOps-lshBefore.HashOps)) /
		lshLookups * float64(dim)
	res := &OpCountResult{
		Dim:      dim,
		Capacity: capacity,
		Bits:     lshBits,
		Bucket:   core.DefaultBucketCapacity,
		Lookups:  lookups,
		FlatOps:  flatOps,
		LSHOps:   lshOps,
		FlatUS:   flatUS,
		LSHUS:    lshUS,
	}
	if lshOps > 0 {
		res.Reduction = flatOps / lshOps
	}
	if lshUS > 0 {
		res.SpeedupWal = flatUS / lshUS
	}
	return res, nil
}

// timeLookups measures the mean Get wall time in microseconds.
func timeLookups(cache core.Cache, probes []vec.Vector) (float64, error) {
	if len(probes) == 0 {
		return 0, fmt.Errorf("experiments: no probes")
	}
	start := nowNanos()
	for _, p := range probes {
		cache.Get(p)
	}
	return float64(nowNanos()-start) / float64(len(probes)) / 1e3, nil
}

// Render prints the comparison.
func (r *OpCountResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Op-count ablation (§3.2): c=%d, d=%d, L=%d, b=%d, %d lookups\n",
		r.Capacity, r.Dim, r.Bits, r.Bucket, r.Lookups)
	fmt.Fprintf(&b, "  FLAT: %.0f ops/lookup, measured %.1f µs\n", r.FlatOps, r.FlatUS)
	fmt.Fprintf(&b, "  LSH:  %.0f ops/lookup, measured %.1f µs\n", r.LSHOps, r.LSHUS)
	fmt.Fprintf(&b, "  reduction: %.0fx ops (paper predicts ≈300x); wall-clock speedup %.0fx\n",
		r.Reduction, r.SpeedupWal)
	return b.String()
}
