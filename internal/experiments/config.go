// Package experiments reproduces every figure of the paper's evaluation
// (§4): one harness function per figure, each returning a typed result
// with a Render method that prints the same rows the paper reports.
// DESIGN.md §2 maps each figure to its harness and parameters.
package experiments

import "fmt"

// Config sizes the experiment suite. Default() follows the paper's
// parameters (scaled corpora, see DESIGN.md §3); Quick() shrinks
// everything for CI and unit tests.
type Config struct {
	// Dim is the embedding dimensionality (768 in the paper).
	Dim int
	// Seeds is the number of averaged runs (5 in the paper).
	Seeds int
	// BaseSeed offsets all seeds, for replaying a different draw.
	BaseSeed uint64
	// Parallelism bounds concurrent grid cells (0 = GOMAXPROCS).
	Parallelism int

	// MMLU benchmark sizing (§4.2.2: 131 econometrics questions).
	MMLUQuestions    int
	MMLUTopics       int
	MMLUDocsPerTopic int

	// MedRAG benchmark sizing (§4.2.2: 500 PubMedQA questions, 200
	// sampled for the uniform workload).
	MedRAGQuestions    int
	MedRAGSubset       int
	MedRAGTopics       int
	MedRAGDocsPerTopic int

	// Variants is the uniform repetition factor (4 in the paper).
	Variants int

	// MedRAG-Zipf workload (§4.2.2: 10k draws, exponent 0.8, ρ=4).
	ZipfTotal        int
	ZipfExponent     float64
	ZipfRerank       int
	ZipfFlatCapacity int // FLAT capacity used in the Fig. 7 policy rows

	// Fig8Bits is the LSH signature width for the bucket-size sweep
	// (8 in the paper; smaller configs need fewer bits to create the
	// bucket contention the sweep studies).
	Fig8Bits int

	// TripClick log sizing (§2.3: 5.2M interactions, 700k unique;
	// scaled by default).
	TripClickUnique       int
	TripClickTotal        int
	TripClickTopics       int
	TripClickDocsPerTopic int

	// Fig. 3 projection sizing.
	TSNEPoints     int
	TSNEIterations int
	GridCells      int

	// Fig. 10 lookup-scaling sizing.
	Fig10Sizes   []int
	Fig10Lookups int
}

// Default returns the paper-shaped configuration.
func Default() Config {
	return Config{
		Dim:         768,
		Seeds:       3,
		Parallelism: 0,

		MMLUQuestions:    131,
		MMLUTopics:       57,
		MMLUDocsPerTopic: 30,

		MedRAGQuestions:    500,
		MedRAGSubset:       200,
		MedRAGTopics:       50,
		MedRAGDocsPerTopic: 30,

		Variants: 4,

		ZipfTotal:        8000,
		ZipfExponent:     0.8,
		ZipfRerank:       4,
		ZipfFlatCapacity: 200,
		Fig8Bits:         8,

		TripClickUnique:       20000,
		TripClickTotal:        100000,
		TripClickTopics:       40,
		TripClickDocsPerTopic: 30,

		TSNEPoints:     700,
		TSNEIterations: 250,
		GridCells:      100,

		Fig10Sizes:   []int{20, 200, 2000, 20000, 200000},
		Fig10Lookups: 30,
	}
}

// Quick returns a CI-sized configuration that exercises every code path
// in seconds.
func Quick() Config {
	return Config{
		Dim:         192,
		Seeds:       1,
		Parallelism: 0,

		MMLUQuestions:    36,
		MMLUTopics:       12,
		MMLUDocsPerTopic: 6,

		MedRAGQuestions:    60,
		MedRAGSubset:       40,
		MedRAGTopics:       10,
		MedRAGDocsPerTopic: 6,

		Variants: 4,

		ZipfTotal:        900,
		ZipfExponent:     0.8,
		ZipfRerank:       4,
		ZipfFlatCapacity: 60,
		Fig8Bits:         4,

		TripClickUnique:       200,
		TripClickTotal:        2000,
		TripClickTopics:       10,
		TripClickDocsPerTopic: 6,

		TSNEPoints:     120,
		TSNEIterations: 80,
		GridCells:      40,

		Fig10Sizes:   []int{20, 200, 2000},
		Fig10Lookups: 10,
	}
}

// Validate rejects nonsensical configurations early.
func (c Config) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("experiments: Dim must be positive, got %d", c.Dim)
	}
	if c.Seeds <= 0 {
		return fmt.Errorf("experiments: Seeds must be positive, got %d", c.Seeds)
	}
	if c.Variants <= 0 {
		return fmt.Errorf("experiments: Variants must be positive, got %d", c.Variants)
	}
	if c.ZipfTotal < c.MedRAGQuestions {
		return fmt.Errorf("experiments: ZipfTotal %d below MedRAG question count %d",
			c.ZipfTotal, c.MedRAGQuestions)
	}
	if c.TripClickTotal < c.TripClickUnique {
		return fmt.Errorf("experiments: TripClickTotal %d below unique count %d",
			c.TripClickTotal, c.TripClickUnique)
	}
	return nil
}
