package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"proximity/internal/dataset"
	"proximity/internal/metrics"
	"proximity/internal/report"
	"proximity/internal/vectordb"
)

// Fig6Result reproduces one benchmark panel of Fig. 6: test accuracy,
// cache hit rate, and retrieval latency of Proximity-FLAT across cache
// capacities c (rows) and similarity tolerances τ (columns, with the
// no-cache baseline first). FIFO eviction, ρ=1, as in §4.3.
type Fig6Result struct {
	Benchmark string
	Seeds     int
	Caps      []int
	Taus      []float64 // excluding the no-cache column
	// NoCache holds the baseline column (identical across capacities).
	NoCacheAccuracy float64
	NoCacheLatency  time.Duration
	// Grids indexed [capIdx][tauIdx].
	Accuracy [][]float64
	HitRate  [][]float64
	Latency  [][]time.Duration
}

// Fig6FlatGrid runs the grid for benchmark "mmlu" or "medrag".
func (s *Suite) Fig6FlatGrid(benchmark string) (*Fig6Result, error) {
	var (
		taus    []float64
		latency func(seed uint64) vectordb.LatencyModel
	)
	switch benchmark {
	case "mmlu":
		taus = []float64{0.5, 1, 2, 5, 10}
		latency = vectordb.WikiDPRHNSWLatency
	case "medrag":
		taus = []float64{2, 5, 10}
		latency = vectordb.PubMedFlatLatency
	default:
		return nil, fmt.Errorf("experiments: fig6 unknown benchmark %q", benchmark)
	}
	bench, db, err := s.uniformBench(benchmark)
	if err != nil {
		return nil, err
	}

	caps := []int{10, 50, 100, 200, 300}
	res := &Fig6Result{
		Benchmark: benchmark,
		Seeds:     s.cfg.Seeds,
		Caps:      caps,
		Taus:      taus,
		Accuracy:  newGrid(len(caps), len(taus)),
		HitRate:   newGrid(len(caps), len(taus)),
		Latency:   newDurationGrid(len(caps), len(taus)),
	}

	// Baseline column: no cache, one aggregate across seeds.
	var baseline metrics.Aggregate
	for _, seed := range s.seeds() {
		w, err := s.uniformWorkload(bench, seed)
		if err != nil {
			return nil, err
		}
		run, err := s.run(runSpec{
			bench:      bench,
			db:         db,
			latency:    latency(seed),
			w:          w,
			cache:      nil,
			k:          bench.DefaultK,
			rerank:     1,
			answerSeed: seed,
			answer:     true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s baseline: %w", benchmark, err)
		}
		baseline.Add(run)
	}
	res.NoCacheAccuracy = baseline.Accuracy()
	res.NoCacheLatency = baseline.MeanRetrieval()

	// Cached cells, parallel across the grid.
	type cell struct{ ci, ti int }
	var cells []cell
	for ci := range caps {
		for ti := range taus {
			cells = append(cells, cell{ci, ti})
		}
	}
	err = s.parallelFor(len(cells), func(i int) error {
		c := cells[i]
		var agg metrics.Aggregate
		for _, seed := range s.seeds() {
			w, err := s.uniformWorkload(bench, seed)
			if err != nil {
				return err
			}
			cache, err := s.newCache(CacheSpec{
				Kind:      "flat",
				Capacity:  caps[c.ci],
				Tolerance: float32(taus[c.ti]),
			}, seed)
			if err != nil {
				return err
			}
			run, err := s.run(runSpec{
				bench:      bench,
				db:         db,
				latency:    latency(seed),
				w:          w,
				cache:      cache,
				k:          bench.DefaultK,
				rerank:     1,
				answerSeed: seed,
				answer:     true,
			})
			if err != nil {
				return fmt.Errorf("experiments: fig6 %s c=%d τ=%v: %w",
					benchmark, caps[c.ci], taus[c.ti], err)
			}
			agg.Add(run)
		}
		res.Accuracy[c.ci][c.ti] = agg.Accuracy()
		res.HitRate[c.ci][c.ti] = agg.HitRate()
		res.Latency[c.ci][c.ti] = agg.MeanRetrieval()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// uniformBench resolves the benchmark used by the uniform workloads:
// full MMLU, or the 200-question MedRAG subset (§4.2.2).
func (s *Suite) uniformBench(benchmark string) (*dataset.Benchmark, vectordb.DB, error) {
	switch benchmark {
	case "mmlu":
		b, d, err := s.MMLU()
		return b, d, err
	case "medrag":
		_, sub, d, err := s.MedRAG()
		return sub, d, err
	default:
		return nil, nil, fmt.Errorf("experiments: unknown benchmark %q", benchmark)
	}
}

// Render prints the three panels as heatmaps.
func (r *Fig6Result) Render() string {
	cols := make([]string, 0, len(r.Taus)+1)
	cols = append(cols, "no-cache")
	for _, tau := range r.Taus {
		cols = append(cols, trimFloat(tau))
	}
	rows := make([]string, len(r.Caps))
	for i, c := range r.Caps {
		rows[i] = strconv.Itoa(c)
	}

	acc := report.NewHeatmap(fmt.Sprintf("Figure 6a (%s): test accuracy [%%]", r.Benchmark), "c", "tau", rows, cols)
	hit := report.NewHeatmap(fmt.Sprintf("Figure 6b (%s): hit rate [%%]", r.Benchmark), "c", "tau", rows, cols)
	lat := report.NewHeatmap(fmt.Sprintf("Figure 6c (%s): retrieval latency [ms]", r.Benchmark), "c", "tau", rows, cols)
	for ci := range r.Caps {
		acc.Set(ci, 0, report.Percent(r.NoCacheAccuracy))
		hit.Set(ci, 0, "-")
		lat.Set(ci, 0, report.Millis(r.NoCacheLatency))
		for ti := range r.Taus {
			acc.Set(ci, ti+1, report.Percent(r.Accuracy[ci][ti]))
			hit.Set(ci, ti+1, report.Percent(r.HitRate[ci][ti]))
			lat.Set(ci, ti+1, report.Millis(r.Latency[ci][ti]))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (%s), Proximity-FLAT, FIFO, ρ=1, %d seed(s)\n\n", r.Benchmark, r.Seeds)
	b.WriteString(acc.String())
	b.WriteByte('\n')
	b.WriteString(hit.String())
	b.WriteByte('\n')
	b.WriteString(lat.String())
	return b.String()
}

// newGrid allocates a rows×cols float grid.
func newGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

// newDurationGrid allocates a rows×cols duration grid.
func newDurationGrid(rows, cols int) [][]time.Duration {
	g := make([][]time.Duration, rows)
	for i := range g {
		g[i] = make([]time.Duration, cols)
	}
	return g
}

// trimFloat formats a float without trailing zeros.
func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', -1, 64)
	return s
}
