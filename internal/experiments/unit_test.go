package experiments

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func TestBitsForCapacity(t *testing.T) {
	tests := []struct {
		n, bucket, want int
	}{
		{n: 20, bucket: 20, want: 8},      // fits the paper's L=8 easily
		{n: 5120, bucket: 20, want: 8},    // exactly 2^8·20
		{n: 5121, bucket: 20, want: 9},    // one more entry needs L=9
		{n: 200000, bucket: 20, want: 14}, // the Fig. 10 max
	}
	for _, tt := range tests {
		if got := bitsForCapacity(tt.n, tt.bucket); got != tt.want {
			t.Errorf("bitsForCapacity(%d, %d) = %d, want %d", tt.n, tt.bucket, got, tt.want)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{give: 2.5, want: "2.5"},
		{give: 10, want: "10"},
		{give: 0.627, want: "0.627"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.give); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestNewGridShapes(t *testing.T) {
	g := newGrid(2, 3)
	if len(g) != 2 || len(g[0]) != 3 || len(g[1]) != 3 {
		t.Error("newGrid shape wrong")
	}
	d := newDurationGrid(1, 4)
	if len(d) != 1 || len(d[0]) != 4 {
		t.Error("newDurationGrid shape wrong")
	}
}

func TestZeroDB(t *testing.T) {
	db := newZeroDB(4, 10)
	if db.Dim() != 4 || db.Len() != 10 {
		t.Error("accessors wrong")
	}
	res, err := db.Search(vec.Vector{0, 0, 0, 0}, 3)
	if err != nil || len(res) != 3 {
		t.Fatalf("Search = %v, %v", res, err)
	}
	for i, s := range res {
		if s.ID != i || s.Dist != 0 {
			t.Errorf("result %d = %+v", i, s)
		}
	}
	// k clamps to size.
	res, err = db.Search(vec.Vector{0, 0, 0, 0}, 50)
	if err != nil || len(res) != 10 {
		t.Errorf("clamped search = %d results, %v", len(res), err)
	}
	if _, err := db.Search(vec.Vector{0}, 1); !errors.Is(err, vec.ErrDimensionMismatch) {
		t.Errorf("dim mismatch error = %v", err)
	}
	if _, err := db.Search(vec.Vector{0, 0, 0, 0}, 0); !errors.Is(err, vectordb.ErrBadK) {
		t.Errorf("bad k error = %v", err)
	}
	v, err := db.Vector(5)
	if err != nil || len(v) != 4 {
		t.Errorf("Vector = %v, %v", v, err)
	}
	if _, err := db.Vector(10); err == nil {
		t.Error("out-of-range Vector should error")
	}
}

func TestFig11CapsScaling(t *testing.T) {
	big, err := NewSuite(Default())
	if err != nil {
		t.Fatal(err)
	}
	caps := big.fig11Caps()
	if caps[len(caps)-1] != 200 {
		t.Errorf("default caps = %v, want the paper's column ending at 200", caps)
	}
	small, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	caps = small.fig11Caps()
	if caps[len(caps)-1] > Quick().MedRAGQuestions {
		t.Errorf("quick caps = %v exceed the unique-question count", caps)
	}
}

func TestParallelFor(t *testing.T) {
	s, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// All indices visited exactly once.
	seen := make([]int, 100)
	if err := s.parallelFor(100, func(i int) error {
		seen[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	// Errors propagate.
	wantErr := errors.New("boom")
	if err := s.parallelFor(10, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("parallelFor error = %v", err)
	}
	// Zero items is a no-op.
	if err := s.parallelFor(0, func(int) error { return wantErr }); err != nil {
		t.Errorf("empty parallelFor should not run fn: %v", err)
	}
}

func TestSeedsDistinctAndStable(t *testing.T) {
	cfg := Quick()
	cfg.Seeds = 4
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.seeds(), s.seeds()
	seen := make(map[uint64]struct{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeds must be stable across calls")
		}
		if _, dup := seen[a[i]]; dup {
			t.Fatal("seeds must be distinct")
		}
		seen[a[i]] = struct{}{}
	}
}

func TestNewCacheSpecValidation(t *testing.T) {
	s, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if c, err := s.newCache(CacheSpec{Kind: "none"}, 1); err != nil || c != nil {
		t.Error("kind none should yield a nil cache")
	}
	if _, err := s.newCache(CacheSpec{Kind: "warp"}, 1); err == nil {
		t.Error("unknown kind should error")
	}
	c, err := s.newCache(CacheSpec{Kind: "flat", Capacity: 4, Tolerance: 1}, 1)
	if err != nil || c == nil {
		t.Errorf("flat spec failed: %v", err)
	}
	c, err = s.newCache(CacheSpec{Kind: "lsh", Bits: 4, BucketCapacity: 8, Tolerance: 1}, 1)
	if err != nil || c == nil {
		t.Errorf("lsh spec failed: %v", err)
	}
}

// TestChurnExperimentShape runs the churn A/B at tiny parameters and
// checks the result's shape and the directional claims the benchmark
// exists to make.
func TestChurnExperimentShape(t *testing.T) {
	res, err := Churn(ChurnOptions{Capacity: 150, Dim: 8, Mults: []int{1, 4}, Queries: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for i, p := range res.Points {
		for _, v := range []ChurnVariant{p.Unrepaired, p.Repaired, p.Maintained, p.Fresh} {
			if v.SelfRecall <= 0 || v.SelfRecall > 1 {
				t.Fatalf("point %d variant %s: self-recall %v out of range", i, v.Name, v.SelfRecall)
			}
			if v.PutMeanMicros <= 0 {
				t.Fatalf("point %d variant %s: no put latency recorded", i, v.Name)
			}
		}
	}
	churned := res.Points[1]
	if churned.Puts != 4*150 {
		t.Fatalf("puts = %d, want 600", churned.Puts)
	}
	if churned.Repaired.SeveredInEdges == 0 || churned.Maintained.RepairPasses == 0 {
		t.Fatalf("repair machinery idle under churn: %+v", churned)
	}
	if churned.Unrepaired.SeveredInEdges != 0 {
		t.Fatalf("unrepaired variant severed edges: %+v", churned.Unrepaired)
	}
	if churned.SelfRecallVsFresh <= 0 || churned.UnrepairedVsFresh <= 0 {
		t.Fatalf("headline ratios missing: %+v", churned)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if _, ok := decoded["points"]; !ok {
		t.Fatal("artifact missing points")
	}
	if _, err := Churn(ChurnOptions{Mults: []int{0}}); err == nil {
		t.Fatal("mult 0 should error")
	}
}
