package experiments

import (
	"fmt"
	"math"
	"strings"

	"proximity/internal/cluster"
	"proximity/internal/core"
	"proximity/internal/loadgen"
	"proximity/internal/server"
	"proximity/internal/shard"
)

// ClusterCompare is the distribution A/B: the same Zipf serving workload
// replayed against a single-process sharded cache and against a ring of
// loopback shard NODES (each a full HTTP middleware with its own cache
// slice), both over the same database — closed loop to measure each
// configuration's capacity, then open loop at a self-calibrated rate
// between the two.
//
// On one machine the cluster pays the HTTP+JSON protocol tax without
// buying real parallelism (the nodes share the host's cores), so the
// loopback numbers quantify the distribution overhead, not the scale-out
// win; the win arrives when the nodes live on separate hosts and the
// capacity multiplies instead of dividing.
type ClusterCompare struct {
	// Nodes is the shard-node count (and the baseline's shard count).
	Nodes int
	// LocalCap and ClusterCap are the closed-loop achieved QPS of each
	// configuration.
	LocalCap   float64
	ClusterCap float64
	// QPS is the fixed open-loop offered load (the geometric mean of
	// the capacities unless overridden).
	QPS     float64
	Local   *loadgen.Report
	Cluster *loadgen.Report
	// Router holds the cluster client's routing counters and Status the
	// per-node view (remote hit/miss, occupancy, and this client's
	// per-node batch-submitter counters), both restricted to the
	// open-loop pass: the capacity probe's traffic is subtracted out so
	// the table describes the run the latency numbers describe.
	Router cluster.RouterStats
	Status []cluster.NodeStatus
}

// Render formats the comparison with per-node hit/miss and batch stats.
func (c *ClusterCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distributed shard routing comparison (%d loopback nodes)\n", c.Nodes)
	fmt.Fprintf(&b, "closed-loop capacity: in-process %.0f qps, cluster %.0f qps (%+.1f%% — loopback protocol tax)\n",
		c.LocalCap, c.ClusterCap, 100*(c.ClusterCap-c.LocalCap)/c.LocalCap)
	fmt.Fprintf(&b, "open loop @ %.0f qps:\n", c.QPS)
	b.WriteString("--- in-process shards ---\n")
	b.WriteString(c.Local.Render())
	b.WriteString("--- cluster nodes ---\n")
	b.WriteString(c.Cluster.Render())
	fmt.Fprintf(&b, "router (open-loop pass): %d served (%d remote hits), %d retried, %d failed\n",
		c.Router.Served, c.Router.RemoteHits, c.Router.Retried, c.Router.Failed)
	for i, ns := range c.Status {
		hitRate := 0.0
		if lookups := ns.Remote.Hits + ns.Remote.Misses; lookups > 0 {
			hitRate = float64(ns.Remote.Hits) / float64(lookups)
		}
		fmt.Fprintf(&b, "node %d %-24s healthy=%-5v hits=%-6d misses=%-6d hitRate=%.3f entries=%d/%d | batch: %d flushes, mean %.2f\n",
			i, ns.Node, ns.Healthy, ns.Remote.Hits, ns.Remote.Misses, hitRate,
			ns.Remote.Entries, ns.Remote.Capacity, ns.Submit.Flushes, ns.Submit.MeanBatch())
	}
	return b.String()
}

// clusterCompare runs the distribution A/B for LoadTest. Both sides
// replay the same workload with the same worker pool and seeds over the
// same MedRAG database; the only variable is whether cache partitions
// are in-process sub-caches or HTTP shard nodes behind the consistent-
// hash router.
func (s *Suite) clusterCompare(opts LoadTestOptions) (*ClusterCompare, error) {
	w, err := s.zipfWorkload(s.cfg.BaseSeed + 1000)
	if err != nil {
		return nil, err
	}
	_, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}
	nodes := opts.Cluster

	// Baseline: the in-process sharded cache with one shard per node.
	newLocalTarget := func() (loadgen.Target, error) {
		cache, err := shard.NewFlat(s.cfg.Dim, nodes, core.Options{
			Capacity:  s.cfg.ZipfFlatCapacity,
			Tolerance: 5,
			Policy:    core.LRU,
		}, s.cfg.BaseSeed+2000)
		if err != nil {
			return nil, err
		}
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 4})
		if err != nil {
			return nil, err
		}
		return loadgen.NewRetrieverTarget(retr)
	}

	// Cluster: one middleware node per shard, each owning an equal
	// slice of the total capacity, behind the ring router.
	per := s.cfg.ZipfFlatCapacity / nodes
	if s.cfg.ZipfFlatCapacity%nodes != 0 {
		per++
	}
	bases := make([]string, nodes)
	stops := make([]func() error, 0, nodes)
	defer func() {
		for _, stop := range stops {
			_ = stop()
		}
	}()
	for i := range bases {
		cache, err := core.NewFlat(s.cfg.Dim, core.Options{
			Capacity:  per,
			Tolerance: 5,
			Policy:    core.LRU,
		})
		if err != nil {
			return nil, err
		}
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 4})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{Retriever: retr})
		if err != nil {
			return nil, err
		}
		bound, stop, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		bases[i] = "http://" + bound
	}
	client, err := cluster.New(s.cfg.Dim, bases, cluster.Options{
		Seed:         s.cfg.BaseSeed + 2000,
		MaxBatch:     opts.MaxBatch,
		BatchTimeout: opts.BatchTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	newClusterTarget := func() (loadgen.Target, error) {
		// The cluster client is the cache; the local database is the
		// degraded-mode fallback (unused while all nodes answer).
		retr, err := core.NewCachedRetriever(client, db, core.RetrieverOptions{K: 4})
		if err != nil {
			return nil, err
		}
		return loadgen.NewRetrieverTarget(retr)
	}

	// The cluster target blocks on loopback round trips (and inside the
	// submitter gather window), so the worker pool must comfortably
	// exceed the node count for requests to overlap and batches to form
	// — a single worker would serialize the ring into an RTT benchmark.
	// Both sides get the same pool for fairness.
	workers := opts.Concurrency
	if min := 4 * nodes; workers < min {
		workers = min
	}
	run := func(newTarget func() (loadgen.Target, error), mode loadgen.Mode, qps float64) (*loadgen.Report, error) {
		target, err := newTarget()
		if err != nil {
			return nil, err
		}
		return loadgen.Run(target, w, loadgen.Options{
			Mode:    mode,
			Workers: workers,
			QPS:     qps,
			Seed:    s.cfg.BaseSeed + 3000,
		})
	}

	cmp := &ClusterCompare{Nodes: nodes}

	// Phase 1: closed-loop capacity probes (fresh caches each side).
	local, err := run(newLocalTarget, loadgen.ClosedLoop, 0)
	if err != nil {
		return nil, fmt.Errorf("in-process capacity probe: %w", err)
	}
	cmp.LocalCap = local.AchievedQPS
	clusterCap, err := run(newClusterTarget, loadgen.ClosedLoop, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster capacity probe: %w", err)
	}
	cmp.ClusterCap = clusterCap.AchievedQPS

	// Phase 2: open loop at the capacity midpoint (or the explicit
	// override). Node caches are flushed so both passes start cold.
	qps := opts.QPS
	if qps <= 0 {
		qps = math.Sqrt(cmp.LocalCap * cmp.ClusterCap)
	}
	cmp.QPS = qps
	if cmp.Local, err = run(newLocalTarget, loadgen.OpenLoop, qps); err != nil {
		return nil, fmt.Errorf("in-process open-loop pass: %w", err)
	}
	client.Clear()
	// Clear resets node cache entries but counters are cumulative, so
	// snapshot before the pass and report deltas: the table must
	// describe the open-loop run, not the capacity probe's leftovers.
	routerBefore := client.RouterStats()
	statusBefore := client.Status()
	if cmp.Cluster, err = run(newClusterTarget, loadgen.OpenLoop, qps); err != nil {
		return nil, fmt.Errorf("cluster open-loop pass: %w", err)
	}

	cmp.Router = routerDelta(client.RouterStats(), routerBefore)
	cmp.Status = statusDelta(client.Status(), statusBefore)
	return cmp, nil
}

// routerDelta subtracts an earlier routing-counter snapshot.
func routerDelta(after, before cluster.RouterStats) cluster.RouterStats {
	return cluster.RouterStats{
		Served:     after.Served - before.Served,
		Retried:    after.Retried - before.Retried,
		Failed:     after.Failed - before.Failed,
		RemoteHits: after.RemoteHits - before.RemoteHits,
	}
}

// statusDelta subtracts an earlier per-node snapshot's cumulative
// counters (remote hits/misses/evictions and submitter totals), keyed by
// node; point-in-time fields (health, entries, capacity) keep their
// after values. Nodes absent from the earlier snapshot pass through
// unchanged.
func statusDelta(after, before []cluster.NodeStatus) []cluster.NodeStatus {
	prev := make(map[string]cluster.NodeStatus, len(before))
	for _, ns := range before {
		prev[ns.Node] = ns
	}
	out := make([]cluster.NodeStatus, len(after))
	for i, ns := range after {
		if b, ok := prev[ns.Node]; ok {
			ns.Remote.Hits -= b.Remote.Hits
			ns.Remote.Misses -= b.Remote.Misses
			ns.Remote.Evictions -= b.Remote.Evictions
			ns.Submit.Enqueued -= b.Submit.Enqueued
			ns.Submit.Flushes -= b.Submit.Flushes
			ns.Submit.SizeFlushes -= b.Submit.SizeFlushes
			ns.Submit.TimeoutFlushes -= b.Submit.TimeoutFlushes
			ns.Submit.DrainFlushes -= b.Submit.DrainFlushes
			ns.Submit.Errors -= b.Submit.Errors
		}
		out[i] = ns
	}
	return out
}
