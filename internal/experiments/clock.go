package experiments

import (
	"sync"
	"time"
)

// nowNanos returns a monotonic nanosecond timestamp for micro-timing.
func nowNanos() int64 { return time.Now().UnixNano() }

// FakeClock is a manually-advanced clock satisfying batch.Clock. Timers
// created with After fire when Advance moves the clock past their
// deadline, so tests of timeout-driven code (the batch queue's flush
// timer) are deterministic: no sleeps, no scheduler races.
type FakeClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock creates a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	c := &FakeClock{now: time.Unix(1_000_000, 0)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once the clock has been advanced by
// at least d. A non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Advance moves the clock forward, firing every timer whose deadline has
// been reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	remaining := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			remaining = append(remaining, t)
		}
	}
	c.timers = remaining
}

// Timers returns the number of pending timers.
func (c *FakeClock) Timers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// BlockUntil waits until at least n timers are pending — the
// synchronization point tests use to know timeout-driven code has armed
// its timer before Advance fires it.
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) < n {
		c.cond.Wait()
	}
}
