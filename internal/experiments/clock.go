package experiments

import "time"

// nowNanos returns a monotonic nanosecond timestamp for micro-timing.
func nowNanos() int64 { return time.Now().UnixNano() }
