package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTelemetryOverheadSmoke runs a tiny probe end to end: all three
// configurations produce plausible timings and the artifact round-trips.
// The committed BENCH_telemetry.json carries the full-size numbers; this
// only guards the harness.
func TestTelemetryOverheadSmoke(t *testing.T) {
	res, err := TelemetryOverhead(TelemetryOverheadOptions{Iters: 300, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineNsOp <= 0 || res.DisabledNsOp <= 0 || res.SampledNsOp <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if res.Iters != 300 || res.Rounds != 2 {
		t.Errorf("options not echoed: %+v", res)
	}
	out := res.Render()
	for _, want := range []string{"telemetry overhead", "baseline", "sampling off"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TelemetryOverheadResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.BaselineNsOp != res.BaselineNsOp {
		t.Errorf("JSON round-trip changed baseline: %v != %v", back.BaselineNsOp, res.BaselineNsOp)
	}
}
