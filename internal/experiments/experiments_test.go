package experiments

import (
	"strings"
	"testing"

	"proximity/internal/stats"
)

// TestConfigValidate exercises the config guard rails.
func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("Default config invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick config invalid: %v", err)
	}
	bad := Quick()
	bad.Dim = 0
	if err := bad.Validate(); err == nil {
		t.Error("Dim=0 should fail validation")
	}
	bad = Quick()
	bad.ZipfTotal = 1
	if err := bad.Validate(); err == nil {
		t.Error("ZipfTotal below question count should fail validation")
	}
	if _, err := NewSuite(bad); err == nil {
		t.Error("NewSuite must reject invalid configs")
	}
}

// TestSuiteShapes runs every figure harness on the Quick configuration
// and asserts the qualitative shapes the paper reports. One suite is
// shared so benchmarks build once.
func TestSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite skipped in -short mode")
	}
	s, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("Fig2", func(t *testing.T) {
		r, err := s.Fig2QuerySkew()
		if err != nil {
			t.Fatal(err)
		}
		if r.Fit.Exponent < 0.3 || r.Fit.Exponent > 1.1 {
			t.Errorf("fitted exponent %.3f outside the Zipf regime around 0.627", r.Fit.Exponent)
		}
		if r.Fit.R2 < 0.7 {
			t.Errorf("R² = %.3f, power law should fit well", r.Fit.R2)
		}
		if len(r.RankFreq) == 0 || r.RankFreq[0][1] < r.RankFreq[len(r.RankFreq)-1][1] {
			t.Error("rank-frequency must be descending")
		}
		if !strings.Contains(r.Render(), "Zipf exponent") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig3", func(t *testing.T) {
		r, err := s.Fig3EmbeddingClusters()
		if err != nil {
			t.Fatal(err)
		}
		if r.ClusterScore < 1.3 {
			t.Errorf("cluster score = %.2f; topic clusters should be visible (Fig. 3)", r.ClusterScore)
		}
		total := 0
		for _, row := range r.Grid {
			for _, c := range row {
				total += c
			}
		}
		if total != r.Points {
			t.Errorf("grid holds %d points, want %d", total, r.Points)
		}
		if r.OccupiedCells <= 1 {
			t.Error("projection collapsed to a point")
		}
		if !strings.Contains(r.Render(), "cluster score") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig6MMLU", func(t *testing.T) {
		r, err := s.Fig6FlatGrid("mmlu")
		if err != nil {
			t.Fatal(err)
		}
		checkFig6Shapes(t, r, 2 /* τ=2 col */, 4 /* τ=10 col */)
		// MMLU accuracy stays near the baseline even at τ=10 (DPR
		// corpus passages are near-neutral).
		last := len(r.Taus) - 1
		for ci := range r.Caps {
			if diff := r.NoCacheAccuracy - r.Accuracy[ci][last]; diff > 0.15 {
				t.Errorf("mmlu c=%d τ=10 accuracy dropped %.3f below baseline; expected mild", r.Caps[ci], diff)
			}
		}
	})

	t.Run("Fig6MedRAG", func(t *testing.T) {
		r, err := s.Fig6FlatGrid("medrag")
		if err != nil {
			t.Fatal(err)
		}
		checkFig6Shapes(t, r, 1 /* τ=5 col */, 2 /* τ=10 col */)
		// The MedRAG signature: τ=10 collapses accuracy below the
		// no-RAG floor while τ=5 stays near the baseline (Fig. 6a).
		bigCap := len(r.Caps) - 1
		tau5, tau10 := 1, 2
		if r.Accuracy[bigCap][tau10] >= r.Accuracy[bigCap][tau5]-0.1 {
			t.Errorf("medrag accuracy should collapse at τ=10: τ=5 %.3f vs τ=10 %.3f",
				r.Accuracy[bigCap][tau5], r.Accuracy[bigCap][tau10])
		}
		if r.HitRate[bigCap][tau10] < 0.9 {
			t.Errorf("medrag τ=10 hit rate %.3f, paper reports ≈98%%", r.HitRate[bigCap][tau10])
		}
		if !strings.Contains(r.Render(), "Figure 6a") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig7", func(t *testing.T) {
		r, err := s.Fig7ZipfPolicies()
		if err != nil {
			t.Fatal(err)
		}
		// Recall ≈ 1 at low tolerance for every policy; degraded at
		// τ=10 for FLAT (Fig. 7b).
		for pi, name := range r.Policies {
			if r.Recall[pi][0] < 0.9 {
				t.Errorf("%s recall at τ=2.5 = %.3f, want ≈ 1", name, r.Recall[pi][0])
			}
		}
		flatIdx, lshIdx := indexOf(r.Policies, "lru"), indexOf(r.Policies, "lsh-lru")
		last := len(r.Taus) - 1
		if r.Recall[flatIdx][last] > r.Recall[flatIdx][0] {
			t.Error("FLAT recall should degrade as τ grows")
		}
		// LSH robustness at τ=10 (§4.3.1): bucket containment keeps
		// recall/accuracy above FLAT.
		if r.Recall[lshIdx][last]+0.02 < r.Recall[flatIdx][last] {
			t.Errorf("LSH recall at τ=10 (%.3f) should not be below FLAT (%.3f)",
				r.Recall[lshIdx][last], r.Recall[flatIdx][last])
		}
		// Hit rate grows with τ for every L (Fig. 7c).
		for bi := range r.Bits {
			if r.HitRate[bi][last] <= r.HitRate[bi][0] {
				t.Errorf("L=%d hit rate should grow with τ: %.3f vs %.3f",
					r.Bits[bi], r.HitRate[bi][0], r.HitRate[bi][last])
			}
		}
		// Latency falls as hit rate rises (Fig. 7d).
		for bi := range r.Bits {
			if r.Latency[bi][last] >= r.Latency[bi][0] {
				t.Errorf("L=%d latency should fall with τ", r.Bits[bi])
			}
		}
		if !strings.Contains(r.Render(), "Figure 7a") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig8", func(t *testing.T) {
		r, err := s.Fig8BucketSize()
		if err != nil {
			t.Fatal(err)
		}
		// Hit rate improves from b=5 to b=20 and then plateaus; the
		// accuracy curve stays flat (Fig. 8).
		if r.HitRate[3] <= r.HitRate[0] {
			t.Errorf("hit rate should grow b=5→20: %.3f vs %.3f", r.HitRate[0], r.HitRate[3])
		}
		if gain := r.HitRate[len(r.HitRate)-1] - r.HitRate[3]; gain > 0.10 {
			t.Errorf("hit rate gain beyond b=20 = %.3f, expected a plateau", gain)
		}
		for i := 1; i < len(r.Accuracy); i++ {
			if diff := r.Accuracy[i] - r.Accuracy[0]; diff > 0.1 || diff < -0.1 {
				t.Errorf("accuracy should be stable across b, drifted %.3f at b=%d", diff, r.Buckets[i])
			}
		}
		if !strings.Contains(r.Render(), "Figure 8") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig9", func(t *testing.T) {
		r, err := s.Fig9Occupancy()
		if err != nil {
			t.Fatal(err)
		}
		// Relative occupancy falls as L grows (adaptive sparsity).
		for ti := range r.Taus {
			first, last := r.Relative[0][ti], r.Relative[len(r.Bits)-1][ti]
			if last >= first {
				t.Errorf("τ=%v: relative occupancy should fall with L: L=%d %.3f vs L=%d %.3f",
					r.Taus[ti], r.Bits[0], first, r.Bits[len(r.Bits)-1], last)
			}
		}
		// Occupancy falls (weakly) as τ grows: more hits, fewer inserts.
		for bi := range r.Bits {
			if r.Absolute[bi][len(r.Taus)-1] > r.Absolute[bi][0]*1.1 {
				t.Errorf("L=%d: absolute occupancy should not grow with τ", r.Bits[bi])
			}
		}
		if !strings.Contains(r.Render(), "Figure 9a") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig10", func(t *testing.T) {
		r, err := s.Fig10LookupScaling()
		if err != nil {
			t.Fatal(err)
		}
		nSizes := len(r.Sizes)
		// FLAT lookup grows strongly with n; LSH stays within a small
		// factor across two orders of magnitude.
		if r.FlatUS[nSizes-1] < 5*r.FlatUS[0] {
			t.Errorf("FLAT lookup should scale with n: %.2fµs at n=%d vs %.2fµs at n=%d",
				r.FlatUS[0], r.Sizes[0], r.FlatUS[nSizes-1], r.Sizes[nSizes-1])
		}
		if r.LSHUS[nSizes-1] > 20*r.LSHUS[0]+5 {
			t.Errorf("LSH lookup should stay near-constant: %.2fµs → %.2fµs",
				r.LSHUS[0], r.LSHUS[nSizes-1])
		}
		// At the largest size, FLAT must be clearly slower than LSH.
		if r.FlatUS[nSizes-1] < 2*r.LSHUS[nSizes-1] {
			t.Errorf("at n=%d FLAT (%.2fµs) should dwarf LSH (%.2fµs)",
				r.Sizes[nSizes-1], r.FlatUS[nSizes-1], r.LSHUS[nSizes-1])
		}
		if !strings.Contains(r.Render(), "Figure 10") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig11", func(t *testing.T) {
		r, err := s.Fig11LookupParams()
		if err != nil {
			t.Fatal(err)
		}
		// FLAT lookup grows with capacity at the lowest τ, where the
		// cache is guaranteed to saturate (higher τ rows may not fill
		// small configs; the full-scale bench shows the whole grid).
		small, large := r.FlatUS[0][0], r.FlatUS[len(r.Caps)-1][0]
		if large < 1.5*small {
			t.Errorf("τ=%v: FLAT lookup should grow with c (%.2f → %.2f µs)",
				r.Taus[0], small, large)
		}
		// LSH lookup stays within a small band across L and τ. The
		// median damps scheduler outliers (wall-clock measurements
		// share the machine with other work).
		var all []float64
		for bi := range r.Bits {
			all = append(all, r.LSHUS[bi]...)
		}
		med, err := stats.Median(all)
		if err != nil {
			t.Fatal(err)
		}
		minV := all[0]
		for _, v := range all {
			if v < minV {
				minV = v
			}
		}
		if med > 10*minV+5 {
			t.Errorf("LSH lookup should be stable, min %.2f µs vs median %.2f µs", minV, med)
		}
		if !strings.Contains(r.Render(), "Figure 11a") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Fig12", func(t *testing.T) {
		r, err := s.Fig12TripClick()
		if err != nil {
			t.Fatal(err)
		}
		// Recall near-perfect at τ=1 and non-increasing in τ.
		if r.Recall[0] < 0.9 {
			t.Errorf("recall at τ=1 = %.3f, paper reports 99.4%%", r.Recall[0])
		}
		if r.Recall[len(r.Recall)-1] > r.Recall[0] {
			t.Error("recall should not grow with τ")
		}
		// Hit rate substantial and stable-ish across τ.
		for i, h := range r.HitRate {
			if h < 0.2 || h > 0.99 {
				t.Errorf("hit rate at τ=%v = %.3f, expected a substantial stable rate", r.Taus[i], h)
			}
		}
		if !strings.Contains(r.Render(), "Figure 12") {
			t.Error("render output incomplete")
		}
	})

	t.Run("Ablation", func(t *testing.T) {
		r, err := s.ExtensionsAblation()
		if err != nil {
			t.Fatal(err)
		}
		byName := make(map[string]AblationRow, len(r.Rows))
		for _, row := range r.Rows {
			byName[row.Name] = row
		}
		single := byName["lsh ρ=4 single-probe"]
		multi := byName["lsh ρ=4 multi-probe"]
		noRerank := byName["lsh ρ=1 single-probe"]
		dynamic := byName["lsh ρ=4 dynamic-τ"]

		// Multi-probe recovers boundary hits.
		if multi.HitRate < single.HitRate {
			t.Errorf("multi-probe hit rate %.3f below single-probe %.3f", multi.HitRate, single.HitRate)
		}
		// Re-ranking protects recall: ρ=4 recall ≥ ρ=1 recall.
		if single.Recall+0.02 < noRerank.Recall {
			t.Errorf("ρ=4 recall %.3f unexpectedly below ρ=1 %.3f", single.Recall, noRerank.Recall)
		}
		// Dynamic tolerance keeps recall high (it only loosens where
		// the retrieved neighborhood was sparse).
		if dynamic.Recall < 0.8 {
			t.Errorf("dynamic tolerance recall = %.3f, want high", dynamic.Recall)
		}
		if dynamic.HitRate < 0.1 {
			t.Errorf("dynamic tolerance hit rate = %.3f, lines never matched", dynamic.HitRate)
		}
		if !strings.Contains(r.Render(), "ablation") {
			t.Error("render output incomplete")
		}
	})

	t.Run("OpCount", func(t *testing.T) {
		r, err := s.OpCountAblation()
		if err != nil {
			t.Fatal(err)
		}
		if r.Reduction < 50 {
			t.Errorf("op reduction = %.0fx, §3.2 predicts ≈300x at d=768 (≥50x at any dim)", r.Reduction)
		}
		if r.FlatOps < float64(r.Capacity)*float64(r.Dim)*0.9 {
			t.Errorf("FLAT ops/lookup = %.0f, want ≈ c·d = %d", r.FlatOps, r.Capacity*r.Dim)
		}
		if !strings.Contains(r.Render(), "reduction") {
			t.Error("render output incomplete")
		}
	})
}

// checkFig6Shapes asserts the monotone trends shared by both Fig. 6
// panels: hit rate grows with τ and with c; latency falls with hit rate.
func checkFig6Shapes(t *testing.T, r *Fig6Result, midTau, highTau int) {
	t.Helper()
	lastCap := len(r.Caps) - 1
	// Hit rate grows with τ at the largest capacity.
	if r.HitRate[lastCap][highTau] <= r.HitRate[lastCap][0] {
		t.Errorf("hit rate should grow with τ: %.3f (τ min) vs %.3f (τ max)",
			r.HitRate[lastCap][0], r.HitRate[lastCap][highTau])
	}
	// Hit rate grows with capacity at a mid tolerance.
	if r.HitRate[lastCap][midTau] < r.HitRate[0][midTau] {
		t.Errorf("hit rate should grow with c: c=%d %.3f vs c=%d %.3f",
			r.Caps[0], r.HitRate[0][midTau], r.Caps[lastCap], r.HitRate[lastCap][midTau])
	}
	// Latency at high τ (high hit rate) is below the no-cache baseline.
	if r.Latency[lastCap][highTau] >= r.NoCacheLatency {
		t.Errorf("caching should cut retrieval latency: %v vs baseline %v",
			r.Latency[lastCap][highTau], r.NoCacheLatency)
	}
	// Latency decreases as τ grows.
	if r.Latency[lastCap][highTau] >= r.Latency[lastCap][0] {
		t.Error("latency should fall as τ (and hit rate) grow")
	}
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
