package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/report"
	"proximity/internal/stats"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// Fig11Result reproduces Fig. 11: the pure cache-lookup time of
// MedRAG-Zipf queries for (a) Proximity-FLAT across capacities and
// tolerances and (b) Proximity-LSH across hash widths and tolerances.
// Unlike Fig. 7d this excludes database time: only the Get call inside
// the cache is timed. The paper's shape: FLAT grows with c (and mildly
// with τ), LSH stays flat everywhere.
type Fig11Result struct {
	Seeds int
	Taus  []float64
	Caps  []int
	Bits  []int
	// FlatUS[ci][ti] and LSHUS[bi][ti] are mean lookup microseconds.
	FlatUS [][]float64
	LSHUS  [][]float64
}

// zeroDB is a constant-time database stub used by the lookup-timing
// experiments. Cache timing depends only on which queries were inserted
// (the hit/miss sequence), never on the stored document values, so
// replacing the real index leaves the measured quantity untouched while
// removing minutes of irrelevant brute-force search.
type zeroDB struct {
	dim  int
	size int
	vec  vec.Vector
}

var (
	_ vectordb.DB           = (*zeroDB)(nil)
	_ vectordb.VectorSource = (*zeroDB)(nil)
)

func newZeroDB(dim, size int) *zeroDB {
	return &zeroDB{dim: dim, size: size, vec: make(vec.Vector, dim)}
}

func (z *zeroDB) Search(q vec.Vector, k int) ([]vec.Scored, error) {
	if k <= 0 {
		return nil, vectordb.ErrBadK
	}
	if len(q) != z.dim {
		return nil, vec.ErrDimensionMismatch
	}
	if k > z.size {
		k = z.size
	}
	out := make([]vec.Scored, k)
	for i := range out {
		out[i] = vec.Scored{ID: i}
	}
	return out, nil
}

func (z *zeroDB) Dim() int { return z.dim }
func (z *zeroDB) Len() int { return z.size }
func (z *zeroDB) Vector(id int) (vec.Vector, error) {
	if id < 0 || id >= z.size {
		return nil, fmt.Errorf("zerodb: id %d out of range", id)
	}
	return z.vec, nil
}

// Fig11LookupParams runs both grids. Cells run sequentially: wall-clock
// microbenchmarks must not share the CPU.
func (s *Suite) Fig11LookupParams() (*Fig11Result, error) {
	full, _, _, err := s.MedRAG()
	if err != nil {
		return nil, err
	}
	db := newZeroDB(s.cfg.Dim, full.Corpus.Len())

	taus := []float64{2.5, 5, 7.5, 10}
	caps := s.fig11Caps()
	lshBits := []int{4, 6, 8, 10}
	res := &Fig11Result{
		Seeds:  s.cfg.Seeds,
		Taus:   taus,
		Caps:   caps,
		Bits:   lshBits,
		FlatUS: newGrid(len(caps), len(taus)),
		LSHUS:  newGrid(len(lshBits), len(taus)),
	}

	measure := func(spec CacheSpec) (float64, error) {
		var mean stats.Welford
		for _, seed := range s.seeds() {
			w, err := s.zipfWorkload(seed)
			if err != nil {
				return 0, err
			}
			cache, err := s.newCache(spec, seed)
			if err != nil {
				return 0, err
			}
			run, err := s.run(runSpec{
				bench:      full,
				db:         db,
				w:          w,
				cache:      cache,
				k:          full.DefaultK,
				rerank:     s.cfg.ZipfRerank,
				source:     db,
				answerSeed: seed,
			})
			if err != nil {
				return 0, fmt.Errorf("experiments: fig11 cell %+v: %w", spec, err)
			}
			mean.Add(float64(run.MeanCacheLookup()) / float64(time.Microsecond))
		}
		return mean.Mean(), nil
	}

	for ci, c := range caps {
		for ti, tau := range taus {
			us, err := measure(CacheSpec{
				Kind:      "flat",
				Capacity:  c,
				Tolerance: float32(tau),
				Policy:    core.LRU,
			})
			if err != nil {
				return nil, err
			}
			res.FlatUS[ci][ti] = us
		}
	}
	for bi, bitsN := range lshBits {
		for ti, tau := range taus {
			us, err := measure(CacheSpec{
				Kind:           "lsh",
				Bits:           bitsN,
				BucketCapacity: core.DefaultBucketCapacity,
				Tolerance:      float32(tau),
				Policy:         core.LRU,
			})
			if err != nil {
				return nil, err
			}
			res.LSHUS[bi][ti] = us
		}
	}
	return res, nil
}

// fig11Caps scales the paper's capacity column {20,50,100,200} down when
// the configured workload has too few unique questions to saturate it.
func (s *Suite) fig11Caps() []int {
	caps := []int{20, 50, 100, 200}
	if s.cfg.MedRAGQuestions < 200 {
		caps = []int{5, 10, 20, s.cfg.MedRAGQuestions / 2}
	}
	return caps
}

// Render prints the two grids.
func (r *Fig11Result) Render() string {
	tauCols := make([]string, len(r.Taus))
	for i, tau := range r.Taus {
		tauCols[i] = trimFloat(tau)
	}
	capRows := make([]string, len(r.Caps))
	for i, c := range r.Caps {
		capRows[i] = strconv.Itoa(c)
	}
	bitRows := make([]string, len(r.Bits))
	for i, b := range r.Bits {
		bitRows[i] = strconv.Itoa(b)
	}
	flat := report.NewHeatmap("Figure 11a: FLAT+LRU cache lookup [µs]", "c", "tau", capRows, tauCols)
	lsh := report.NewHeatmap("Figure 11b: LSH+LRU cache lookup [µs]", "L", "tau", bitRows, tauCols)
	for ci := range r.Caps {
		for ti := range r.Taus {
			flat.SetFloat(ci, ti, r.FlatUS[ci][ti], 2)
		}
	}
	for bi := range r.Bits {
		for ti := range r.Taus {
			lsh.SetFloat(bi, ti, r.LSHUS[bi][ti], 2)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11, MedRAG-Zipf cache lookup times, %d seed(s)\n\n", r.Seeds)
	b.WriteString(flat.String())
	b.WriteByte('\n')
	b.WriteString(lsh.String())
	return b.String()
}
