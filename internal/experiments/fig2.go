package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"proximity/internal/report"
	"proximity/internal/zipf"
)

// Fig2Result reproduces Fig. 2: the exact-match rank-frequency curve of
// the (synthetic) TripClick log with its fitted Zipf exponent. The paper
// measures s ≈ 0.627 with the empirical curve hugging the fitted line.
type Fig2Result struct {
	// TotalInteractions and UniqueQueries describe the analyzed log.
	TotalInteractions int
	UniqueQueries     int
	// ConfiguredExponent is the skew the generator targeted.
	ConfiguredExponent float64
	// Fit is the exponent recovered by log-log least squares.
	Fit zipf.FitResult
	// RankFreq samples the curve at log-spaced ranks (rank, frequency).
	RankFreq [][2]int
}

// Fig2QuerySkew analyzes the synthetic TripClick log.
func (s *Suite) Fig2QuerySkew() (*Fig2Result, error) {
	log, _, err := s.TripClick()
	if err != nil {
		return nil, err
	}
	freqs := log.Frequencies()
	fit, err := zipf.Fit(freqs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 fit: %w", err)
	}
	res := &Fig2Result{
		TotalInteractions:  len(log.Stream),
		UniqueQueries:      len(log.Bench.Questions),
		ConfiguredExponent: 0.627,
		Fit:                fit,
	}
	for rank := 1; rank <= len(freqs); rank *= 2 {
		res.RankFreq = append(res.RankFreq, [2]int{rank, freqs[rank-1]})
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: query frequency distribution (exact match)\n")
	fmt.Fprintf(&b, "log: %d interactions over %d unique queries\n",
		r.TotalInteractions, r.UniqueQueries)
	fmt.Fprintf(&b, "fitted Zipf exponent s = %.3f (configured %.3f), R² = %.3f\n\n",
		r.Fit.Exponent, r.ConfiguredExponent, r.Fit.R2)
	tbl := report.NewTable("rank-frequency (log-spaced ranks)", "rank", "frequency")
	for _, rf := range r.RankFreq {
		tbl.AddRow(strconv.Itoa(rf[0]), strconv.Itoa(rf[1]))
	}
	b.WriteString(tbl.String())
	return b.String()
}
