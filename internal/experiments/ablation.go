package experiments

import (
	"fmt"
	"strings"

	"proximity/internal/core"
	"proximity/internal/metrics"
	"proximity/internal/report"
	"proximity/internal/vectordb"
)

// AblationResult compares the design choices DESIGN.md §5 calls out, all
// on the MedRAG-Zipf workload:
//
//   - single-probe vs multi-probe LSH lookups (the §3.2 extension:
//     probing Hamming-adjacent buckets recovers rephrasings that fell on
//     the far side of a hyperplane);
//   - global tolerance vs the per-line dynamic tolerance of Frieder et
//     al. (§3.3.3);
//   - re-ranking factor ρ=1 vs ρ=4 (§3.3.4: over-fetching protects
//     k-recall on approximate hits).
type AblationResult struct {
	Seeds int
	Rows  []AblationRow
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Name    string
	HitRate float64
	Recall  float64
	Acc     float64
}

// ExtensionsAblation runs the comparison matrix.
func (s *Suite) ExtensionsAblation() (*AblationResult, error) {
	full, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}
	source, ok := db.(vectordb.VectorSource)
	if !ok {
		return nil, fmt.Errorf("experiments: ablation database does not expose vectors")
	}

	// τ=5 sits in the variant-matching regime: strict enough that
	// bucket boundaries and re-ranking actually matter.
	const tau = 5

	type config struct {
		name    string
		probes  int
		dynamic float64
		rerank  int
	}
	configs := []config{
		{name: "lsh ρ=4 single-probe", probes: 1, rerank: s.cfg.ZipfRerank},
		{name: "lsh ρ=4 multi-probe", probes: 9, rerank: s.cfg.ZipfRerank},
		{name: "lsh ρ=1 single-probe", probes: 1, rerank: 1},
		// κ = 1.2: the paper notes (§3.3.3) that Frieder-style dynamic
		// tolerances "still required some arbitrary hand-tuning" — κ
		// is exactly that knob.
		{name: "lsh ρ=4 dynamic-τ", probes: 1, dynamic: 1.2, rerank: s.cfg.ZipfRerank},
	}

	res := &AblationResult{Seeds: s.cfg.Seeds, Rows: make([]AblationRow, len(configs))}
	err = s.parallelFor(len(configs), func(i int) error {
		cfg := configs[i]
		var agg metrics.Aggregate
		for _, seed := range s.seeds() {
			w, err := s.zipfWorkload(seed)
			if err != nil {
				return err
			}
			cache, err := core.NewLSH(s.cfg.Dim, core.LSHOptions{
				Bits:           8,
				BucketCapacity: core.DefaultBucketCapacity,
				Tolerance:      tau,
				Policy:         core.LRU,
				Seed:           seed,
				Probes:         cfg.probes,
			})
			if err != nil {
				return err
			}
			run, err := s.run(runSpec{
				bench:            full,
				db:               db,
				w:                w,
				cache:            cache,
				k:                full.DefaultK,
				rerank:           cfg.rerank,
				source:           source,
				answerSeed:       seed,
				measureRecall:    true,
				answer:           true,
				dynamicTolerance: cfg.dynamic,
			})
			if err != nil {
				return fmt.Errorf("experiments: ablation %s: %w", cfg.name, err)
			}
			agg.Add(run)
		}
		res.Rows[i] = AblationRow{
			Name:    cfg.name,
			HitRate: agg.HitRate(),
			Recall:  agg.Recall(),
			Acc:     agg.Accuracy(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the comparison.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension ablations, MedRAG-Zipf, LSH L=8 b=20 LRU τ=5, %d seed(s)\n\n", r.Seeds)
	tbl := report.NewTable("", "config", "hit rate [%]", "recall [%]", "accuracy [%]")
	for _, row := range r.Rows {
		tbl.AddRow(row.Name, report.Percent(row.HitRate), report.Percent(row.Recall), report.Percent(row.Acc))
	}
	b.WriteString(tbl.String())
	return b.String()
}
