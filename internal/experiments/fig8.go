package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"proximity/internal/core"
	"proximity/internal/metrics"
	"proximity/internal/report"
	"proximity/internal/vectordb"
)

// Fig8Result reproduces Fig. 8: hit rate and test accuracy of
// Proximity-LSH as a function of the per-bucket capacity b, with L=8,
// τ=7.5, LRU on MedRAG-Zipf. The paper finds the hit rate climbing
// steeply to b=20 and plateauing after, with flat accuracy — the basis
// for fixing b=20.
type Fig8Result struct {
	Seeds    int
	Bits     int
	Buckets  []int
	HitRate  []float64
	Accuracy []float64
}

// Fig8BucketSize runs the sweep.
func (s *Suite) Fig8BucketSize() (*Fig8Result, error) {
	full, _, db, err := s.MedRAG()
	if err != nil {
		return nil, err
	}
	source, ok := db.(vectordb.VectorSource)
	if !ok {
		return nil, fmt.Errorf("experiments: fig8 database does not expose vectors for re-ranking")
	}
	buckets := []int{5, 10, 15, 20, 25, 30}
	res := &Fig8Result{
		Seeds:    s.cfg.Seeds,
		Bits:     s.cfg.Fig8Bits,
		Buckets:  buckets,
		HitRate:  make([]float64, len(buckets)),
		Accuracy: make([]float64, len(buckets)),
	}
	err = s.parallelFor(len(buckets), func(i int) error {
		var agg metrics.Aggregate
		for _, seed := range s.seeds() {
			w, err := s.zipfWorkload(seed)
			if err != nil {
				return err
			}
			cache, err := s.newCache(CacheSpec{
				Kind:           "lsh",
				Tolerance:      7.5,
				Policy:         core.LRU,
				Bits:           s.cfg.Fig8Bits,
				BucketCapacity: buckets[i],
			}, seed)
			if err != nil {
				return err
			}
			run, err := s.run(runSpec{
				bench:      full,
				db:         db,
				latency:    vectordb.PubMedFlatLatency(seed),
				w:          w,
				cache:      cache,
				k:          full.DefaultK,
				rerank:     s.cfg.ZipfRerank,
				source:     source,
				answerSeed: seed,
				answer:     true,
			})
			if err != nil {
				return fmt.Errorf("experiments: fig8 b=%d: %w", buckets[i], err)
			}
			agg.Add(run)
		}
		res.HitRate[i] = agg.HitRate()
		res.Accuracy[i] = agg.Accuracy()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the sweep as a table.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Proximity-LSH per-bucket capacity sweep (L=%d, τ=7.5, LRU, %d seed(s))\n\n", r.Bits, r.Seeds)
	tbl := report.NewTable("", "b", "hit rate [%]", "accuracy [%]")
	for i, bk := range r.Buckets {
		tbl.AddRow(strconv.Itoa(bk), report.Percent(r.HitRate[i]), report.Percent(r.Accuracy[i]))
	}
	b.WriteString(tbl.String())
	return b.String()
}
