package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// TelemetryOverheadOptions configures the observability cost probe.
type TelemetryOverheadOptions struct {
	// Iters is the number of cached-hit retrievals per timed round
	// (0 = 50000).
	Iters int
	// Rounds is how many interleaved rounds each configuration gets; the
	// minimum round wins, discarding scheduler and GC noise (0 = 9; the
	// per-retrieval delta under test is tens of nanoseconds, so fewer
	// rounds leave noise comparable to the signal).
	Rounds int
}

// TelemetryOverheadResult is the cached-hit-path cost of the telemetry
// layer, measured three ways over an identical warm cache:
//
//   - Baseline: retriever built with no telemetry hub at all.
//   - Disabled: hub wired, trace sampling off — the production default
//     this PR promises costs ≲1%: per retrieval the path pays a context
//     lookup, nil-trace span no-ops, and one histogram observation.
//   - Sampled: hub wired, every request traced (1-in-1 sampling), the
//     worst case — pooled trace checkout, live spans, ring insertion.
type TelemetryOverheadResult struct {
	Iters  int `json:"iters"`
	Rounds int `json:"rounds"`

	BaselineNsOp float64 `json:"baseline_ns_op"`
	DisabledNsOp float64 `json:"disabled_ns_op"`
	SampledNsOp  float64 `json:"sampled_ns_op"`

	// DisabledOverheadPct is the headline acceptance number: the
	// disabled-telemetry hit path relative to baseline, in percent. The
	// delta under test is tens of nanoseconds on a multi-microsecond
	// operation, smaller than slow drift between rounds, so it is
	// estimated as the median of per-round paired deltas — each round
	// times all three configurations back-to-back, so whatever the
	// machine was doing that round cancels out of the pair — rather
	// than from the cross-round minima above, which can come from
	// different rounds and inherit their drift.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	SampledOverheadPct  float64 `json:"sampled_overhead_pct"`
}

// TelemetryOverhead measures the telemetry layer's cost on the cached-hit
// path — the hot path the approximate cache exists to make fast, and so
// the one an observability layer must not tax.
func TelemetryOverhead(opts TelemetryOverheadOptions) (*TelemetryOverheadResult, error) {
	iters := opts.Iters
	if iters <= 0 {
		iters = 50000
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 9
	}

	const (
		dim      = 64
		corpusN  = 512
		capacity = 128
	)
	rng := vec.NewRand(42)
	corpus := make([]vec.Vector, corpusN)
	for i := range corpus {
		corpus[i] = vec.RandomGaussian(rng, dim)
	}
	db, err := vectordb.NewFlatFromVectors(corpus, vec.L2Distance)
	if err != nil {
		return nil, err
	}
	query := vec.RandomGaussian(rng, dim)

	// Each configuration gets its own cache filled to capacity — the
	// steady production state — so the timed hit pays a full-cache
	// tolerance scan, not the unrealistically cheap lookup of a
	// near-empty cache that would inflate the relative overhead of the
	// fixed per-retrieval instrumentation cost.
	fillers := make([]vec.Vector, capacity-1)
	for i := range fillers {
		fillers[i] = vec.RandomGaussian(rng, dim)
	}
	newRetriever := func(tel *telemetry.Telemetry) (*core.CachedRetriever, error) {
		cache, err := core.NewFlat(dim, core.Options{
			Capacity: capacity, Tolerance: 5, Policy: core.LRU,
		})
		if err != nil {
			return nil, err
		}
		for _, f := range fillers {
			cache.Put(f, []int{0})
		}
		r, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 4, Telemetry: tel})
		if err != nil {
			return nil, err
		}
		res, err := r.Retrieve(query)
		if err != nil {
			return nil, err
		}
		if res.Hit {
			return nil, fmt.Errorf("experiments: warmup retrieval hit before the probe entry was cached")
		}
		return r, nil
	}

	baseline, err := newRetriever(nil)
	if err != nil {
		return nil, err
	}
	disabled, err := newRetriever(telemetry.New(telemetry.Options{SampleEvery: 0}))
	if err != nil {
		return nil, err
	}
	sampledTel := telemetry.New(telemetry.Options{SampleEvery: 1, RingSize: 64})
	sampled, err := newRetriever(sampledTel)
	if err != nil {
		return nil, err
	}

	plain := func(r *core.CachedRetriever) func() error {
		return func() error {
			res, err := r.Retrieve(query)
			if err == nil && !res.Hit {
				err = fmt.Errorf("experiments: warm retrieval missed")
			}
			return err
		}
	}
	traced := func() error {
		ctx, trace := sampledTel.StartTrace(context.Background())
		res, err := sampled.RetrieveContext(ctx, query)
		trace.Finish()
		if err == nil && !res.Hit {
			err = fmt.Errorf("experiments: warm retrieval missed")
		}
		return err
	}

	// The delta under test is tens of nanoseconds on a multi-microsecond
	// operation — far below the sub-second load drift of a shared host —
	// so the three configurations are interleaved in sub-millisecond
	// chunks, cycling with a rotating phase: any drift slower than a
	// chunk lands on all three nearly equally and cancels out of the
	// paired per-round deltas. Each round starts from a collected heap
	// so the traced configuration's allocations cannot hand one round's
	// GC debt to the next (acute on one CPU, where the background
	// worker steals from the timed loop).
	const chunk = 200
	mins := [3]float64{}
	samples := make([][3]float64, rounds)
	ops := []func() error{plain(baseline), plain(disabled), traced}
	for round := 0; round < rounds; round++ {
		runtime.GC()
		var totals [3]time.Duration
		var done [3]int
		for turn := 0; done[0] < iters || done[1] < iters || done[2] < iters; turn++ {
			c := (round + turn) % len(ops)
			n := iters - done[c]
			if n <= 0 {
				continue
			}
			if n > chunk {
				n = chunk
			}
			op := ops[c]
			start := time.Now()
			for i := 0; i < n; i++ {
				if err := op(); err != nil {
					return nil, err
				}
			}
			totals[c] += time.Since(start)
			done[c] += n
		}
		for c := range ops {
			nsOp := float64(totals[c].Nanoseconds()) / float64(iters)
			samples[round][c] = nsOp
			if mins[c] == 0 || nsOp < mins[c] {
				mins[c] = nsOp
			}
		}
	}

	res := &TelemetryOverheadResult{
		Iters:        iters,
		Rounds:       rounds,
		BaselineNsOp: mins[0],
		DisabledNsOp: mins[1],
		SampledNsOp:  mins[2],
	}
	res.DisabledOverheadPct = medianPairedDeltaPct(samples, 1)
	res.SampledOverheadPct = medianPairedDeltaPct(samples, 2)
	return res, nil
}

// medianPairedDeltaPct is the median over rounds of the within-round
// relative delta between configuration c and the baseline, in percent.
func medianPairedDeltaPct(samples [][3]float64, c int) float64 {
	deltas := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s[0] > 0 {
			deltas = append(deltas, 100*(s[c]-s[0])/s[0])
		}
	}
	if len(deltas) == 0 {
		return 0
	}
	sort.Float64s(deltas)
	if n := len(deltas); n%2 == 1 {
		return deltas[n/2]
	} else {
		return (deltas[n/2-1] + deltas[n/2]) / 2
	}
}

// Render formats the comparison with the headline disabled-path delta.
func (r *TelemetryOverheadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry overhead, cached-hit path (%d iters x %d rounds, min of rounds; %% = median paired delta)\n",
		r.Iters, r.Rounds)
	fmt.Fprintf(&b, "baseline (no hub)        %8.1f ns/op\n", r.BaselineNsOp)
	fmt.Fprintf(&b, "hub, sampling off        %8.1f ns/op  (%+.2f%%)\n",
		r.DisabledNsOp, r.DisabledOverheadPct)
	fmt.Fprintf(&b, "hub, every request traced%8.1f ns/op  (%+.2f%%)\n",
		r.SampledNsOp, r.SampledOverheadPct)
	return b.String()
}

// WriteJSON emits the machine-readable result.
func (r *TelemetryOverheadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
