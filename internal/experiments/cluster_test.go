package experiments

import (
	"strings"
	"testing"
)

// TestClusterCompareQuick runs the distribution A/B on the Quick
// configuration with two loopback nodes and asserts its qualitative
// shape: both capacity probes complete, every query is served (zero
// router failures), traffic reaches both nodes, and the render carries
// the per-node hit/miss table.
func TestClusterCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness skipped in -short mode")
	}
	s, err := NewSuite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.LoadTest(LoadTestOptions{Cluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	ab := res.ClusterAB
	if ab == nil {
		t.Fatal("Cluster option should populate the A/B")
	}
	if ab.LocalCap <= 0 || ab.ClusterCap <= 0 {
		t.Fatalf("capacity probes incomplete: local %.0f, cluster %.0f", ab.LocalCap, ab.ClusterCap)
	}
	if ab.QPS <= 0 {
		t.Errorf("self-calibrated QPS = %v, want positive", ab.QPS)
	}
	if ab.Router.Failed != 0 {
		t.Errorf("router failed %d queries on a healthy loopback cluster", ab.Router.Failed)
	}
	if ab.Router.Served == 0 || ab.Router.RemoteHits == 0 {
		t.Errorf("router counters show no served traffic: %+v", ab.Router)
	}
	if len(ab.Status) != 2 {
		t.Fatalf("status covers %d nodes, want 2", len(ab.Status))
	}
	for _, ns := range ab.Status {
		if !ns.Reachable || !ns.Healthy {
			t.Errorf("node %s should be healthy and reachable", ns.Node)
		}
		if ns.Remote.Hits+ns.Remote.Misses == 0 {
			t.Errorf("node %s saw no lookups; routing should spread the workload", ns.Node)
		}
	}
	out := ab.Render()
	for _, want := range []string{"distributed shard routing", "closed-loop capacity", "router (open-loop pass):", "node 0", "node 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
