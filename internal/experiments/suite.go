package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/hnsw"
	"proximity/internal/llm"
	"proximity/internal/metrics"
	"proximity/internal/rag"
	"proximity/internal/vamana"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

// Suite owns the benchmarks, indexes, and workloads shared across
// experiments, building each lazily exactly once. A Suite is safe for
// concurrent use by the grid runner.
type Suite struct {
	cfg Config

	mu         sync.Mutex
	mmlu       *dataset.Benchmark
	mmluDB     vectordb.DB
	medrag     *dataset.Benchmark // full question set
	medragSub  *dataset.Benchmark // uniform-workload subset
	medragDB   vectordb.DB
	trip       *dataset.TripClickLog
	tripDB     *vamana.Index
	uniformWls map[string]workload.Workload // key: bench+seed
	zipfWls    map[uint64]workload.Workload
}

// NewSuite validates the config and returns an empty suite.
func NewSuite(cfg Config) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Suite{
		cfg:        cfg,
		uniformWls: make(map[string]workload.Workload),
		zipfWls:    make(map[uint64]workload.Workload),
	}, nil
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// MMLU returns the MMLU benchmark and its HNSW index (the paper serves
// wiki_dpr with FAISS-HNSW, §4.2.1).
func (s *Suite) MMLU() (*dataset.Benchmark, vectordb.DB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mmlu != nil {
		return s.mmlu, s.mmluDB, nil
	}
	bench, err := dataset.NewMMLU(dataset.MMLUConfig{
		Questions:    s.cfg.MMLUQuestions,
		Topics:       s.cfg.MMLUTopics,
		DocsPerTopic: s.cfg.MMLUDocsPerTopic,
		Dim:          s.cfg.Dim,
		Seed:         s.cfg.BaseSeed + 1,
	})
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, fmt.Errorf("experiments: mmlu benchmark: %w", err)
	}
	ix, err := hnsw.New(s.cfg.Dim, vec.L2Distance, hnsw.Config{Seed: s.cfg.BaseSeed + 2})
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, fmt.Errorf("experiments: mmlu index: %w", err)
	}
	if err := ix.Add(bench.Corpus.Embeddings...); err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, fmt.Errorf("experiments: mmlu index build: %w", err)
	}
	s.mmlu, s.mmluDB = bench, ix
	return bench, ix, nil
}

// MedRAG returns the MedRAG benchmark (full and uniform-subset views) and
// its exact flat index (the paper serves PubMed with FAISS-Flat, §4.2.1).
func (s *Suite) MedRAG() (full, subset *dataset.Benchmark, db vectordb.DB, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.medrag != nil {
		return s.medrag, s.medragSub, s.medragDB, nil
	}
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions:    s.cfg.MedRAGQuestions,
		Topics:       s.cfg.MedRAGTopics,
		DocsPerTopic: s.cfg.MedRAGDocsPerTopic,
		Dim:          s.cfg.Dim,
		Seed:         s.cfg.BaseSeed + 3,
	})
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, nil, fmt.Errorf("experiments: medrag benchmark: %w", err)
	}
	flat, err := vectordb.NewFlatFromVectors(bench.Corpus.Embeddings, vec.L2Distance)
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, nil, fmt.Errorf("experiments: medrag index: %w", err)
	}
	s.medrag = bench
	s.medragSub = bench.Subset(s.cfg.MedRAGSubset, s.cfg.BaseSeed+4)
	s.medragDB = flat
	return s.medrag, s.medragSub, s.medragDB, nil
}

// TripClick returns the synthetic log and its Vamana (DiskANN-sim) index.
func (s *Suite) TripClick() (*dataset.TripClickLog, *vamana.Index, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trip != nil {
		return s.trip, s.tripDB, nil
	}
	log, err := dataset.NewTripClick(dataset.TripClickConfig{
		UniqueQueries: s.cfg.TripClickUnique,
		TotalQueries:  s.cfg.TripClickTotal,
		Topics:        s.cfg.TripClickTopics,
		DocsPerTopic:  s.cfg.TripClickDocsPerTopic,
		Dim:           s.cfg.Dim,
		Seed:          s.cfg.BaseSeed + 5,
	})
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, fmt.Errorf("experiments: tripclick log: %w", err)
	}
	ix, err := vamana.Build(log.Bench.Corpus.Embeddings, vec.L2Distance, vamana.Config{
		Seed: s.cfg.BaseSeed + 6,
	})
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the lazy-init builder holds the lock for the whole build by design
		return nil, nil, fmt.Errorf("experiments: tripclick index: %w", err)
	}
	s.trip, s.tripDB = log, ix
	return log, ix, nil
}

// uniformWorkload returns (building once) the shuffled uniform-variant
// workload for a benchmark and seed.
func (s *Suite) uniformWorkload(bench *dataset.Benchmark, seed uint64) (workload.Workload, error) {
	key := fmt.Sprintf("%s-%d", bench.Name, seed)
	s.mu.Lock()
	w, ok := s.uniformWls[key]
	s.mu.Unlock()
	if ok {
		return w, nil
	}
	w, err := workload.UniformVariants(bench, s.cfg.Variants, seed)
	if err != nil {
		return workload.Workload{}, err
	}
	s.mu.Lock()
	s.uniformWls[key] = w
	s.mu.Unlock()
	return w, nil
}

// zipfWorkload returns (building once) the MedRAG-Zipf workload for a
// seed, drawn over the full 500-question set as in the paper.
func (s *Suite) zipfWorkload(seed uint64) (workload.Workload, error) {
	s.mu.Lock()
	w, ok := s.zipfWls[seed]
	s.mu.Unlock()
	if ok {
		return w, nil
	}
	full, _, _, err := s.MedRAG()
	if err != nil {
		return workload.Workload{}, err
	}
	w, err = workload.ZipfVariants(full, s.cfg.ZipfTotal, s.cfg.ZipfExponent, seed)
	if err != nil {
		return workload.Workload{}, err
	}
	s.mu.Lock()
	s.zipfWls[seed] = w
	s.mu.Unlock()
	return w, nil
}

// CacheSpec selects a cache variant for one experiment cell.
type CacheSpec struct {
	// Kind is "none", "flat", or "lsh".
	Kind string
	// Capacity is the FLAT capacity c.
	Capacity int
	// Tolerance is τ.
	Tolerance float32
	// Policy is the eviction policy (default FIFO).
	Policy core.Policy
	// Bits is the LSH signature width L.
	Bits int
	// BucketCapacity is the LSH per-bucket size b (default 20).
	BucketCapacity int
}

// newCache materializes the spec; Kind "none" yields nil (the no-cache
// baseline).
func (s *Suite) newCache(spec CacheSpec, seed uint64) (core.Cache, error) {
	switch spec.Kind {
	case "none", "":
		return nil, nil
	case "flat":
		return core.NewFlat(s.cfg.Dim, core.Options{
			Capacity:  spec.Capacity,
			Tolerance: spec.Tolerance,
			Policy:    spec.Policy,
		})
	case "lsh":
		return core.NewLSH(s.cfg.Dim, core.LSHOptions{
			Bits:           spec.Bits,
			BucketCapacity: spec.BucketCapacity,
			Tolerance:      spec.Tolerance,
			Policy:         spec.Policy,
			Seed:           seed,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown cache kind %q", spec.Kind)
	}
}

// runSpec describes one pipeline execution.
type runSpec struct {
	bench            *dataset.Benchmark
	db               vectordb.DB
	latency          vectordb.LatencyModel
	w                workload.Workload
	cache            core.Cache
	k                int
	rerank           int
	source           vectordb.VectorSource
	answerSeed       uint64
	measureRecall    bool
	answer           bool
	dynamicTolerance float64
}

// run executes one pipeline configuration.
func (s *Suite) run(spec runSpec) (*metrics.Run, error) {
	retr, err := core.NewCachedRetriever(spec.cache, spec.db, core.RetrieverOptions{
		K:                spec.k,
		Rerank:           spec.rerank,
		Source:           spec.source,
		Latency:          spec.latency,
		DynamicTolerance: spec.dynamicTolerance,
	})
	if err != nil {
		return nil, err
	}
	p := &rag.Pipeline{
		Bench:         spec.bench,
		Retriever:     retr,
		MeasureRecall: spec.measureRecall,
	}
	if spec.answer {
		ans, err := llm.NewAnswerer(spec.bench.Profile, spec.answerSeed)
		if err != nil {
			return nil, err
		}
		p.Answerer = ans
	}
	return p.Run(spec.w)
}

// parallelFor runs fn(0..n-1) on up to `workers` goroutines, returning
// the first error.
func (s *Suite) parallelFor(n int, fn func(i int) error) error {
	workers := s.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		fail error
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if fail != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return fail
}

// seeds returns the per-run seeds derived from the base seed.
func (s *Suite) seeds() []uint64 {
	out := make([]uint64, s.cfg.Seeds)
	for i := range out {
		out[i] = s.cfg.BaseSeed + 1000 + uint64(i)*7919
	}
	return out
}
