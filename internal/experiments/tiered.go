package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/stats"
	"proximity/internal/tier"
	"proximity/internal/vec"
)

// TieredOptions configures the tiered-cache A/B: a single-tier FLAT
// cache of the hot capacity against a tiered cache layering a warm tier
// of ratio× that capacity underneath, at each hot:warm ratio.
type TieredOptions struct {
	// Hot is the hot-tier (and single-tier baseline) capacity
	// (default 1000).
	Hot int
	// Ratios lists the warm:hot capacity ratios to measure (default 4,
	// 16 — the 1:4 and 1:16 hierarchies).
	Ratios []int
	// Dim is the embedding dimensionality (default 768, the deployment
	// shape).
	Dim int
	// Queries is the lookup count per path (hot-resident and
	// warm-resident) per variant (default 1000).
	Queries int
	// Tolerance is the cache-wide τ (default 4; keys are scaled
	// Gaussians of norm ≈ 2√dim, so random pairs sit far outside it).
	Tolerance float32
	// Seed drives every random draw.
	Seed uint64
}

func (o *TieredOptions) fillDefaults() {
	if o.Hot == 0 {
		o.Hot = 1000
	}
	if len(o.Ratios) == 0 {
		o.Ratios = []int{4, 16}
	}
	if o.Dim == 0 {
		o.Dim = 768
	}
	if o.Queries == 0 {
		o.Queries = 1000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TieredVariant is one cache configuration's measurement at one ratio.
type TieredVariant struct {
	Name string `json:"name"`
	// HitRate is the within-τ hit fraction over both query paths.
	HitRate float64 `json:"hitRate"`
	// HotMeanMicros / HotP99Micros is the Get latency on queries whose
	// target resides in the hot tier (the path the tiered design must
	// not slow down).
	HotMeanMicros float64 `json:"hotMeanUs"`
	HotP99Micros  float64 `json:"hotP99Us"`
	// DeepMeanMicros / DeepP99Micros is the Get latency on queries whose
	// target has aged past the hot capacity — a warm-tier hit for the
	// tiered cache, a scan-and-miss for the single-tier baseline.
	DeepMeanMicros float64 `json:"deepMeanUs"`
	DeepP99Micros  float64 `json:"deepP99Us"`
}

// TieredPoint is the single-vs-tiered comparison at one hot:warm ratio.
type TieredPoint struct {
	Ratio int `json:"ratio"`
	Hot   int `json:"hot"`
	Warm  int `json:"warm"`
	// Single is the FLAT baseline at the hot capacity — identical
	// heap-resident footprint to the tiered variant's hot tier.
	Single TieredVariant `json:"single"`
	// Tiered layers the warm tier underneath the same hot cache.
	Tiered TieredVariant `json:"tiered"`
	// HotLatencyRatio is tiered over single mean hot-path Get latency —
	// the tax the warm tier's existence puts on hot hits (≤ 1.10
	// acceptance).
	HotLatencyRatio float64 `json:"hotLatencyRatio"`
	// HitRateUplift is the tiered hit rate minus the single-tier hit
	// rate — the recall the retained history buys.
	HitRateUplift float64 `json:"hitRateUplift"`
	// WarmScanFrac is the fraction of warm-resident vectors the pivot
	// pruning actually read per warm lookup.
	WarmScanFrac float64 `json:"warmScanFrac"`
	// HitRateBefore / HitRateAfter bracket a snapshot-restore restart of
	// the tiered cache under an LRU mixed workload; RestartRecovery is
	// their ratio (≥ 0.90 acceptance).
	HitRateBefore   float64 `json:"hitRateBefore"`
	HitRateAfter    float64 `json:"hitRateAfter"`
	RestartRecovery float64 `json:"restartRecovery"`
}

// TieredResult is the full sweep, JSON-serializable as BENCH_tiered.json.
type TieredResult struct {
	Hot       int           `json:"hot"`
	Dim       int           `json:"dim"`
	Queries   int           `json:"queries"`
	Tolerance float32       `json:"tolerance"`
	Points    []TieredPoint `json:"points"`
}

// Tiered measures what the warm tier buys and costs: hit-rate uplift on
// queries that aged past the hot capacity, hot-path latency tax, warm
// pruning effectiveness, and hit-rate recovery across a snapshot-restore
// restart. The latency A/B runs under FIFO so tier residency is static
// during measurement (no promotions reshuffling the layers mid-timing);
// the restart bracket runs under LRU, the policy warm restarts deploy
// with. Standalone (no Suite): the A/B needs no corpus, just geometry.
func Tiered(opts TieredOptions) (*TieredResult, error) {
	opts.fillDefaults()
	if opts.Hot < 1 {
		return nil, fmt.Errorf("experiments: hot capacity must be positive, got %d", opts.Hot)
	}
	res := &TieredResult{
		Hot:       opts.Hot,
		Dim:       opts.Dim,
		Queries:   opts.Queries,
		Tolerance: opts.Tolerance,
	}
	for _, ratio := range opts.Ratios {
		if ratio < 1 {
			return nil, fmt.Errorf("experiments: warm:hot ratio must be ≥ 1, got %d", ratio)
		}
		point, err := tieredPoint(ratio, opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

func tieredPoint(ratio int, opts TieredOptions) (*TieredPoint, error) {
	hot, warm := opts.Hot, opts.Hot*ratio
	total := hot + warm
	rng := vec.NewRand(opts.Seed)
	keys := make([]vec.Vector, total)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, opts.Dim), 2)
	}
	// Under FIFO fills with no lookups, the newest hot keys stay hot and
	// everything older layers into the warm tier; the single-tier
	// baseline retains only the newest hot keys.
	nearDup := func(base vec.Vector, radius float32) vec.Vector {
		dir := vec.RandomGaussian(rng, opts.Dim)
		dir = vec.Scale(dir, radius*float32(rng.Float64())/vec.Norm(dir))
		return vec.Add(base, dir)
	}
	// Hot-path queries are tight repeats (0.1τ): repeat traffic — the
	// reason the entry is hot — lands close to its key, and the tight
	// hot-hit distance is what lets the warm tier's pivot window collapse
	// to (near) nothing on the path that must stay fast. Deep queries get
	// the full approximate-hit radius (0.8τ): they bound the warm tier's
	// own lookup cost in its worst admissible case.
	hotQueries := make([]vec.Vector, opts.Queries)
	for i := range hotQueries {
		hotQueries[i] = nearDup(keys[total-hot+rng.IntN(hot)], opts.Tolerance*0.1)
	}
	deepQueries := make([]vec.Vector, opts.Queries)
	for i := range deepQueries {
		deepQueries[i] = nearDup(keys[rng.IntN(total-hot)], opts.Tolerance*0.8)
	}

	single, err := core.NewFlat(opts.Dim, core.Options{
		Capacity:  hot,
		Tolerance: opts.Tolerance,
		Policy:    core.FIFO,
	})
	if err != nil {
		return nil, err
	}
	tiered, err := tier.New(opts.Dim, tier.Options{
		HotCapacity:  hot,
		WarmCapacity: warm,
		Tolerance:    opts.Tolerance,
		Policy:       core.FIFO,
		Seed:         opts.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	defer tiered.Close()

	point := &TieredPoint{Ratio: ratio, Hot: hot, Warm: warm}
	for i, k := range keys {
		single.Put(k, []int{i})
		tiered.Put(k, []int{i})
	}
	// FIFO Gets leave tier residency untouched, so repeated rounds replay
	// identical work. Rounds alternate between the two variants and each
	// keeps its fastest, so machine-load drift lands on both sides of the
	// acceptance-gated hot-path ratio instead of skewing one.
	hotS, hotT := alternateGets(single, tiered, hotQueries, 5)
	deepS, deepT := alternateGets(single, tiered, deepQueries, 2)
	for _, v := range []struct {
		name      string
		hot, deep timedRound
		out       *TieredVariant
	}{
		{"single", hotS, deepS, &point.Single},
		{"tiered", hotT, deepT, &point.Tiered},
	} {
		*v.out = TieredVariant{
			Name:           v.name,
			HitRate:        float64(v.hot.hits+v.deep.hits) / float64(2*opts.Queries),
			HotMeanMicros:  float64(v.hot.rec.Mean()) / float64(time.Microsecond),
			HotP99Micros:   float64(v.hot.rec.Percentile(99)) / float64(time.Microsecond),
			DeepMeanMicros: float64(v.deep.rec.Mean()) / float64(time.Microsecond),
			DeepP99Micros:  float64(v.deep.rec.Percentile(99)) / float64(time.Microsecond),
		}
	}
	if point.Single.HotMeanMicros > 0 {
		point.HotLatencyRatio = point.Tiered.HotMeanMicros / point.Single.HotMeanMicros
	}
	point.HitRateUplift = point.Tiered.HitRate - point.Single.HitRate
	if ts := tiered.TierStats(); ts.WarmLookups > 0 {
		point.WarmScanFrac = float64(ts.WarmScanned) / float64(ts.WarmLookups) / float64(warm)
	}

	before, after, err := tieredRestart(keys, hot, warm, opts)
	if err != nil {
		return nil, err
	}
	point.HitRateBefore, point.HitRateAfter = before, after
	if before > 0 {
		point.RestartRecovery = after / before
	}
	return point, nil
}

// timedRound is one cache's fastest measured replay of a query set.
type timedRound struct {
	rec  *stats.LatencyRecorder
	hits int
}

// timeRound replays the query set once, timing each Get.
func timeRound(c core.Cache, queries []vec.Vector) timedRound {
	rec := &stats.LatencyRecorder{}
	hits := 0
	for _, q := range queries {
		start := time.Now()
		_, ok := c.Get(q)
		rec.Record(time.Since(start))
		if ok {
			hits++
		}
	}
	return timedRound{rec, hits}
}

// alternateGets times the same query set against both caches in
// alternating rounds — an untimed warmup each, then rounds timed passes —
// and returns each cache's fastest round by mean.
func alternateGets(a, b core.Cache, queries []vec.Vector, rounds int) (bestA, bestB timedRound) {
	for _, q := range queries {
		a.Get(q)
		b.Get(q)
	}
	for r := 0; r < rounds; r++ {
		if ra := timeRound(a, queries); bestA.rec == nil || ra.rec.Mean() < bestA.rec.Mean() {
			bestA = ra
		}
		if rb := timeRound(b, queries); bestB.rec == nil || rb.rec.Mean() < bestB.rec.Mean() {
			bestB = rb
		}
	}
	return bestA, bestB
}

// tieredRestart brackets a snapshot-restore restart: steady-state hit
// rate on an LRU tiered cache, then the same workload shape against a
// fresh cache refilled from the snapshot.
func tieredRestart(keys []vec.Vector, hot, warm int, opts TieredOptions) (before, after float64, err error) {
	build := func() (*tier.TieredCache, error) {
		return tier.New(opts.Dim, tier.Options{
			HotCapacity:  hot,
			WarmCapacity: warm,
			Tolerance:    opts.Tolerance,
			Policy:       core.LRU,
			Seed:         opts.Seed + 3,
		})
	}
	c, err := build()
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	for i, k := range keys {
		c.Put(k, []int{i})
	}
	// Mixed workload over the whole resident set: hot hits, warm hits,
	// and LRU promotions all participate in the steady state.
	rng := vec.NewRand(opts.Seed + 4)
	measure := func(cc *tier.TieredCache) float64 {
		hits := 0
		for i := 0; i < 2*opts.Queries; i++ {
			base := keys[rng.IntN(len(keys))]
			dir := vec.RandomGaussian(rng, opts.Dim)
			dir = vec.Scale(dir, opts.Tolerance*0.8*float32(rng.Float64())/vec.Norm(dir))
			if _, ok := cc.Get(vec.Add(base, dir)); ok {
				hits++
			}
		}
		return float64(hits) / float64(2*opts.Queries)
	}
	before = measure(c)

	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		return 0, 0, err
	}
	restored, err := build()
	if err != nil {
		return 0, 0, err
	}
	defer restored.Close()
	if err := restored.LoadSnapshot(&buf); err != nil {
		return 0, 0, err
	}
	after = measure(restored)
	return before, after, nil
}

// WriteJSON writes the result as indented JSON — the BENCH_*.json
// trajectory format CI smoke-checks for well-formedness.
func (r *TieredResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render formats the comparison, one block per hot:warm ratio.
func (r *TieredResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tiered cache A/B: FLAT(%d) vs %d hot + ratio× warm (dim=%d, τ=%v, %d queries per path)\n",
		r.Hot, r.Hot, r.Dim, r.Tolerance, r.Queries)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "--- 1:%d (hot %d, warm %d) ---\n", p.Ratio, p.Hot, p.Warm)
		fmt.Fprintf(&b, "%-8s %9s %12s %12s %13s %13s\n",
			"variant", "hit rate", "hot(µs)", "hotP99(µs)", "deep(µs)", "deepP99(µs)")
		for _, v := range []TieredVariant{p.Single, p.Tiered} {
			fmt.Fprintf(&b, "%-8s %9.3f %12.2f %12.2f %13.2f %13.2f\n",
				v.Name, v.HitRate, v.HotMeanMicros, v.HotP99Micros, v.DeepMeanMicros, v.DeepP99Micros)
		}
		fmt.Fprintf(&b, "hot-path latency ratio %.3f; hit-rate uplift %+.3f; warm scan fraction %.3f\n",
			p.HotLatencyRatio, p.HitRateUplift, p.WarmScanFrac)
		fmt.Fprintf(&b, "restart: hit rate %.3f -> %.3f (recovery %.3f)\n",
			p.HitRateBefore, p.HitRateAfter, p.RestartRecovery)
	}
	return b.String()
}
