package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// StageNames enforces one vocabulary for telemetry series names: every
// name passed to a telemetry.Registry registration method must be a
// named constant declared in internal/telemetry (the Metric* registry
// in names.go). A typo'd string literal doesn't fail — it silently
// forks a fresh Prometheus series next to the real one, and every
// dashboard and alert keyed on the canonical name goes dark for the
// code path that misspelled it. Stage labels are already immune (the
// telemetry.Stage enum); this closes the same hole for series names.
//
// Non-constant expressions (a name threaded through a variable or
// helper parameter) are accepted: the registry constant was resolved
// upstream. Only in-place string literals and constants minted outside
// the telemetry package are flagged.
var StageNames = &Analyzer{
	Name: "stagenames",
	Doc:  "telemetry series names must come from the internal/telemetry registry",
	Run:  runStageNames,
}

// registrationMethods take a series name as their first argument.
var registrationMethods = map[string]bool{
	"Counter": true, "CounterFunc": true, "CounterLabeled": true,
	"Gauge": true, "GaugeFunc": true, "GaugeLabeled": true,
	"Histogram": true, "HistogramLabeled": true,
}

func runStageNames(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || !registrationMethods[fn.Name()] {
				return true
			}
			named := p.recvNamed(call)
			if named == nil {
				return true
			}
			obj := named.Obj()
			if obj.Name() != "Registry" || obj.Pkg() == nil ||
				!strings.HasSuffix(obj.Pkg().Path(), "internal/telemetry") {
				return true
			}
			p.checkSeriesName(call.Args[0], fn.Name())
			return true
		})
	}
}

func (p *Pass) checkSeriesName(arg ast.Expr, method string) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil {
		return // not a compile-time constant: resolved upstream
	}
	obj := p.constObject(arg)
	if obj == nil {
		p.Reportf(arg.Pos(), "series name literal passed to Registry.%s: use a telemetry.Metric* constant so a typo cannot fork the series", method)
		return
	}
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/telemetry") {
		p.Reportf(arg.Pos(), "series name constant %s declared outside internal/telemetry: move it into the telemetry name registry", obj.Name())
	}
}

// constObject resolves arg to the named constant it references, or nil
// when arg is a literal or composite constant expression.
func (p *Pass) constObject(arg ast.Expr) *types.Const {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		c, _ := p.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := p.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}
