package lint

import (
	"go/ast"
	"strings"
)

// AtomicWrite bans raw os.WriteFile / os.Create in library and command
// packages: snapshots, warm-tier directories, and BENCH_*.json
// artifacts must go through core.WriteFileAtomic (temp file + fsync +
// rename), so a crash mid-write can never leave a torn file where a
// restarting server or a bench consumer expects a complete one. The
// warm restart path loads whatever sits at -snapshot on boot — a torn
// snapshot there turns a clean redeploy into a corrupt-cache incident.
//
// os.CreateTemp is allowed (it IS the safe pattern's first half, and
// mutable record files like the warm tier's live store are not
// write-once artifacts). Examples are exempt: they demonstrate APIs,
// not production write paths. Intentional streaming writes carry
// //proximity:allow atomicwrite with a reason.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "artifact writes must use core.WriteFileAtomic, not raw os.WriteFile/os.Create",
	Run:  runAtomicWrite,
}

func runAtomicWrite(p *Pass) {
	path := p.Pkg.Path()
	if !strings.HasPrefix(path, "proximity/internal/") && !strings.HasPrefix(path, "proximity/cmd/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"WriteFile", "Create"} {
				if p.isPkgFunc(call, "os", name) {
					p.Reportf(call.Pos(), "os.%s writes non-atomically: use core.WriteFileAtomic so a crash cannot leave a torn artifact", name)
				}
			}
			return true
		})
	}
}
