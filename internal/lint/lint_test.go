package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureImport builds the synthetic import path for an analyzer's
// golden package. The proximity/internal/ prefix matters: path-scoped
// analyzers (atomicwrite) key off it.
func fixtureImport(name string) string {
	return "proximity/internal/lint/testdata/" + name + "/a"
}

// TestGolden runs every analyzer over its golden fixture: each // want
// must be matched by a finding on its line, and every finding must be
// wanted. The fixtures carry a true positive, a true negative, and an
// allow suppression per rule.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name, "a")
			problems, err := CheckGolden(a, dir, fixtureImport(a.Name))
			if err != nil {
				t.Fatalf("CheckGolden(%s): %v", a.Name, err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

func TestAnalyzersSuite(t *testing.T) {
	all := Analyzers()
	if len(all) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	got, err := ByName(" bodydrain , hotpathalloc ")
	if err != nil {
		t.Fatalf("ByName subset: %v", err)
	}
	if len(got) != 2 || got[0].Name != "bodydrain" || got[1].Name != "hotpathalloc" {
		t.Fatalf("ByName subset = %v, want [bodydrain hotpathalloc]", got)
	}
	if _, err := ByName("nosuchanalyzer"); err == nil {
		t.Fatal("ByName(nosuchanalyzer) succeeded, want error")
	}
}

func TestFindingString(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "atomicwrite", "a"), fixtureImport("atomicwrite"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkg, []*Analyzer{AtomicWrite})
	if len(findings) == 0 {
		t.Fatal("no findings in atomicwrite fixture")
	}
	s := findings[0].String()
	if !strings.Contains(s, "a.go:") || !strings.Contains(s, ": atomicwrite: ") {
		t.Errorf("Finding.String() = %q, want file:line:col: analyzer: message form", s)
	}
	if !FindingAt(findings, "a.go", findings[0].Pos.Line) {
		t.Error("FindingAt misses a reported line")
	}
	if FindingAt(findings, "a.go", 99999) {
		t.Error("FindingAt reports a finding on an empty line")
	}
}

// TestAllowAll covers the `//proximity:allow all` escape hatch and that
// an allow only reaches its own line and the one below.
func TestAllowAll(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "os"

func f(path string) error {
	//proximity:allow all scratch output, torn file acceptable
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "proximity/internal/scratchfixture")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkg, []*Analyzer{AtomicWrite})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (WriteFile allowed, Create not): %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "os.Create") {
		t.Errorf("surviving finding is %q, want the os.Create one", findings[0].Message)
	}
}

// TestPathScope: atomicwrite must not fire outside proximity/internal
// and proximity/cmd — examples and external trees are exempt.
func TestPathScope(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "atomicwrite", "a"), "example/demo")
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(pkg, []*Analyzer{AtomicWrite}); len(findings) != 0 {
		t.Fatalf("atomicwrite fired on example/demo: %v", findings)
	}
}

// TestLoadPackages exercises the go list driver end to end on a real
// module package, and asserts the tree invariant the suite exists for:
// internal/telemetry itself is finding-free.
func TestLoadPackages(t *testing.T) {
	pkgs, err := LoadPackages(".", "proximity/internal/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "proximity/internal/telemetry" {
		t.Fatalf("LoadPackages = %v, want the one telemetry package", pkgs)
	}
	if findings := Run(pkgs[0], Analyzers()); len(findings) != 0 {
		t.Fatalf("internal/telemetry has findings: %v", findings)
	}
}

func TestLoadPackagesBadPattern(t *testing.T) {
	if _, err := LoadPackages(".", "proximity/no/such/package"); err == nil {
		t.Fatal("LoadPackages on a bogus pattern succeeded, want error")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), "p"); err == nil {
		t.Fatal("LoadDir on an empty dir succeeded, want error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package p\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, "p"); err == nil {
		t.Fatal("LoadDir on a parse error succeeded, want error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "bad.go"), []byte("package p\nvar x undefinedType\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir2, "p"); err == nil {
		t.Fatal("LoadDir on a type error succeeded, want error")
	}
}

// TestCheckGoldenBadWant: an unparseable want regexp is a hard error,
// not a silent skip.
func TestCheckGoldenBadWant(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nvar x = 1 // want \"(unclosed\"\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckGolden(BodyDrain, dir, "p"); err == nil {
		t.Fatal("CheckGolden accepted a bad want regexp, want error")
	}
}

// TestCheckGoldenMismatch: an unmatched want and an unwanted finding
// both surface as problems.
func TestCheckGoldenMismatch(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "os"

func f(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

var x = 1 // want "never reported"
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckGolden(AtomicWrite, dir, "proximity/internal/scratchfixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2 (one unexpected finding, one unmatched want): %v",
			len(problems), problems)
	}
}
