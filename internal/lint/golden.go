package lint

import (
	"fmt"
	"regexp"
	"strings"
)

// wantRe matches the quoted expectations of a `// want "re" "re"`
// golden comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckGolden loads the fixture package in dir under importPath, runs
// one analyzer over it, and compares findings against the fixture's
// `// want "regexp"` comments: every want must be matched by a finding
// on its line, and every finding must be wanted. Returns the list of
// mismatches (empty means pass) — the test harness for the suite.
func CheckGolden(a *Analyzer, dir, importPath string) ([]string, error) {
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("lint: bad want regexp at %s: %w", key, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	var problems []string
	for _, f := range Run(pkg, []*Analyzer{a}) {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				problems = append(problems, fmt.Sprintf("%s: want %q, got no finding", key, w.re))
			}
		}
	}
	return problems, nil
}

// FindingAt is a test helper: true if any finding sits at line in a
// file whose base name matches file.
func FindingAt(findings []Finding, file string, line int) bool {
	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, file) && f.Pos.Line == line {
			return true
		}
	}
	return false
}
