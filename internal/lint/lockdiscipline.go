package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline enforces the two locking rules every cache and shard
// in this repo lives by. First, the region between a sync.Mutex /
// sync.RWMutex Lock and its Unlock must not do blocking or allocating
// side work: no file I/O, no network, no fmt, no time.Sleep, and no
// telemetry calls other than the documented lock-free accessors
// (Observe / ObserveStage / Trace.ID) — a single fmt.Sprintf under the
// FlatCache mutex serializes every reader behind an allocation, and a
// network call turns the cache lock into a distributed-latency lock.
// Second, a function that calls mu.Lock() (or RLock) must contain a
// matching Unlock (deferred or explicit) somewhere — a lock with no
// textual unlock in the same function is almost always a leaked lock.
//
// The analysis is function-local: helpers that run with a caller-held
// lock (the *Locked naming convention) are not traced into. That keeps
// the check noise-free; the convention plus this analyzer together
// cover the tree.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking work under cache/shard mutexes; every Lock has an Unlock",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkLockPairing(fd)
			panics := panicArgRanges(fd.Body)
			p.scanLockRegions(fd.Body.List, make(map[string]bool), panics)
		}
	}
}

// lockCall decodes stmt as a mutex method call, returning the lock-key
// expression string ("c.mu"), the method name, and ok.
func (p *Pass) lockCall(expr ast.Expr) (key, method string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	named := p.recvNamed(call)
	if named == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkLockPairing reports Lock/RLock calls in fd that have no textual
// Unlock/RUnlock counterpart for the same mutex expression anywhere in
// the function (deferred or not).
func (p *Pass) checkLockPairing(fd *ast.FuncDecl) {
	locks := make(map[string]ast.Node) // key+mode → first Lock site
	unlocked := make(map[string]bool)  // key+mode → saw an unlock
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := p.lockCall(call)
		if !ok {
			return true
		}
		switch method {
		case "Lock":
			if locks[key+"/w"] == nil {
				locks[key+"/w"] = call
			}
		case "RLock":
			if locks[key+"/r"] == nil {
				locks[key+"/r"] = call
			}
		case "Unlock":
			unlocked[key+"/w"] = true
		case "RUnlock":
			unlocked[key+"/r"] = true
		}
		return true
	})
	for k, site := range locks {
		if !unlocked[k] {
			key, _, _ := strings.Cut(k, "/")
			p.Reportf(site.Pos(), "%s locked but never unlocked in %s (leaked lock on every path)",
				key, fd.Name.Name)
		}
	}
}

// scanLockRegions walks a statement list tracking which mutexes are
// held, reporting banned calls in held regions. Branch bodies get a
// copy of the held set, so an unlock inside an early-return branch
// doesn't leak into the fallthrough path's state.
func (p *Pass) scanLockRegions(stmts []ast.Stmt, held map[string]bool, panics []posRange) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, method, ok := p.lockCall(s.X); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			if len(held) > 0 {
				p.scanBannedCalls(s, held, panics)
			}
		case *ast.DeferStmt:
			if key, method, ok := p.lockCall(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
				// Deferred unlock: region runs to function end by
				// design; keep scanning with the lock held.
				_ = key
				continue
			}
			if len(held) > 0 {
				p.scanBannedCalls(s, held, panics)
			}
		case *ast.BlockStmt:
			p.scanLockRegions(s.List, copyHeld(held), panics)
		case *ast.IfStmt:
			if len(held) > 0 && s.Init != nil {
				p.scanBannedCalls(s.Init, held, panics)
			}
			if len(held) > 0 {
				p.scanBannedCalls(s.Cond, held, panics)
			}
			p.scanLockRegions(s.Body.List, copyHeld(held), panics)
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					p.scanLockRegions(e.List, copyHeld(held), panics)
				case *ast.IfStmt:
					p.scanLockRegions([]ast.Stmt{e}, copyHeld(held), panics)
				}
			}
		case *ast.ForStmt:
			p.scanLockRegions(s.Body.List, copyHeld(held), panics)
		case *ast.RangeStmt:
			p.scanLockRegions(s.Body.List, copyHeld(held), panics)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.scanLockRegions(cc.Body, copyHeld(held), panics)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.scanLockRegions(cc.Body, copyHeld(held), panics)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					p.scanLockRegions(cc.Body, copyHeld(held), panics)
				}
			}
		default:
			if len(held) > 0 {
				p.scanBannedCalls(stmt, held, panics)
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// heldKeys renders the held set for messages, stable-ordered.
func heldKeys(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return strings.Join(keys, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// scanBannedCalls walks one statement's subtree (skipping nested
// function literals, whose bodies run at another time, and panic
// arguments) reporting calls that must not happen under a lock.
func (p *Pass) scanBannedCalls(root ast.Node, held map[string]bool, panics []posRange) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inRanges(panics, call.Pos()) {
			return false
		}
		if what := p.bannedUnderLock(call); what != "" {
			p.Reportf(call.Pos(), "%s while %s is held (move it outside the critical section)",
				what, heldKeys(held))
		}
		return true
	})
}

// osFileOps are the package-level os functions that touch the
// filesystem.
var osFileOps = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"WriteFile": true, "ReadFile": true, "ReadDir": true, "Remove": true,
	"RemoveAll": true, "Rename": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Symlink": true, "Link": true,
}

// telemetryLockFree are the telemetry methods documented as lock-free
// (histogram observes are atomic bucket increments, Trace.ID is a field
// read); everything else on the hub — tracer ring operations, registry
// writes, span marshalling — is banned under a cache lock.
var telemetryLockFree = map[string]bool{
	"Observe": true, "ObserveStage": true, "ID": true,
}

// bannedUnderLock classifies a call that must not run under a mutex,
// returning a short description or "".
func (p *Pass) bannedUnderLock(call *ast.CallExpr) string {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "fmt":
		return "fmt." + fn.Name() + " (formats and allocates)"
	case pkg == "os":
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() == nil && osFileOps[fn.Name()] {
			return "file I/O os." + fn.Name()
		}
		if p.isMethodOn(call, "os", "File", fn.Name()) {
			return "file I/O (*os.File)." + fn.Name()
		}
		return ""
	case pkg == "net" || pkg == "net/http":
		return "network call " + pkg + "." + fn.Name()
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case strings.HasSuffix(pkg, "internal/telemetry"):
		if telemetryLockFree[fn.Name()] {
			return ""
		}
		return "telemetry call " + fn.Name() + " (only lock-free Observe/ObserveStage/ID may run under a lock)"
	}
	return ""
}
