// Package a is the bodydrain golden fixture: a body closed unread is
// flagged; drained, decoded, and delegated bodies pass.
package a

import (
	"encoding/json"
	"io"
	"net/http"
)

func closedUnread(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close() // want "resp.Body closed without being drained"
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	return nil
}

func drained(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func decoded(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// delegated hands the whole response to a helper; the drain happens
// there, outside this function's view.
func delegated(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return consume(resp)
}

func consume(resp *http.Response) error {
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}

// allowed shows the escape hatch: a HEAD-style probe with a
// known-empty body.
func allowed(c *http.Client, url string) error {
	resp, err := c.Head(url)
	if err != nil {
		return err
	}
	//proximity:allow bodydrain HEAD response has no body to drain
	return resp.Body.Close()
}
