// Package a is the stagenames golden fixture: literal series names and
// locally minted constants are flagged; registry constants and names
// threaded through variables pass.
package a

import "proximity/internal/telemetry"

// localName is a constant, but minted outside the telemetry registry —
// a second vocabulary waiting to drift.
const localName = "proximity_local_hits_total"

func register(reg *telemetry.Registry) {
	reg.Counter("proximity_typo_hits_total", "Hits.") // want "series name literal passed to Registry.Counter"
	reg.GaugeFunc("proximity_typo_depth", "Depth.",   // want "series name literal passed to Registry.GaugeFunc"
		func() float64 { return 0 })
	reg.Counter(localName, "Hits.") // want "series name constant localName declared outside internal/telemetry"

	reg.Counter(telemetry.MetricCacheHitsTotal, "Hits.") // registry constant: clean
	reg.HistogramLabeled(telemetry.MetricStageLatencySeconds,
		"Latency.", "stage", telemetry.StageCacheLookup.String())

	//proximity:allow stagenames experiment-local series, not part of the product vocabulary
	reg.Counter("proximity_experiment_total", "Experiment.")
}

// threaded accepts any name the caller resolved upstream.
func threaded(reg *telemetry.Registry, name string) {
	reg.Counter(name, "Caller-resolved.")
}
