// Package a is the lockdiscipline golden fixture: blocking work under
// a mutex, a leaked lock, the exempt lock-free telemetry observes, and
// clean early-unlock control flow.
package a

import (
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"proximity/internal/telemetry"
)

type store struct {
	mu    sync.RWMutex
	data  map[string][]byte
	telem *telemetry.Telemetry
}

func (s *store) blockingUnderLock(k string, v []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v
	fmt.Printf("stored %s\n", k)                      // want "fmt.Printf .* while s.mu is held"
	if err := os.WriteFile(k, v, 0o644); err != nil { // want "file I/O os.WriteFile while s.mu is held"
		return err
	}
	if _, err := http.Get("http://backup/" + k); err != nil { // want "network call net/http.Get while s.mu is held"
		return err
	}
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	return nil
}

func (s *store) leaked(k string) int {
	s.mu.RLock() // want "s.mu locked but never unlocked in leaked"
	return len(s.data[k])
}

// earlyUnlock releases on both paths; the post-unlock I/O is clean.
func (s *store) earlyUnlock(k string) error {
	s.mu.RLock()
	v, ok := s.data[k]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	s.mu.RUnlock()
	return os.WriteFile(k, v, 0o644)
}

// observeUnderLock is the sanctioned pattern: histogram observes are
// lock-free by design and may run inside the critical section.
func (s *store) observeUnderLock(k string) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = nil
	s.telem.ObserveStage(telemetry.StageCacheFill, time.Since(start))
}

// allowed shows the escape hatch for an intentional exception.
func (s *store) allowed(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//proximity:allow lockdiscipline startup-only path, never under traffic
	fmt.Println("boot", k)
}

// panicPath may format: the process is dying anyway.
func (s *store) panicPath(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		panic(fmt.Sprintf("corrupt store: %s", k))
	}
}
