// Package a is the hotpathalloc golden fixture: one annotated function
// per allocating construct, one unannotated twin proving the analyzer
// only fires inside //proximity:hotpath, and one allow suppression.
package a

import "fmt"

type cache struct {
	scratch []int
	out     []int
}

// lookupHot is the true-positive set.
//
//proximity:hotpath
func (c *cache) lookupHot(q []float32, docs []int) []int {
	fmt.Println("probe", q) // want "fmt call allocates in hot path"
	m := map[int]bool{}     // want "map literal allocates in hot path"
	_ = m
	s := []int{1, 2, 3} // want "slice literal allocates in hot path"
	_ = s
	buf := make([]int, 8) // want "make allocates in hot path"
	_ = buf
	p := new(int) // want "new allocates in hot path"
	_ = p
	fresh := append([]int(nil), docs...) // want "append onto a fresh slice allocates in hot path"
	_ = fresh
	best := 0
	f := func() int { return best } // want "closure capturing best allocates in hot path"
	_ = f
	box(q[0]) // want "boxes it onto the heap"
	return c.scratch
}

// lookupBudgeted shows the sanctioned escape hatch: the one
// caller-owned copy a Get is budgeted.
//
//proximity:hotpath
func (c *cache) lookupBudgeted(docs []int) []int {
	//proximity:allow hotpathalloc caller-owned result copy, the budgeted 1 alloc
	out := make([]int, len(docs))
	copy(out, docs)
	return out
}

// lookupClean allocates nothing: appends into pooled and caller-owned
// buffers, non-capturing closure, struct literal on the stack.
//
//proximity:hotpath
func (c *cache) lookupClean(dst []int, docs []int) []int {
	c.out = append(c.out[:0], docs...)
	dst = append(dst, c.out...)
	cmp := func(a, b int) int { return a - b }
	_ = cmp
	if len(dst) == 0 {
		panic(fmt.Sprintf("corrupt cache %d", len(docs))) // corruption path: exempt
	}
	return dst
}

// slowPath is the unannotated twin: same constructs, no findings.
func (c *cache) slowPath(q []float32, docs []int) []int {
	fmt.Println("probe", q)
	m := map[int]bool{}
	_ = m
	out := make([]int, len(docs))
	copy(out, docs)
	return append([]int(nil), out...)
}

func box(v any) { _ = v }
