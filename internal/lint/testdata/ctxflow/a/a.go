// Package a is the ctxflow golden fixture: severed traces via fresh
// context roots, untraced siblings of Context-variants, and the clean
// threaded paths.
package a

import "context"

type retriever struct{}

func (r *retriever) Retrieve(q string) ([]int, error) { return nil, nil }

func (r *retriever) RetrieveContext(ctx context.Context, q string) ([]int, error) {
	return nil, nil
}

func lookup(q string) ([]int, error) { return nil, nil }

func lookupContext(ctx context.Context, q string) ([]int, error) { return nil, nil }

func handle(ctx context.Context, r *retriever, q string) error {
	if _, err := r.RetrieveContext(context.Background(), q); err != nil { // want "inside a ctx-carrying function severs the trace"
		return err
	}
	if _, err := r.Retrieve(q); err != nil { // want "retriever.Retrieve has a context-aware variant RetrieveContext"
		return err
	}
	if _, err := lookup(q); err != nil { // want "lookup has a context-aware variant lookupContext"
		return err
	}
	_, err := lookupContext(ctx, q) // threaded: clean
	return err
}

// detached roots a fresh context inside a closure — a goroutine that
// outlives the request — and is exempt by design.
func detached(ctx context.Context, r *retriever, q string) {
	go func() {
		_, _ = r.RetrieveContext(context.Background(), q)
	}()
}

// allowed shows the escape hatch for a named-function detachment.
func allowed(ctx context.Context, r *retriever, q string) {
	//proximity:allow ctxflow fire-and-forget warmup, must survive request cancellation
	_, _ = r.RetrieveContext(context.Background(), q)
}

// noCtx has no Context parameter: calling the plain variant is fine.
func noCtx(r *retriever, q string) {
	_, _ = r.Retrieve(q)
	_, _ = lookup(q)
}
