// Package a is the atomicwrite golden fixture: raw artifact writes are
// flagged, the temp-file half of the safe pattern is not, and a
// streaming exception is allow-annotated.
package a

import "os"

func persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want "os.WriteFile writes non-atomically"
		return err
	}
	f, err := os.Create(path + ".idx") // want "os.Create writes non-atomically"
	if err != nil {
		return err
	}
	return f.Close()
}

// scratch uses CreateTemp — the first half of temp+rename — and is the
// legitimate primitive atomic writes are built from.
func scratch(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "scratch-*")
}

// stream appends to a live log; atomicity is meaningless for it.
func stream(path string, line []byte) error {
	//proximity:allow atomicwrite append-only live log, not a write-once artifact
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(line)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
