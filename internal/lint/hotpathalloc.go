package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc flags allocating constructs inside functions annotated
// //proximity:hotpath. The annotated set (hnsw.SearchInto, the cache
// Get/TierGet paths, the tiered lookup) is what BENCH_annindex and
// BENCH_tiered's latency numbers rest on: one stray fmt call or boxed
// argument turns a zero-alloc steady state into per-query GC pressure
// that only shows up at p99 under load.
//
// Flagged: fmt.* calls, map/slice composite literals, make/new, append
// onto a guaranteed-fresh slice (a []T(nil) conversion), closures that
// capture variables, and concrete non-pointer values passed where an
// interface is expected (boxing). Struct literals, appends into
// caller-owned or pooled buffers, and non-capturing function literals
// are allocation-free or caller-controlled and stay silent. Calls
// inside panic arguments are skipped (the corruption path may format).
// Intentional allocations — e.g. the one caller-owned result copy a
// cache Get is budgeted — carry //proximity:allow hotpathalloc with the
// reason.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocations in //proximity:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(p *Pass) {
	for _, fd := range p.HotpathFuncs() {
		panics := panicArgRanges(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inRanges(panics, n.Pos()) {
					return true
				}
				p.checkHotCall(n)
			case *ast.CompositeLit:
				if inRanges(panics, n.Pos()) {
					return true
				}
				switch p.Info.TypeOf(n).Underlying().(type) {
				case *types.Map:
					p.Reportf(n.Pos(), "map literal allocates in hot path %s", fd.Name.Name)
				case *types.Slice:
					p.Reportf(n.Pos(), "slice literal allocates in hot path %s", fd.Name.Name)
				}
			case *ast.FuncLit:
				if caps := p.capturedVars(n); len(caps) > 0 {
					p.Reportf(n.Pos(), "closure capturing %s allocates in hot path %s",
						caps[0], fd.Name.Name)
				}
			}
			return true
		})
	}
}

func (p *Pass) checkHotCall(call *ast.CallExpr) {
	if path := p.calleePkgPath(call); path == "fmt" {
		p.Reportf(call.Pos(), "fmt call allocates in hot path (format off the hot path or precompute)")
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "make":
				switch p.Info.TypeOf(call).Underlying().(type) {
				case *types.Map, *types.Slice, *types.Chan:
					p.Reportf(call.Pos(), "make allocates in hot path (preallocate or pool the buffer)")
				}
			case "new":
				p.Reportf(call.Pos(), "new allocates in hot path (preallocate or pool the value)")
			case "append":
				if len(call.Args) > 0 && p.freshSlice(call.Args[0]) {
					p.Reportf(call.Pos(), "append onto a fresh slice allocates in hot path (reuse a preallocated buffer)")
				}
			}
			return
		}
	}
	p.checkBoxing(call)
}

// freshSlice reports whether expr is a guaranteed-fresh slice — a
// []T(nil) conversion, the idiom for allocate-and-copy. Parameters,
// fields, and x[:0] re-slices are caller-owned or pooled and accepted.
func (p *Pass) freshSlice(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	if _, isSlice := p.Info.TypeOf(call).Underlying().(*types.Slice); !isSlice {
		return false
	}
	// A conversion (not a function call) whose operand is nil.
	if p.calleeFunc(call) != nil {
		return false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkBoxing flags concrete non-pointer arguments passed to interface
// parameters: storing a non-pointer value in an interface forces a heap
// allocation for the value's copy.
func (p *Pass) checkBoxing(call *ast.CallExpr) {
	fn := p.calleeFunc(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			slice, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := paramType.Underlying().(*types.Interface); !isIface {
			continue
		}
		argType := p.Info.TypeOf(arg)
		if argType == nil || argType == types.Typ[types.UntypedNil] {
			continue
		}
		switch argType.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // already boxed, or pointer (stored inline, no alloc)
		}
		p.Reportf(arg.Pos(), "passing %s to interface parameter of %s boxes it onto the heap",
			types.TypeString(argType, types.RelativeTo(p.Pkg)), fn.Name())
	}
}

// capturedVars returns the names of outer-scope variables a function
// literal captures (forcing a heap-allocated closure), in first-use
// order.
func (p *Pass) capturedVars(lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Package-level vars (this package's or another's) are not
		// captures; neither is anything declared inside the literal.
		if v.Pkg() != p.Pkg || v.Parent() == p.Pkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}
