package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context threading: a function that receives a
// context.Context must pass it along, not mint a fresh root. Two
// defects are flagged. (1) Calling context.Background()/TODO() inside
// a ctx-carrying function severs the trace — the callee's spans land
// in no trace, cancellation stops propagating, and /v1/traces shows a
// request that "did nothing" while the DB search it triggered runs
// untracked. (2) Calling x.Foo(...) when x also has Foo-Context
// (FooContext(ctx, ...)) — the repo's convention for instrumented
// variants (Retrieve/RetrieveContext) — silently picks the untraced
// path.
//
// Function literals are skipped: a goroutine detached from the request
// lifetime legitimately roots a fresh context. Intentional detachments
// in named functions carry //proximity:allow ctxflow with a reason.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ctx-carrying functions must thread their Context into ctx-aware callees",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.hasCtxParam(fd) {
				continue
			}
			p.checkCtxBody(fd)
		}
	}
}

// hasCtxParam reports whether fd declares a context.Context parameter.
func (p *Pass) hasCtxParam(fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := p.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func (p *Pass) checkCtxBody(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // detached lifetime; fresh roots are legitimate
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				for _, name := range []string{"Background", "TODO"} {
					if p.isPkgFunc(inner, "context", name) {
						p.Reportf(inner.Pos(), "context.%s() inside a ctx-carrying function severs the trace: thread %s's Context instead", name, fd.Name.Name)
					}
				}
			}
		}
		p.checkContextSibling(call)
		return true
	})
}

// checkContextSibling flags calls to a method or package function Foo
// when a FooContext variant taking a leading context.Context exists.
func (p *Pass) checkContextSibling(call *ast.CallExpr) {
	fn := p.calleeFunc(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || signatureTakesCtx(sig) {
		return
	}
	sibling := fn.Name() + "Context"
	if recv := p.recvNamed(call); recv != nil {
		// Method: look for the sibling in the receiver's method set
		// (pointer method set covers both).
		ptr := types.NewPointer(recv)
		for i, ms := 0, types.NewMethodSet(ptr); i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			msig, ok := m.Type().(*types.Signature)
			if m.Name() == sibling && ok && signatureTakesCtx(msig) {
				p.Reportf(call.Pos(), "%s.%s has a context-aware variant %s: call it with the incoming ctx so the span follows the request",
					recv.Obj().Name(), fn.Name(), sibling)
				return
			}
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	obj := fn.Pkg().Scope().Lookup(sibling)
	sfn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	ssig, ok := sfn.Type().(*types.Signature)
	if ok && signatureTakesCtx(ssig) {
		p.Reportf(call.Pos(), "%s has a context-aware variant %s: call it with the incoming ctx so the span follows the request",
			fn.Name(), sibling)
	}
}

func signatureTakesCtx(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}
