package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	Path  string // import path (synthetic for testdata fixtures)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader shares one FileSet and one source importer across every load
// in the process, so the (expensive) from-source typechecking of stdlib
// and intra-module dependencies happens once, not once per package.
type loader struct {
	mu  sync.Mutex
	fs  *token.FileSet
	imp types.ImporterFrom
}

var shared = func() *loader {
	fs := token.NewFileSet()
	return &loader{
		fs:  fs,
		imp: importer.ForCompiler(fs, "source", nil).(types.ImporterFrom),
	}
}()

// check parses and typechecks the given files as one package rooted at
// importPath. Type errors are hard failures: the suite only analyzes
// trees that compile.
func (l *loader) check(importPath, dir string, filenames []string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fs, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			//proximity:allow lockdiscipline cold error path; the loader lock is coarse by design (shared FileSet and importer)
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fs, files, info)
	if err != nil {
		//proximity:allow lockdiscipline cold error path; the loader lock is coarse by design (shared FileSet and importer)
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: l.fs, Files: files, Types: pkg, Info: info}, nil
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// LoadPackages enumerates patterns via `go list -json` run in dir and
// returns each matched package parsed and typechecked (non-test files,
// build-constraint filtered exactly as a build would).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := shared.check(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and typechecks every .go file in dir as one package
// under the given import path. Used for testdata fixture packages,
// which `go list` deliberately cannot see; the import path is synthetic
// and chosen by the caller (path-scoped analyzers key off it).
func LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(matches)
	names := make([]string, len(matches))
	for i, m := range matches {
		names[i] = filepath.Base(m)
	}
	return shared.check(importPath, dir, names)
}
