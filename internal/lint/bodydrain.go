package lint

import (
	"go/ast"
	"go/types"
)

// BodyDrain generalizes the PR 4 keep-alive leak: an *http.Response
// body that is Closed without ever being read leaves the connection
// undrained, so net/http cannot return it to the keep-alive pool — the
// next request to the same node pays a fresh TCP (and under load, the
// pool leaks one connection per call until the node's fd budget is
// gone; the cluster client's leak regression test counts exactly this).
//
// The check is per-function: for every *http.Response variable, if
// .Body appears only as the receiver of Close() — never read, decoded,
// drained, or handed to another function — the Close is flagged. Any
// other use of the response (passed whole to a helper, Body handed to
// io.Copy/json.Decoder) counts as a read, since the drain may happen
// there.
var BodyDrain = &Analyzer{
	Name: "bodydrain",
	Doc:  "drain *http.Response bodies before Close (keep-alive reuse)",
	Run:  runBodyDrain,
}

func runBodyDrain(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkBodyUses(fd)
		}
	}
}

// isHTTPResponse reports whether t is *net/http.Response.
func isHTTPResponse(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func (p *Pass) checkBodyUses(fd *ast.FuncDecl) {
	parents := buildParents(fd.Body)
	type usage struct {
		closePos  []ast.Node
		otherUses int
	}
	uses := make(map[*types.Var]*usage)

	record := func(v *types.Var) *usage {
		u := uses[v]
		if u == nil {
			u = &usage{}
			uses[v] = u
		}
		return u
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !isHTTPResponse(v.Type()) {
			return true
		}
		// Declared inside this function only.
		if v.Pos() < fd.Pos() || v.Pos() >= fd.End() {
			return true
		}
		if p.Info.Defs[id] != nil {
			return true // the declaration itself is not a use
		}
		u := record(v)
		// Climb: is this use resp.Body, and if so, is it Close()?
		sel, ok := parents[id].(*ast.SelectorExpr)
		if !ok || sel.X != id {
			// resp used some other way (passed whole, reassigned):
			// assume the body is handled there.
			u.otherUses++
			return true
		}
		if sel.Sel.Name != "Body" {
			return true // resp.StatusCode etc.: neither read nor close
		}
		if closeSel, ok := parents[sel].(*ast.SelectorExpr); ok && closeSel.Sel.Name == "Close" {
			if call, ok := parents[closeSel].(*ast.CallExpr); ok && call.Fun == closeSel {
				u.closePos = append(u.closePos, call)
				return true
			}
		}
		u.otherUses++ // Body read, decoded, drained, or passed on
		return true
	})

	for v, u := range uses {
		if u.otherUses == 0 && len(u.closePos) > 0 {
			p.Reportf(u.closePos[0].Pos(), "%s.Body closed without being drained: io.Copy(io.Discard, %s.Body) first or the connection cannot be reused (keep-alive leak)",
				v.Name(), v.Name())
		}
	}
}

// buildParents maps every node in root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
