// Package lint is the repo's static-analysis suite: six analyzers that
// encode invariants the benchmarks and crash-safety guarantees rest on
// — zero-alloc hot paths, no blocking work under cache locks, one
// telemetry name vocabulary, crash-safe artifact writes, context
// threading, and drained HTTP response bodies. The cmd/proximity-vet
// driver runs the suite over ./... and fails CI on findings.
//
// Two comment directives steer the analyzers:
//
//	//proximity:hotpath
//	    placed in a function's doc comment, marks it as an
//	    allocation-free hot path; hotpathalloc then flags allocating
//	    constructs inside it.
//
//	//proximity:allow <analyzer> [reason]
//	    placed on (or on the line above) a flagged line, suppresses
//	    that analyzer's finding there. The reason is free text but by
//	    convention always present — an allow without a why does not
//	    survive review.
//
// The suite is deliberately stdlib-only (go/ast + go/types + a source
// importer, packages enumerated via `go list -json`), preserving the
// module's zero-dependency stance.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check over a typechecked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	dirs     *directives
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		LockDiscipline,
		StageNames,
		AtomicWrite,
		CtxFlow,
		BodyDrain,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(csv string) ([]*Analyzer, error) {
	all := Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes analyzers over pkg, applies //proximity:allow
// suppressions, and returns the surviving findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			dirs:     dirs,
			findings: &findings,
		}
		a.Run(pass)
	}
	kept := findings[:0]
	for _, f := range findings {
		if !dirs.allowed(f.Analyzer, f.Pos) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// directives indexes the //proximity: comment directives of a package
// by file and line.
type directives struct {
	// allow maps file → line → analyzer names allowed on that line.
	allow map[string]map[int][]string
	// hotpath maps file → set of lines carrying //proximity:hotpath.
	hotpath map[string]map[int]bool
}

const (
	allowPrefix   = "//proximity:allow"
	hotpathMarker = "//proximity:hotpath"
)

func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{
		allow:   make(map[string]map[int][]string),
		hotpath: make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				switch {
				case strings.HasPrefix(c.Text, allowPrefix):
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
					name, _, _ := strings.Cut(rest, " ")
					if name == "" {
						continue
					}
					byLine := d.allow[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						d.allow[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], name)
				case strings.HasPrefix(c.Text, hotpathMarker):
					lines := d.hotpath[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						d.hotpath[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return d
}

// allowed reports whether an //proximity:allow directive for analyzer
// name covers pos: same line or the line directly above.
func (d *directives) allowed(name string, pos token.Position) bool {
	byLine := d.allow[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, n := range byLine[line] {
			if n == name || n == "all" {
				return true
			}
		}
	}
	return false
}

// HotpathFuncs returns the declared functions annotated
// //proximity:hotpath (directive anywhere in the doc comment, or on
// the line directly above an undocumented declaration).
func (p *Pass) HotpathFuncs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if p.isHotpath(fd) {
				out = append(out, fd)
			}
		}
	}
	return out
}

func (p *Pass) isHotpath(fd *ast.FuncDecl) bool {
	declPos := p.Fset.Position(fd.Pos())
	lines := p.dirs.hotpath[declPos.Filename]
	if lines == nil {
		return false
	}
	if fd.Doc != nil {
		start := p.Fset.Position(fd.Doc.Pos()).Line
		for l := start; l < declPos.Line; l++ {
			if lines[l] {
				return true
			}
		}
	}
	return lines[declPos.Line-1]
}

// calleeFunc resolves the called function or method, or nil for
// builtins, type conversions, and calls through function values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleePkgPath returns the defining package path of the callee ("" for
// builtins, conversions, and function-value calls).
func (p *Pass) calleePkgPath(call *ast.CallExpr) string {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether call invokes pkgPath.name (a package-level
// function, not a method).
func (p *Pass) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvNamed returns the named type of a method callee's receiver
// (dereferenced), or nil when call is not a method call.
func (p *Pass) recvNamed(call *ast.CallExpr) *types.Named {
	fn := p.calleeFunc(call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether call invokes a method named name on the
// (possibly pointer-wrapped) named type pkgPath.typeName.
func (p *Pass) isMethodOn(call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Name() != name {
		return false
	}
	named := p.recvNamed(call)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// panicArgPositions collects the source ranges of every panic(...)
// argument in root, so analyzers can skip calls that only execute on a
// corruption path (the process is dying; formatting there is fine).
type posRange struct{ lo, hi token.Pos }

func panicArgRanges(root ast.Node) []posRange {
	var out []posRange
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				out = append(out, posRange{arg.Pos(), arg.End()})
			}
		}
		return true
	})
	return out
}

func inRanges(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}
