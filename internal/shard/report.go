package shard

import (
	"fmt"

	"proximity/internal/report"
)

// ShardLoad is one shard's occupancy and pressure snapshot.
type ShardLoad struct {
	Shard     int
	Entries   int
	Capacity  int
	Occupancy float64 // Entries / Capacity
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64
}

// PressureReport summarizes occupancy and eviction pressure across
// shards — the operational view a capacity planner needs: is the
// partitioner spreading load, and which shards are thrashing?
type PressureReport struct {
	Shards []ShardLoad
	// Entries and Capacity are cache-wide totals; Occupancy their
	// ratio.
	Entries   int
	Capacity  int
	Occupancy float64
	// Evictions is the cache-wide total.
	Evictions int64
	// MaxOccupancy is the fullest shard's occupancy.
	MaxOccupancy float64
	// Imbalance is max shard entries over mean shard entries: 1.0 is a
	// perfectly even spread; values well above 1 mean the partitioner
	// concentrates keys (hot shards evict while cold shards sit idle).
	// Defined as exactly 1.0 — never NaN or Inf — when the cache is
	// empty or has a single shard, since no re-spreading of zero
	// entries (or of one shard) can improve anything.
	Imbalance float64
}

// imbalanceOf is the Imbalance definition shared by Report and
// PreviewSeed: max shard entries over mean shard entries, pinned to the
// perfectly-balanced 1.0 when there are no entries to spread or no
// alternative shard to spread them to. Threshold comparisons in the
// rebalance controller rely on the pinning — a NaN here would make every
// comparison false and silently disable rebalancing.
func imbalanceOf(maxEntries, totalEntries, shards int) float64 {
	if totalEntries == 0 || shards <= 1 {
		return 1
	}
	return float64(maxEntries) / (float64(totalEntries) / float64(shards))
}

// Report takes a consistent-enough snapshot of every shard (each shard is
// read atomically; cross-shard skew under concurrent writes is bounded by
// one in-flight operation per shard) and derives the pressure summary.
// Counters include generations retired by re-draw migrations.
func (c *ShardedCache) Report() PressureReport {
	r := PressureReport{Shards: make([]ShardLoad, len(c.slots))}
	maxEntries := 0
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		st := addStats(s.base, s.cache.Stats())
		load := ShardLoad{
			Shard:     i,
			Entries:   s.cache.Len(),
			Capacity:  s.cache.Capacity(),
			Hits:      st.Hits,
			Misses:    st.Misses,
			Puts:      st.Puts,
			Evictions: st.Evictions,
		}
		s.mu.RUnlock()
		if load.Capacity > 0 {
			load.Occupancy = float64(load.Entries) / float64(load.Capacity)
		}
		r.Shards[i] = load
		r.Entries += load.Entries
		r.Capacity += load.Capacity
		r.Evictions += load.Evictions
		if load.Occupancy > r.MaxOccupancy {
			r.MaxOccupancy = load.Occupancy
		}
		if load.Entries > maxEntries {
			maxEntries = load.Entries
		}
	}
	if r.Capacity > 0 {
		r.Occupancy = float64(r.Entries) / float64(r.Capacity)
	}
	r.Imbalance = imbalanceOf(maxEntries, r.Entries, len(r.Shards))
	return r
}

// Render formats the report as an aligned table plus the summary line.
func (r PressureReport) Render() string {
	t := report.NewTable("Shard pressure",
		"shard", "entries", "capacity", "occupancy%", "hits", "misses", "puts", "evictions")
	for _, s := range r.Shards {
		t.AddRow(
			fmt.Sprintf("%d", s.Shard),
			fmt.Sprintf("%d", s.Entries),
			fmt.Sprintf("%d", s.Capacity),
			report.Percent(s.Occupancy),
			fmt.Sprintf("%d", s.Hits),
			fmt.Sprintf("%d", s.Misses),
			fmt.Sprintf("%d", s.Puts),
			fmt.Sprintf("%d", s.Evictions),
		)
	}
	return t.String() + fmt.Sprintf(
		"total %d/%d entries (%s%% full, max shard %s%%), %d evictions, imbalance %.2f\n",
		r.Entries, r.Capacity, report.Percent(r.Occupancy),
		report.Percent(r.MaxOccupancy), r.Evictions, r.Imbalance)
}
