package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"proximity/internal/core"
)

// Per-shard cold snapshots: a sharded (typically tiered) cache persists
// as one variant-agnostic entry snapshot per shard. Files are written
// crash-safely (temp + rename), and loading replays every snapshot found
// through the CURRENT routing — the shard count or partitioner seed may
// have changed across the restart, and replay re-homes each entry where
// the live draw wants it.

// snapshotName returns the file name for one shard's snapshot.
func snapshotName(i int) string { return fmt.Sprintf("shard-%03d.snap", i) }

// WriteSnapshots writes one entry snapshot per shard into dir, creating
// it if needed. Every sub-cache must enumerate its entries
// (ErrNotMigratable otherwise). Each file is written atomically, so a
// crash mid-save leaves the previous snapshot set readable (a torn SET —
// some shards new, some old — is possible but benign: every file is
// individually consistent and replay tolerates any mixture).
func (c *ShardedCache) WriteSnapshots(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: create snapshot dir: %w", err)
	}
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		src, ok := s.cache.(core.EntrySource)
		if !ok {
			s.mu.RUnlock()
			return fmt.Errorf("shard %d: %w", i, ErrNotMigratable)
		}
		err := core.WriteFileAtomic(filepath.Join(dir, snapshotName(i)), func(w io.Writer) error {
			return core.WriteEntrySnapshot(w, c.dim, src)
		})
		s.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// LoadSnapshots replays every shard snapshot found in dir into the
// cache. Entries route by the current partitioner, so snapshots written
// under a different shard count or seed still load correctly. The
// replay's inserts are subtracted from the Puts counters, so a restarted
// process reports client traffic only. A missing directory or an empty
// one loads nothing and returns nil.
func (c *ShardedCache) LoadSnapshots(dir string) error {
	c.migrateMu.Lock()
	defer c.migrateMu.Unlock()
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.snap"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	before := make([]int64, len(c.slots))
	for i := range c.slots {
		before[i] = c.slots[i].stats().Puts
	}
	for _, path := range matches {
		if err := c.loadOne(path); err != nil {
			return err
		}
	}
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		replayed := addStats(s.base, s.cache.Stats()).Puts - before[i]
		s.base.Puts -= replayed
		s.mu.Unlock()
	}
	return nil
}

func (c *ShardedCache) loadOne(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dim, entries, err := core.ReadEntrySnapshot(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if dim != c.dim {
		return fmt.Errorf("%s: snapshot dimension %d does not match cache dimension %d", path, dim, c.dim)
	}
	for _, e := range entries {
		c.PutWithTolerance(e.Key, e.Docs, e.Tol)
	}
	return nil
}
