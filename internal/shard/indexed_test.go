package shard

import (
	"testing"

	"proximity/internal/core"
	"proximity/internal/vec"
)

func TestNewIndexedSplitsCapacity(t *testing.T) {
	c, err := NewIndexed(8, 4, core.IndexedOptions{Capacity: 10, Tolerance: 0.2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 4 {
		t.Fatalf("shards=%d, want 4", c.NumShards())
	}
	// 10/4 rounded up = 3 per shard, 12 total.
	if got := c.Capacity(); got != 12 {
		t.Fatalf("capacity=%d, want 12", got)
	}
}

func TestShardedIndexedGetPut(t *testing.T) {
	c, err := NewIndexed(8, 4, core.IndexedOptions{Capacity: 400, Tolerance: 0.3, Seed: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(41)
	keys := make([]vec.Vector, 100)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, 8), 2)
		c.Put(keys[i], []int{i})
	}
	if c.Len() != 100 {
		t.Fatalf("len=%d, want 100", c.Len())
	}
	for i, k := range keys {
		docs, ok := c.Get(k)
		if !ok || len(docs) != 1 || docs[0] != i {
			t.Fatalf("key %d: docs=%v ok=%v", i, docs, ok)
		}
	}
	st := c.Stats()
	if st.Hits != 100 || st.Puts != 100 {
		t.Fatalf("stats=%+v", st)
	}
	is := c.IndexStats()
	if is.Nodes != 100 {
		t.Fatalf("aggregated index nodes=%d, want 100", is.Nodes)
	}
}

func TestShardedIndexedReseedMigration(t *testing.T) {
	c, err := NewIndexed(8, 4, core.IndexedOptions{Capacity: 400, Tolerance: 0.3, Seed: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(43)
	keys := make([]vec.Vector, 80)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, 8), 2)
		c.Put(keys[i], []int{i})
	}
	mig, err := c.Reseed(99)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Moved == 0 {
		t.Fatal("reseed moved nothing; migration not exercised")
	}
	if c.Len() != 80 {
		t.Fatalf("len=%d after migration, want 80", c.Len())
	}
	for i, k := range keys {
		docs, ok := c.Get(k)
		if !ok || docs[0] != i {
			t.Fatalf("key %d lost in migration: docs=%v ok=%v", i, docs, ok)
		}
	}
}

func TestShardedFlatIndexStatsZero(t *testing.T) {
	c, err := NewFlat(4, 2, core.Options{Capacity: 10, Tolerance: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(vec.Vector{1, 2, 3, 4}, []int{1})
	if is := c.IndexStats(); is != (core.IndexStats{}) {
		t.Fatalf("flat shards reported index stats: %+v", is)
	}
}

// TestShardedIndexedRepairStatsAcrossReseed churns a sharded indexed
// cache so sub-caches reuse slots and run maintenance, then verifies the
// aggregated repair counters survive a Reseed migration (the per-shard
// graph counters are cumulative, so aggregation only grows).
func TestShardedIndexedRepairStatsAcrossReseed(t *testing.T) {
	c, err := NewIndexed(8, 4, core.IndexedOptions{
		Capacity:    80,
		Tolerance:   0.3,
		Seed:        5,
		Maintenance: &core.MaintenanceOptions{Every: 8},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(45)
	for i := 0; i < 600; i++ {
		c.Put(vec.Scale(vec.RandomGaussian(rng, 8), 2), []int{i})
	}
	before := c.IndexStats()
	if before.ReusedSlots == 0 || before.SeveredInEdges == 0 {
		t.Fatalf("churn did not drive slot reuse across shards: %+v", before)
	}
	if before.RepairPasses == 0 {
		t.Fatalf("scheduled maintenance never ran: %+v", before)
	}
	mig, err := c.Reseed(99)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Moved == 0 {
		t.Fatal("reseed moved nothing; migration not exercised")
	}
	after := c.IndexStats()
	if after.ReusedSlots < before.ReusedSlots || after.SeveredInEdges < before.SeveredInEdges ||
		after.RepairPasses < before.RepairPasses || after.RepairedNodes < before.RepairedNodes {
		t.Fatalf("repair counters regressed across Reseed:\nbefore %+v\nafter  %+v", before, after)
	}
}
