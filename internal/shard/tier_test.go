package shard

import (
	"path/filepath"
	"testing"

	"proximity/internal/core"
	"proximity/internal/tier"
	"proximity/internal/vec"
)

func newTieredShards(t *testing.T, shards, hot, warm int) *ShardedCache {
	t.Helper()
	c, err := NewTiered(testDim, shards, tier.Options{
		HotCapacity:  hot,
		WarmCapacity: warm,
		Tolerance:    1,
		Policy:       core.LRU,
		Dir:          t.TempDir(),
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTieredShardsBasic(t *testing.T) {
	c := newTieredShards(t, 4, 40, 160)
	if got := c.Capacity(); got < 200 {
		t.Fatalf("Capacity = %d, want >= 200", got)
	}
	rng := vec.NewRand(1)
	var keys []vec.Vector
	for i := 0; i < 300; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, testDim), 2)
		c.Put(k, []int{i})
		keys = append(keys, k)
	}
	hits := 0
	for i := 0; i < 100; i++ {
		// Exact repeats of recent keys: distance 0 hits regardless of
		// which tier holds them.
		if docs, ok := c.Get(keys[len(keys)-1-i]); ok && docs[0] == len(keys)-1-i {
			hits++
		}
	}
	if hits < 90 {
		t.Fatalf("recent-key hits = %d/100", hits)
	}
	st := c.TierStats()
	if st.HotEntries == 0 || st.WarmEntries == 0 || st.Demotions == 0 {
		t.Fatalf("tier stats not flowing: %+v", st)
	}
	if st.HotEntries+st.WarmEntries != c.Len() {
		t.Fatalf("gauge sum %d != Len %d", st.HotEntries+st.WarmEntries, c.Len())
	}
	// A sharded flat cache reports the zero value.
	if flat := newFlatShards(t, 2, 100); (flat.TierStats() != core.TierStats{}) {
		t.Fatal("flat shards should report zero tier stats")
	}
}

func TestTieredShardsSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	c := newTieredShards(t, 4, 40, 160)
	rng := vec.NewRand(3)
	var keys []vec.Vector
	for i := 0; i < 250; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, testDim), 2)
		c.PutWithTolerance(k, []int{i}, 1+float32(rng.Float64()))
		keys = append(keys, k)
	}
	lenBefore := c.Len()
	if err := c.WriteSnapshots(dir); err != nil {
		t.Fatal(err)
	}

	restored := newTieredShards(t, 4, 40, 160)
	if err := restored.LoadSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != lenBefore {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), lenBefore)
	}
	// Replay puts are subtracted: a restarted process reports no client
	// traffic yet.
	if s := restored.Stats(); s.Puts != 0 {
		t.Fatalf("restored Puts = %d, want 0", s.Puts)
	}
	// Both caches answer recent exact repeats identically.
	for i := 0; i < 80; i++ {
		k := keys[len(keys)-1-i]
		d1, ok1 := c.Get(k)
		d2, ok2 := restored.Get(k)
		if ok1 != ok2 || (ok1 && d1[0] != d2[0]) {
			t.Fatalf("key %d: original %v %v, restored %v %v", i, d1, ok1, d2, ok2)
		}
	}
}

// Snapshots survive a shard-count change: replay routes by the live
// partitioner, not the one that wrote the files.
func TestTieredShardsSnapshotReshard(t *testing.T) {
	dir := t.TempDir()
	c := newTieredShards(t, 4, 40, 160)
	rng := vec.NewRand(5)
	for i := 0; i < 200; i++ {
		c.Put(vec.Scale(vec.RandomGaussian(rng, testDim), 2), []int{i})
	}
	lenBefore := c.Len()
	if err := c.WriteSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	restored := newTieredShards(t, 2, 40, 160)
	if err := restored.LoadSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != lenBefore {
		t.Fatalf("resharded Len = %d, want %d", restored.Len(), lenBefore)
	}
}

func TestTieredShardsLoadSnapshotsMissingDir(t *testing.T) {
	c := newTieredShards(t, 2, 8, 16)
	if err := c.LoadSnapshots(filepath.Join(t.TempDir(), "nope")); err != nil {
		t.Fatalf("missing dir should load nothing, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// Reseed with tiered sub-caches: entries survive the re-draw, tier
// counters fold into the baseline, and retired warm files are released.
// Capacity is ample — deliveries into a full not-yet-swept shard displace
// genuinely (documented Reseed behavior), which is not what's under test.
func TestTieredShardsReseed(t *testing.T) {
	c := newTieredShards(t, 4, 80, 720)
	rng := vec.NewRand(7)
	var keys []vec.Vector
	for i := 0; i < 200; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, testDim), 2)
		c.Put(k, []int{i})
		keys = append(keys, k)
	}
	lenBefore := c.Len()
	putsBefore := c.Stats().Puts
	demosBefore := c.TierStats().Demotions
	if demosBefore == 0 {
		t.Fatal("expected demotions before reseed")
	}
	m, err := c.Reseed(999)
	if err != nil {
		t.Fatal(err)
	}
	if m.Moved == 0 {
		t.Fatal("re-draw moved nothing")
	}
	if c.Len() != lenBefore {
		t.Fatalf("Len after reseed = %d, want %d", c.Len(), lenBefore)
	}
	// Migration re-inserts are not client traffic.
	if got := c.Stats().Puts; got != putsBefore {
		t.Fatalf("Puts after reseed = %d, want %d", got, putsBefore)
	}
	// Cumulative tier counters survive the generation swap (re-homing
	// causes fresh demotions on top of the folded baseline).
	if got := c.TierStats().Demotions; got < demosBefore {
		t.Fatalf("Demotions after reseed = %d, want >= %d", got, demosBefore)
	}
	// Entries still reachable by exact repeat.
	hits := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(keys[len(keys)-1-i]); ok {
			hits++
		}
	}
	if hits < 90 {
		t.Fatalf("post-reseed hits = %d/100", hits)
	}
}
