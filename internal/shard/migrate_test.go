package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"proximity/internal/core"
	"proximity/internal/vec"
)

// clusteredKeys builds tight clusters of keys: members share an LSH
// signature with high probability (small jitter around a common center),
// so coarse-signature routing concentrates whole clusters on shards —
// the skew regime rebalancing exists for.
func clusteredKeys(seed uint64, clusters, perCluster int) []vec.Vector {
	rng := vec.NewRand(seed)
	out := make([]vec.Vector, 0, clusters*perCluster)
	for c := 0; c < clusters; c++ {
		center := vec.RandomGaussian(rng, testDim)
		for m := 0; m < perCluster; m++ {
			q := vec.Clone(center)
			jitter := vec.RandomGaussian(rng, testDim)
			for d := range q {
				q[d] += 0.1 * jitter[d]
			}
			out = append(out, q)
		}
	}
	return out
}

// newCoarseShards builds a sharded FLAT cache with a deliberately coarse
// signature (lumpy routing) and ample capacity.
func newCoarseShards(t *testing.T, shards int, capacity int, seed uint64) *ShardedCache {
	t.Helper()
	c, err := New(testDim, Options{
		Shards:        shards,
		Seed:          seed,
		SignatureBits: 4,
		New: func(int) (core.Cache, error) {
			return core.NewFlat(testDim, core.Options{
				Capacity:  capacity,
				Tolerance: 0.5,
				Policy:    core.LRU,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestImbalanceEdgeCases: the pressure report's Imbalance must be a
// defined 1.0 — never NaN or Inf — for empty and single-shard caches,
// or every threshold comparison in the controller would be false.
func TestImbalanceEdgeCases(t *testing.T) {
	one := []vec.Vector{vec.RandomGaussian(vec.NewRand(1), testDim)}
	cases := []struct {
		name   string
		shards int
		keys   []vec.Vector
		want   float64
	}{
		{"all shards empty", 4, nil, 1},
		{"single shard empty", 1, nil, 1},
		{"single shard with entries", 1, one, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCoarseShards(t, tc.shards, 16, 42)
			for i, k := range tc.keys {
				c.Put(k, []int{i})
			}
			got := c.Report().Imbalance
			if got != tc.want {
				t.Errorf("Imbalance = %v, want %v (must be defined, not NaN/Inf)", got, tc.want)
			}
			// PreviewSeed shares the definition.
			pred, err := c.PreviewSeed(99)
			if err != nil {
				t.Fatal(err)
			}
			if pred != tc.want {
				t.Errorf("PreviewSeed imbalance = %v, want %v", pred, tc.want)
			}
		})
	}
}

// TestReseedMigratesEntries: after a re-draw every entry is findable at
// its new shard (an exact-key lookup is distance 0, within any
// tolerance), the total entry count is unchanged, and the partitioner
// reports the new seed.
func TestReseedMigratesEntries(t *testing.T) {
	c := newCoarseShards(t, 4, 256, 42)
	keys := clusteredKeys(7, 8, 16)
	for i, k := range keys {
		c.Put(k, []int{i})
	}
	before := c.Len()

	m, err := c.Reseed(12345)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed() != 12345 {
		t.Errorf("Seed() = %d, want 12345", c.Seed())
	}
	if got := c.Len(); got != before {
		t.Errorf("Len after migration = %d, want %d", got, before)
	}
	// A quiet migration accounts for every entry exactly once — entries
	// delivered ahead of their destination's sweep must not double-count
	// as "stayed" when that sweep re-enumerates them.
	if m.Moved+m.Stayed != before {
		t.Errorf("migration accounted for %d entries (moved %d, stayed %d), want exactly %d",
			m.Moved+m.Stayed, m.Moved, m.Stayed, before)
	}
	for i, k := range keys {
		docs, ok := c.Get(k)
		if !ok {
			t.Fatalf("key %d lost by migration", i)
		}
		if len(docs) != 1 || docs[0] != i {
			t.Errorf("key %d returned %v after migration", i, docs)
		}
		// The entry must live where the NEW draw routes it.
		if got := c.ShardFor(k); c.Shard(got).Len() == 0 {
			t.Errorf("key %d routes to empty shard %d", i, got)
		}
	}
	if !strings.Contains(m.String(), "reseed(seed=12345)") {
		t.Errorf("migration summary %q missing seed", m.String())
	}
}

// TestPreviewSeedPredictsReseed: with no concurrent traffic, the
// predicted imbalance for a candidate seed equals the measured imbalance
// after migrating to it.
func TestPreviewSeedPredictsReseed(t *testing.T) {
	c := newCoarseShards(t, 4, 256, 42)
	for i, k := range clusteredKeys(11, 6, 20) {
		c.Put(k, []int{i})
	}
	const candidate = 777
	pred, err := c.PreviewSeed(candidate)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Reseed(candidate)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Report().Imbalance; got != pred {
		t.Errorf("measured imbalance %v != predicted %v", got, pred)
	}
	if m.After != pred {
		t.Errorf("migration After %v != predicted %v", m.After, pred)
	}
}

// TestReseedPutsCountersConserved: migration re-inserts must not inflate
// the Puts counter — after a quiet migration the counters read exactly
// as if it never happened.
func TestReseedCountersConserved(t *testing.T) {
	c := newCoarseShards(t, 4, 256, 42)
	keys := clusteredKeys(13, 8, 16)
	for i, k := range keys {
		c.Put(k, []int{i})
	}
	for _, k := range keys[:40] {
		c.Get(k)
	}
	before := c.Stats()
	if _, err := c.Reseed(999); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Puts != before.Puts {
		t.Errorf("Puts %d -> %d across a quiet migration", before.Puts, after.Puts)
	}
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("lookup counters changed: %+v -> %+v", before, after)
	}
	if after.Evictions != before.Evictions {
		t.Errorf("ample-capacity migration evicted: %d -> %d", before.Evictions, after.Evictions)
	}
	// Per-shard counters (with retired-generation baselines) still sum
	// to the aggregate.
	var sum core.Stats
	for _, st := range c.ShardStats() {
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Puts += st.Puts
		sum.Evictions += st.Evictions
	}
	if sum.Puts != after.Puts || sum.Hits != after.Hits || sum.Misses != after.Misses {
		t.Errorf("per-shard sum %+v disagrees with aggregate %+v", sum, after)
	}
}

// TestReseedTypedErrors covers the failure contract: fingerprint routing
// has nothing to re-draw, and only one migration may run at a time.
func TestReseedTypedErrors(t *testing.T) {
	fp, err := New(testDim, Options{
		Shards:    4,
		Partition: Fingerprint,
		New: func(int) (core.Cache, error) {
			return core.NewFlat(testDim, core.Options{Capacity: 8, Tolerance: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Reseed(1); !errors.Is(err, ErrFingerprintPartition) {
		t.Errorf("fingerprint Reseed error = %v, want ErrFingerprintPartition", err)
	}
	if _, err := fp.PreviewSeed(1); !errors.Is(err, ErrFingerprintPartition) {
		t.Errorf("fingerprint PreviewSeed error = %v, want ErrFingerprintPartition", err)
	}

	c := newCoarseShards(t, 2, 64, 1)
	c.migrateMu.Lock() // simulate an in-flight migration (or Clear)
	if _, err := c.Reseed(2); !errors.Is(err, ErrMigrationInProgress) {
		t.Errorf("overlapping Reseed error = %v, want ErrMigrationInProgress", err)
	}
	c.migrateMu.Unlock()

	// A sub-cache that cannot enumerate entries fails up front, before
	// any routing state changes.
	opaque, err := New(testDim, Options{
		Shards: 2,
		Seed:   3,
		New: func(int) (core.Cache, error) {
			return opaqueCache{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	oldSeed := opaque.Seed()
	if _, err := opaque.Reseed(4); !errors.Is(err, ErrNotMigratable) {
		t.Errorf("opaque Reseed error = %v, want ErrNotMigratable", err)
	}
	if opaque.Seed() != oldSeed {
		t.Error("failed pre-flight check must not change the routing seed")
	}
}

// TestReseedFactoryFailurePreflight: a factory that breaks after
// construction must fail the migration BEFORE any routing state
// changes — every entry stays findable and the seed is untouched, never
// a half-migrated cache.
func TestReseedFactoryFailurePreflight(t *testing.T) {
	builds := 0
	c, err := New(testDim, Options{
		Shards:        4,
		Seed:          42,
		SignatureBits: 4,
		New: func(int) (core.Cache, error) {
			builds++
			if builds > 4 { // construction succeeds; the rebuild probe fails
				return nil, fmt.Errorf("factory broke")
			}
			return core.NewFlat(testDim, core.Options{Capacity: 256, Tolerance: 0.5})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := clusteredKeys(23, 6, 16)
	for i, k := range keys {
		c.Put(k, []int{i})
	}
	if _, err := c.Reseed(777); err == nil {
		t.Fatal("Reseed should surface the factory failure")
	}
	if c.Seed() != 42 {
		t.Errorf("failed migration changed the seed to %d", c.Seed())
	}
	for i, k := range keys {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %d unreachable after a failed (pre-flight) migration", i)
		}
	}
}

// TestClearWinsOverMigration: a Clear racing a migration must leave the
// cache empty — either it queues behind the migration and erases its
// result, or it holds the structural lock first and the Reseed backs
// off with ErrMigrationInProgress. No interleaving may resurrect
// flushed entries.
func TestClearWinsOverMigration(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		c := newCoarseShards(t, 4, 1024, 42)
		for i, k := range clusteredKeys(uint64(30+iter), 8, 16) {
			c.Put(k, []int{i})
		}
		done := make(chan error, 1)
		go func() {
			_, err := c.Reseed(uint64(5000 + iter))
			done <- err
		}()
		c.Clear()
		if err := <-done; err != nil && !errors.Is(err, ErrMigrationInProgress) {
			t.Fatal(err)
		}
		if got := c.Len(); got != 0 {
			t.Fatalf("iteration %d: %d entries resurrected after Clear raced the migration", iter, got)
		}
	}
}

// opaqueCache is a core.Cache without EntrySource.
type opaqueCache struct{}

func (opaqueCache) Get(vec.Vector) ([]int, bool)                { return nil, false }
func (opaqueCache) Put(vec.Vector, []int)                       {}
func (opaqueCache) PutWithTolerance(vec.Vector, []int, float32) {}
func (opaqueCache) Len() int                                    { return 0 }
func (opaqueCache) Capacity() int                               { return 1 }
func (opaqueCache) Stats() core.Stats                           { return core.Stats{} }
func (opaqueCache) Clear()                                      {}

// TestNoStrandedEntries guards the no-stranding invariant behind the
// route-then-lock revalidation in slotFor: a Put that resolved its
// shard under the OLD draw and acquired the slot lock only after the
// migration had swept that shard would strand the entry where the new
// routing never looks. Under a storm of migrations, every concurrently
// inserted key must be findable once the dust settles (capacity is
// ample, so eviction cannot explain a loss). The hash-to-lock window is
// a few instructions, so this is an invariant check rather than a
// reliable reproducer of the original interleaving — the argument for
// the fix is the pointer re-check's happens-before reasoning in
// slotFor's comment.
func TestNoStrandedEntries(t *testing.T) {
	c := newCoarseShards(t, 4, 4096, 42)
	const (
		writers = 4
		perW    = 200
	)
	var writersWG, reseedWG sync.WaitGroup
	stop := make(chan struct{})
	keys := make([][]vec.Vector, writers)
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			rng := vec.NewRand(uint64(500 + g))
			for i := 0; i < perW; i++ {
				k := vec.RandomGaussian(rng, testDim)
				keys[g] = append(keys[g], k)
				c.Put(k, []int{g, i})
			}
		}(g)
	}
	reseedWG.Add(1)
	go func() {
		defer reseedWG.Done()
		seed := uint64(9000)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := c.Reseed(seed); err != nil {
					t.Errorf("reseed: %v", err)
					return
				}
				seed++
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	reseedWG.Wait()

	for g := range keys {
		for i, k := range keys[g] {
			if _, ok := c.Get(k); !ok {
				t.Fatalf("writer %d key %d stranded by a concurrent migration", g, i)
			}
		}
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions %d under ample capacity invalidate the test premise", ev)
	}
}

// TestConcurrentMigration hammers Get/Put from many goroutines while
// repeated re-draw migrations run, then checks the books: every client
// operation is accounted for exactly once (hits+misses == gets issued,
// puts == puts issued — the migration's own re-inserts must cancel out),
// which under -race also proves the slot swaps publish safely.
func TestConcurrentMigration(t *testing.T) {
	c := newCoarseShards(t, 4, 512, 42)
	keys := clusteredKeys(17, 8, 24)
	for i, k := range keys {
		c.Put(k, []int{i})
	}

	const (
		workers = 4
		opsEach = 400
	)
	var gets, puts atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := vec.NewRand(uint64(100 + g))
			for i := 0; i < opsEach; i++ {
				if i%3 == 0 {
					c.Put(vec.RandomGaussian(rng, testDim), []int{i})
					puts.Add(1)
				} else {
					c.Get(keys[rng.IntN(len(keys))])
					gets.Add(1)
				}
			}
		}(g)
	}

	// Migrations interleave with the traffic above.
	wg.Add(1)
	var migrations int
	go func() {
		defer wg.Done()
		seed := uint64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Reseed(seed); err != nil {
				t.Errorf("mid-traffic Reseed: %v", err)
				return
			}
			migrations++
			seed++
		}
	}()

	wgDone := make(chan struct{})
	go func() {
		// Close stop only after the traffic workers finish, so at least
		// the migrations overlapping them count.
		defer close(wgDone)
		wg.Wait()
	}()
	// Let the traffic drain, then stop the migration loop.
	for {
		if gets.Load()+puts.Load() >= workers*opsEach {
			break
		}
	}
	close(stop)
	<-wgDone

	if migrations == 0 {
		t.Fatal("no migration overlapped the traffic")
	}
	st := c.Stats()
	wantPuts := int64(len(keys)) + puts.Load()
	if st.Puts != wantPuts {
		t.Errorf("Puts = %d, want %d (migration re-inserts must not count)", st.Puts, wantPuts)
	}
	if st.Lookups() != gets.Load() {
		t.Errorf("Lookups = %d, want %d (no lost hits/misses)", st.Lookups(), gets.Load())
	}
	if st.Hits > st.Lookups() {
		t.Errorf("hits %d exceed lookups %d", st.Hits, st.Lookups())
	}
	// Entries in = entries resident + evictions out.
	if got := int64(c.Len()) + st.Evictions; got != wantPuts {
		t.Errorf("Len+Evictions = %d, want %d (no lost entries/evictions)", got, wantPuts)
	}
}
