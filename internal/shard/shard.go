// Package shard horizontally partitions a Proximity cache across N
// independently-locked sub-caches, removing the single-mutex bottleneck
// that serializes FlatCache and LSHCache lookups under concurrent load.
// The paper's middleware deployment (Fig. 4) serves many clients at once;
// serving-oriented RAG caches (RAGCache, Cache-Craft) show that lock
// contention, not mean lookup cost, dominates tail latency at scale.
//
// Keys are routed to shards by either an LSH signature (the default:
// similar queries collide on the same shard with high probability, so
// approximate hits survive partitioning) or a byte fingerprint (exact
// repeats only, but perfectly uniform spread). Each shard is any
// core.Cache — FLAT or LSH — built by a per-shard factory, and the whole
// structure satisfies core.Cache, making ShardedCache a drop-in for
// core.CachedRetriever.
package shard

import (
	"fmt"
	"math"
	"runtime"

	"proximity/internal/core"
	"proximity/internal/lsh"
	"proximity/internal/vec"
)

// Partition selects the key-to-shard routing strategy.
type Partition int

const (
	// LSHSignature routes by a random-hyperplane signature reduced
	// modulo the shard count. Queries within the cache tolerance share
	// a signature with high probability, so approximate hits survive
	// sharding — the same locality argument as Proximity-LSH itself
	// (§3.2). This is the default.
	LSHSignature Partition = iota + 1
	// Fingerprint routes by an FNV-1a hash of the embedding bytes.
	// Spread across shards is uniform regardless of embedding
	// geometry, but only byte-identical repeats land on the same
	// shard, so approximate matches across rephrasings are lost.
	Fingerprint
)

// String implements fmt.Stringer.
func (p Partition) String() string {
	switch p {
	case LSHSignature:
		return "lsh"
	case Fingerprint:
		return "fingerprint"
	default:
		return fmt.Sprintf("partition(%d)", int(p))
	}
}

// ParsePartition converts a string into a Partition.
func ParsePartition(s string) (Partition, error) {
	switch s {
	case "lsh":
		return LSHSignature, nil
	case "fingerprint":
		return Fingerprint, nil
	default:
		return 0, fmt.Errorf("shard: unknown partition strategy %q", s)
	}
}

// Factory builds the sub-cache for one shard index. Factories let any
// core.Cache variant back a shard; the helpers in this package cover the
// FLAT and LSH cases.
type Factory func(shard int) (core.Cache, error)

// DefaultSignatureBits is the partitioner's hyperplane count when
// Options.SignatureBits is zero. 2^10 signatures spread far more finely
// than any realistic shard count, keeping the modulo reduction balanced.
const DefaultSignatureBits = 10

// Options configures a ShardedCache.
type Options struct {
	// Shards is the number of independently-locked partitions.
	// Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// Partition is the routing strategy. Defaults to LSHSignature.
	Partition Partition
	// SignatureBits is the hyperplane count of the LSHSignature
	// partitioner (ignored by Fingerprint). Defaults to
	// DefaultSignatureBits, capped at lsh.MaxBits.
	SignatureBits int
	// Seed drives the partitioner's hyperplane draw, so a fixed seed
	// reproduces the same shard assignment.
	Seed uint64
	// New builds each shard's sub-cache. Required.
	New Factory
}

// ShardedCache hash-partitions keys across independently-locked
// sub-caches. It satisfies core.Cache, so it drops into
// core.CachedRetriever wherever a FlatCache or LSHCache does. All methods
// are safe for concurrent use; distinct shards never contend.
type ShardedCache struct {
	shards []core.Cache
	part   Partition
	hasher *lsh.Hasher // LSHSignature routing; nil under Fingerprint
	dim    int
}

var _ core.Cache = (*ShardedCache)(nil)

// New creates a ShardedCache for dim-dimensional embeddings, building one
// sub-cache per shard through opts.New.
func New(dim int, opts Options) (*ShardedCache, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("shard: dimension must be positive, got %d", dim)
	}
	if opts.New == nil {
		return nil, fmt.Errorf("shard: a sub-cache factory is required")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("shard: shard count must be non-negative, got %d", opts.Shards)
	}
	n := opts.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if opts.Partition == 0 {
		opts.Partition = LSHSignature
	}
	c := &ShardedCache{
		shards: make([]core.Cache, n),
		part:   opts.Partition,
		dim:    dim,
	}
	switch opts.Partition {
	case LSHSignature:
		bits := opts.SignatureBits
		if bits == 0 {
			bits = DefaultSignatureBits
		}
		if bits > lsh.MaxBits {
			bits = lsh.MaxBits
		}
		hasher, err := lsh.NewHasher(dim, bits, opts.Seed)
		if err != nil {
			return nil, err
		}
		c.hasher = hasher
	case Fingerprint:
		// No partitioner state needed.
	default:
		return nil, fmt.Errorf("shard: unknown partition strategy %d", int(opts.Partition))
	}
	for i := range c.shards {
		sub, err := opts.New(i)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		if sub == nil {
			return nil, fmt.Errorf("shard: factory returned nil cache for shard %d", i)
		}
		c.shards[i] = sub
	}
	return c, nil
}

// NewFlat creates a ShardedCache of FLAT sub-caches. The configured
// capacity is the TOTAL across shards (split evenly, rounded up), so the
// result is a drop-in replacement for a single FlatCache of the same
// capacity. seed drives the shard partitioner.
func NewFlat(dim, shards int, opts core.Options, seed uint64) (*ShardedCache, error) {
	// Resolve the shard count once so the per-shard capacity split and
	// the built partition count can never diverge.
	n := shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	per := opts.Capacity / n
	if opts.Capacity%n != 0 {
		per++
	}
	sub := opts
	sub.Capacity = per
	return New(dim, Options{
		Shards: n,
		Seed:   seed,
		New:    func(int) (core.Cache, error) { return core.NewFlat(dim, sub) },
	})
}

// NewLSH creates a ShardedCache of LSH sub-caches. Each shard keeps the
// full bucket geometry (2^Bits buckets of BucketCapacity) — buckets are
// lazily allocated, so actual memory still tracks usage. Shard sub-caches
// draw distinct hyperplanes (opts.Seed + shard index); the partitioner
// uses opts.Seed directly.
func NewLSH(dim, shards int, opts core.LSHOptions) (*ShardedCache, error) {
	return New(dim, Options{
		Shards: shards,
		Seed:   opts.Seed,
		New: func(i int) (core.Cache, error) {
			sub := opts
			sub.Seed = opts.Seed + 1 + uint64(i)
			return core.NewLSH(dim, sub)
		},
	})
}

// ShardFor returns the shard index a query routes to. Deterministic for a
// fixed construction seed; exported for diagnostics and tests.
func (c *ShardedCache) ShardFor(q vec.Vector) int {
	var h uint32
	switch c.part {
	case Fingerprint:
		h = FingerprintOf(q)
	default:
		h = c.hasher.Hash(q)
	}
	return int(h % uint32(len(c.shards)))
}

// FingerprintOf is FNV-1a over the embedding's float bits — the exact-
// match routing key. Shared with the batch pipeline (internal/batch),
// which uses it both to spread misses across its queues and to detect
// byte-identical in-flight duplicates.
func FingerprintOf(q vec.Vector) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, f := range q {
		bits := math.Float32bits(f)
		for s := 0; s < 32; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime32
		}
	}
	return h
}

// Get routes the query to its shard and looks it up there. Only that
// shard's lock is taken.
func (c *ShardedCache) Get(q vec.Vector) ([]int, bool) {
	if q == nil {
		return nil, false
	}
	return c.shards[c.ShardFor(q)].Get(q)
}

// Put routes the entry to its shard and inserts it under the sub-cache's
// configured tolerance.
func (c *ShardedCache) Put(q vec.Vector, docs []int) {
	if q == nil {
		return
	}
	c.shards[c.ShardFor(q)].Put(q, docs)
}

// PutWithTolerance routes the entry to its shard and inserts it with its
// own match threshold (§3.3.3's per-line dynamic tolerance).
func (c *ShardedCache) PutWithTolerance(q vec.Vector, docs []int, tol float32) {
	if q == nil {
		return
	}
	c.shards[c.ShardFor(q)].PutWithTolerance(q, docs, tol)
}

// Len returns the total number of entries across shards.
func (c *ShardedCache) Len() int {
	total := 0
	for _, s := range c.shards {
		total += s.Len()
	}
	return total
}

// Capacity returns the summed capacity of all shards.
func (c *ShardedCache) Capacity() int {
	total := 0
	for _, s := range c.shards {
		total += s.Capacity()
	}
	return total
}

// NumShards returns the partition count.
func (c *ShardedCache) NumShards() int { return len(c.shards) }

// Partition returns the routing strategy.
func (c *ShardedCache) Partition() Partition { return c.part }

// Shard returns the i-th sub-cache, for diagnostics and tests.
func (c *ShardedCache) Shard(i int) core.Cache { return c.shards[i] }

// ShardStats returns a per-shard snapshot of the cumulative counters.
func (c *ShardedCache) ShardStats() []core.Stats {
	out := make([]core.Stats, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.Stats()
	}
	return out
}

// Stats aggregates counters across shards. HashOps includes both the
// partitioner's routing projections and any hashing the sub-caches do;
// the routing share is derived from the operation counts (every Get and
// Put hashes once) rather than tracked on the hot path, so lookups on
// distinct shards share no mutable state at all.
func (c *ShardedCache) Stats() core.Stats {
	var agg core.Stats
	for _, s := range c.shards {
		st := s.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Puts += st.Puts
		agg.Evictions += st.Evictions
		agg.DistComps += st.DistComps
		agg.HashOps += st.HashOps
	}
	if c.hasher != nil {
		agg.HashOps += (agg.Hits + agg.Misses + agg.Puts) * int64(c.hasher.Bits())
	}
	return agg
}

// Clear removes all entries from every shard (counters are preserved by
// sub-caches that preserve them).
func (c *ShardedCache) Clear() {
	for _, s := range c.shards {
		s.Clear()
	}
}
